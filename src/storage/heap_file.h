// Heap file: a relation stored as a sequence of slotted pages striped
// across the disk array.

#ifndef XPRS_STORAGE_HEAP_FILE_H_
#define XPRS_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/disk_array.h"
#include "storage/fault_injector.h"
#include "storage/page.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace xprs {

/// A relation's pages. Loading is single-writer (setup phase); reads are
/// thread-safe and go through the disk array's timing model.
class HeapFile {
 public:
  HeapFile(std::string name, Schema schema, DiskArray* array);

  /// Movable (setup phase only — not concurrently with readers). The
  /// atomic injector slot blocks the implicit move; the installed hook
  /// travels with the file.
  HeapFile(HeapFile&& other) noexcept
      : name_(other.name_),
        schema_(other.schema_),
        array_(other.array_),
        injector_(other.injector_.load(std::memory_order_relaxed)),
        block_map_(std::move(other.block_map_)),
        tail_(other.tail_),
        tail_dirty_(other.tail_dirty_),
        num_tuples_(other.num_tuples_) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Pages in the file.
  uint32_t num_pages() const;

  /// Tuples in the file.
  uint64_t num_tuples() const { return num_tuples_; }

  /// Appends a tuple, allocating a fresh page when the current one fills.
  /// Call Flush() after the last Append.
  Status Append(const Tuple& tuple);

  /// Writes out the partially filled tail page, if any.
  Status Flush();

  /// Reads file-local page `index` (0-based) into *out, paying disk time.
  Status ReadPage(uint32_t index, Page* out) const;

  /// Global block id backing file-local page `index` (for buffer pools and
  /// tuple ids that reference the file-local page number).
  StatusOr<BlockId> BlockOf(uint32_t index) const;

  /// Reads the tuple identified by `tid` (page = file-local page index).
  /// Pays one page read per call; callers that scan should use ReadPage.
  StatusOr<Tuple> ReadTuple(const TupleId& tid) const;

  /// Average tuples per page (0 when empty).
  double TuplesPerPage() const;

  /// Installs (nullptr clears) a fault hook consulted by ReadPage — and
  /// therefore ReadTuple — before the backing block read, and by Flush
  /// before the backing block write (so spill runs and Grace partitions,
  /// which append through heap files, are write-fault-testable per file;
  /// a write fault fails before media, no torn prefix lands). The disk
  /// array's own injector covers every relation on the array; this one
  /// targets a single heap file so index-scan fetch and spill write paths
  /// are fault-testable in isolation. Thread-safe; the injector must
  /// outlive its installation.
  void SetFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  const std::string name_;
  const Schema schema_;
  DiskArray* const array_;

  std::atomic<FaultInjector*> injector_{nullptr};
  std::vector<BlockId> block_map_;  // file page index -> global block
  Page tail_;                       // page being filled by Append
  bool tail_dirty_ = false;
  uint64_t num_tuples_ = 0;
};

}  // namespace xprs

#endif  // XPRS_STORAGE_HEAP_FILE_H_
