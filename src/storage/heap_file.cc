#include "storage/heap_file.h"

#include "util/check.h"
#include "util/str.h"

namespace xprs {

HeapFile::HeapFile(std::string name, Schema schema, DiskArray* array)
    : name_(std::move(name)), schema_(std::move(schema)), array_(array) {
  XPRS_CHECK(array_ != nullptr);
}

uint32_t HeapFile::num_pages() const {
  return static_cast<uint32_t>(block_map_.size()) + (tail_dirty_ ? 1 : 0);
}

Status HeapFile::Append(const Tuple& tuple) {
  std::vector<uint8_t> bytes;
  XPRS_RETURN_IF_ERROR(tuple.Serialize(schema_, &bytes));
  if (bytes.size() > MaxTuplePayload()) {
    return Status::InvalidArgument(
        StrFormat("tuple of %zu bytes exceeds page capacity", bytes.size()));
  }
  auto added = tail_.AddTuple(bytes.data(), static_cast<uint16_t>(bytes.size()));
  if (!added.ok()) {
    // Tail is full: persist it and start a fresh page.
    XPRS_RETURN_IF_ERROR(Flush());
    added = tail_.AddTuple(bytes.data(), static_cast<uint16_t>(bytes.size()));
    XPRS_CHECK(added.ok());
  }
  tail_dirty_ = true;
  ++num_tuples_;
  return Status::OK();
}

Status HeapFile::Flush() {
  if (!tail_dirty_) return Status::OK();
  BlockId block = array_->AllocateBlock();
  if (FaultInjector* injector = injector_.load(std::memory_order_acquire)) {
    // Per-file write hook: fails cleanly before media (no torn prefix
    // lands; the array's own injector models torn writes). Spill runs and
    // Grace partitions flush through here, so the spill-io fault domain is
    // exercisable per file.
    size_t bytes = 0;
    XPRS_RETURN_IF_ERROR(injector->BeforeWrite(block, &bytes));
  }
  XPRS_RETURN_IF_ERROR(array_->WriteBlock(block, tail_));
  block_map_.push_back(block);
  tail_.Init();
  tail_dirty_ = false;
  return Status::OK();
}

Status HeapFile::ReadPage(uint32_t index, Page* out) const {
  if (index >= block_map_.size()) {
    if (tail_dirty_ && index == block_map_.size()) {
      return Status::FailedPrecondition("unflushed tail page; call Flush()");
    }
    return Status::OutOfRange(
        StrFormat("page %u of %zu in %s", index, block_map_.size(),
                  name_.c_str()));
  }
  if (FaultInjector* injector = injector_.load(std::memory_order_acquire))
    XPRS_RETURN_IF_ERROR(injector->BeforeRead(block_map_[index]));
  return array_->ReadBlock(block_map_[index], out);
}

StatusOr<BlockId> HeapFile::BlockOf(uint32_t index) const {
  if (index >= block_map_.size())
    return Status::OutOfRange(
        StrFormat("page %u of %zu in %s", index, block_map_.size(),
                  name_.c_str()));
  return block_map_[index];
}

StatusOr<Tuple> HeapFile::ReadTuple(const TupleId& tid) const {
  Page page;
  XPRS_RETURN_IF_ERROR(ReadPage(tid.page, &page));
  const uint8_t* data;
  uint16_t size;
  XPRS_RETURN_IF_ERROR(page.GetTuple(tid.slot, &data, &size));
  return Tuple::Deserialize(schema_, data, size);
}

double HeapFile::TuplesPerPage() const {
  uint32_t pages = static_cast<uint32_t>(block_map_.size());
  if (pages == 0) return 0.0;
  return static_cast<double>(num_tuples_) / pages;
}

}  // namespace xprs
