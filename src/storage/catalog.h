// System catalog: relations, their indexes and the statistics the
// optimizer and the range partitioner consult.

#ifndef XPRS_STORAGE_CATALOG_H_
#define XPRS_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/disk_array.h"
#include "storage/heap_file.h"
#include "util/status.h"

namespace xprs {

/// Optimizer-visible statistics of one relation.
struct TableStats {
  uint64_t num_tuples = 0;
  uint32_t num_pages = 0;
  double tuples_per_page = 0.0;
  /// Min/max of the indexed key column (a); valid when num_tuples > 0 and
  /// the column is non-null somewhere.
  int32_t min_key = 0;
  int32_t max_key = 0;
  bool has_key_bounds = false;

  /// Equi-depth histogram of the key column: bucket i covers
  /// (histogram_bounds[i-1], histogram_bounds[i]] and holds
  /// histogram_counts[i] keys (duplicates are never split across buckets,
  /// so counts vary around the nominal depth). Empty = none built ("data
  /// distribution information in the system catalog", §2.4).
  std::vector<int32_t> histogram_bounds;
  std::vector<uint64_t> histogram_counts;

  /// Estimated fraction of (non-null) keys in [lo, hi]: histogram-based
  /// when available, uniform interpolation between min/max otherwise, 0
  /// when there are no key bounds.
  double KeyRangeFraction(int32_t lo, int32_t hi) const;
};

/// A relation: heap file, optional unclustered B+tree index on a key
/// column, and statistics.
class Table {
 public:
  Table(std::string name, Schema schema, DiskArray* array);

  const std::string& name() const { return file_.name(); }
  const Schema& schema() const { return file_.schema(); }
  HeapFile& file() { return file_; }
  const HeapFile& file() const { return file_; }

  /// The indexed column, or -1 when no index exists.
  int index_column() const { return index_column_; }
  const BTreeIndex* index() const { return index_.get(); }
  /// Mutable access for fault-hook installation (the read API stays
  /// const-only through index()).
  BTreeIndex* mutable_index() { return index_.get(); }

  /// Builds an unclustered B+tree index over int4 column `column` by
  /// scanning the heap file. NULL keys are skipped.
  Status BuildIndex(size_t column);

  /// Recomputes statistics by scanning the heap file (key bounds are taken
  /// from column `key_column`, default 0). Builds an equi-depth histogram
  /// with up to `histogram_buckets` buckets (0 disables it).
  Status ComputeStats(size_t key_column = 0, int histogram_buckets = 32);

  const TableStats& stats() const { return stats_; }

 private:
  HeapFile file_;
  std::unique_ptr<BTreeIndex> index_;
  int index_column_ = -1;
  TableStats stats_;
};

/// Name -> Table registry over one disk array.
///
/// Thread-safety: the registry map is guarded by an internal mutex, so
/// CreateTable / GetTable / num_tables may race freely — the serving layer
/// binds queries from many sessions concurrently. Returned Table pointers
/// are stable for the catalog's lifetime (tables are never dropped).
/// Table *contents* follow a DDL-then-serve discipline: the mutating
/// operations (HeapFile::Append/Flush, BuildIndex, ComputeStats) must be
/// quiesced before concurrent query execution starts; the read paths
/// (heap page reads, index probes, stats) are safe to share between any
/// number of running queries.
class Catalog {
 public:
  explicit Catalog(DiskArray* array);

  DiskArray* disk_array() const { return array_; }

  /// Creates an empty relation; AlreadyExists if the name is taken.
  StatusOr<Table*> CreateTable(const std::string& name, const Schema& schema);

  /// Looks a relation up; NotFound if absent.
  StatusOr<Table*> GetTable(const std::string& name) const;

  size_t num_tables() const;

 private:
  DiskArray* const array_;
  mutable std::mutex mutex_;  // guards tables_
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace xprs

#endif  // XPRS_STORAGE_CATALOG_H_
