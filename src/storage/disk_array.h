// Striped disk array simulator.
//
// XPRS stripes every relation sequentially, block by block, round-robin
// across the disk array (§1). This component provides that layout plus the
// timing behaviour the paper measured (§3): per-disk service rates of
// 97 io/s for strictly sequential reads, 60 io/s for "almost sequential"
// reads (parallel scans whose requests arrive slightly out of order) and
// 35 io/s for random reads.
//
// Two modes:
//  - kInstant: reads return immediately; only the accounting runs. Used by
//    unit tests and by cost-model calibration.
//  - kThrottled: each read holds its disk for the service time (real
//    sleep), so concurrent scans experience genuine bandwidth contention.
//    Used by the real-thread parallel executor demos.

#ifndef XPRS_STORAGE_DISK_ARRAY_H_
#define XPRS_STORAGE_DISK_ARRAY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "storage/fault_injector.h"
#include "storage/page.h"
#include "util/status.h"

namespace xprs {

/// Global block number across the array; block b lives on disk b % D.
using BlockId = uint32_t;

/// Per-disk service times in seconds per io.
struct DiskTimings {
  double seq_read = 1.0 / 97.0;     ///< next block after the previous one
  double almost_seq_read = 1.0 / 60.0;  ///< short forward skip (reordered)
  double rand_read = 1.0 / 35.0;    ///< anything else
  /// A read within this many blocks *forward* of the previous one counts
  /// as almost sequential.
  uint32_t almost_seq_window = 16;

  /// Scales all three service times (1.0 = the paper's measured disks).
  /// Smaller is faster; benchmarks use < 1 to shorten wall-clock runs
  /// without changing any ratio.
  double time_scale = 1.0;
};

/// Execution mode of the array.
enum class DiskMode {
  kInstant,    ///< no delays, accounting only
  kThrottled,  ///< real sleeps; per-disk serialization
};

/// Per-disk counters.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t seq_reads = 0;
  uint64_t almost_seq_reads = 0;
  uint64_t rand_reads = 0;
  double busy_seconds = 0.0;  ///< modeled service time accumulated
  /// Service time paid *beyond* the strictly-sequential baseline — the
  /// seek-interference throttling cost of §2.3 (reordered / random reads
  /// caused by concurrent streams sharing the disk).
  double interference_seconds = 0.0;
};

/// The striped disk array. Thread-safe.
class DiskArray {
 public:
  DiskArray(int num_disks, DiskMode mode,
            const DiskTimings& timings = DiskTimings());

  int num_disks() const { return num_disks_; }
  DiskMode mode() const { return mode_; }

  /// Number of blocks allocated so far.
  BlockId num_blocks() const;

  /// Appends a zeroed block and returns its id. Round-robin placement is
  /// implied by the id.
  BlockId AllocateBlock();

  /// Disk a block lives on.
  int DiskOf(BlockId block) const { return static_cast<int>(block % num_disks_); }

  /// Reads a block into *out, applying the mode's timing model.
  Status ReadBlock(BlockId block, Page* out);

  /// Writes a block image (used by loaders; not timed — the paper's
  /// experiments are read-only).
  Status WriteBlock(BlockId block, const Page& in);

  /// Counters for one disk.
  DiskStats stats(int disk) const;

  /// Sum over all disks.
  DiskStats total_stats() const;

  /// Zeroes all counters.
  void ResetStats();

  /// Publishes live per-disk read counters (disk.<i>.reads) into `metrics`.
  void AttachMetrics(MetricsRegistry* metrics);

  /// Writes per-disk gauges (disk.<i>.busy_seconds,
  /// disk.<i>.interference_seconds, read-class breakdown) into the attached
  /// registry. No-op if detached.
  void PublishMetrics() const;

  /// Fault injection for tests: the next `count` ReadBlock calls fail
  /// with IoError (decrementing per call). Thread-safe.
  void FailNextReads(int count);

  /// Remaining injected read faults.
  int pending_faults() const;

  /// Installs a fault-injection hook consulted on every read and write
  /// (nullptr detaches). The injector must outlive its installation.
  /// Thread-safe with concurrent IO.
  void SetFaultInjector(FaultInjector* injector);

  std::string ToString() const;

 private:
  struct DiskState {
    std::mutex mutex;          // serializes service on this disk
    int64_t last_block = -1;   // per-disk block index of the previous read
    DiskStats stats;
    Counter* reads_counter = nullptr;  // disk.<i>.reads (live)
  };

  const int num_disks_;
  const DiskMode mode_;
  const DiskTimings timings_;

  mutable std::mutex blocks_mutex_;  // guards allocation / deque growth
  std::deque<Page> blocks_;          // deque: growth keeps references stable
  std::atomic<int> pending_faults_{0};
  std::atomic<FaultInjector*> injector_{nullptr};

  std::vector<std::unique_ptr<DiskState>> disks_;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace xprs

#endif  // XPRS_STORAGE_DISK_ARRAY_H_
