// Schema, values and tuple (de)serialization.
//
// The §3 experiments use a single schema r(a int4, b text) where the text
// attribute's width controls the tuple size and therefore the i/o rate of
// a scan. The type system here is deliberately that small — int4 and text —
// but complete: typed values, null support, schema-driven serialization.

#ifndef XPRS_STORAGE_TUPLE_H_
#define XPRS_STORAGE_TUPLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace xprs {

/// Column types.
enum class TypeId : uint8_t { kInt4 = 0, kText = 1 };

const char* TypeName(TypeId type);

/// A single typed value; monostate represents NULL.
using Value = std::variant<std::monostate, int32_t, std::string>;

/// True if the value is NULL.
bool IsNull(const Value& v);

/// Human-readable rendering ("NULL", "42", "'abc'").
std::string ValueToString(const Value& v);

/// Three-way comparison with NULL ordered first; values must have the same
/// type (or be NULL).
int CompareValues(const Value& a, const Value& b);

/// One column of a schema.
struct Column {
  std::string name;
  TypeId type = TypeId::kInt4;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the named column, or NotFound.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// The paper's benchmark schema: r(a int4, b text).
  static Schema PaperSchema();

  /// Concatenation of two schemas (join output).
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A tuple: one Value per schema column.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  Value& value(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Serializes per `schema` into `out` (appended).
  /// Wire format per column: 1 null byte, then for int4 a 4-byte LE value,
  /// for text a 4-byte LE length + bytes.
  Status Serialize(const Schema& schema, std::vector<uint8_t>* out) const;

  /// Parses a serialized tuple.
  static StatusOr<Tuple> Deserialize(const Schema& schema,
                                     const uint8_t* data, uint16_t size);

  /// Join concatenation.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  std::string ToString() const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace xprs

#endif  // XPRS_STORAGE_TUPLE_H_
