#include "storage/disk_array.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

DiskArray::DiskArray(int num_disks, DiskMode mode, const DiskTimings& timings)
    : num_disks_(num_disks), mode_(mode), timings_(timings) {
  XPRS_CHECK_GE(num_disks, 1);
  disks_.reserve(num_disks_);
  for (int i = 0; i < num_disks_; ++i)
    disks_.push_back(std::make_unique<DiskState>());
}

BlockId DiskArray::num_blocks() const {
  std::lock_guard<std::mutex> lock(blocks_mutex_);
  return static_cast<BlockId>(blocks_.size());
}

BlockId DiskArray::AllocateBlock() {
  std::lock_guard<std::mutex> lock(blocks_mutex_);
  blocks_.emplace_back();
  return static_cast<BlockId>(blocks_.size() - 1);
}

Status DiskArray::ReadBlock(BlockId block, Page* out) {
  XPRS_CHECK(out != nullptr);
  // Injected fault (tests): consume one pending fault atomically.
  int pending = pending_faults_.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (pending_faults_.compare_exchange_weak(pending, pending - 1)) {
      return Status::IoError(
          StrFormat("injected read fault on block %u", block));
    }
  }
  if (FaultInjector* inj = injector_.load(std::memory_order_acquire)) {
    XPRS_RETURN_IF_ERROR(inj->BeforeRead(block));
  }
  {
    std::lock_guard<std::mutex> lock(blocks_mutex_);
    if (block >= blocks_.size())
      return Status::OutOfRange(StrFormat("block %u of %zu", block,
                                          blocks_.size()));
  }

  DiskState& disk = *disks_[DiskOf(block)];
  // The per-disk block index: consecutive *global* blocks land on
  // consecutive disks, so a striped sequential scan advances each disk's
  // local index by exactly one per round.
  const int64_t local = static_cast<int64_t>(block / num_disks_);

  std::lock_guard<std::mutex> disk_lock(disk.mutex);
  double service;
  if (disk.last_block >= 0 && local == disk.last_block + 1) {
    service = timings_.seq_read;
    ++disk.stats.seq_reads;
  } else if (disk.last_block >= 0 && local > disk.last_block &&
             local <= disk.last_block + timings_.almost_seq_window) {
    service = timings_.almost_seq_read;
    ++disk.stats.almost_seq_reads;
  } else if (disk.last_block < 0 && local == 0) {
    // First touch at the start of the platter counts as sequential.
    service = timings_.seq_read;
    ++disk.stats.seq_reads;
  } else {
    service = timings_.rand_read;
    ++disk.stats.rand_reads;
  }
  service *= timings_.time_scale;
  disk.last_block = local;
  ++disk.stats.reads;
  disk.stats.busy_seconds += service;
  // Everything beyond the sequential-read baseline is interference cost:
  // time lost to seeks caused by out-of-order or competing streams.
  disk.stats.interference_seconds +=
      std::max(0.0, service - timings_.seq_read * timings_.time_scale);
  if (disk.reads_counter != nullptr) disk.reads_counter->Increment();

  if (mode_ == DiskMode::kThrottled) {
    std::this_thread::sleep_for(std::chrono::duration<double>(service));
  }

  // blocks_ only grows and deque elements are stable, so reading without
  // blocks_mutex_ is safe once the bound check passed.
  std::memcpy(out->raw(), blocks_[block].raw(), kPageSize);
  return Status::OK();
}

Status DiskArray::WriteBlock(BlockId block, const Page& in) {
  Status fault = Status::OK();
  size_t bytes = kPageSize;
  if (FaultInjector* inj = injector_.load(std::memory_order_acquire)) {
    fault = inj->BeforeWrite(block, &bytes);
  }
  std::lock_guard<std::mutex> lock(blocks_mutex_);
  if (block >= blocks_.size())
    return Status::OutOfRange(StrFormat("block %u of %zu", block,
                                        blocks_.size()));
  // A failing write still lands its torn prefix on media, as a real torn
  // write would; a clean write copies the whole page.
  std::memcpy(blocks_[block].raw(), in.raw(),
              fault.ok() ? kPageSize : std::min(bytes, kPageSize));
  return fault;
}

DiskStats DiskArray::stats(int disk) const {
  XPRS_CHECK_GE(disk, 0);
  XPRS_CHECK_LT(disk, num_disks_);
  std::lock_guard<std::mutex> lock(disks_[disk]->mutex);
  return disks_[disk]->stats;
}

DiskStats DiskArray::total_stats() const {
  DiskStats total;
  for (int i = 0; i < num_disks_; ++i) {
    DiskStats s = stats(i);
    total.reads += s.reads;
    total.seq_reads += s.seq_reads;
    total.almost_seq_reads += s.almost_seq_reads;
    total.rand_reads += s.rand_reads;
    total.busy_seconds += s.busy_seconds;
    total.interference_seconds += s.interference_seconds;
  }
  return total;
}

void DiskArray::AttachMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (int i = 0; i < num_disks_; ++i) {
    std::lock_guard<std::mutex> lock(disks_[i]->mutex);
    disks_[i]->reads_counter =
        metrics == nullptr ? nullptr
                           : metrics->counter(StrFormat("disk.%d.reads", i));
  }
}

void DiskArray::PublishMetrics() const {
  if (metrics_ == nullptr) return;
  double total_interference = 0.0;
  for (int i = 0; i < num_disks_; ++i) {
    DiskStats s = stats(i);
    metrics_->gauge(StrFormat("disk.%d.busy_seconds", i))
        ->Set(s.busy_seconds);
    metrics_->gauge(StrFormat("disk.%d.interference_seconds", i))
        ->Set(s.interference_seconds);
    metrics_->gauge(StrFormat("disk.%d.seq_reads", i))
        ->Set(static_cast<double>(s.seq_reads));
    metrics_->gauge(StrFormat("disk.%d.almost_seq_reads", i))
        ->Set(static_cast<double>(s.almost_seq_reads));
    metrics_->gauge(StrFormat("disk.%d.rand_reads", i))
        ->Set(static_cast<double>(s.rand_reads));
    total_interference += s.interference_seconds;
  }
  metrics_->gauge("disk.total_interference_seconds")->Set(total_interference);
}

void DiskArray::FailNextReads(int count) {
  XPRS_CHECK_GE(count, 0);
  pending_faults_.store(count, std::memory_order_relaxed);
}

int DiskArray::pending_faults() const {
  return pending_faults_.load(std::memory_order_relaxed);
}

void DiskArray::SetFaultInjector(FaultInjector* injector) {
  injector_.store(injector, std::memory_order_release);
}

void DiskArray::ResetStats() {
  for (auto& d : disks_) {
    std::lock_guard<std::mutex> lock(d->mutex);
    d->stats = DiskStats{};
    d->last_block = -1;
  }
}

std::string DiskArray::ToString() const {
  DiskStats t = total_stats();
  return StrFormat(
      "DiskArray{%d disks, %u blocks, reads=%llu (seq=%llu almost=%llu "
      "rand=%llu), busy=%.3fs}",
      num_disks_, num_blocks(), static_cast<unsigned long long>(t.reads),
      static_cast<unsigned long long>(t.seq_reads),
      static_cast<unsigned long long>(t.almost_seq_reads),
      static_cast<unsigned long long>(t.rand_reads), t.busy_seconds);
}

}  // namespace xprs
