// Slotted 8 KB disk page, the unit of storage and of i/o.
//
// Layout mirrors the classic slotted-page design Postgres used:
//
//   [ header | slot array --> ...free... <-- tuple data ]
//
// The slot array grows forward from the header, tuple bytes grow backward
// from the end of the page. XPRS pages are 8 KB (§3).

#ifndef XPRS_STORAGE_PAGE_H_
#define XPRS_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/status.h"

namespace xprs {

/// Page size in bytes (8 KB in XPRS, §3).
inline constexpr size_t kPageSize = 8192;

/// Identifies a tuple within a relation: page number + slot within page.
struct TupleId {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const TupleId&) const = default;
  auto operator<=>(const TupleId&) const = default;
};

/// A slotted page. POD-sized: exactly kPageSize bytes, safe to memcpy as a
/// disk block image.
class Page {
 public:
  Page() { Init(); }

  /// Resets to an empty page.
  void Init();

  /// Number of tuples stored.
  uint16_t num_tuples() const { return header()->num_slots; }

  /// Free bytes remaining (accounting for the slot the next insert needs).
  size_t FreeSpace() const;

  /// Appends a tuple; fails with ResourceExhausted when it does not fit.
  /// On success returns the slot index.
  StatusOr<uint16_t> AddTuple(const uint8_t* data, uint16_t size);

  /// Returns a pointer to the tuple bytes in `slot` and its size.
  /// Fails with OutOfRange for an invalid slot.
  Status GetTuple(uint16_t slot, const uint8_t** data, uint16_t* size) const;

  /// Raw access for disk transfer.
  const uint8_t* raw() const { return bytes_; }
  uint8_t* raw() { return bytes_; }

 private:
  struct Header {
    uint16_t num_slots;
    uint16_t free_end;  // offset one past the end of the free region
  };
  struct Slot {
    uint16_t offset;
    uint16_t size;
  };

  Header* header() { return reinterpret_cast<Header*>(bytes_); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(bytes_);
  }
  Slot* slot_array() { return reinterpret_cast<Slot*>(bytes_ + sizeof(Header)); }
  const Slot* slot_array() const {
    return reinterpret_cast<const Slot*>(bytes_ + sizeof(Header));
  }

  // Aligned so the Header/Slot reinterpret_casts above are well-defined
  // even when a Page is embedded at an arbitrary offset in another object.
  alignas(8) uint8_t bytes_[kPageSize];
};

static_assert(sizeof(Page) == kPageSize, "Page must be exactly one block");

/// Maximum tuple payload that fits in an empty page.
size_t MaxTuplePayload();

}  // namespace xprs

#endif  // XPRS_STORAGE_PAGE_H_
