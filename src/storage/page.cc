#include "storage/page.h"

#include "util/check.h"
#include "util/str.h"

namespace xprs {

void Page::Init() {
  std::memset(bytes_, 0, kPageSize);
  header()->num_slots = 0;
  header()->free_end = kPageSize;
}

size_t Page::FreeSpace() const {
  size_t used_front = sizeof(Header) + header()->num_slots * sizeof(Slot);
  size_t free_end = header()->free_end;
  XPRS_CHECK_LE(used_front, free_end);
  size_t gap = free_end - used_front;
  return gap >= sizeof(Slot) ? gap - sizeof(Slot) : 0;
}

StatusOr<uint16_t> Page::AddTuple(const uint8_t* data, uint16_t size) {
  if (size > FreeSpace()) {
    return Status::ResourceExhausted(
        StrFormat("tuple of %u bytes does not fit (%zu free)", size,
                  FreeSpace()));
  }
  Header* h = header();
  uint16_t slot_index = h->num_slots;
  h->free_end -= size;
  std::memcpy(bytes_ + h->free_end, data, size);
  slot_array()[slot_index] = Slot{h->free_end, size};
  ++h->num_slots;
  return slot_index;
}

Status Page::GetTuple(uint16_t slot, const uint8_t** data,
                      uint16_t* size) const {
  if (slot >= header()->num_slots) {
    return Status::OutOfRange(
        StrFormat("slot %u of %u", slot, header()->num_slots));
  }
  const Slot& s = slot_array()[slot];
  *data = bytes_ + s.offset;
  *size = s.size;
  return Status::OK();
}

size_t MaxTuplePayload() {
  Page p;
  return p.FreeSpace();
}

}  // namespace xprs
