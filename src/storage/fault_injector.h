// Storage fault injection.
//
// A FaultInjector is an optional hook the disk array and the buffer pool
// consult on every read, write and fetch. The differential correctness
// harness arms one to prove that storage errors surface as Status values —
// with balanced buffer-pool pins and clean operator teardown — instead of
// crashes or wrong answers. Production paths pay one pointer test when no
// injector is installed.
//
// Fault vocabulary (ScriptedFaultInjector):
//   - fail-N-th read:      the N-th ReadBlock from arming fails with
//                          IoError; the fault clears, so a retry succeeds
//                          (transient-then-retry).
//   - fault rate:          each read independently fails with probability
//                          p (seeded; reproducible).
//   - short write:         the N-th WriteBlock copies only a prefix of the
//                          page and reports IoError (a torn write).
//   - fail-N-th fetch:     the N-th BufferPool::Fetch fails before touching
//                          the disk (pool-level fault, e.g. checksum).

#ifndef XPRS_STORAGE_FAULT_INJECTOR_H_
#define XPRS_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>

#include "storage/page.h"
#include "util/rng.h"
#include "util/status.h"

namespace xprs {

using BlockId = uint32_t;  // mirrors storage/disk_array.h

/// Hook interface. Implementations must be thread-safe: the disk array and
/// the buffer pool call these from concurrent slave backends.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Consulted by DiskArray::ReadBlock before the read is served. A non-OK
  /// status aborts the read and is returned to the caller.
  virtual Status BeforeRead(BlockId block) = 0;

  /// Consulted by DiskArray::WriteBlock. On a non-OK status the array
  /// copies only the first *bytes bytes of the page (a torn write; set
  /// *bytes = 0 for a write that fails before touching media) and returns
  /// the status. *bytes is ignored for OK results.
  virtual Status BeforeWrite(BlockId block, size_t* bytes) = 0;

  /// Consulted by BufferPool::Fetch before the frame lookup. A non-OK
  /// status fails the fetch without touching pool state.
  virtual Status BeforeFetch(BlockId block) = 0;
};

/// Deterministic, seedable fault script. All counters are relative to the
/// last Arm() call; a value of 0 disables that fault. Injected faults are
/// transient: each fires exactly once and then clears, so the same
/// operation retried afterwards succeeds.
class ScriptedFaultInjector : public FaultInjector {
 public:
  struct Script {
    /// 1-based read ordinal that fails (0 = off).
    uint64_t fail_nth_read = 0;
    /// Independent probability that any read fails (0 = off). Uses the
    /// seed passed to Arm(), so runs are reproducible.
    double read_fault_rate = 0.0;
    /// 1-based write ordinal that is torn short (0 = off).
    uint64_t short_nth_write = 0;
    /// Bytes actually "written" by the torn write.
    size_t short_write_bytes = 512;
    /// Independent probability that any write is torn short (0 = off).
    /// Seeded like read_fault_rate, so spill-path write storms replay
    /// exactly. Fired writes land short_write_bytes of the page.
    double write_fault_rate = 0.0;
    /// 1-based fetch ordinal that fails at the pool level (0 = off).
    uint64_t fail_nth_fetch = 0;
  };

  ScriptedFaultInjector() = default;

  /// Installs a script and resets all ordinals. Thread-safe.
  void Arm(const Script& script, uint64_t seed = 0);

  /// Clears the script (all faults off).
  void Disarm() { Arm(Script{}); }

  /// Totals since construction (not reset by Arm): how many faults fired.
  uint64_t faults_injected() const;
  /// Operations seen since the last Arm().
  uint64_t reads_seen() const;
  uint64_t writes_seen() const;
  uint64_t fetches_seen() const;

  Status BeforeRead(BlockId block) override;
  Status BeforeWrite(BlockId block, size_t* bytes) override;
  Status BeforeFetch(BlockId block) override;

 private:
  mutable std::mutex mutex_;
  Script script_;
  Rng rng_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t fetches_ = 0;
  uint64_t injected_ = 0;
};

}  // namespace xprs

#endif  // XPRS_STORAGE_FAULT_INJECTOR_H_
