// Shared buffer pool with clock (second-chance) replacement.
//
// All backends of the real-thread executor share one pool, as in XPRS's
// shared-memory design. Frames are pinned while in use; a miss performs the
// disk read outside the pool latch so concurrent misses on different disks
// overlap — this is what lets an IO-bound and a CPU-bound fragment genuinely
// share the machine.

#ifndef XPRS_STORAGE_BUFFER_POOL_H_
#define XPRS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "storage/disk_array.h"
#include "storage/page.h"
#include "util/status.h"

namespace xprs {

class BufferPool;

/// RAII pin on a buffered page. Unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame, const Page* page);
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  const Page& page() const { return *page_; }

  /// Explicit early release.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  const Page* page_ = nullptr;
};

/// Buffer pool statistics.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_rate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Fixed-size page cache over a DiskArray. Thread-safe.
class BufferPool {
 public:
  BufferPool(DiskArray* array, size_t num_frames);

  size_t num_frames() const { return frames_.size(); }

  /// Returns a pinned handle on the block, reading it from disk on a miss.
  /// Fails with ResourceExhausted when every frame is pinned.
  StatusOr<PageHandle> Fetch(BlockId block);

  /// Publishes live hit/miss counters into `metrics` (bufferpool.hits /
  /// bufferpool.misses). Call before handing the pool to workers.
  void AttachMetrics(MetricsRegistry* metrics);

  /// Writes the current hit rate and frame count gauges into the attached
  /// registry (bufferpool.hit_rate, bufferpool.frames). No-op if detached.
  void PublishMetrics() const;

  BufferPoolStats stats() const;

  /// Installs a fault-injection hook consulted at the top of every Fetch
  /// (nullptr detaches). Thread-safe with concurrent fetches.
  void SetFaultInjector(FaultInjector* injector);

  /// Admission control under memory-pages pressure: when `max_pinned_frames`
  /// is > 0, a miss that finds at least that many frames already pinned is
  /// refused with a retryable ResourceExhausted instead of claiming a
  /// frame. Hits on resident pages are never refused — the requester
  /// already holds the memory, and refusing re-pins would livelock scans
  /// that bounce on the page they just released. 0 (default) disables the
  /// limit. Thread-safe.
  void SetSoftPinLimit(size_t max_pinned_frames);

  /// Number of frames currently pinned (pins > 0). The differential
  /// harness asserts this returns to zero after every run — a leaked pin
  /// means some error path skipped an unpin.
  size_t PinnedFrames() const;

  /// Sum of pin counts over all frames.
  uint64_t TotalPins() const;

  std::string ToString() const;

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    BlockId block = 0;
    bool occupied = false;
    bool loading = false;   // a thread is reading it from disk
    bool ref_bit = false;   // clock second chance
    int pins = 0;
  };

  void Unpin(size_t frame);
  size_t PinnedLocked() const;

  // Finds the frame holding `block` or claims a victim for it. Returns the
  // frame index and whether a disk load is needed; called under mutex_.
  StatusOr<size_t> FindOrClaimLocked(BlockId block, bool* needs_load,
                                     std::unique_lock<std::mutex>* lock);

  DiskArray* const array_;
  mutable std::mutex mutex_;
  std::condition_variable load_cv_;  // signaled when a load completes
  std::vector<Frame> frames_;
  std::unordered_map<BlockId, size_t> table_;  // block -> frame
  size_t clock_hand_ = 0;
  size_t soft_pin_limit_ = 0;  // 0 = no admission control
  BufferPoolStats stats_;

  MetricsRegistry* metrics_ = nullptr;
  Counter* hits_counter_ = nullptr;    // bufferpool.hits
  Counter* misses_counter_ = nullptr;  // bufferpool.misses
  Counter* backpressure_counter_ = nullptr;  // bufferpool.backpressure

  std::atomic<FaultInjector*> injector_{nullptr};
};

}  // namespace xprs

#endif  // XPRS_STORAGE_BUFFER_POOL_H_
