#include "storage/catalog.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

Table::Table(std::string name, Schema schema, DiskArray* array)
    : file_(std::move(name), std::move(schema), array) {}

Status Table::BuildIndex(size_t column) {
  if (column >= schema().num_columns())
    return Status::InvalidArgument("index column out of range");
  if (schema().column(column).type != TypeId::kInt4)
    return Status::InvalidArgument("index column must be int4");

  auto index = std::make_unique<BTreeIndex>();
  Page page;
  for (uint32_t p = 0; p < file_.num_pages(); ++p) {
    XPRS_RETURN_IF_ERROR(file_.ReadPage(p, &page));
    for (uint16_t s = 0; s < page.num_tuples(); ++s) {
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(page.GetTuple(s, &data, &size));
      XPRS_ASSIGN_OR_RETURN(Tuple tuple,
                            Tuple::Deserialize(schema(), data, size));
      const Value& v = tuple.value(column);
      if (IsNull(v)) continue;
      index->Insert(std::get<int32_t>(v), TupleId{p, s});
    }
  }
  index_ = std::move(index);
  index_column_ = static_cast<int>(column);
  return Status::OK();
}

double TableStats::KeyRangeFraction(int32_t lo, int32_t hi) const {
  if (!has_key_bounds || hi < lo) return 0.0;

  if (!histogram_bounds.empty() &&
      histogram_counts.size() == histogram_bounds.size()) {
    // Equi-depth: bucket i covers (prev_bound, bounds[i]] and holds
    // counts[i] keys; interpolate linearly inside buckets.
    double total = 0.0;
    double covered = 0.0;
    int64_t prev = static_cast<int64_t>(min_key) - 1;
    for (size_t i = 0; i < histogram_bounds.size(); ++i) {
      int32_t bound = histogram_bounds[i];
      double width = static_cast<double>(bound) - prev;  // > 0
      double depth = static_cast<double>(histogram_counts[i]);
      total += depth;
      int64_t blo = std::max<int64_t>(lo, prev + 1);
      int64_t bhi = std::min<int64_t>(hi, bound);
      if (bhi >= blo && width > 0)
        covered += depth * (static_cast<double>(bhi) - blo + 1) / width;
      prev = bound;
    }
    return total > 0 ? std::min(covered / total, 1.0) : 0.0;
  }

  double span = static_cast<double>(max_key) - min_key + 1.0;
  double clo = std::max<double>(lo, min_key);
  double chi = std::min<double>(hi, max_key);
  if (chi < clo) return 0.0;
  return std::clamp((chi - clo + 1.0) / span, 0.0, 1.0);
}

Status Table::ComputeStats(size_t key_column, int histogram_buckets) {
  if (key_column >= schema().num_columns())
    return Status::InvalidArgument("stats column out of range");
  TableStats stats;
  stats.num_pages = file_.num_pages();
  std::vector<int32_t> keys;
  Page page;
  for (uint32_t p = 0; p < file_.num_pages(); ++p) {
    XPRS_RETURN_IF_ERROR(file_.ReadPage(p, &page));
    for (uint16_t s = 0; s < page.num_tuples(); ++s) {
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(page.GetTuple(s, &data, &size));
      XPRS_ASSIGN_OR_RETURN(Tuple tuple,
                            Tuple::Deserialize(schema(), data, size));
      ++stats.num_tuples;
      const Value& v = tuple.value(key_column);
      if (IsNull(v) || !std::holds_alternative<int32_t>(v)) continue;
      int32_t k = std::get<int32_t>(v);
      keys.push_back(k);
      if (!stats.has_key_bounds) {
        stats.min_key = stats.max_key = k;
        stats.has_key_bounds = true;
      } else {
        stats.min_key = std::min(stats.min_key, k);
        stats.max_key = std::max(stats.max_key, k);
      }
    }
  }
  stats.tuples_per_page =
      stats.num_pages ? static_cast<double>(stats.num_tuples) / stats.num_pages
                      : 0.0;

  // Equi-depth histogram over the collected keys (§2.4: "data distribution
  // information in the system catalog"). Duplicates of a bucket's upper
  // bound are absorbed into the bucket so bounds stay strictly increasing
  // and no count mass is lost.
  if (histogram_buckets > 1 && keys.size() >= 2) {
    std::sort(keys.begin(), keys.end());
    uint64_t depth = (keys.size() + histogram_buckets - 1) /
                     static_cast<uint64_t>(histogram_buckets);
    depth = std::max<uint64_t>(depth, 1);
    size_t i = 0;
    while (i < keys.size()) {
      size_t end = std::min(i + static_cast<size_t>(depth), keys.size());
      int32_t bound = keys[end - 1];
      while (end < keys.size() && keys[end] == bound) ++end;
      stats.histogram_bounds.push_back(bound);
      stats.histogram_counts.push_back(end - i);
      i = end;
    }
  }

  stats_ = stats;
  return Status::OK();
}

Catalog::Catalog(DiskArray* array) : array_(array) {
  XPRS_CHECK(array != nullptr);
}

StatusOr<Table*> Catalog::CreateTable(const std::string& name,
                                      const Schema& schema) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tables_.count(name))
    return Status::AlreadyExists("relation " + name);
  auto table = std::make_unique<Table>(name, schema, array_);
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

StatusOr<Table*> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("relation " + name);
  return it->second.get();
}

size_t Catalog::num_tables() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tables_.size();
}

}  // namespace xprs
