#include "storage/tuple.h"

#include <cstring>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt4:
      return "int4";
    case TypeId::kText:
      return "text";
  }
  return "?";
}

bool IsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

std::string ValueToString(const Value& v) {
  if (IsNull(v)) return "NULL";
  if (const int32_t* i = std::get_if<int32_t>(&v)) return std::to_string(*i);
  return "'" + std::get<std::string>(v) + "'";
}

int CompareValues(const Value& a, const Value& b) {
  const bool an = IsNull(a), bn = IsNull(b);
  if (an || bn) return static_cast<int>(bn) - static_cast<int>(an);
  XPRS_CHECK_MSG(a.index() == b.index(), "comparing values of unequal types");
  if (const int32_t* ai = std::get_if<int32_t>(&a)) {
    int32_t bi = std::get<int32_t>(b);
    return (*ai > bi) - (*ai < bi);
  }
  const std::string& as = std::get<std::string>(a);
  const std::string& bs = std::get<std::string>(b);
  int c = as.compare(bs);
  return (c > 0) - (c < 0);
}

StatusOr<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].name == name) return i;
  return Status::NotFound("column " + name);
}

Schema Schema::PaperSchema() {
  return Schema({{"a", TypeId::kInt4}, {"b", TypeId::kText}});
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols;
  cols.reserve(left.num_columns() + right.num_columns());
  for (size_t i = 0; i < left.num_columns(); ++i)
    cols.push_back(left.column(i));
  for (size_t i = 0; i < right.num_columns(); ++i)
    cols.push_back(right.column(i));
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

bool GetU32(const uint8_t* data, uint16_t size, uint16_t* pos, uint32_t* v) {
  if (*pos + 4 > size) return false;
  *v = static_cast<uint32_t>(data[*pos]) |
       static_cast<uint32_t>(data[*pos + 1]) << 8 |
       static_cast<uint32_t>(data[*pos + 2]) << 16 |
       static_cast<uint32_t>(data[*pos + 3]) << 24;
  *pos += 4;
  return true;
}

}  // namespace

Status Tuple::Serialize(const Schema& schema, std::vector<uint8_t>* out) const {
  if (values_.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("tuple has %zu values, schema %zu columns", values_.size(),
                  schema.num_columns()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    const Value& v = values_[i];
    if (IsNull(v)) {
      out->push_back(1);
      continue;
    }
    out->push_back(0);
    switch (schema.column(i).type) {
      case TypeId::kInt4: {
        const int32_t* iv = std::get_if<int32_t>(&v);
        if (iv == nullptr)
          return Status::InvalidArgument("type mismatch: expected int4");
        PutU32(out, static_cast<uint32_t>(*iv));
        break;
      }
      case TypeId::kText: {
        const std::string* sv = std::get_if<std::string>(&v);
        if (sv == nullptr)
          return Status::InvalidArgument("type mismatch: expected text");
        PutU32(out, static_cast<uint32_t>(sv->size()));
        out->insert(out->end(), sv->begin(), sv->end());
        break;
      }
    }
  }
  return Status::OK();
}

StatusOr<Tuple> Tuple::Deserialize(const Schema& schema, const uint8_t* data,
                                   uint16_t size) {
  std::vector<Value> values;
  values.reserve(schema.num_columns());
  uint16_t pos = 0;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (pos >= size) return Status::Internal("truncated tuple (null byte)");
    bool null = data[pos++] != 0;
    if (null) {
      values.emplace_back(std::monostate{});
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kInt4: {
        uint32_t raw;
        if (!GetU32(data, size, &pos, &raw))
          return Status::Internal("truncated tuple (int4)");
        values.emplace_back(static_cast<int32_t>(raw));
        break;
      }
      case TypeId::kText: {
        uint32_t len;
        if (!GetU32(data, size, &pos, &len))
          return Status::Internal("truncated tuple (text length)");
        if (pos + len > size) return Status::Internal("truncated tuple (text)");
        values.emplace_back(
            std::string(reinterpret_cast<const char*>(data + pos), len));
        pos += len;
        break;
      }
    }
  }
  return Tuple(std::move(values));
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values = left.values_;
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += ValueToString(values_[i]);
  }
  out += ")";
  return out;
}

}  // namespace xprs
