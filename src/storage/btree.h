// In-memory B+tree index on an int4 key, mapping key -> TupleId.
//
// Models the paper's unclustered index on r.a: an index scan follows leaf
// entries to qualifying tuples, paying one (random) page read per tuple —
// which is why index scans on unclustered indexes are the most IO-bound
// tasks in §3. The tree also supplies the key-distribution information the
// range-partitioning parallelism mechanism needs ("we try to find a
// balanced range partition with data distribution information ... in the
// root node of an index", §2.4).
//
// Duplicates are supported (stored as separate leaf entries). The tree is
// built once at load time and read concurrently; reads are lock-free.

#ifndef XPRS_STORAGE_BTREE_H_
#define XPRS_STORAGE_BTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/fault_injector.h"
#include "storage/page.h"
#include "util/status.h"

namespace xprs {

/// Closed key interval [lo, hi].
struct KeyRange {
  int32_t lo = 0;
  int32_t hi = 0;
  bool Contains(int32_t k) const { return k >= lo && k <= hi; }
  std::string ToString() const;
};

/// B+tree index: int32 key -> TupleId, duplicates allowed.
class BTreeIndex {
 public:
  /// `fanout` is the maximum number of keys per node (>= 4).
  explicit BTreeIndex(int fanout = 64);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Inserts an entry.
  void Insert(int32_t key, TupleId tid);

  /// Number of entries.
  size_t size() const { return size_; }

  /// Height of the tree (1 = just a leaf).
  int height() const;

  /// All TupleIds with exactly this key, in insertion order per leaf order.
  std::vector<TupleId> Lookup(int32_t key) const;

  /// Forward iterator over leaf entries with key in [lo, hi].
  class Iterator {
   public:
    bool Valid() const { return node_ != nullptr; }
    int32_t key() const;
    TupleId tid() const;
    void Next();

   private:
    friend class BTreeIndex;
    Iterator(const void* node, size_t pos, int32_t hi)
        : node_(node), pos_(pos), hi_(hi) {}
    void SkipPastEnd();
    const void* node_;
    size_t pos_;
    int32_t hi_;
  };

  /// Iterator positioned at the first entry with key >= lo, bounded by hi.
  Iterator Scan(int32_t lo, int32_t hi) const;

  /// Installs (nullptr clears) a fault hook consulted once per checked
  /// traversal (ScanChecked / LookupChecked). The tree itself is
  /// in-memory, but a disk-resident index would pay a root-to-leaf read
  /// per probe — the hook models that read so index-scan plans are
  /// fault-testable end to end. Thread-safe.
  void SetFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  /// Scan() behind the fault hook: consults the injector (one logical
  /// index read, keyed by the probe key) before positioning the iterator.
  StatusOr<Iterator> ScanChecked(int32_t lo, int32_t hi) const;

  /// Lookup() behind the fault hook.
  StatusOr<std::vector<TupleId>> LookupChecked(int32_t key) const;

  /// Splits the key domain into up to `n` ranges containing approximately
  /// equal numbers of entries (the balanced range partition of §2.4).
  /// Returns fewer ranges when there are not enough distinct keys. Empty
  /// tree yields an empty vector.
  std::vector<KeyRange> BalancedRanges(int n) const;

  /// Number of entries with key in [lo, hi] (exact, by leaf walk).
  size_t CountRange(int32_t lo, int32_t hi) const;

  /// Finds a split key so that [range.lo, key] holds roughly `want`
  /// entries of `range`, without separating duplicates. Returns nothing
  /// when the range cannot be split (too few distinct keys).
  std::optional<int32_t> SplitKeyAt(const KeyRange& range, size_t want) const;

  /// Smallest / largest key; FailedPrecondition on an empty tree.
  StatusOr<int32_t> MinKey() const;
  StatusOr<int32_t> MaxKey() const;

  /// Internal structural invariants (sortedness, balance, fill, linkage);
  /// used by tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  Status CheckReadFault(int32_t probe_key) const;
  static void DeleteSubtree(Node* node);
  Node* FindLeaf(int32_t key) const;
  void InsertIntoParent(Node* left, int32_t sep, Node* right);
  void CollectEntryCountsPerLeaf(std::vector<const Node*>* leaves) const;
  Status CheckNode(const Node* node, int depth, int leaf_depth,
                   int32_t lo_bound, bool has_lo, int32_t hi_bound,
                   bool has_hi) const;

  const int fanout_;
  Node* root_;
  size_t size_ = 0;
  std::atomic<FaultInjector*> injector_{nullptr};
};

}  // namespace xprs

#endif  // XPRS_STORAGE_BTREE_H_
