#include "storage/fault_injector.h"

#include "util/str.h"

namespace xprs {

void ScriptedFaultInjector::Arm(const Script& script, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  script_ = script;
  rng_.Seed(seed);
  reads_ = writes_ = fetches_ = 0;
}

uint64_t ScriptedFaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

uint64_t ScriptedFaultInjector::reads_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reads_;
}

uint64_t ScriptedFaultInjector::writes_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

uint64_t ScriptedFaultInjector::fetches_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fetches_;
}

Status ScriptedFaultInjector::BeforeRead(BlockId block) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++reads_;
  if (script_.fail_nth_read != 0 && reads_ == script_.fail_nth_read) {
    script_.fail_nth_read = 0;  // transient: clears after firing
    ++injected_;
    return Status::IoError(
        StrFormat("injected fault: read #%llu of block %u",
                  static_cast<unsigned long long>(reads_), block));
  }
  if (script_.read_fault_rate > 0.0 &&
      rng_.NextBool(script_.read_fault_rate)) {
    ++injected_;
    return Status::IoError(
        StrFormat("injected fault: random read failure on block %u", block));
  }
  return Status::OK();
}

Status ScriptedFaultInjector::BeforeWrite(BlockId block, size_t* bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++writes_;
  if (script_.short_nth_write != 0 && writes_ == script_.short_nth_write) {
    script_.short_nth_write = 0;  // transient
    ++injected_;
    *bytes = script_.short_write_bytes;
    return Status::IoError(
        StrFormat("injected fault: short write (%zu bytes) of block %u",
                  *bytes, block));
  }
  if (script_.write_fault_rate > 0.0 &&
      rng_.NextBool(script_.write_fault_rate)) {
    ++injected_;
    *bytes = script_.short_write_bytes;
    return Status::IoError(
        StrFormat("injected fault: random short write (%zu bytes) of "
                  "block %u",
                  *bytes, block));
  }
  return Status::OK();
}

Status ScriptedFaultInjector::BeforeFetch(BlockId block) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++fetches_;
  if (script_.fail_nth_fetch != 0 && fetches_ == script_.fail_nth_fetch) {
    script_.fail_nth_fetch = 0;  // transient
    ++injected_;
    return Status::IoError(
        StrFormat("injected fault: fetch #%llu of block %u",
                  static_cast<unsigned long long>(fetches_), block));
  }
  return Status::OK();
}

}  // namespace xprs
