#include "storage/btree.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

std::string KeyRange::ToString() const {
  return StrFormat("[%d, %d]", lo, hi);
}

struct BTreeIndex::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<int32_t> keys;
  // Internal nodes: children.size() == keys.size() + 1; child i holds keys
  // in [keys[i-1], keys[i]) (left-inclusive).
  std::vector<Node*> children;
  // Leaves: tids parallel to keys.
  std::vector<TupleId> tids;
  Node* next = nullptr;  // leaf chain
};

BTreeIndex::BTreeIndex(int fanout) : fanout_(fanout), root_(new Node()) {
  XPRS_CHECK_GE(fanout, 4);
}

void BTreeIndex::DeleteSubtree(Node* node) {
  if (node == nullptr) return;
  if (!node->leaf)
    for (auto* c : node->children) DeleteSubtree(c);
  delete node;
}

BTreeIndex::~BTreeIndex() { DeleteSubtree(root_); }

BTreeIndex::Node* BTreeIndex::FindLeaf(int32_t key) const {
  Node* node = root_;
  while (!node->leaf) {
    size_t idx = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
                 node->keys.begin();
    node = node->children[idx];
  }
  return node;
}

void BTreeIndex::Insert(int32_t key, TupleId tid) {
  Node* leaf = FindLeaf(key);
  size_t pos = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key) -
               leaf->keys.begin();
  leaf->keys.insert(leaf->keys.begin() + pos, key);
  leaf->tids.insert(leaf->tids.begin() + pos, tid);
  ++size_;

  if (leaf->keys.size() <= static_cast<size_t>(fanout_)) return;

  // Split the leaf, keeping duplicates of one key together so a scan never
  // has to look left of FindLeaf's result. If the whole node is one key,
  // let it grow (documented pathological case).
  size_t mid = leaf->keys.size() / 2;
  size_t probe = mid;
  while (probe < leaf->keys.size() && leaf->keys[probe] == leaf->keys[probe - 1])
    ++probe;
  if (probe >= leaf->keys.size()) {
    probe = mid;
    while (probe > 1 && leaf->keys[probe] == leaf->keys[probe - 1]) --probe;
    if (probe <= 1 && leaf->keys[probe] == leaf->keys[probe - 1]) return;
  }
  mid = probe;

  Node* right = new Node();
  right->leaf = true;
  right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
  right->tids.assign(leaf->tids.begin() + mid, leaf->tids.end());
  leaf->keys.resize(mid);
  leaf->tids.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  InsertIntoParent(leaf, right->keys.front(), right);
}

void BTreeIndex::InsertIntoParent(Node* left, int32_t sep, Node* right) {
  if (left == root_) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys = {sep};
    new_root->children = {left, right};
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  Node* parent = left->parent;
  size_t idx = std::upper_bound(parent->keys.begin(), parent->keys.end(), sep) -
               parent->keys.begin();
  parent->keys.insert(parent->keys.begin() + idx, sep);
  parent->children.insert(parent->children.begin() + idx + 1, right);
  right->parent = parent;

  if (parent->keys.size() <= static_cast<size_t>(fanout_)) return;

  // Split the internal node: the middle key moves up.
  size_t mid = parent->keys.size() / 2;
  int32_t up = parent->keys[mid];
  Node* sibling = new Node();
  sibling->leaf = false;
  sibling->keys.assign(parent->keys.begin() + mid + 1, parent->keys.end());
  sibling->children.assign(parent->children.begin() + mid + 1,
                           parent->children.end());
  for (Node* c : sibling->children) c->parent = sibling;
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  InsertIntoParent(parent, up, sibling);
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* node = root_;
  while (!node->leaf) {
    node = node->children.front();
    ++h;
  }
  return h;
}

std::vector<TupleId> BTreeIndex::Lookup(int32_t key) const {
  std::vector<TupleId> out;
  for (Iterator it = Scan(key, key); it.Valid(); it.Next())
    out.push_back(it.tid());
  return out;
}

int32_t BTreeIndex::Iterator::key() const {
  return static_cast<const Node*>(node_)->keys[pos_];
}

TupleId BTreeIndex::Iterator::tid() const {
  return static_cast<const Node*>(node_)->tids[pos_];
}

void BTreeIndex::Iterator::SkipPastEnd() {
  const Node* n = static_cast<const Node*>(node_);
  while (n != nullptr && pos_ >= n->keys.size()) {
    n = n->next;
    pos_ = 0;
  }
  if (n != nullptr && n->keys[pos_] > hi_) n = nullptr;
  node_ = n;
}

void BTreeIndex::Iterator::Next() {
  XPRS_CHECK(Valid());
  ++pos_;
  SkipPastEnd();
}

BTreeIndex::Iterator BTreeIndex::Scan(int32_t lo, int32_t hi) const {
  Node* leaf = FindLeaf(lo);
  size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
               leaf->keys.begin();
  Iterator it(leaf, pos, hi);
  it.SkipPastEnd();
  return it;
}

Status BTreeIndex::CheckReadFault(int32_t probe_key) const {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector == nullptr) return Status::OK();
  // One logical root-to-leaf read per probe; key the "block" on the probe
  // key so scripted rate faults see distinct reads.
  return injector->BeforeRead(static_cast<BlockId>(
      static_cast<uint32_t>(probe_key)));
}

StatusOr<BTreeIndex::Iterator> BTreeIndex::ScanChecked(int32_t lo,
                                                       int32_t hi) const {
  XPRS_RETURN_IF_ERROR(CheckReadFault(lo));
  return Scan(lo, hi);
}

StatusOr<std::vector<TupleId>> BTreeIndex::LookupChecked(int32_t key) const {
  XPRS_RETURN_IF_ERROR(CheckReadFault(key));
  return Lookup(key);
}

size_t BTreeIndex::CountRange(int32_t lo, int32_t hi) const {
  size_t count = 0;
  for (Iterator it = Scan(lo, hi); it.Valid(); it.Next()) ++count;
  return count;
}

std::optional<int32_t> BTreeIndex::SplitKeyAt(const KeyRange& range,
                                              size_t want) const {
  if (want == 0) return std::nullopt;
  size_t seen = 0;  // entries with key <= prev
  int32_t prev = 0;
  bool have_prev = false;
  for (Iterator it = Scan(range.lo, range.hi); it.Valid(); it.Next()) {
    int32_t k = it.key();
    // When a new distinct key begins, `prev` cleanly closes a prefix of
    // `seen` entries; split there once the prefix is big enough.
    if (have_prev && k != prev && seen >= want) return prev;
    ++seen;
    prev = k;
    have_prev = true;
  }
  return std::nullopt;  // not enough entries / distinct keys to split
}

StatusOr<int32_t> BTreeIndex::MinKey() const {
  if (size_ == 0) return Status::FailedPrecondition("empty index");
  const Node* node = root_;
  while (!node->leaf) node = node->children.front();
  // Leftmost leaf can be empty only for an empty tree.
  return node->keys.front();
}

StatusOr<int32_t> BTreeIndex::MaxKey() const {
  if (size_ == 0) return Status::FailedPrecondition("empty index");
  const Node* node = root_;
  while (!node->leaf) node = node->children.back();
  return node->keys.back();
}

std::vector<KeyRange> BTreeIndex::BalancedRanges(int n) const {
  std::vector<KeyRange> ranges;
  if (size_ == 0 || n <= 0) return ranges;
  const size_t target = (size_ + n - 1) / n;

  int32_t min_key = MinKey().value();
  int32_t max_key = MaxKey().value();

  int32_t range_lo = min_key;
  size_t in_range = 0;
  Iterator it = Scan(min_key, max_key);
  int32_t prev_key = min_key;
  while (it.Valid()) {
    int32_t k = it.key();
    if (in_range >= target && k != prev_key) {
      ranges.push_back({range_lo, prev_key});
      range_lo = k;
      in_range = 0;
    }
    ++in_range;
    prev_key = k;
    it.Next();
  }
  ranges.push_back({range_lo, max_key});
  return ranges;
}

Status BTreeIndex::CheckNode(const Node* node, int depth, int leaf_depth,
                             int32_t lo_bound, bool has_lo, int32_t hi_bound,
                             bool has_hi) const {
  if (node->leaf) {
    if (depth != leaf_depth)
      return Status::Internal("leaves at different depths");
    if (node->keys.size() != node->tids.size())
      return Status::Internal("leaf keys/tids size mismatch");
    if (!std::is_sorted(node->keys.begin(), node->keys.end()))
      return Status::Internal("leaf keys not sorted");
  } else {
    if (node->children.size() != node->keys.size() + 1)
      return Status::Internal("internal child count mismatch");
    for (size_t i = 1; i < node->keys.size(); ++i)
      if (node->keys[i - 1] >= node->keys[i])
        return Status::Internal("internal keys not strictly increasing");
  }
  for (int32_t k : node->keys) {
    if (has_lo && k < lo_bound) return Status::Internal("key below bound");
    if (has_hi && k >= hi_bound) return Status::Internal("key above bound");
  }
  if (!node->leaf) {
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (node->children[i]->parent != node)
        return Status::Internal("broken parent pointer");
      int32_t lo = (i == 0) ? lo_bound : node->keys[i - 1];
      bool hl = (i == 0) ? has_lo : true;
      int32_t hi = (i == node->keys.size()) ? hi_bound : node->keys[i];
      bool hh = (i == node->keys.size()) ? has_hi : true;
      XPRS_RETURN_IF_ERROR(
          CheckNode(node->children[i], depth + 1, leaf_depth, lo, hl, hi, hh));
    }
  }
  return Status::OK();
}

Status BTreeIndex::CheckInvariants() const {
  int leaf_depth = height();
  XPRS_RETURN_IF_ERROR(
      CheckNode(root_, 1, leaf_depth, 0, false, 0, false));

  // Leaf chain covers exactly size_ entries in non-decreasing key order.
  const Node* node = root_;
  while (!node->leaf) node = node->children.front();
  size_t count = 0;
  bool first = true;
  int32_t prev = 0;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next) {
    for (int32_t k : leaf->keys) {
      if (!first && k < prev)
        return Status::Internal("leaf chain out of order");
      prev = k;
      first = false;
      ++count;
    }
  }
  if (count != size_)
    return Status::Internal(
        StrFormat("leaf chain has %zu entries, expected %zu", count, size_));
  return Status::OK();
}

}  // namespace xprs
