#include "storage/buffer_pool.h"

#include "util/check.h"
#include "util/str.h"

namespace xprs {

PageHandle::PageHandle(BufferPool* pool, size_t frame, const Page* page)
    : pool_(pool), frame_(frame), page_(page) {}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), page_(other.page_) {
  other.pool_ = nullptr;
  other.page_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    page_ = nullptr;
  }
}

BufferPool::BufferPool(DiskArray* array, size_t num_frames) : array_(array) {
  XPRS_CHECK(array != nullptr);
  XPRS_CHECK_GE(num_frames, 1u);
  frames_.resize(num_frames);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  XPRS_CHECK_GT(frames_[frame].pins, 0);
  --frames_[frame].pins;
}

StatusOr<size_t> BufferPool::FindOrClaimLocked(
    BlockId block, bool* needs_load, std::unique_lock<std::mutex>* lock) {
  for (;;) {
    auto it = table_.find(block);
    if (it != table_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        // Another thread is reading this block; wait for it.
        load_cv_.wait(*lock);
        continue;  // re-lookup: the load may have failed and been evicted
      }
      ++f.pins;
      f.ref_bit = true;
      ++stats_.hits;
      if (hits_counter_ != nullptr) hits_counter_->Increment();
      *needs_load = false;
      return it->second;
    }

    // Miss under admission control: refuse to grow the pinned set past the
    // soft limit. The caller sees a retryable ResourceExhausted and backs
    // off (FetchWithBackpressure) or degrades to the spill path.
    if (soft_pin_limit_ > 0 && PinnedLocked() >= soft_pin_limit_) {
      if (backpressure_counter_ != nullptr)
        backpressure_counter_->Increment();
      return Status::ResourceExhausted(
          "buffer pool pin limit reached (backpressure)");
    }

    // Miss: claim a victim frame with the clock sweep (two passes: the
    // first clears reference bits, the second takes the first unpinned
    // frame).
    size_t scanned = 0;
    const size_t limit = 2 * frames_.size();
    size_t victim = frames_.size();
    while (scanned < limit) {
      Frame& f = frames_[clock_hand_];
      size_t idx = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % frames_.size();
      ++scanned;
      if (f.pins > 0 || f.loading) continue;
      if (f.occupied && f.ref_bit) {
        f.ref_bit = false;
        continue;
      }
      victim = idx;
      break;
    }
    if (victim == frames_.size()) {
      return Status::ResourceExhausted("all buffer frames pinned");
    }

    Frame& f = frames_[victim];
    if (f.occupied) table_.erase(f.block);
    f.block = block;
    f.occupied = true;
    f.loading = true;
    f.ref_bit = true;
    f.pins = 1;
    table_[block] = victim;
    ++stats_.misses;
    if (misses_counter_ != nullptr) misses_counter_->Increment();
    *needs_load = true;
    return victim;
  }
}

StatusOr<PageHandle> BufferPool::Fetch(BlockId block) {
  if (FaultInjector* inj = injector_.load(std::memory_order_acquire)) {
    XPRS_RETURN_IF_ERROR(inj->BeforeFetch(block));
  }
  bool needs_load = false;
  size_t frame;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto claimed = FindOrClaimLocked(block, &needs_load, &lock);
    if (!claimed.ok()) return claimed.status();
    frame = claimed.value();
  }

  if (needs_load) {
    // Disk read happens outside the pool latch so misses on different
    // disks proceed in parallel.
    Status st = array_->ReadBlock(block, &frames_[frame].page);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      frames_[frame].loading = false;
      if (!st.ok()) {
        // Roll the claim back so waiters retry and the frame is reusable.
        table_.erase(block);
        frames_[frame].occupied = false;
        frames_[frame].pins = 0;
      }
    }
    load_cv_.notify_all();
    if (!st.ok()) return st;
  }
  return PageHandle(this, frame, &frames_[frame].page);
}

void BufferPool::AttachMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
  if (metrics != nullptr) {
    hits_counter_ = metrics->counter("bufferpool.hits");
    misses_counter_ = metrics->counter("bufferpool.misses");
    backpressure_counter_ = metrics->counter("bufferpool.backpressure");
  } else {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    backpressure_counter_ = nullptr;
  }
}

void BufferPool::PublishMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (metrics_ == nullptr) return;
  metrics_->gauge("bufferpool.hit_rate")->Set(stats_.hit_rate());
  metrics_->gauge("bufferpool.frames")
      ->Set(static_cast<double>(frames_.size()));
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BufferPool::SetFaultInjector(FaultInjector* injector) {
  injector_.store(injector, std::memory_order_release);
}

void BufferPool::SetSoftPinLimit(size_t max_pinned_frames) {
  std::lock_guard<std::mutex> lock(mutex_);
  soft_pin_limit_ = max_pinned_frames;
}

size_t BufferPool::PinnedLocked() const {
  size_t pinned = 0;
  for (const Frame& f : frames_)
    if (f.pins > 0) ++pinned;
  return pinned;
}

size_t BufferPool::PinnedFrames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return PinnedLocked();
}

uint64_t BufferPool::TotalPins() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const Frame& f : frames_) total += static_cast<uint64_t>(f.pins);
  return total;
}

std::string BufferPool::ToString() const {
  BufferPoolStats s = stats();
  return StrFormat("BufferPool{%zu frames, hits=%llu misses=%llu (%.1f%%)}",
                   frames_.size(), static_cast<unsigned long long>(s.hits),
                   static_cast<unsigned long long>(s.misses),
                   s.hit_rate() * 100.0);
}

}  // namespace xprs
