// ParallelMaster: the XPRS master backend (Figure 2).
//
// Takes a batch of optimized queries, decomposes each plan into fragments,
// estimates their TaskProfiles with the cost model, and drives the
// adaptive scheduler against *real* slave-backend threads: StartTask spawns
// a ParallelFragmentRun at the commanded degree of parallelism,
// AdjustParallelism triggers the §2.4 shared-memory adjustment protocol on
// the running fragment, and fragment completions feed back into the
// scheduler, which re-pairs and re-balances.
//
// On this container (a single hardware core) the wall-clock numbers carry
// no performance meaning — the fluid simulator is the performance
// substrate (DESIGN.md) — but the full control loop, including dynamic
// adjustment under concurrency, is exercised for real.

#ifndef XPRS_PARALLEL_MASTER_H_
#define XPRS_PARALLEL_MASTER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "opt/cost_model.h"
#include "parallel/fragment_run.h"
#include "sched/scheduler.h"

namespace xprs {

/// One query handed to the master: a sequential plan to parallelize.
struct QueryJob {
  const PlanNode* plan = nullptr;
  int64_t query_id = 0;
};

/// Outcome of a master run.
struct MasterRunResult {
  double elapsed_seconds = 0.0;
  /// Final output tuples per query.
  std::map<int64_t, std::vector<Tuple>> query_results;
  /// Dynamic adjustments issued by the scheduler.
  size_t num_adjustments = 0;
  /// Wall-clock finish time (seconds since run start) per task.
  std::map<TaskId, double> task_finish_times;
  /// The scheduler's full decision log (starts and adjustments, in order);
  /// the differential harness validates it with ValidateSchedDecisions.
  std::vector<SchedDecision> decisions;
  /// Resilience ladder activity: fragment re-dispatches after transient
  /// faults, parallelism halvings, and serial-executor fallbacks.
  size_t fragment_retries = 0;
  size_t parallelism_degrades = 0;
  size_t serial_fallbacks = 0;
};

/// Master backend options.
struct MasterOptions {
  SchedulerOptions sched;
  ExecContext ctx;
  /// Upper bound on slave slots per fragment run.
  int max_slots = 16;
  /// Trace/metrics publishing for the run (fragment spans, adjustment
  /// events); also handed to the internal scheduler. Optional.
  Observability obs;
  /// Retry budget per rung of the fragment degradation ladder: a
  /// ParallelFragmentRun that fails with a retryable status is re-run
  /// (same fragment, same granule protocol) up to retry.max_attempts
  /// times with exponential backoff, then the ladder halves the
  /// parallelism (§2.4 adjustment path) and retries again, down to 1.
  RetryPolicy retry;
  /// Final rung: after the ladder bottoms out at parallelism 1, re-run
  /// the fragment once with the trusted serial executor on the master
  /// thread. Disable to surface the last failure instead.
  bool serial_fallback = true;
};

/// The master backend. Not reusable across Run() calls concurrently.
class ParallelMaster : public ExecutionEnv {
 public:
  ParallelMaster(const MachineConfig& machine, const CostModel* model,
                 const MasterOptions& options);

  /// Runs all queries to completion under the configured policy.
  StatusOr<MasterRunResult> Run(const std::vector<QueryJob>& queries);

  // --- ExecutionEnv (invoked by the scheduler on the master thread) ---
  double Now() const override;
  void StartTask(TaskId id, double parallelism) override;
  void AdjustParallelism(TaskId id, double parallelism) override;
  double RemainingSeqTime(TaskId id) const override;

 private:
  struct TaskState {
    int query_index = -1;
    int frag_id = -1;
    TaskProfile profile;
    std::unique_ptr<ParallelFragmentRun> run;
    TempResult result;
    bool completed = false;
    /// Wait() was called on `run` (its threads are joined and its result
    /// consumed); guards against double-draining.
    bool waited = false;
    /// Commanded parallelism of the current attempt; halved by the
    /// degradation ladder.
    int parallelism = 1;
    /// Retryable failures at the current rung.
    int failures = 0;
  };
  struct QueryState {
    QueryJob job;
    FragmentGraph graph;
    std::vector<TaskId> task_ids;  // per fragment id
  };

  /// Task ids are query_index * kTaskIdStride + fragment id.
  static constexpr TaskId kTaskIdStride = 1000;

  /// Materialized inputs from the task's completed dependency fragments.
  std::map<int, const TempResult*> GatherInputs(const TaskState& task);
  /// (Re-)creates and starts the task's ParallelFragmentRun at
  /// `parallelism`. `notify` wires the completion into the done queue;
  /// the recovery path waits synchronously instead.
  void LaunchRun(TaskId id, int parallelism, bool notify);
  /// Runs the degradation ladder for a task whose run failed with
  /// `failure`: bounded retries at the current parallelism, halve and
  /// retry, then one serial-executor pass. Blocks the master thread.
  StatusOr<TempResult> RecoverTask(TaskId id, Status failure,
                                   MasterRunResult* result);
  /// Joins every started-but-unconsumed run (cancellation/failure exit:
  /// slaves observe the token or finish; pins drain before Run returns).
  void DrainOutstanding();

  MachineConfig machine_;
  const CostModel* const model_;
  MasterOptions options_;

  std::vector<QueryState> queries_;
  std::map<TaskId, TaskState> tasks_;
  std::chrono::steady_clock::time_point start_;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::deque<TaskId> done_queue_;
};

}  // namespace xprs

#endif  // XPRS_PARALLEL_MASTER_H_
