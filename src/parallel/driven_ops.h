// Driving source operators bound to a shared adjustable partition.
//
// Each slave backend of a parallel fragment runs a copy of the fragment's
// pipeline whose *driving* source pulls work granules (pages, key chunks,
// or materialized-batch indexes) from the shared partition state instead of
// owning a static slice. Dynamic parallelism adjustment then only touches
// the shared state; the pipelines never notice.

#ifndef XPRS_PARALLEL_DRIVEN_OPS_H_
#define XPRS_PARALLEL_DRIVEN_OPS_H_

#include <memory>
#include <optional>

#include "exec/operators.h"
#include "parallel/page_partition.h"
#include "parallel/range_partition.h"

namespace xprs {

/// Page-partition driven sequential scan (one slave of the scan).
class DrivenSeqScanOp : public Operator {
 public:
  DrivenSeqScanOp(Table* table, Predicate predicate, ExecContext ctx,
                  AdjustablePageScan* shared, int slot);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  const Schema& schema() const override { return table_->schema(); }

 private:
  Table* const table_;
  const Predicate predicate_;
  const ExecContext ctx_;
  AdjustablePageScan* const shared_;
  const int slot_;

  bool page_loaded_ = false;
  Page direct_page_;
  PageHandle pooled_page_;
  const Page* current_ = nullptr;
  uint16_t next_slot_ = 0;
};

/// Range-partition driven index scan (one slave of the scan).
class DrivenIndexScanOp : public Operator {
 public:
  DrivenIndexScanOp(Table* table, Predicate predicate, ExecContext ctx,
                    AdjustableRangeScan* shared, int slot);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  const Schema& schema() const override { return table_->schema(); }

 private:
  Table* const table_;
  const Predicate predicate_;
  const ExecContext ctx_;
  AdjustableRangeScan* const shared_;
  const int slot_;

  std::optional<BTreeIndex::Iterator> it_;
};

/// Page-partition driven source over a materialized intermediate: "pages"
/// are fixed-size tuple batches of the TempResult.
class DrivenTempSourceOp : public Operator {
 public:
  static constexpr size_t kBatchTuples = 64;

  /// Number of virtual pages a TempResult of `num_tuples` spans.
  static uint32_t NumBatches(size_t num_tuples);

  DrivenTempSourceOp(const TempResult* temp, AdjustablePageScan* shared,
                     int slot);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  const Schema& schema() const override { return temp_->schema; }

 private:
  const TempResult* const temp_;
  AdjustablePageScan* const shared_;
  const int slot_;

  size_t pos_ = 0;
  size_t batch_end_ = 0;
  bool have_batch_ = false;
};

}  // namespace xprs

#endif  // XPRS_PARALLEL_DRIVEN_OPS_H_
