#include "parallel/master.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logging.h"
#include "util/str.h"

namespace xprs {

namespace {

// Appends one entry to the profile's §2.4 parallelism timeline, if the
// query being profiled owns this fragment.
void RecordTimeline(QueryProfile* profile, const PlanNode* frag_root,
                    AdjustmentEvent::Kind kind, double time, int frag_id,
                    TaskId task, double parallelism) {
  if (profile == nullptr || !profile->Covers(frag_root)) return;
  AdjustmentEvent event;
  event.kind = kind;
  event.time_seconds = time;
  event.frag_id = frag_id;
  event.task = task;
  event.parallelism = parallelism;
  profile->RecordEvent(event);
}

}  // namespace

ParallelMaster::ParallelMaster(const MachineConfig& machine,
                               const CostModel* model,
                               const MasterOptions& options)
    : machine_(machine), model_(model), options_(options) {
  XPRS_CHECK(model != nullptr);
}

double ParallelMaster::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void ParallelMaster::StartTask(TaskId id, double parallelism) {
  TaskState& task = tasks_.at(id);
  XPRS_CHECK(task.run == nullptr);
  QueryState& query = queries_[task.query_index];

  // Wire the materialized inputs from completed dependency fragments.
  std::map<int, const TempResult*> inputs;
  for (int dep : query.graph.fragment(task.frag_id).deps) {
    TaskState& dep_task = tasks_.at(query.task_ids[dep]);
    XPRS_CHECK_MSG(dep_task.completed, "scheduler started task before dep");
    inputs[dep] = &dep_task.result;
  }

  ParallelFragmentRun::Options run_options;
  run_options.initial_parallelism = std::max(
      1, static_cast<int>(std::llround(parallelism)));
  run_options.max_slots =
      std::max(options_.max_slots, run_options.initial_parallelism);
  run_options.ctx = options_.ctx;

  task.run = std::make_unique<ParallelFragmentRun>(
      &query.graph, task.frag_id, std::move(inputs), run_options);
  if (options_.obs.tracing()) {
    options_.obs.Emit(
        {StrFormat("frag q%lld/f%d", static_cast<long long>(query.job.query_id),
                   task.frag_id),
         "parallel", 'B', Now(), 0.0, id,
         {{"parallelism", run_options.initial_parallelism},
          {"seq_time_est", task.profile.seq_time}}});
  }
  if (options_.obs.metrics != nullptr)
    options_.obs.metrics->counter("parallel.fragments_started")->Increment();
  RecordTimeline(options_.ctx.profile,
                 query.graph.fragment(task.frag_id).root,
                 AdjustmentEvent::Kind::kStart, Now(), task.frag_id, id,
                 run_options.initial_parallelism);
  task.run->set_on_finish([this, id] {
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_queue_.push_back(id);
    }
    done_cv_.notify_all();
  });
  XPRS_CHECK_OK(task.run->Start());
}

void ParallelMaster::AdjustParallelism(TaskId id, double parallelism) {
  TaskState& task = tasks_.at(id);
  XPRS_CHECK(task.run != nullptr);
  const int target = std::max(1, static_cast<int>(std::llround(parallelism)));
  task.run->Adjust(target);
  if (options_.obs.tracing()) {
    options_.obs.Emit({"adjust", "parallel", 'i', Now(), 0.0, id,
                       {{"parallelism", target}}});
  }
  if (options_.obs.metrics != nullptr)
    options_.obs.metrics->counter("parallel.adjustments")->Increment();
  RecordTimeline(options_.ctx.profile,
                 queries_[task.query_index].graph.fragment(task.frag_id).root,
                 AdjustmentEvent::Kind::kAdjust, Now(), task.frag_id, id,
                 target);
}

double ParallelMaster::RemainingSeqTime(TaskId id) const {
  const TaskState& task = tasks_.at(id);
  if (task.run == nullptr) return task.profile.seq_time;
  double left = 1.0 - task.run->Progress();
  return std::max(0.0, task.profile.seq_time * left);
}

StatusOr<MasterRunResult> ParallelMaster::Run(
    const std::vector<QueryJob>& queries) {
  queries_.clear();
  tasks_.clear();
  done_queue_.clear();

  // Decompose and profile every query.
  std::vector<TaskProfile> all_profiles;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    XPRS_CHECK(queries[qi].plan != nullptr);
    QueryState qs;
    qs.job = queries[qi];
    qs.graph = FragmentGraph::Decompose(*queries[qi].plan);
    TaskId base = static_cast<TaskId>(qi) * kTaskIdStride;
    XPRS_CHECK_LT(qs.graph.fragments().size(),
                  static_cast<size_t>(kTaskIdStride));
    std::vector<TaskProfile> profiles =
        model_->FragmentProfiles(qs.graph, queries[qi].query_id, base);
    for (const Fragment& frag : qs.graph.fragments()) {
      TaskId id = base + frag.id;
      qs.task_ids.push_back(id);
      TaskState ts;
      ts.query_index = static_cast<int>(qi);
      ts.frag_id = frag.id;
      ts.profile = profiles[frag.id];
      tasks_[id] = std::move(ts);
    }
    all_profiles.insert(all_profiles.end(), profiles.begin(), profiles.end());
    queries_.push_back(std::move(qs));
  }

  AdaptiveScheduler scheduler(machine_, options_.sched);
  scheduler.Bind(this);
  scheduler.SetObservability(options_.obs);
  start_ = std::chrono::steady_clock::now();
  scheduler.SubmitBatch(all_profiles);

  MasterRunResult result;
  size_t completed = 0;
  while (completed < tasks_.size()) {
    TaskId id;
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [this] { return !done_queue_.empty(); });
      id = done_queue_.front();
      done_queue_.pop_front();
    }
    TaskState& task = tasks_.at(id);
    auto temp = task.run->Wait();
    if (!temp.ok()) return temp.status();
    task.result = std::move(temp).value();
    task.completed = true;
    result.task_finish_times[id] = Now();
    if (options_.obs.tracing()) {
      const QueryState& qs = queries_[task.query_index];
      options_.obs.Emit(
          {StrFormat("frag q%lld/f%d",
                     static_cast<long long>(qs.job.query_id), task.frag_id),
           "parallel", 'E', Now(), 0.0, id,
           {{"tuples", static_cast<int64_t>(task.result.tuples.size())}}});
    }
    if (options_.obs.metrics != nullptr)
      options_.obs.metrics->counter("parallel.fragments_completed")
          ->Increment();
    RecordTimeline(options_.ctx.profile,
                   queries_[task.query_index].graph.fragment(task.frag_id).root,
                   AdjustmentEvent::Kind::kFinish, Now(), task.frag_id, id,
                   task.run->parallelism());
    ++completed;
    // The scheduler may immediately start or adjust other tasks here.
    scheduler.OnTaskFinished(id);
  }
  XPRS_CHECK(scheduler.Idle());

  result.elapsed_seconds = Now();
  result.num_adjustments = scheduler.num_adjustments();
  result.decisions = scheduler.decisions();
  for (auto& qs : queries_) {
    TaskId root = qs.task_ids[qs.graph.root_fragment()];
    result.query_results[qs.job.query_id] =
        std::move(tasks_.at(root).result.tuples);
  }
  return result;
}

}  // namespace xprs
