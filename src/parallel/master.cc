#include "parallel/master.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logging.h"
#include "util/str.h"

namespace xprs {

namespace {

// Appends one entry to the profile's §2.4 parallelism timeline, if the
// query being profiled owns this fragment.
void RecordTimeline(QueryProfile* profile, const PlanNode* frag_root,
                    AdjustmentEvent::Kind kind, double time, int frag_id,
                    TaskId task, double parallelism) {
  if (profile == nullptr || !profile->Covers(frag_root)) return;
  AdjustmentEvent event;
  event.kind = kind;
  event.time_seconds = time;
  event.frag_id = frag_id;
  event.task = task;
  event.parallelism = parallelism;
  profile->RecordEvent(event);
}

}  // namespace

ParallelMaster::ParallelMaster(const MachineConfig& machine,
                               const CostModel* model,
                               const MasterOptions& options)
    : machine_(machine), model_(model), options_(options) {
  XPRS_CHECK(model != nullptr);
}

double ParallelMaster::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::map<int, const TempResult*> ParallelMaster::GatherInputs(
    const TaskState& task) {
  QueryState& query = queries_[task.query_index];
  std::map<int, const TempResult*> inputs;
  for (int dep : query.graph.fragment(task.frag_id).deps) {
    TaskState& dep_task = tasks_.at(query.task_ids[dep]);
    XPRS_CHECK_MSG(dep_task.completed, "scheduler started task before dep");
    inputs[dep] = &dep_task.result;
  }
  return inputs;
}

void ParallelMaster::LaunchRun(TaskId id, int parallelism, bool notify) {
  TaskState& task = tasks_.at(id);
  QueryState& query = queries_[task.query_index];

  ParallelFragmentRun::Options run_options;
  run_options.initial_parallelism = parallelism;
  run_options.max_slots = std::max(options_.max_slots, parallelism);
  run_options.ctx = options_.ctx;

  task.run = std::make_unique<ParallelFragmentRun>(
      &query.graph, task.frag_id, GatherInputs(task), run_options);
  task.waited = false;
  if (notify) {
    task.run->set_on_finish([this, id] {
      {
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_queue_.push_back(id);
      }
      done_cv_.notify_all();
    });
  }
  XPRS_CHECK_OK(task.run->Start());
}

void ParallelMaster::StartTask(TaskId id, double parallelism) {
  TaskState& task = tasks_.at(id);
  XPRS_CHECK(task.run == nullptr);
  QueryState& query = queries_[task.query_index];

  task.parallelism = std::max(1, static_cast<int>(std::llround(parallelism)));
  task.failures = 0;
  if (options_.obs.tracing()) {
    options_.obs.Emit(
        {StrFormat("frag q%lld/f%d", static_cast<long long>(query.job.query_id),
                   task.frag_id),
         "parallel", 'B', Now(), 0.0, id,
         {{"parallelism", task.parallelism},
          {"seq_time_est", task.profile.seq_time}}});
  }
  if (options_.obs.metrics != nullptr)
    options_.obs.metrics->counter("parallel.fragments_started")->Increment();
  RecordTimeline(options_.ctx.profile,
                 query.graph.fragment(task.frag_id).root,
                 AdjustmentEvent::Kind::kStart, Now(), task.frag_id, id,
                 task.parallelism);
  LaunchRun(id, task.parallelism, /*notify=*/true);
}

void ParallelMaster::AdjustParallelism(TaskId id, double parallelism) {
  TaskState& task = tasks_.at(id);
  XPRS_CHECK(task.run != nullptr);
  const int target = std::max(1, static_cast<int>(std::llround(parallelism)));
  task.parallelism = target;  // retries re-dispatch at the adjusted degree
  task.run->Adjust(target);
  if (options_.obs.tracing()) {
    options_.obs.Emit({"adjust", "parallel", 'i', Now(), 0.0, id,
                       {{"parallelism", target}}});
  }
  if (options_.obs.metrics != nullptr)
    options_.obs.metrics->counter("parallel.adjustments")->Increment();
  RecordTimeline(options_.ctx.profile,
                 queries_[task.query_index].graph.fragment(task.frag_id).root,
                 AdjustmentEvent::Kind::kAdjust, Now(), task.frag_id, id,
                 target);
}

double ParallelMaster::RemainingSeqTime(TaskId id) const {
  const TaskState& task = tasks_.at(id);
  if (task.run == nullptr) return task.profile.seq_time;
  double left = 1.0 - task.run->Progress();
  return std::max(0.0, task.profile.seq_time * left);
}

StatusOr<MasterRunResult> ParallelMaster::Run(
    const std::vector<QueryJob>& queries) {
  queries_.clear();
  tasks_.clear();
  done_queue_.clear();

  // Decompose and profile every query.
  std::vector<TaskProfile> all_profiles;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    XPRS_CHECK(queries[qi].plan != nullptr);
    QueryState qs;
    qs.job = queries[qi];
    qs.graph = FragmentGraph::Decompose(*queries[qi].plan);
    TaskId base = static_cast<TaskId>(qi) * kTaskIdStride;
    XPRS_CHECK_LT(qs.graph.fragments().size(),
                  static_cast<size_t>(kTaskIdStride));
    std::vector<TaskProfile> profiles =
        model_->FragmentProfiles(qs.graph, queries[qi].query_id, base);
    for (const Fragment& frag : qs.graph.fragments()) {
      TaskId id = base + frag.id;
      qs.task_ids.push_back(id);
      TaskState ts;
      ts.query_index = static_cast<int>(qi);
      ts.frag_id = frag.id;
      ts.profile = profiles[frag.id];
      tasks_[id] = std::move(ts);
    }
    all_profiles.insert(all_profiles.end(), profiles.begin(), profiles.end());
    queries_.push_back(std::move(qs));
  }

  AdaptiveScheduler scheduler(machine_, options_.sched);
  scheduler.Bind(this);
  scheduler.SetObservability(options_.obs);
  start_ = std::chrono::steady_clock::now();
  scheduler.SubmitBatch(all_profiles);

  MasterRunResult result;
  size_t completed = 0;
  CancellationToken* const cancel = options_.ctx.cancel;
  while (completed < tasks_.size()) {
    TaskId id;
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      for (;;) {
        if (!done_queue_.empty()) {
          id = done_queue_.front();
          done_queue_.pop_front();
          break;
        }
        // The control loop's cancellation point: a cancelled or expired
        // query stops here even if every slave is wedged mid-fragment.
        if (cancel != nullptr) {
          Status live = cancel->Check();
          if (!live.ok()) {
            lock.unlock();
            EmitResilienceEvent(
                options_.obs,
                live.code() == StatusCode::kDeadlineExceeded
                    ? "cancel.deadline"
                    : "cancel.query",
                Now(), -1, {{"status", live.ToString()}});
            DrainOutstanding();
            return live;
          }
        }
        done_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
    TaskState& task = tasks_.at(id);
    auto temp = task.run->Wait();
    task.waited = true;
    if (!temp.ok()) {
      temp = RecoverTask(id, temp.status(), &result);
      if (!temp.ok()) {
        // A slave can observe the token before the control loop does;
        // publish the cancel event on this exit path too.
        const StatusCode code = temp.status().code();
        if (code == StatusCode::kCancelled ||
            code == StatusCode::kDeadlineExceeded) {
          EmitResilienceEvent(options_.obs,
                              code == StatusCode::kDeadlineExceeded
                                  ? "cancel.deadline"
                                  : "cancel.query",
                              Now(), -1,
                              {{"status", temp.status().ToString()}});
        }
        DrainOutstanding();
        return temp.status();
      }
    }
    task.result = std::move(temp).value();
    task.completed = true;
    result.task_finish_times[id] = Now();
    if (options_.obs.tracing()) {
      const QueryState& qs = queries_[task.query_index];
      options_.obs.Emit(
          {StrFormat("frag q%lld/f%d",
                     static_cast<long long>(qs.job.query_id), task.frag_id),
           "parallel", 'E', Now(), 0.0, id,
           {{"tuples", static_cast<int64_t>(task.result.tuples.size())}}});
    }
    if (options_.obs.metrics != nullptr)
      options_.obs.metrics->counter("parallel.fragments_completed")
          ->Increment();
    RecordTimeline(options_.ctx.profile,
                   queries_[task.query_index].graph.fragment(task.frag_id).root,
                   AdjustmentEvent::Kind::kFinish, Now(), task.frag_id, id,
                   task.run->parallelism());
    ++completed;
    // The scheduler may immediately start or adjust other tasks here.
    scheduler.OnTaskFinished(id);
  }
  XPRS_CHECK(scheduler.Idle());

  result.elapsed_seconds = Now();
  if (options_.obs.metrics != nullptr) {
    // Mirror the ladder counters into metrics so recoveries are visible
    // in snapshots even when the caller drops MasterRunResult.
    MetricsRegistry* m = options_.obs.metrics;
    if (result.fragment_retries > 0)
      m->counter("resilience.retry.fragment.total")
          ->Increment(result.fragment_retries);
    if (result.parallelism_degrades > 0)
      m->counter("resilience.degrade.parallelism.total")
          ->Increment(result.parallelism_degrades);
    if (result.serial_fallbacks > 0)
      m->counter("resilience.degrade.serial.total")
          ->Increment(result.serial_fallbacks);
  }
  result.num_adjustments = scheduler.num_adjustments();
  result.decisions = scheduler.decisions();
  for (auto& qs : queries_) {
    TaskId root = qs.task_ids[qs.graph.root_fragment()];
    result.query_results[qs.job.query_id] =
        std::move(tasks_.at(root).result.tuples);
  }
  return result;
}

StatusOr<TempResult> ParallelMaster::RecoverTask(TaskId id, Status failure,
                                                 MasterRunResult* result) {
  TaskState& task = tasks_.at(id);
  QueryState& query = queries_[task.query_index];
  const PlanNode* frag_root = query.graph.fragment(task.frag_id).root;
  while (IsRetryableStatus(failure)) {
    ++task.failures;
    if (task.failures < options_.retry.max_attempts) {
      // Same fragment, same granule protocol, fresh run.
      ++result->fragment_retries;
      EmitResilienceEvent(options_.obs, "retry.fragment", Now(), id,
                          {{"failures", task.failures},
                           {"parallelism", task.parallelism},
                           {"status", failure.ToString()}});
    } else if (task.parallelism > 1) {
      // Rung exhausted: degrade via the §2.4 adjustment path — the next
      // attempt runs at half the parallelism with a fresh retry budget.
      task.parallelism = std::max(1, task.parallelism / 2);
      task.failures = 0;
      ++result->parallelism_degrades;
      EmitResilienceEvent(options_.obs, "degrade.parallelism", Now(), id,
                          {{"parallelism", task.parallelism},
                           {"status", failure.ToString()}});
      RecordTimeline(options_.ctx.profile, frag_root,
                     AdjustmentEvent::Kind::kAdjust, Now(), task.frag_id, id,
                     task.parallelism);
    } else if (options_.serial_fallback) {
      // Ladder floor: one pass with the trusted serial executor on the
      // master thread.
      ++result->serial_fallbacks;
      EmitResilienceEvent(options_.obs, "degrade.serial", Now(), id,
                          {{"status", failure.ToString()}});
      RecordTimeline(options_.ctx.profile, frag_root,
                     AdjustmentEvent::Kind::kAdjust, Now(), task.frag_id, id,
                     1.0);
      return ExecuteFragment(query.graph, task.frag_id, GatherInputs(task),
                             options_.ctx);
    } else {
      return failure;
    }
    XPRS_RETURN_IF_ERROR(BackoffSleep(options_.retry,
                                      std::max(1, task.failures),
                                      options_.ctx.cancel));
    // The recovery attempt is awaited synchronously (no done-queue
    // notification), so the main loop never sees it twice.
    LaunchRun(id, task.parallelism, /*notify=*/false);
    auto attempt = task.run->Wait();
    task.waited = true;
    if (attempt.ok()) return attempt;
    failure = attempt.status();
  }
  return failure;
}

void ParallelMaster::DrainOutstanding() {
  for (auto& entry : tasks_) {
    TaskState& task = entry.second;
    if (task.run != nullptr && !task.waited) {
      // Join the slaves and drop the result: the query is aborting, and
      // returning before the threads exit would leak pins past Run().
      (void)task.run->Wait();
      task.waited = true;
    }
  }
}

}  // namespace xprs
