// Dynamically adjustable page-partitioned scan (paper §2.4, Figure 5).
//
// Page partitioning assigns slave i of n the disk pages {p | p mod n == i}.
// To adjust a running scan from parallelism n to n', the master and slaves
// run the Figure 5 protocol over shared memory:
//
//   1. master signals all participating slaves;
//   2. each slave reports curpage, the page it is currently scanning, and
//      pauses at its next page boundary;
//   3. master computes maxpage = max_i curpage_i and publishes
//      (maxpage, n');
//   4. every slave finishes its *old-stride* pages up to maxpage, then
//      switches to the new stride n' for pages beyond maxpage; slaves with
//      slot >= n' drain their owed pages and report back as available;
//      newly added slaves start after maxpage with the new stride.
//
// The signal/reply exchange is realized with a mutex + condition variables
// — exactly the low-latency shared-memory communication the paper's
// mechanism depends on. The class guarantees every page in [0, num_pages)
// is handed out exactly once across any sequence of adjustments.

#ifndef XPRS_PARALLEL_PAGE_PARTITION_H_
#define XPRS_PARALLEL_PAGE_PARTITION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace xprs {

/// Result of an adjustment: which slave slots must be (re)started by the
/// caller (they have no running thread).
struct PageAdjustResult {
  std::vector<int> slots_to_start;
  uint32_t maxpage = 0;  ///< rendezvous boundary that was used
};

/// Shared scan state mediating between one master and its slaves.
class AdjustablePageScan {
 public:
  /// A scan over pages [0, num_pages) starting at `initial_parallelism`.
  /// `max_slots` bounds the largest parallelism ever adjustable to.
  AdjustablePageScan(uint32_t num_pages, int initial_parallelism,
                     int max_slots);

  /// Slave side: takes the next page this slot must scan. Blocks while an
  /// adjustment rendezvous is in progress. Returns nothing when the slot
  /// has no more work (the slave thread should exit).
  std::optional<uint32_t> NextPage(int slot);

  /// Master side: adjusts the degree of parallelism. Blocks until every
  /// active slave has reached its page boundary (the rendezvous), then
  /// republishes assignments. Returns the slots the caller must start.
  PageAdjustResult Adjust(int new_parallelism);

  /// Slave side: marks the slot inactive without draining it (used when a
  /// slave aborts on error, so a pending rendezvous cannot wait on it).
  void Retire(int slot);

  /// True when every page has been handed out and all slots drained.
  bool Done() const;

  /// Pages handed out so far.
  uint32_t pages_taken() const;

  /// Current degree of parallelism.
  int parallelism() const;

  /// Number of adjustments performed.
  int num_adjustments() const;

  std::string ToString() const;

 private:
  struct Slot {
    bool active = false;        // has (or needs) a running slave thread
    bool parked = false;        // waiting at the rendezvous barrier
    std::deque<uint32_t> owed;  // old-stride pages <= boundary, still owed
    uint32_t cursor = 0;        // next new-stride page (> boundary)
    int64_t last_taken = -1;    // highest page taken (for maxpage)
  };

  // First page >= from with page % stride == slot.
  static uint32_t AlignUp(uint32_t from, int stride, int slot);

  const uint32_t num_pages_;
  const int max_slots_;

  mutable std::mutex mutex_;
  std::condition_variable slave_cv_;   // wakes slaves after adjustment
  std::condition_variable master_cv_;  // wakes master as slaves park
  std::vector<Slot> slots_;
  int stride_;
  bool adjusting_ = false;
  uint32_t pages_taken_ = 0;
  int num_adjustments_ = 0;
};

}  // namespace xprs

#endif  // XPRS_PARALLEL_PAGE_PARTITION_H_
