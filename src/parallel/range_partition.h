// Dynamically adjustable range-partitioned index scan (paper §2.4,
// Figure 6).
//
// Range partitioning assigns each slave an interval of key values, chosen
// balanced using the key-distribution information in the index. To adjust
// from n to n' slaves:
//
//   1. master signals all participating slaves;
//   2. each slave reports the intervals of values that remain for it to
//      scan ([c, h] if it is examining value c of an assigned [l, h]);
//   3. master repartitions the reported intervals into n' balanced sets
//      (a slave may receive several intervals) and publishes them;
//   4. slaves proceed on their new interval sets; removed slaves report
//      back as available, added slaves start on their assigned intervals.
//
// Slaves consume their intervals in small key chunks so that the
// "remaining interval" report is exact at every rendezvous. The class
// guarantees every index entry in the scanned domain is handed out exactly
// once across any sequence of adjustments.

#ifndef XPRS_PARALLEL_RANGE_PARTITION_H_
#define XPRS_PARALLEL_RANGE_PARTITION_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/btree.h"

namespace xprs {

/// Result of a range adjustment.
struct RangeAdjustResult {
  std::vector<int> slots_to_start;
};

/// Shared state of one adjustable range-partitioned scan.
class AdjustableRangeScan {
 public:
  /// Scans index entries with keys in `domain`, starting with
  /// `initial_parallelism` slaves; `chunk_entries` is the work granule (a
  /// slave takes about this many entries per chunk).
  AdjustableRangeScan(const BTreeIndex* index, KeyRange domain,
                      int initial_parallelism, int max_slots,
                      size_t chunk_entries = 256);

  /// Slave side: takes the next key sub-interval this slot must scan.
  /// Blocks during an adjustment rendezvous; returns nothing when the slot
  /// is out of work.
  std::optional<KeyRange> NextChunk(int slot);

  /// Master side: repartitions the remaining intervals across
  /// `new_parallelism` slaves (Figure 6). Returns slots to start.
  RangeAdjustResult Adjust(int new_parallelism);

  /// Slave side: marks the slot inactive (slave aborting on error).
  void Retire(int slot);

  bool Done() const;
  int parallelism() const;
  int num_adjustments() const;

  std::string ToString() const;

 private:
  struct Slot {
    bool active = false;
    bool parked = false;
    std::deque<KeyRange> intervals;
  };

  // Splits roughly `chunk_entries_` off the front of *interval; returns
  // the chunk and shrinks *interval (or consumes it fully, setting *empty).
  KeyRange TakeChunkLocked(KeyRange* interval, bool* consumed) const;

  const BTreeIndex* const index_;
  const size_t chunk_entries_;
  const int max_slots_;

  mutable std::mutex mutex_;
  std::condition_variable slave_cv_;
  std::condition_variable master_cv_;
  std::vector<Slot> slots_;
  int parallelism_;
  bool adjusting_ = false;
  int num_adjustments_ = 0;
};

}  // namespace xprs

#endif  // XPRS_PARALLEL_RANGE_PARTITION_H_
