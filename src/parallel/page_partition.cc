#include "parallel/page_partition.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

AdjustablePageScan::AdjustablePageScan(uint32_t num_pages,
                                       int initial_parallelism, int max_slots)
    : num_pages_(num_pages), max_slots_(max_slots), stride_(initial_parallelism) {
  XPRS_CHECK_GE(initial_parallelism, 1);
  XPRS_CHECK_GE(max_slots, initial_parallelism);
  slots_.resize(max_slots);
  for (int i = 0; i < initial_parallelism; ++i) {
    slots_[i].active = true;
    slots_[i].cursor = AlignUp(0, stride_, i);
  }
}

uint32_t AdjustablePageScan::AlignUp(uint32_t from, int stride, int slot) {
  uint32_t s = static_cast<uint32_t>(stride);
  uint32_t r = static_cast<uint32_t>(slot);
  uint32_t base = from - (from % s);
  uint32_t aligned = base + r;
  if (aligned < from) aligned += s;
  return aligned;
}

std::optional<uint32_t> AdjustablePageScan::NextPage(int slot) {
  std::unique_lock<std::mutex> lock(mutex_);
  XPRS_CHECK_GE(slot, 0);
  XPRS_CHECK_LT(slot, max_slots_);
  Slot& me = slots_[slot];

  for (;;) {
    if (adjusting_) {
      // Rendezvous: report in (curpage is last_taken) and pause until the
      // master republishes the assignment.
      me.parked = true;
      master_cv_.notify_all();
      slave_cv_.wait(lock, [this] { return !adjusting_; });
      me.parked = false;
      continue;  // re-evaluate under the new assignment
    }

    if (!me.active) return std::nullopt;

    if (!me.owed.empty()) {
      uint32_t p = me.owed.front();
      me.owed.pop_front();
      me.last_taken = std::max(me.last_taken, static_cast<int64_t>(p));
      ++pages_taken_;
      return p;
    }

    if (me.cursor < num_pages_) {
      uint32_t p = me.cursor;
      me.cursor += static_cast<uint32_t>(stride_);
      me.last_taken = std::max(me.last_taken, static_cast<int64_t>(p));
      ++pages_taken_;
      return p;
    }

    // Nothing left for this slot.
    me.active = false;
    master_cv_.notify_all();  // an adjuster may be waiting on us
    return std::nullopt;
  }
}

PageAdjustResult AdjustablePageScan::Adjust(int new_parallelism) {
  std::unique_lock<std::mutex> lock(mutex_);
  XPRS_CHECK_GE(new_parallelism, 1);
  XPRS_CHECK_LE(new_parallelism, max_slots_);

  // Signal: stop handing out pages and wait for every active slave to park
  // at its page boundary (or finish).
  adjusting_ = true;
  master_cv_.wait(lock, [this] {
    for (const Slot& s : slots_)
      if (s.active && !s.parked) return false;
    return true;
  });
  ++num_adjustments_;

  // maxpage = max over the pages the slaves reported scanning.
  int64_t maxpage = -1;
  for (const Slot& s : slots_)
    maxpage = std::max(maxpage, s.last_taken);

  // Every slave keeps its *current-assignment* pages up to maxpage: the
  // not-yet-taken stride pages <= maxpage move to its owed queue (existing
  // owed pages are below an older boundary and stay).
  for (Slot& s : slots_) {
    if (!s.active) continue;
    while (s.cursor < num_pages_ &&
           static_cast<int64_t>(s.cursor) <= maxpage) {
      s.owed.push_back(s.cursor);
      s.cursor += static_cast<uint32_t>(stride_);
    }
  }

  // Republish: slots < n' continue (or start) with the new stride beyond
  // maxpage; slots >= n' only drain their owed pages.
  PageAdjustResult result;
  result.maxpage = static_cast<uint32_t>(std::max<int64_t>(maxpage, 0));
  stride_ = new_parallelism;
  uint32_t first_new =
      static_cast<uint32_t>(std::min<int64_t>(maxpage + 1, num_pages_));
  for (int i = 0; i < max_slots_; ++i) {
    Slot& s = slots_[i];
    if (i < new_parallelism) {
      uint32_t cursor = AlignUp(first_new, stride_, i);
      bool was_active = s.active;
      s.cursor = cursor;
      bool has_work = !s.owed.empty() || s.cursor < num_pages_;
      s.active = has_work;
      if (!was_active && has_work) result.slots_to_start.push_back(i);
    } else {
      // Shrunk away: finish owed pages, then retire.
      s.cursor = num_pages_;
      s.active = s.active && !s.owed.empty();
    }
  }

  adjusting_ = false;
  slave_cv_.notify_all();
  return result;
}

void AdjustablePageScan::Retire(int slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[slot].active = false;
  slots_[slot].owed.clear();
  master_cv_.notify_all();
}

bool AdjustablePageScan::Done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& s : slots_)
    if (s.active) return false;
  return true;
}

uint32_t AdjustablePageScan::pages_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_taken_;
}

int AdjustablePageScan::parallelism() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stride_;
}

int AdjustablePageScan::num_adjustments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_adjustments_;
}

std::string AdjustablePageScan::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int active = 0;
  for (const Slot& s : slots_) active += s.active;
  return StrFormat(
      "AdjustablePageScan{pages=%u taken=%u stride=%d active=%d adj=%d}",
      num_pages_, pages_taken_, stride_, active, num_adjustments_);
}

}  // namespace xprs
