#include "parallel/fragment_run.h"

#include <algorithm>

#include "parallel/driven_ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/str.h"

namespace xprs {

ParallelFragmentRun::ParallelFragmentRun(
    const FragmentGraph* graph, int frag_id,
    std::map<int, const TempResult*> inputs, const Options& options)
    : graph_(graph),
      frag_id_(frag_id),
      inputs_(std::move(inputs)),
      options_(options) {
  XPRS_CHECK(graph != nullptr);
  XPRS_CHECK_GE(options.initial_parallelism, 1);
  XPRS_CHECK_GE(options.max_slots, options.initial_parallelism);

  driving_leaf_ = DrivingLeaf(*graph_, frag_id_);
  const Fragment& frag = graph_->fragment(frag_id_);
  auto blocked = frag.blocked_inputs.find(driving_leaf_);

  if (blocked != frag.blocked_inputs.end()) {
    // Driving source is a materialized input: page-partition its batches.
    driving_is_temp_ = true;
    const TempResult* temp = inputs_.at(blocked->second);
    total_granules_ = DrivenTempSourceOp::NumBatches(temp->tuples.size());
    page_scan_ = std::make_unique<AdjustablePageScan>(
        total_granules_, options.initial_parallelism, options.max_slots);
  } else if (driving_leaf_->kind == PlanKind::kSeqScan) {
    total_granules_ = driving_leaf_->table->file().num_pages();
    page_scan_ = std::make_unique<AdjustablePageScan>(
        total_granules_, options.initial_parallelism, options.max_slots);
  } else {
    XPRS_CHECK(driving_leaf_->kind == PlanKind::kIndexScan);
    const BTreeIndex* index = driving_leaf_->table->index();
    total_granules_ = static_cast<uint32_t>(index->CountRange(
        driving_leaf_->index_range.lo, driving_leaf_->index_range.hi));
    range_scan_ = std::make_unique<AdjustableRangeScan>(
        index, driving_leaf_->index_range, options.initial_parallelism,
        options.max_slots);
  }
  current_parallelism_ = options.initial_parallelism;
}

ParallelFragmentRun::~ParallelFragmentRun() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

StatusOr<std::unique_ptr<Operator>> ParallelFragmentRun::BuildPipeline(
    int slot) {
  DrivingLeafFactory factory =
      [this, slot](const PlanNode* leaf) -> StatusOr<std::unique_ptr<Operator>> {
    if (driving_is_temp_) {
      // Not profiled: a temp source re-emits the producing fragment's
      // already-counted output.
      const Fragment& frag = graph_->fragment(frag_id_);
      const TempResult* temp = inputs_.at(frag.blocked_inputs.at(leaf));
      return std::unique_ptr<Operator>(std::make_unique<DrivenTempSourceOp>(
          temp, page_scan_.get(), slot));
    }
    if (leaf->kind == PlanKind::kSeqScan) {
      return MaybeProfile(
          std::make_unique<DrivenSeqScanOp>(leaf->table, leaf->predicate,
                                            options_.ctx, page_scan_.get(),
                                            slot),
          leaf, options_.ctx.profile);
    }
    return MaybeProfile(
        std::make_unique<DrivenIndexScanOp>(leaf->table, leaf->predicate,
                                            options_.ctx, range_scan_.get(),
                                            slot),
        leaf, options_.ctx.profile);
  };
  return BuildFragmentOperatorsWithDriver(*graph_, frag_id_, inputs_,
                                          options_.ctx, factory);
}

void ParallelFragmentRun::SlaveMain(int slot) {
  auto pipeline = BuildPipeline(slot);
  std::vector<Tuple> local;
  Status status = pipeline.ok() ? Status::OK() : pipeline.status();
  if (status.ok()) {
    auto rows = Drain(pipeline.value().get());
    if (rows.ok()) {
      local = std::move(rows).value();
    } else {
      status = rows.status();
    }
  }

  if (!status.ok()) {
    // Abort: withdraw from the partition so a rendezvous never waits on us.
    if (page_scan_) page_scan_->Retire(slot);
    if (range_scan_) range_scan_->Retire(slot);
  }

  bool is_last = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    output_.insert(output_.end(), std::make_move_iterator(local.begin()),
                   std::make_move_iterator(local.end()));
    --running_slaves_;
    bool scan_done = page_scan_ ? page_scan_->Done() : range_scan_->Done();
    if (running_slaves_ == 0 && (scan_done || !first_error_.ok())) {
      finished_ = true;
      finish_ns_ = ProfileNowNs();
      is_last = true;
    }
  }
  if (is_last) {
    done_cv_.notify_all();
    if (on_finish_) on_finish_();
  }
}

void ParallelFragmentRun::SpawnLocked(int slot) {
  ++running_slaves_;
  threads_.emplace_back([this, slot] { SlaveMain(slot); });
}

Status ParallelFragmentRun::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  XPRS_CHECK(!started_);
  started_ = true;
  start_ns_ = finish_ns_ = ProfileNowNs();
  if (total_granules_ == 0) {
    finished_ = true;
    done_cv_.notify_all();
    if (on_finish_) on_finish_();
    return Status::OK();
  }
  for (int i = 0; i < options_.initial_parallelism; ++i) SpawnLocked(i);
  return Status::OK();
}

void ParallelFragmentRun::Adjust(int new_parallelism) {
  new_parallelism = std::clamp(new_parallelism, 1, options_.max_slots);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || finished_) return;
    current_parallelism_ = new_parallelism;
  }
  // The rendezvous must run without holding our mutex (slaves take it when
  // finishing); the partition state has its own synchronization.
  std::vector<int> to_start;
  if (page_scan_) {
    to_start = page_scan_->Adjust(new_parallelism).slots_to_start;
  } else {
    to_start = range_scan_->Adjust(new_parallelism).slots_to_start;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  for (int slot : to_start) SpawnLocked(slot);
}

StatusOr<TempResult> ParallelFragmentRun::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return finished_; });
  lock.unlock();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  lock.lock();

  if (!first_error_.ok()) return first_error_;

  TempResult result;
  const PlanNode* root = graph_->fragment(frag_id_).root;
  result.schema = root->output_schema;
  result.tuples = std::move(output_);
  if (root->kind == PlanKind::kSort) {
    size_t key = root->sort_key;
    std::stable_sort(result.tuples.begin(), result.tuples.end(),
                     [key](const Tuple& a, const Tuple& b) {
                       return CompareValues(a.value(key), b.value(key)) < 0;
                     });
  } else if (root->kind == PlanKind::kAggregate) {
    // Two-phase aggregation: each slave produced partial aggregates over
    // its partition; combine them (count/sum -> sum, min -> min,
    // max -> max). Group key is column 0 when grouped.
    const bool grouped = root->group_col >= 0;
    const size_t agg_col = grouped ? 1 : 0;
    std::map<int32_t, int64_t> groups;  // key (or 0 for global) -> value
    bool any = false;
    for (const Tuple& t : result.tuples) {
      int32_t key = grouped ? std::get<int32_t>(t.value(0)) : 0;
      const Value& v = t.value(agg_col);
      if (IsNull(v)) continue;
      int64_t partial = std::get<int32_t>(v);
      auto [it, inserted] = groups.emplace(key, partial);
      if (!inserted) {
        switch (root->agg_func) {
          case AggFunc::kCount:
          case AggFunc::kSum:
            it->second += partial;
            break;
          case AggFunc::kMin:
            it->second = std::min(it->second, partial);
            break;
          case AggFunc::kMax:
            it->second = std::max(it->second, partial);
            break;
        }
      }
      any = true;
    }
    result.tuples.clear();
    for (const auto& [key, value] : groups) {
      std::vector<Value> values;
      if (grouped) values.push_back(Value(key));
      values.push_back(Value(static_cast<int32_t>(value)));
      result.tuples.push_back(Tuple(std::move(values)));
    }
    // Global count over an empty input still yields one zero row.
    if (!any && !grouped && root->agg_func == AggFunc::kCount) {
      result.tuples.push_back(Tuple({Value(int32_t{0})}));
    }
  }

  if (QueryProfile* profile = options_.ctx.profile;
      profile != nullptr && profile->Covers(root)) {
    FragmentStats stats;
    stats.frag_id = frag_id_;
    stats.root_label = OperatorLabel(*root);
    stats.partition_kind =
        driving_is_temp_ ? "batches" : (page_scan_ ? "pages" : "range");
    stats.granules = total_granules_;
    stats.initial_parallelism = options_.initial_parallelism;
    stats.final_parallelism = current_parallelism_;
    stats.adjustments = num_adjustments();
    stats.slaves_spawned = static_cast<int>(threads_.size());
    stats.wall_seconds = 1e-9 * static_cast<double>(finish_ns_ - start_ns_);
    stats.tuples_out = result.tuples.size();
    profile->RecordFragment(stats);
  }
  return result;
}

double ParallelFragmentRun::Progress() const {
  if (total_granules_ == 0) return 1.0;
  if (page_scan_) {
    return static_cast<double>(page_scan_->pages_taken()) / total_granules_;
  }
  // Range scans do not expose taken-entry counts directly; approximate
  // with doneness.
  return range_scan_->Done() ? 1.0 : 0.5;
}

bool ParallelFragmentRun::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

int ParallelFragmentRun::parallelism() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_parallelism_;
}

int ParallelFragmentRun::num_adjustments() const {
  return page_scan_ ? page_scan_->num_adjustments()
                    : range_scan_->num_adjustments();
}

}  // namespace xprs
