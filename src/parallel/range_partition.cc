#include "parallel/range_partition.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

namespace {

// Splits `total_intervals` into up to n balanced groups by entry count.
std::vector<std::deque<KeyRange>> Repartition(
    const BTreeIndex* index, std::deque<KeyRange> intervals, int n) {
  std::vector<std::deque<KeyRange>> groups(n);
  size_t total = 0;
  std::deque<std::pair<KeyRange, size_t>> counted;
  for (const KeyRange& r : intervals) {
    size_t c = index->CountRange(r.lo, r.hi);
    if (c == 0) continue;
    counted.push_back({r, c});
    total += c;
  }
  if (total == 0) return groups;
  const size_t target = (total + n - 1) / n;

  int g = 0;
  size_t filled = 0;
  while (!counted.empty()) {
    auto [r, c] = counted.front();
    counted.pop_front();
    if (g >= n - 1 || filled + c <= target) {
      groups[std::min(g, n - 1)].push_back(r);
      filled += c;
      if (filled >= target && g < n - 1) {
        ++g;
        filled = 0;
      }
      continue;
    }
    // Interval overflows this group: split it at the group's remaining
    // quota and push the tail back.
    size_t want = target - filled;
    std::optional<int32_t> split = index->SplitKeyAt(r, want);
    if (!split.has_value()) {
      // Cannot split (duplicates); put it whole in the emptier side.
      groups[g].push_back(r);
      ++g;
      filled = 0;
      continue;
    }
    groups[g].push_back({r.lo, *split});
    ++g;
    filled = 0;
    counted.push_front({{*split + 1, r.hi},
                        c - index->CountRange(r.lo, *split)});
  }
  return groups;
}

}  // namespace

AdjustableRangeScan::AdjustableRangeScan(const BTreeIndex* index,
                                         KeyRange domain,
                                         int initial_parallelism,
                                         int max_slots, size_t chunk_entries)
    : index_(index),
      chunk_entries_(chunk_entries),
      max_slots_(max_slots),
      parallelism_(initial_parallelism) {
  XPRS_CHECK(index != nullptr);
  XPRS_CHECK_GE(initial_parallelism, 1);
  XPRS_CHECK_GE(max_slots, initial_parallelism);
  XPRS_CHECK_GE(chunk_entries, 1u);
  slots_.resize(max_slots);

  // Balanced initial partition from the index's key distribution (§2.4).
  std::deque<KeyRange> whole{domain};
  auto groups = Repartition(index_, std::move(whole), initial_parallelism);
  for (int i = 0; i < initial_parallelism; ++i) {
    slots_[i].intervals = std::move(groups[i]);
    slots_[i].active = true;
  }
}

KeyRange AdjustableRangeScan::TakeChunkLocked(KeyRange* interval,
                                              bool* consumed) const {
  std::optional<int32_t> split = index_->SplitKeyAt(*interval, chunk_entries_);
  if (!split.has_value()) {
    *consumed = true;
    return *interval;
  }
  KeyRange chunk{interval->lo, *split};
  interval->lo = *split + 1;
  *consumed = false;
  return chunk;
}

std::optional<KeyRange> AdjustableRangeScan::NextChunk(int slot) {
  std::unique_lock<std::mutex> lock(mutex_);
  XPRS_CHECK_GE(slot, 0);
  XPRS_CHECK_LT(slot, max_slots_);
  Slot& me = slots_[slot];

  for (;;) {
    if (adjusting_) {
      me.parked = true;
      master_cv_.notify_all();
      slave_cv_.wait(lock, [this] { return !adjusting_; });
      me.parked = false;
      continue;
    }

    if (!me.active) return std::nullopt;

    while (!me.intervals.empty()) {
      KeyRange& front = me.intervals.front();
      bool consumed = false;
      KeyRange chunk = TakeChunkLocked(&front, &consumed);
      if (consumed) me.intervals.pop_front();
      if (index_->CountRange(chunk.lo, chunk.hi) > 0) return chunk;
      // Empty chunk (no entries in that key span): keep going.
    }

    me.active = false;
    master_cv_.notify_all();
    return std::nullopt;
  }
}

RangeAdjustResult AdjustableRangeScan::Adjust(int new_parallelism) {
  std::unique_lock<std::mutex> lock(mutex_);
  XPRS_CHECK_GE(new_parallelism, 1);
  XPRS_CHECK_LE(new_parallelism, max_slots_);

  adjusting_ = true;
  master_cv_.wait(lock, [this] {
    for (const Slot& s : slots_)
      if (s.active && !s.parked) return false;
    return true;
  });
  ++num_adjustments_;

  // Collect every remaining interval (the slaves' "[c, h]" reports).
  std::deque<KeyRange> remaining;
  for (Slot& s : slots_) {
    for (const KeyRange& r : s.intervals) remaining.push_back(r);
    s.intervals.clear();
  }

  auto groups = Repartition(index_, std::move(remaining), new_parallelism);

  RangeAdjustResult result;
  for (int i = 0; i < max_slots_; ++i) {
    Slot& s = slots_[i];
    bool was_active = s.active;
    if (i < new_parallelism) {
      s.intervals = std::move(groups[i]);
      s.active = !s.intervals.empty();
      if (!was_active && s.active) result.slots_to_start.push_back(i);
    } else {
      s.active = false;
    }
  }
  parallelism_ = new_parallelism;

  adjusting_ = false;
  slave_cv_.notify_all();
  return result;
}

void AdjustableRangeScan::Retire(int slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[slot].active = false;
  slots_[slot].intervals.clear();
  master_cv_.notify_all();
}

bool AdjustableRangeScan::Done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& s : slots_)
    if (s.active) return false;
  return true;
}

int AdjustableRangeScan::parallelism() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return parallelism_;
}

int AdjustableRangeScan::num_adjustments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_adjustments_;
}

std::string AdjustableRangeScan::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int active = 0;
  size_t intervals = 0;
  for (const Slot& s : slots_) {
    active += s.active;
    intervals += s.intervals.size();
  }
  return StrFormat(
      "AdjustableRangeScan{active=%d intervals=%zu n=%d adj=%d}", active,
      intervals, parallelism_, num_adjustments_);
}

}  // namespace xprs
