#include "parallel/driven_ops.h"

#include "util/check.h"

namespace xprs {

// --------------------------------------------------------- DrivenSeqScan

DrivenSeqScanOp::DrivenSeqScanOp(Table* table, Predicate predicate,
                                 ExecContext ctx, AdjustablePageScan* shared,
                                 int slot)
    : table_(table),
      predicate_(std::move(predicate)),
      ctx_(ctx),
      shared_(shared),
      slot_(slot) {
  XPRS_CHECK(table != nullptr);
  XPRS_CHECK(shared != nullptr);
}

Status DrivenSeqScanOp::Open() {
  page_loaded_ = false;
  next_slot_ = 0;
  current_ = nullptr;
  pooled_page_.Release();
  return Status::OK();
}

Status DrivenSeqScanOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (!page_loaded_) {
      if (ctx_.cancel != nullptr) {
        Status live = ctx_.cancel->Check();
        if (!live.ok()) {
          pooled_page_.Release();
          return live;
        }
      }
      std::optional<uint32_t> page = shared_->NextPage(slot_);
      if (!page.has_value()) {
        *eof = true;
        return Status::OK();
      }
      if (ctx_.pool != nullptr) {
        XPRS_ASSIGN_OR_RETURN(BlockId block, table_->file().BlockOf(*page));
        auto handle = FetchWithBackpressure(ctx_, block);
        if (!handle.ok()) return handle.status();
        pooled_page_ = std::move(handle).value();
        current_ = &pooled_page_.page();
      } else {
        XPRS_RETURN_IF_ERROR(table_->file().ReadPage(*page, &direct_page_));
        current_ = &direct_page_;
      }
      ProfPagesRead(1);
      page_loaded_ = true;
      next_slot_ = 0;
    }
    while (next_slot_ < current_->num_tuples()) {
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(current_->GetTuple(next_slot_, &data, &size));
      ++next_slot_;
      XPRS_ASSIGN_OR_RETURN(Tuple tuple,
                            Tuple::Deserialize(table_->schema(), data, size));
      if (ProfEval(predicate_, tuple)) {
        *out = std::move(tuple);
        return Status::OK();
      }
    }
    page_loaded_ = false;
    pooled_page_.Release();
  }
}

// ------------------------------------------------------- DrivenIndexScan

DrivenIndexScanOp::DrivenIndexScanOp(Table* table, Predicate predicate,
                                     ExecContext ctx,
                                     AdjustableRangeScan* shared, int slot)
    : table_(table),
      predicate_(std::move(predicate)),
      ctx_(ctx),
      shared_(shared),
      slot_(slot) {
  XPRS_CHECK(table != nullptr);
  XPRS_CHECK(shared != nullptr);
  XPRS_CHECK_MSG(table->index() != nullptr, "index scan without index");
}

Status DrivenIndexScanOp::Open() {
  it_.reset();
  return Status::OK();
}

Status DrivenIndexScanOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    // One random page read per iteration: poll the token per tuple.
    if (ctx_.cancel != nullptr) XPRS_RETURN_IF_ERROR(ctx_.cancel->Check());
    if (!it_.has_value() || !it_->Valid()) {
      std::optional<KeyRange> chunk = shared_->NextChunk(slot_);
      if (!chunk.has_value()) {
        *eof = true;
        return Status::OK();
      }
      XPRS_ASSIGN_OR_RETURN(it_,
                            table_->index()->ScanChecked(chunk->lo, chunk->hi));
      continue;
    }
    TupleId tid = it_->tid();
    it_->Next();
    Tuple tuple;
    if (ctx_.pool != nullptr) {
      XPRS_ASSIGN_OR_RETURN(BlockId block, table_->file().BlockOf(tid.page));
      auto handle = FetchWithBackpressure(ctx_, block);
      if (!handle.ok()) return handle.status();
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(handle->page().GetTuple(tid.slot, &data, &size));
      XPRS_ASSIGN_OR_RETURN(tuple,
                            Tuple::Deserialize(table_->schema(), data, size));
    } else {
      XPRS_ASSIGN_OR_RETURN(tuple, table_->file().ReadTuple(tid));
    }
    ProfPagesRead(1);  // one random page per fetched tuple (§3)
    if (ProfEval(predicate_, tuple)) {
      *out = std::move(tuple);
      return Status::OK();
    }
  }
}

// ------------------------------------------------------ DrivenTempSource

uint32_t DrivenTempSourceOp::NumBatches(size_t num_tuples) {
  return static_cast<uint32_t>((num_tuples + kBatchTuples - 1) / kBatchTuples);
}

DrivenTempSourceOp::DrivenTempSourceOp(const TempResult* temp,
                                       AdjustablePageScan* shared, int slot)
    : temp_(temp), shared_(shared), slot_(slot) {
  XPRS_CHECK(temp != nullptr);
  XPRS_CHECK(shared != nullptr);
}

Status DrivenTempSourceOp::Open() {
  have_batch_ = false;
  return Status::OK();
}

Status DrivenTempSourceOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (!have_batch_) {
      std::optional<uint32_t> batch = shared_->NextPage(slot_);
      if (!batch.has_value()) {
        *eof = true;
        return Status::OK();
      }
      pos_ = static_cast<size_t>(*batch) * kBatchTuples;
      batch_end_ = std::min(pos_ + kBatchTuples, temp_->tuples.size());
      have_batch_ = true;
    }
    if (pos_ < batch_end_) {
      *out = temp_->tuples[pos_++];
      return Status::OK();
    }
    have_batch_ = false;
  }
}

}  // namespace xprs
