// ParallelFragmentRun: executes one plan fragment with a crew of slave
// backends (threads) whose degree of parallelism can be adjusted while the
// fragment runs — the run-time half of the XPRS parallel executor.
//
// The driving source of the fragment's pipeline determines the partition
// mechanism (§2.4):
//   - sequential scan          -> page partitioning  (AdjustablePageScan)
//   - unclustered index scan   -> range partitioning (AdjustableRangeScan)
//   - materialized input       -> page partitioning over tuple batches
//
// Every slave runs its own copy of the pipeline; the pipelines share the
// partition state, the buffer pool and the disk array (shared memory).
// Worker outputs are concatenated; fragments rooted at a Sort re-sort the
// concatenation so the fragment's contract (sorted output) holds.

#ifndef XPRS_PARALLEL_FRAGMENT_RUN_H_
#define XPRS_PARALLEL_FRAGMENT_RUN_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/fragment.h"
#include "parallel/page_partition.h"
#include "parallel/range_partition.h"

namespace xprs {

/// One in-flight parallel fragment execution.
class ParallelFragmentRun {
 public:
  struct Options {
    int initial_parallelism = 1;
    /// Largest parallelism an adjustment may set.
    int max_slots = 16;
    ExecContext ctx;
  };

  ParallelFragmentRun(const FragmentGraph* graph, int frag_id,
                      std::map<int, const TempResult*> inputs,
                      const Options& options);
  ~ParallelFragmentRun();

  ParallelFragmentRun(const ParallelFragmentRun&) = delete;
  ParallelFragmentRun& operator=(const ParallelFragmentRun&) = delete;

  /// Spawns the initial slaves. Call once.
  Status Start();

  /// Master side: dynamically adjusts the degree of parallelism (§2.4).
  /// Ignored after the fragment finished.
  void Adjust(int new_parallelism);

  /// Called (from a slave thread) when the last slave finishes. Set before
  /// Start().
  void set_on_finish(std::function<void()> cb) { on_finish_ = std::move(cb); }

  /// Blocks until all slaves are done, then returns the merged result.
  StatusOr<TempResult> Wait();

  /// Fraction of driving granules handed out, in [0, 1].
  double Progress() const;

  /// True once every slave has finished.
  bool finished() const;

  /// Current degree of parallelism.
  int parallelism() const;

  int num_adjustments() const;

 private:
  void SlaveMain(int slot);
  void SpawnLocked(int slot);
  StatusOr<std::unique_ptr<Operator>> BuildPipeline(int slot);

  const FragmentGraph* const graph_;
  const int frag_id_;
  const std::map<int, const TempResult*> inputs_;
  const Options options_;

  // Exactly one of these is used, per the driving leaf kind.
  std::unique_ptr<AdjustablePageScan> page_scan_;
  std::unique_ptr<AdjustableRangeScan> range_scan_;
  const PlanNode* driving_leaf_ = nullptr;
  bool driving_is_temp_ = false;
  uint32_t total_granules_ = 0;

  // Wall-clock bounds (ProfileNowNs) for the profile's FragmentStats:
  // Start() to last-slave-finished.
  uint64_t start_ns_ = 0;
  uint64_t finish_ns_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  std::vector<Tuple> output_;
  Status first_error_;
  int running_slaves_ = 0;
  int current_parallelism_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::function<void()> on_finish_;
};

}  // namespace xprs

#endif  // XPRS_PARALLEL_FRAGMENT_RUN_H_
