#include "sched/task.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

std::string TaskProfile::ToString() const {
  return StrFormat(
      "Task{id=%lld name=%s T=%.3fs D=%.0f C=%.1f io/s %s q=%lld}",
      static_cast<long long>(id), name.c_str(), seq_time, total_ios,
      io_rate(), IoPatternName(pattern), static_cast<long long>(query_id));
}

bool IsIoBound(const TaskProfile& task, const MachineConfig& machine) {
  return task.io_rate() > machine.io_cpu_threshold();
}

double MaxParallelism(const TaskProfile& task, const MachineConfig& machine) {
  XPRS_CHECK_GT(task.seq_time, 0.0);
  const double n = static_cast<double>(machine.num_cpus);
  const double c = task.io_rate();
  if (c <= 0.0) return n;
  // The bandwidth ceiling the task will actually see when run parallel and
  // alone. (The paper uses the nominal B for all tasks; using the
  // pattern-aware ceiling is a strictly more physical refinement that
  // coincides for parallel sequential scans.)
  const double b = machine.single_stream_bandwidth(task.pattern, 2.0);
  return std::clamp(b / c, 1.0, n);
}

}  // namespace xprs
