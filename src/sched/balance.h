// IO-CPU balance point calculation (paper §2.3).
//
// Running an IO-bound task f_i at parallelism x_i together with a CPU-bound
// task f_j at x_j puts the system at point (x_i + x_j, C_i x_i + C_j x_j) in
// the (parallelism, io-rate) plane. The balance point is the solution of
//
//     x_i + x_j = N
//     C_i x_i + C_j x_j = B
//
// which drives both the processors and the disks to full utilization. When
// both tasks issue sequential i/o the effective bandwidth B itself depends
// on how disk time is split between the two streams (seeks between the
// streams degrade it toward the random bandwidth), which couples the
// equations; SolveBalance handles that case by a root scan.

#ifndef XPRS_SCHED_BALANCE_H_
#define XPRS_SCHED_BALANCE_H_

#include <string>
#include <vector>

#include "sched/machine.h"
#include "sched/task.h"

namespace xprs {

/// One concurrent i/o stream as seen by the disk array.
struct IoStream {
  /// Demanded io rate in io/s (C_i * x_i for a task at parallelism x_i).
  double rate = 0.0;
  /// Access pattern of the stream.
  IoPattern pattern = IoPattern::kSequential;
  /// Parallelism of the issuing task (a lone single-process sequential
  /// stream sees the strict sequential bandwidth).
  double parallelism = 1.0;
};

/// Effective aggregate disk bandwidth for a set of concurrent streams.
///
/// Implements the paper's §2.3 degradation rule, generalized: let u be the
/// rate of the dominant sequential stream and r the fraction of io traffic
/// coming from other streams relative to u. The disks achieve
/// B = Br + w * (Btop - Br) with w = max(0, (u - rest) / u): when one
/// sequential stream fully dominates, B -> Btop (sequential bandwidth);
/// when traffic is split evenly or a random stream dominates, B -> Br.
/// For exactly two sequential streams this reduces to the paper's equation
/// B = Br + (1 - C_i x_i / C_j x_j)(Bs - Br) for C_i x_i < C_j x_j.
double EffectiveBandwidth(const MachineConfig& machine,
                          const std::vector<IoStream>& streams);

/// Result of a balance point computation.
struct BalancePoint {
  /// True iff a positive solution exists (requires one task on each side of
  /// the B/N threshold for the constant-B case).
  bool valid = false;
  /// True iff the returned point exactly satisfies the (possibly coupled)
  /// equations; false when it is the constant-B fallback approximation.
  bool exact = false;
  /// Parallelism degrees (continuous; callers round for real execution).
  double xi = 0.0;
  double xj = 0.0;
  /// The effective aggregate bandwidth at the balance point.
  double effective_bandwidth = 0.0;

  std::string ToString() const;
};

/// Closed-form balance point with a constant bandwidth B (§2.3):
///   x_i = (B - C_j N) / (C_i - C_j),  x_j = (C_i N - B) / (C_i - C_j).
/// Valid iff C_i > B/N > C_j (after ordering) and both degrees positive.
BalancePoint SolveBalanceConstantB(double ci, double cj, int num_cpus,
                                   double bandwidth);

/// Balance point between two tasks accounting for bandwidth degradation
/// between their i/o streams (§2.3). With `model_seek_interference` the
/// effective bandwidth from EffectiveBandwidth() is used, which couples the
/// equations; they are solved by a sign-change scan plus bisection on x_i.
/// Among multiple roots, the one with the highest effective bandwidth (the
/// least seek interference) is returned. Falls back to the constant-B
/// closed form (marked !exact) if the scan finds no root while the
/// constant-B classification admits one.
BalancePoint SolveBalance(const TaskProfile& ti, const TaskProfile& tj,
                          const MachineConfig& machine,
                          bool model_seek_interference = true);

}  // namespace xprs

#endif  // XPRS_SCHED_BALANCE_H_
