// Machine resource model: N processors plus a striped disk array with
// distinct sequential / almost-sequential / random bandwidths.
//
// This mirrors the XPRS testbed of the paper (§3): a Sequent Symmetry with
// 12 processors and 4 disks, 8 KB pages, per-disk bandwidth after filesystem
// overhead of 97 io/s (sequential), 60 io/s (almost sequential) and
// 35 io/s (random). The experiments use 8 processors, giving a nominal
// aggregate bandwidth B = 4 * 60 = 240 io/s and an IO/CPU classification
// threshold of B/N = 30 io/s.

#ifndef XPRS_SCHED_MACHINE_H_
#define XPRS_SCHED_MACHINE_H_

#include <string>

namespace xprs {

/// Access pattern of a task's i/o stream.
enum class IoPattern {
  kSequential,  ///< block-after-block reads (sequential scan)
  kRandom,      ///< pointer-chasing reads (unclustered index scan)
};

const char* IoPatternName(IoPattern pattern);

/// Static description of the shared-memory machine.
struct MachineConfig {
  /// Number of processors available to query processing (the paper's N).
  int num_cpus = 8;
  /// Number of disks in the striped array.
  int num_disks = 4;
  /// Per-disk strictly sequential read bandwidth (io/s), single stream.
  double seq_bw_per_disk = 97.0;
  /// Per-disk "almost sequential" bandwidth (io/s): what parallel sequential
  /// scans actually see, because asynchronous backends reorder the reads.
  double almost_seq_bw_per_disk = 60.0;
  /// Per-disk random read bandwidth (io/s).
  double rand_bw_per_disk = 35.0;

  /// Aggregate strictly sequential bandwidth (io/s).
  double seq_bandwidth() const { return num_disks * seq_bw_per_disk; }
  /// Aggregate almost-sequential bandwidth (io/s).
  double almost_seq_bandwidth() const {
    return num_disks * almost_seq_bw_per_disk;
  }
  /// Aggregate random bandwidth (io/s).
  double rand_bandwidth() const { return num_disks * rand_bw_per_disk; }

  /// The nominal total bandwidth B used for IO/CPU classification and for
  /// the constant-B balance point (the paper uses the almost-sequential
  /// aggregate: 4 * 60 = 240 io/s).
  double nominal_bandwidth() const { return almost_seq_bandwidth(); }

  /// The classification threshold B/N (30 io/s in the paper's setup).
  double io_cpu_threshold() const {
    return nominal_bandwidth() / static_cast<double>(num_cpus);
  }

  /// The aggregate bandwidth ceiling for a *single* stream of the given
  /// pattern running with the given parallelism. A lone single-process
  /// sequential scan sees the strict sequential bandwidth; once parallel,
  /// reads become unordered and at most the almost-sequential bandwidth is
  /// observed (paper §3). Random streams always see the random bandwidth.
  double single_stream_bandwidth(IoPattern pattern, double parallelism) const;

  /// The Sequent Symmetry configuration of the paper's experiments
  /// (12 CPUs on the machine, 8 used; 4 disks; 97/60/35 io/s per disk).
  static MachineConfig PaperConfig() { return MachineConfig{}; }

  std::string ToString() const;
};

}  // namespace xprs

#endif  // XPRS_SCHED_MACHINE_H_
