#include "sched/cost.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

double TIntra(const TaskProfile& task, const MachineConfig& machine) {
  XPRS_CHECK_GT(task.seq_time, 0.0);
  return task.seq_time / MaxParallelism(task, machine);
}

std::string InterCost::ToString() const {
  if (!valid) return "InterCost{invalid}";
  return StrFormat("InterCost{T=%.3fs %s first=%lld Tij=%.3fs}", t_inter,
                   point.ToString().c_str(),
                   static_cast<long long>(first_finisher),
                   remaining_seq_time);
}

InterCost TInter(const TaskProfile& ti, const TaskProfile& tj,
                 const MachineConfig& machine,
                 bool model_seek_interference) {
  InterCost out;
  BalancePoint bp = SolveBalance(ti, tj, machine, model_seek_interference);
  if (!bp.valid) return out;

  const double fin_i = ti.seq_time / bp.xi;
  const double fin_j = tj.seq_time / bp.xj;

  // T_ij: the longer task keeps its io rate, so its remaining sequential
  // time shrinks by x * elapsed.
  double t_ij;
  double maxp_ij;
  if (fin_i > fin_j) {
    out.first_finisher = tj.id;
    t_ij = ti.seq_time - tj.seq_time * bp.xi / bp.xj;
    maxp_ij = MaxParallelism(ti, machine);
  } else {
    out.first_finisher = ti.id;
    t_ij = tj.seq_time - ti.seq_time * bp.xj / bp.xi;
    maxp_ij = MaxParallelism(tj, machine);
  }
  t_ij = std::max(t_ij, 0.0);

  out.valid = true;
  out.point = bp;
  out.remaining_seq_time = t_ij;
  out.t_inter = std::min(fin_i, fin_j) + t_ij / maxp_ij;
  return out;
}

}  // namespace xprs
