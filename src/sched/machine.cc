#include "sched/machine.h"

#include "util/str.h"

namespace xprs {

const char* IoPatternName(IoPattern pattern) {
  switch (pattern) {
    case IoPattern::kSequential:
      return "sequential";
    case IoPattern::kRandom:
      return "random";
  }
  return "?";
}

double MachineConfig::single_stream_bandwidth(IoPattern pattern,
                                              double parallelism) const {
  if (pattern == IoPattern::kRandom) return rand_bandwidth();
  return parallelism <= 1.0 ? seq_bandwidth() : almost_seq_bandwidth();
}

std::string MachineConfig::ToString() const {
  return StrFormat(
      "MachineConfig{N=%d cpus, %d disks, per-disk io/s seq=%.0f "
      "almost-seq=%.0f random=%.0f, B=%.0f, B/N=%.1f}",
      num_cpus, num_disks, seq_bw_per_disk, almost_seq_bw_per_disk,
      rand_bw_per_disk, nominal_bandwidth(), io_cpu_threshold());
}

}  // namespace xprs
