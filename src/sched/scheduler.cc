#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/logging.h"
#include "util/str.h"

namespace xprs {

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kIntraOnly:
      return "INTRA-ONLY";
    case SchedPolicy::kInterWithoutAdj:
      return "INTER-WITHOUT-ADJ";
    case SchedPolicy::kInterWithAdj:
      return "INTER-WITH-ADJ";
  }
  return "?";
}

std::string SchedDecision::ToString() const {
  return StrFormat("%.3fs %s task %lld x=%.2f", time,
                   kind == Kind::kStart ? "start" : "adjust",
                   static_cast<long long>(task), parallelism);
}

Status ValidateSchedDecisions(const std::vector<SchedDecision>& decisions,
                              const std::map<TaskId, double>* finish_times) {
  // Wall-clock producers read the clock once per decision; allow the tiny
  // skew between a decision's stamp and the recorded finish stamp.
  constexpr double kTimeSlack = 1e-9;
  std::set<TaskId> started;
  double last_time = -std::numeric_limits<double>::infinity();
  for (const SchedDecision& d : decisions) {
    if (d.parallelism <= 0.0) {
      return Status::FailedPrecondition(
          StrFormat("non-positive parallelism: %s", d.ToString().c_str()));
    }
    if (d.time + kTimeSlack < last_time) {
      return Status::FailedPrecondition(
          StrFormat("time went backwards (last %.9f): %s", last_time,
                    d.ToString().c_str()));
    }
    last_time = std::max(last_time, d.time);
    if (d.kind == SchedDecision::Kind::kStart) {
      if (!started.insert(d.task).second) {
        return Status::FailedPrecondition(
            StrFormat("task started twice: %s", d.ToString().c_str()));
      }
    } else {
      if (started.find(d.task) == started.end()) {
        return Status::FailedPrecondition(
            StrFormat("adjust before start: %s", d.ToString().c_str()));
      }
      if (finish_times != nullptr) {
        auto it = finish_times->find(d.task);
        if (it != finish_times->end() && d.time > it->second + kTimeSlack) {
          return Status::FailedPrecondition(
              StrFormat("adjust after finish (%.9f): %s", it->second,
                        d.ToString().c_str()));
        }
      }
    }
  }
  return Status::OK();
}

AdaptiveScheduler::AdaptiveScheduler(const MachineConfig& machine,
                                     const SchedulerOptions& options)
    : machine_(machine), options_(options) {
  XPRS_CHECK_GE(options_.max_concurrent, 1);
  XPRS_CHECK_GE(machine_.num_cpus, 1);
}

void AdaptiveScheduler::Bind(ExecutionEnv* env) {
  XPRS_CHECK(env != nullptr);
  env_ = env;
}

void AdaptiveScheduler::SetObservability(const Observability& obs) {
  obs_ = obs;
  if (obs_.metrics != nullptr) {
    starts_counter_ = obs_.metrics->counter("sched.starts");
    adjusts_counter_ = obs_.metrics->counter("sched.adjustments");
    pair_starts_counter_ = obs_.metrics->counter("sched.pair_starts");
    solo_starts_counter_ = obs_.metrics->counter("sched.solo_starts");
    parallelism_hist_ = obs_.metrics->histogram(
        "sched.parallelism", {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0});
  } else {
    starts_counter_ = nullptr;
    adjusts_counter_ = nullptr;
    pair_starts_counter_ = nullptr;
    solo_starts_counter_ = nullptr;
    parallelism_hist_ = nullptr;
  }
}

void AdaptiveScheduler::RegisterTask(const TaskProfile& task) {
  XPRS_CHECK(env_ != nullptr);
  XPRS_CHECK_GT(task.seq_time, 0.0);
  XPRS_CHECK(all_.find(task.id) == all_.end());
  all_[task.id] = task;

  int unmet = 0;
  for (TaskId dep : task.deps) {
    if (finished_.count(dep)) continue;
    ++unmet;
    dependents_[dep].push_back(task.id);
  }
  if (unmet > 0) {
    blocked_[task.id] = unmet;
  } else {
    (IsIoBound(task, machine_) ? ready_io_ : ready_cpu_).push_back(task.id);
  }
}

void AdaptiveScheduler::Submit(const TaskProfile& task) {
  RegisterTask(task);
  Reschedule();
}

void AdaptiveScheduler::SubmitBatch(const std::vector<TaskProfile>& tasks) {
  for (const auto& t : tasks) RegisterTask(t);
  Reschedule();
}

void AdaptiveScheduler::OnTaskFinished(TaskId id) {
  auto it = running_.find(id);
  XPRS_CHECK_MSG(it != running_.end(), "finish for task not running");
  running_.erase(it);
  finished_.insert(id);

  auto dep_it = dependents_.find(id);
  if (dep_it != dependents_.end()) {
    for (TaskId child : dep_it->second) {
      auto bit = blocked_.find(child);
      XPRS_CHECK(bit != blocked_.end());
      if (--bit->second == 0) {
        blocked_.erase(bit);
        const TaskProfile& p = all_.at(child);
        (IsIoBound(p, machine_) ? ready_io_ : ready_cpu_).push_back(child);
      }
    }
    dependents_.erase(dep_it);
  }
  Reschedule();
}

bool AdaptiveScheduler::Idle() const {
  return running_.empty() && ready_io_.empty() && ready_cpu_.empty();
}

size_t AdaptiveScheduler::NumPending() const {
  return ready_io_.size() + ready_cpu_.size() + blocked_.size();
}

std::vector<TaskId> AdaptiveScheduler::running() const {
  std::vector<TaskId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, r] : running_) ids.push_back(id);
  return ids;
}

double AdaptiveScheduler::ParallelismOf(TaskId id) const {
  auto it = running_.find(id);
  XPRS_CHECK(it != running_.end());
  return it->second.parallelism;
}

void AdaptiveScheduler::Reschedule() {
  if (in_reschedule_) return;
  in_reschedule_ = true;
  if (options_.policy == SchedPolicy::kIntraOnly) {
    RescheduleIntraOnly();
  } else {
    RescheduleInter();
  }
  in_reschedule_ = false;
}

void AdaptiveScheduler::RescheduleIntraOnly() {
  // One task at a time, each at its maximum intra-operation parallelism.
  if (!running_.empty()) return;
  TaskId id = PickAnyReady();
  if (id < 0) return;
  const TaskProfile& p = all_.at(id);
  IssueStart(p, RoundParallelism(MaxParallelism(p, machine_)),
             /*paired=*/false);
}

void AdaptiveScheduler::RescheduleInter() {
  bool progress = true;
  while (progress &&
         running_.size() < static_cast<size_t>(options_.max_concurrent)) {
    progress = false;
    if (running_.empty()) {
      progress = StartFreshPair();
    } else if (running_.size() == 1) {
      progress = options_.policy == SchedPolicy::kInterWithAdj
                     ? RepairWithAdjustment()
                     : FillWithoutAdjustment();
    }
  }
}

TaskProfile AdaptiveScheduler::RemainingProfile(const Running& r) const {
  TaskProfile rem = r.profile;
  double left = env_->RemainingSeqTime(rem.id);
  left = std::max(left, 1e-9);
  rem.total_ios = rem.io_rate() * left;
  rem.seq_time = left;
  return rem;
}

double AdaptiveScheduler::QueryRemainingWork(int64_t query_id) const {
  double work = 0.0;
  for (const auto& [id, p] : all_) {
    if (p.query_id != query_id || finished_.count(id)) continue;
    auto rit = running_.find(id);
    work += rit != running_.end() ? env_->RemainingSeqTime(id) : p.seq_time;
  }
  return work;
}

namespace {
// Selects from `ids` the task extremizing the io rate; `want_max` picks the
// most IO-bound, otherwise the most CPU-bound. Ties go to arrival order.
TaskId ExtremeByRate(const std::vector<TaskId>& ids,
                     const std::map<TaskId, TaskProfile>& all, bool want_max) {
  TaskId best = -1;
  double best_rate = 0.0;
  for (TaskId id : ids) {
    double rate = all.at(id).io_rate();
    if (best < 0 || (want_max ? rate > best_rate : rate < best_rate)) {
      best = id;
      best_rate = rate;
    }
  }
  return best;
}
}  // namespace

double AdaptiveScheduler::RunningMemory() const {
  double used = 0.0;
  for (const auto& [id, r] : running_) used += r.profile.memory_pages;
  return used;
}

std::vector<TaskId> AdaptiveScheduler::FittingCandidates(
    const std::vector<TaskId>& ids) const {
  if (options_.memory_pages_limit <= 0.0) return ids;
  const double used = RunningMemory();
  std::vector<TaskId> out;
  for (TaskId id : ids) {
    if (used + all_.at(id).memory_pages <=
        options_.memory_pages_limit + 1e-9)
      out.push_back(id);
  }
  // A task larger than the whole budget must still run — alone.
  if (out.empty() && running_.empty()) return ids;
  return out;
}

TaskId AdaptiveScheduler::PickMostIoBound() const {
  std::vector<TaskId> ready_io_f = FittingCandidates(ready_io_);
  if (ready_io_f.empty()) return -1;
  if (options_.pairing_rule == PairingRule::kFifo && !options_.shortest_job_first)
    return ready_io_f.front();
  if (!options_.shortest_job_first)
    return ExtremeByRate(ready_io_f, all_, /*want_max=*/true);
  // SJF: restrict to the query with the least remaining work.
  double best_work = std::numeric_limits<double>::max();
  int64_t best_q = -1;
  for (TaskId id : ready_io_f) {
    double w = QueryRemainingWork(all_.at(id).query_id);
    if (w < best_work) {
      best_work = w;
      best_q = all_.at(id).query_id;
    }
  }
  std::vector<TaskId> filtered;
  for (TaskId id : ready_io_f)
    if (all_.at(id).query_id == best_q) filtered.push_back(id);
  return ExtremeByRate(filtered, all_, /*want_max=*/true);
}

TaskId AdaptiveScheduler::PickMostCpuBound() const {
  std::vector<TaskId> ready_cpu_f = FittingCandidates(ready_cpu_);
  if (ready_cpu_f.empty()) return -1;
  if (options_.pairing_rule == PairingRule::kFifo && !options_.shortest_job_first)
    return ready_cpu_f.front();
  if (!options_.shortest_job_first)
    return ExtremeByRate(ready_cpu_f, all_, /*want_max=*/false);
  double best_work = std::numeric_limits<double>::max();
  int64_t best_q = -1;
  for (TaskId id : ready_cpu_f) {
    double w = QueryRemainingWork(all_.at(id).query_id);
    if (w < best_work) {
      best_work = w;
      best_q = all_.at(id).query_id;
    }
  }
  std::vector<TaskId> filtered;
  for (TaskId id : ready_cpu_f)
    if (all_.at(id).query_id == best_q) filtered.push_back(id);
  return ExtremeByRate(filtered, all_, /*want_max=*/false);
}

TaskId AdaptiveScheduler::PickAnyReady() const {
  // FIFO across both queues; under SJF, the task from the shortest query.
  std::vector<TaskId> candidates;
  candidates.insert(candidates.end(), ready_io_.begin(), ready_io_.end());
  candidates.insert(candidates.end(), ready_cpu_.begin(), ready_cpu_.end());
  if (candidates.empty()) return -1;
  if (options_.shortest_job_first) {
    TaskId best = -1;
    double best_work = std::numeric_limits<double>::max();
    for (TaskId id : candidates) {
      double w = QueryRemainingWork(all_.at(id).query_id);
      if (w < best_work) {
        best_work = w;
        best = id;
      }
    }
    return best;
  }
  return *std::min_element(candidates.begin(), candidates.end());
}

double AdaptiveScheduler::RoundParallelism(double x) const {
  const double n = static_cast<double>(machine_.num_cpus);
  if (!options_.integer_parallelism) return std::clamp(x, 1e-6, n);
  double rounded = std::llround(x);
  return std::clamp(rounded, 1.0, n);
}

double AdaptiveScheduler::ClampIssued(double x) const {
  const double n = static_cast<double>(machine_.num_cpus);
  const double floor = options_.integer_parallelism ? 1.0 : 1e-6;
  return std::clamp(x, floor, n);
}

void AdaptiveScheduler::RemoveReady(TaskId id) {
  auto erase_from = [id](std::vector<TaskId>* v) {
    v->erase(std::remove(v->begin(), v->end(), id), v->end());
  };
  erase_from(&ready_io_);
  erase_from(&ready_cpu_);
}

void AdaptiveScheduler::IssueStart(const TaskProfile& task,
                                   double parallelism, bool paired) {
  parallelism = ClampIssued(parallelism);
  RemoveReady(task.id);
  running_[task.id] = Running{task, parallelism, paired};
  decisions_.push_back(
      {SchedDecision::Kind::kStart, env_->Now(), task.id, parallelism});
  XPRS_LOG(kDebug, "start task %lld (%s) x=%.2f",
           static_cast<long long>(task.id), task.name.c_str(), parallelism);
  if (starts_counter_ != nullptr) {
    starts_counter_->Increment();
    (paired ? pair_starts_counter_ : solo_starts_counter_)->Increment();
    parallelism_hist_->Observe(parallelism);
  }
  if (obs_.tracing()) {
    obs_.Emit({"decide start", "sched", 'i', env_->Now(), 0.0, task.id,
               {{"parallelism", parallelism},
                {"paired", paired},
                {"io_rate", task.io_rate()},
                {"name", task.name}}});
  }
  env_->StartTask(task.id, parallelism);
}

void AdaptiveScheduler::IssueAdjust(TaskId id, double parallelism) {
  auto it = running_.find(id);
  XPRS_CHECK(it != running_.end());
  // Guard against solver edge cases (rounding, degenerate balance points):
  // a started task must never be driven to parallelism 0 — that would
  // starve a running survivor forever.
  parallelism = ClampIssued(parallelism);
  it->second.parallelism = parallelism;
  ++num_adjustments_;
  decisions_.push_back(
      {SchedDecision::Kind::kAdjust, env_->Now(), id, parallelism});
  XPRS_LOG(kDebug, "adjust task %lld x=%.2f", static_cast<long long>(id),
           parallelism);
  if (adjusts_counter_ != nullptr) {
    adjusts_counter_->Increment();
    parallelism_hist_->Observe(parallelism);
  }
  if (obs_.tracing()) {
    obs_.Emit({"decide adjust", "sched", 'i', env_->Now(), 0.0, id,
               {{"parallelism", parallelism}}});
  }
  env_->AdjustParallelism(id, parallelism);
}

bool AdaptiveScheduler::OversizedWaiting() const {
  return OldestOversized() >= 0;
}

TaskId AdaptiveScheduler::OldestOversized() const {
  if (options_.memory_pages_limit <= 0.0) return -1;
  TaskId best = -1;
  auto consider = [&](TaskId id) {
    const TaskProfile& p = all_.at(id);
    if (p.memory_pages <= options_.memory_pages_limit + 1e-9) return;
    if (best < 0 || p.arrival_time < all_.at(best).arrival_time ||
        (p.arrival_time == all_.at(best).arrival_time && id < best))
      best = id;
  };
  for (TaskId id : ready_io_) consider(id);
  for (TaskId id : ready_cpu_) consider(id);
  return best;
}

bool AdaptiveScheduler::StartFreshPair() {
  // A task larger than the whole memory budget can only ever run alone.
  // Run it now, while the machine is drained — otherwise re-pairing keeps
  // the machine busy and the task starves behind every later pair.
  TaskId oversized = OldestOversized();
  if (oversized >= 0) {
    const TaskProfile& p = all_.at(oversized);
    IssueStart(p, RoundParallelism(MaxParallelism(p, machine_)),
               /*paired=*/false);
    return true;
  }

  TaskId fi = PickMostIoBound();
  TaskId fj = PickMostCpuBound();

  // Splitting processors between a pair needs at least two of them in
  // integer mode: with N=1 the rounded split would starve one side at
  // parallelism 0.
  const bool can_split =
      !options_.integer_parallelism || machine_.num_cpus >= 2;

  if (fi >= 0 && fj >= 0 && options_.max_concurrent >= 2 && can_split) {
    const TaskProfile& pi = all_.at(fi);
    const TaskProfile& pj = all_.at(fj);
    // §5 extension: never overcommit working memory with a pair.
    bool fits_together =
        options_.memory_pages_limit <= 0.0 ||
        pi.memory_pages + pj.memory_pages <=
            options_.memory_pages_limit + 1e-9;
    InterCost ic = TInter(pi, pj, machine_, options_.model_seek_interference);
    double t_intra_sum = TIntra(pi, machine_) + TIntra(pj, machine_);
    if (fits_together && ic.valid && ic.t_inter < t_intra_sum) {
      double xi = ic.point.xi;
      double xj = ic.point.xj;
      if (options_.integer_parallelism) {
        const int n = machine_.num_cpus;
        int xi_r = static_cast<int>(std::llround(xi));
        xi_r = std::clamp(xi_r, 1, std::max(1, n - 1));
        xi = xi_r;
        xj = std::max(1, n - xi_r);
      }
      IssueStart(pi, xi, /*paired=*/true);
      IssueStart(pj, xj, /*paired=*/true);
      return true;
    }
    // Inter-operation parallelism not worthwhile (e.g. two sequential scans
    // whose seek interference eats the gain): run the IO-bound task alone.
    IssueStart(pi, RoundParallelism(MaxParallelism(pi, machine_)),
               /*paired=*/false);
    return true;
  }

  // Only one side populated (§2.5 step 8): intra-only, one at a time.
  TaskId lone = fi >= 0 ? fi : fj;
  if (lone < 0) return false;
  const TaskProfile& p = all_.at(lone);
  IssueStart(p, RoundParallelism(MaxParallelism(p, machine_)),
             /*paired=*/false);
  return true;
}

bool AdaptiveScheduler::RepairWithAdjustment() {
  XPRS_CHECK_EQ(running_.size(), 1u);
  auto& [rid, run] = *running_.begin();
  TaskProfile rem = RemainingProfile(run);
  const bool r_is_io = IsIoBound(run.profile, machine_);
  // While an oversized task waits, stop backfilling partners so the
  // machine drains and the oversized task gets its solo slot.
  const bool can_split =
      !options_.integer_parallelism || machine_.num_cpus >= 2;
  TaskId partner = -1;
  if (can_split && !OversizedWaiting())
    partner = r_is_io ? PickMostCpuBound() : PickMostIoBound();

  if (partner >= 0) {
    const TaskProfile& pp = all_.at(partner);
    InterCost ic = TInter(rem, pp, machine_, options_.model_seek_interference);
    double t_intra_sum = TIntra(rem, machine_) + TIntra(pp, machine_);
    if (ic.valid && ic.t_inter < t_intra_sum) {
      double xr = ic.point.xi;  // TInter(rem, pp): xi belongs to rem.
      double xp = ic.point.xj;
      if (options_.integer_parallelism) {
        const int n = machine_.num_cpus;
        int xr_r = static_cast<int>(std::llround(xr));
        xr_r = std::clamp(xr_r, 1, std::max(1, n - 1));
        xr = xr_r;
        xp = std::max(1, n - xr_r);
      }
      if (std::abs(xr - run.parallelism) > 1e-9) IssueAdjust(rid, xr);
      IssueStart(pp, xp, /*paired=*/true);
      return true;
    }
  }

  // No partner worth pairing: give the running task its full intra-op
  // parallelism (this is exactly the adjustment INTER-WITHOUT-ADJ misses).
  double target = RoundParallelism(MaxParallelism(rem, machine_));
  if (std::abs(target - run.parallelism) > 1e-9) IssueAdjust(rid, target);
  return false;
}

bool AdaptiveScheduler::FillWithoutAdjustment() {
  XPRS_CHECK_EQ(running_.size(), 1u);
  const auto& [rid, run] = *running_.begin();
  (void)rid;
  // Only a paired survivor is backfilled; a task started by the intra-only
  // path runs alone to completion (paper §3: INTER-WITHOUT-ADJ falls back
  // to one-at-a-time when no pairing is in flight).
  if (!run.paired) return false;
  // Drain instead of backfilling while an oversized task waits (see
  // RepairWithAdjustment).
  if (OversizedWaiting()) return false;
  const double n = static_cast<double>(machine_.num_cpus);
  double avail = n - run.parallelism;
  if (options_.integer_parallelism) avail = std::floor(avail + 1e-9);
  if (avail < 1.0) return false;

  const double b = machine_.nominal_bandwidth();
  const double u_run = run.profile.io_rate() * run.parallelism;

  std::vector<TaskId> candidates;
  candidates.insert(candidates.end(), ready_io_.begin(), ready_io_.end());
  candidates.insert(candidates.end(), ready_cpu_.begin(), ready_cpu_.end());
  candidates = FittingCandidates(candidates);
  if (candidates.empty()) return false;

  // Pick the task that, executed on exactly the currently available
  // processors, lands the system closest to the maximum-utilization corner
  // (N, B) — the §3 description of INTER-WITHOUT-ADJ. The parallelism is
  // not capped at the task's maxp: without the adjustment mechanism the
  // master has no later opportunity to reclaim processors.
  TaskId best = -1;
  double best_dist = std::numeric_limits<double>::max();
  for (TaskId id : candidates) {
    const TaskProfile& p = all_.at(id);
    double pio = u_run + p.io_rate() * avail;
    double dio = (b - pio) / b;
    double dist = dio * dio;  // all processors used, so only io distance
    if (dist < best_dist) {
      best_dist = dist;
      best = id;
    }
  }
  if (best < 0) return false;
  IssueStart(all_.at(best), avail, /*paired=*/true);
  return true;
}

}  // namespace xprs
