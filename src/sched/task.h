// TaskProfile: the scheduler's abstract view of a plan fragment.
//
// A task (plan fragment, §2.1) is characterized by its sequential execution
// time T_i, its total number of i/o requests D_i — hence its sequential i/o
// rate C_i = D_i / T_i — and its access pattern. Everything the adaptive
// scheduler does depends only on these quantities.

#ifndef XPRS_SCHED_TASK_H_
#define XPRS_SCHED_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/machine.h"

namespace xprs {

/// Identifies a task within a scheduling session.
using TaskId = int64_t;

/// Abstract description of one schedulable task (plan fragment).
struct TaskProfile {
  TaskId id = -1;
  std::string name;

  /// T_i: estimated (or measured) execution time when run sequentially, in
  /// seconds. Must be > 0.
  double seq_time = 0.0;

  /// D_i: total number of i/o requests the task issues. Must be >= 0.
  double total_ios = 0.0;

  /// Dominant access pattern of the i/o stream.
  IoPattern pattern = IoPattern::kSequential;

  /// Query this fragment belongs to (used by shortest-job-first and the
  /// multi-user experiments). -1 when standalone.
  int64_t query_id = -1;

  /// Arrival time in seconds for continuous-sequence scheduling (§2.5
  /// extension: S_io and S_cpu become queues). 0 for a fixed set.
  double arrival_time = 0.0;

  /// Ids of tasks that must finish before this one becomes runable
  /// (order-dependencies between the fragments of a bushy plan, §4).
  std::vector<TaskId> deps;

  /// Working memory the task needs while running, in 8 KB pages (hash
  /// tables it builds, sort buffers it fills). The paper leaves memory
  /// constraints as future work (§5); this field feeds the
  /// memory-constrained scheduling extension.
  double memory_pages = 0.0;

  /// C_i = D_i / T_i, the sequential i/o rate in io/s.
  double io_rate() const { return seq_time > 0 ? total_ios / seq_time : 0.0; }

  std::string ToString() const;
};

/// True iff the task is IO-bound on the given machine: C_i > B/N (§2.2).
bool IsIoBound(const TaskProfile& task, const MachineConfig& machine);

/// Maximum useful intra-operation parallelism (§2.2): an IO-bound task runs
/// out of bandwidth at B/C_i; a CPU-bound task runs out of processors at N.
/// The bandwidth used is the single-stream ceiling for the task's pattern.
double MaxParallelism(const TaskProfile& task, const MachineConfig& machine);

}  // namespace xprs

#endif  // XPRS_SCHED_TASK_H_
