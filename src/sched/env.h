// ExecutionEnv: the interface through which the adaptive scheduler drives
// an execution substrate.
//
// Two substrates implement it: the deterministic fluid simulator
// (xprs::FluidSimulator, used for all performance experiments) and the
// real-thread parallel executor adapter (xprs::ParallelEnv). The scheduler
// issues StartTask / AdjustParallelism commands; the substrate calls back
// into the scheduler on arrivals and completions.

#ifndef XPRS_SCHED_ENV_H_
#define XPRS_SCHED_ENV_H_

#include "sched/task.h"

namespace xprs {

/// Substrate interface the scheduler issues commands to.
class ExecutionEnv {
 public:
  virtual ~ExecutionEnv() = default;

  /// Current time in seconds.
  virtual double Now() const = 0;

  /// Begins executing a submitted task with the given degree of
  /// intra-operation parallelism. The task must be runable and not running.
  virtual void StartTask(TaskId id, double parallelism) = 0;

  /// Adjusts the degree of parallelism of a running task (the §2.4
  /// mechanism). The substrate may apply it after a protocol latency.
  virtual void AdjustParallelism(TaskId id, double parallelism) = 0;

  /// Sequential-seconds of work remaining in a running task — T_i times the
  /// unfinished fraction. Used by the scheduler to re-evaluate pairings.
  virtual double RemainingSeqTime(TaskId id) const = 0;
};

}  // namespace xprs

#endif  // XPRS_SCHED_ENV_H_
