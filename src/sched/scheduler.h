// The adaptive processor scheduling algorithm of §2.5, plus the two
// baseline policies of §3.
//
// Policies:
//   kIntraOnly        — run tasks one at a time, each at its maximum
//                       intra-operation parallelism.
//   kInterWithoutAdj  — pair an IO-bound with a CPU-bound task at their
//                       IO-CPU balance point, but never adjust a running
//                       task: when one finishes, fill the leftover
//                       processors with the queued task that gets the
//                       system closest to the maximum-utilization point.
//   kInterWithAdj     — the paper's full algorithm: pair the most IO-bound
//                       with the most CPU-bound runable task at the balance
//                       point, and on every completion re-pair and
//                       dynamically adjust the survivor's parallelism so
//                       the system stays at the balance point.
//
// The scheduler is substrate-agnostic: it sees TaskProfiles and drives an
// ExecutionEnv. Order dependencies between tasks (fragments of a bushy
// plan, §4) are honored: a task becomes runable only when its deps finish.

#ifndef XPRS_SCHED_SCHEDULER_H_
#define XPRS_SCHED_SCHEDULER_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "sched/cost.h"
#include "sched/env.h"
#include "sched/machine.h"
#include "sched/task.h"

namespace xprs {

/// Scheduling policy (the three algorithms compared in §3).
enum class SchedPolicy { kIntraOnly, kInterWithoutAdj, kInterWithAdj };

const char* SchedPolicyName(SchedPolicy policy);

/// How the pair to run is chosen from the ready queues.
enum class PairingRule {
  /// The paper's rule: most IO-bound with most CPU-bound.
  kExtremes,
  /// Ablation baseline: first arrival from each queue.
  kFifo,
};

/// Tunables of the adaptive scheduler.
struct SchedulerOptions {
  SchedPolicy policy = SchedPolicy::kInterWithAdj;

  /// Task-pair selection rule (§2.5 uses kExtremes).
  PairingRule pairing_rule = PairingRule::kExtremes;

  /// Model the §2.3 bandwidth degradation between concurrent sequential
  /// streams when computing balance points and cost estimates.
  bool model_seek_interference = true;

  /// Round degrees of parallelism to whole processors (real backends).
  /// Disable for continuous analytic studies.
  bool integer_parallelism = true;

  /// Prefer tasks from the query with the least remaining work when
  /// choosing what to run (the §2.5 multi-user response-time heuristic).
  bool shortest_job_first = false;

  /// Upper bound on concurrently running tasks. The paper proves two are
  /// sufficient for full utilization; the ablation bench raises this.
  int max_concurrent = 2;

  /// Total working memory available to concurrently running tasks, in
  /// 8 KB pages; 0 = unlimited. Implements the §5 future-work extension:
  /// "we cannot run two hashjoins in parallel unless there is enough
  /// memory for both hash tables." A task whose own requirement exceeds
  /// the limit still runs (alone); pairing just never overcommits.
  double memory_pages_limit = 0.0;
};

/// One scheduling action, recorded for tests and traces.
struct SchedDecision {
  enum class Kind { kStart, kAdjust } kind;
  double time = 0.0;
  TaskId task = -1;
  double parallelism = 0.0;
  std::string ToString() const;
};

/// Sanity-checks a decision log, optionally against per-task finish times
/// (seconds since run start, as MasterRunResult records them). The §2.2
/// fluid model treats parallelism as a pure time-rescaling knob — a task's
/// io rate C_i and total io demand D_i are properties of the task — so a
/// consistent log must (a) start every task at most once, (b) only adjust
/// tasks that have started, (c) never issue a non-positive parallelism, and
/// (d) keep timestamps non-decreasing. With finish times, adjustments must
/// not target tasks that already finished. Returns FailedPrecondition
/// naming the first offending decision otherwise.
Status ValidateSchedDecisions(
    const std::vector<SchedDecision>& decisions,
    const std::map<TaskId, double>* finish_times = nullptr);

/// The adaptive scheduler (§2.5). Event-driven: the substrate calls
/// Submit() when a task arrives and OnTaskFinished() when one completes;
/// the scheduler reacts by issuing StartTask / AdjustParallelism commands
/// to the bound ExecutionEnv.
class AdaptiveScheduler {
 public:
  AdaptiveScheduler(const MachineConfig& machine,
                    const SchedulerOptions& options);

  /// Attaches the substrate. Must be called before Submit().
  void Bind(ExecutionEnv* env);

  /// Attaches trace/metrics publishing. Optional; either pointer may be
  /// null. Call before Submit() so the whole run is covered.
  void SetObservability(const Observability& obs);

  /// Registers a task. It becomes runable once all its deps have finished
  /// (immediately if it has none) and may be started during this call.
  void Submit(const TaskProfile& task);

  /// Registers a set of simultaneously arriving tasks, then schedules once.
  /// Unlike repeated Submit() calls, the initial pairing sees the whole
  /// batch (the §3 experiments hand the scheduler all ten tasks at once).
  void SubmitBatch(const std::vector<TaskProfile>& tasks);

  /// Substrate callback: `id` has completed. Triggers re-pairing and (under
  /// kInterWithAdj) dynamic parallelism adjustment of the survivor.
  void OnTaskFinished(TaskId id);

  /// True when nothing is running and no runable task is waiting.
  bool Idle() const;

  /// Number of tasks neither finished nor running (waiting or blocked).
  size_t NumPending() const;

  /// Total dynamic parallelism adjustments issued.
  size_t num_adjustments() const { return num_adjustments_; }

  /// Full decision log (starts and adjustments, in order).
  const std::vector<SchedDecision>& decisions() const { return decisions_; }

  /// Ids of currently running tasks.
  std::vector<TaskId> running() const;

  /// Currently assigned parallelism of a running task.
  double ParallelismOf(TaskId id) const;

 private:
  struct Running {
    TaskProfile profile;
    double parallelism = 0.0;
    /// True when the task runs as part of an inter-operation pair (initial
    /// pairing or backfill). kInterWithoutAdj only backfills alongside
    /// paired survivors; tasks started by the intra-only path run alone.
    bool paired = false;
  };

  // Adds a task to the bookkeeping without scheduling.
  void RegisterTask(const TaskProfile& task);

  // Re-evaluates what should run; called after every submit/finish event.
  void Reschedule();
  void RescheduleIntraOnly();
  void RescheduleInter();

  // The profile of a running task with seq_time/total_ios scaled down to
  // the unfinished remainder (C_i is preserved).
  TaskProfile RemainingProfile(const Running& r) const;

  // Queue selectors; honor shortest_job_first and the memory limit.
  // Return -1 if empty.
  TaskId PickMostIoBound() const;
  TaskId PickMostCpuBound() const;
  TaskId PickAnyReady() const;

  // Memory accounting for the §5 extension: working memory of running
  // tasks, and the subset of `ids` that fits alongside them (falls back to
  // `ids` when nothing is running, so oversized tasks still run alone).
  double RunningMemory() const;
  std::vector<TaskId> FittingCandidates(const std::vector<TaskId>& ids) const;

  // Remaining sequential work of the query a task belongs to (SJF key).
  double QueryRemainingWork(int64_t query_id) const;

  // True iff a ready task can never fit within memory_pages_limit at all
  // (it must run alone). Such tasks would otherwise starve forever behind
  // re-pairing under a continuous arrival stream.
  bool OversizedWaiting() const;
  // The waiting oversized task with the earliest arrival (ties: lowest id);
  // -1 if none.
  TaskId OldestOversized() const;

  // Command wrappers that round parallelism per options, update
  // bookkeeping and record decisions.
  void IssueStart(const TaskProfile& task, double parallelism, bool paired);
  void IssueAdjust(TaskId id, double parallelism);
  double RoundParallelism(double x) const;
  // Final guard applied to every start/adjust: a started task always keeps
  // parallelism >= 1 (integer mode) or > 0 (continuous mode), whatever the
  // balance-point solver produced.
  double ClampIssued(double x) const;

  // Removes `id` from the ready sets.
  void RemoveReady(TaskId id);

  // Starts the pair (or a lone task) from the ready sets, assuming nothing
  // is running. Shared by the two inter policies. Returns true if it
  // started anything.
  bool StartFreshPair();

  // kInterWithAdj: one task running, try to pair it with a fresh partner
  // and adjust its parallelism; otherwise run it at max parallelism.
  // Returns true if a partner was started.
  bool RepairWithAdjustment();

  // kInterWithoutAdj: one task running at a fixed parallelism; start the
  // queued task that gets closest to the maximum-utilization corner using
  // only the leftover processors. Returns true if a task was started.
  bool FillWithoutAdjustment();

  MachineConfig machine_;
  SchedulerOptions options_;
  ExecutionEnv* env_ = nullptr;

  std::map<TaskId, TaskProfile> all_;
  std::vector<TaskId> ready_io_;   // runable IO-bound tasks, arrival order
  std::vector<TaskId> ready_cpu_;  // runable CPU-bound tasks, arrival order
  std::map<TaskId, int> blocked_;  // task -> unmet dependency count
  std::map<TaskId, std::vector<TaskId>> dependents_;
  std::map<TaskId, Running> running_;
  std::set<TaskId> finished_;

  size_t num_adjustments_ = 0;
  std::vector<SchedDecision> decisions_;
  bool in_reschedule_ = false;

  Observability obs_;
  Counter* starts_counter_ = nullptr;       // sched.starts
  Counter* adjusts_counter_ = nullptr;      // sched.adjustments
  Counter* pair_starts_counter_ = nullptr;  // sched.pair_starts
  Counter* solo_starts_counter_ = nullptr;  // sched.solo_starts
  Histogram* parallelism_hist_ = nullptr;   // sched.parallelism
};

}  // namespace xprs

#endif  // XPRS_SCHED_SCHEDULER_H_
