// Execution-time estimates for intra-only and paired (inter-operation)
// execution (paper §2.5).
//
//   T_intra(f_i)        = T_i / maxp(f_i)
//   T_inter(f_i, f_j)   = min(T_i/x_i, T_j/x_j) + T_ij / maxp_ij
//
// where (x_i, x_j) is the IO-CPU balance point, T_ij is the sequential time
// remaining in the longer task when the shorter finishes, and maxp_ij is
// the maximum parallelism of that remaining task.

#ifndef XPRS_SCHED_COST_H_
#define XPRS_SCHED_COST_H_

#include <string>

#include "sched/balance.h"
#include "sched/machine.h"
#include "sched/task.h"

namespace xprs {

/// Elapsed time of running the task alone with maximum intra-operation
/// parallelism: T_i / maxp(f_i).
double TIntra(const TaskProfile& task, const MachineConfig& machine);

/// Result of the paired-execution estimate.
struct InterCost {
  /// False when no balance point exists (both tasks on one side of B/N);
  /// the remaining fields are meaningless in that case.
  bool valid = false;
  /// Estimated elapsed time of the paired execution.
  double t_inter = 0.0;
  /// The balance point used.
  BalancePoint point;
  /// Id of the task estimated to finish first at the balance point.
  TaskId first_finisher = -1;
  /// Sequential time remaining in the other task at that moment (T_ij).
  double remaining_seq_time = 0.0;

  std::string ToString() const;
};

/// Estimated elapsed time of running f_i and f_j in parallel at their
/// IO-CPU balance point, finishing the survivor alone at its maximum
/// parallelism (§2.5).
InterCost TInter(const TaskProfile& ti, const TaskProfile& tj,
                 const MachineConfig& machine,
                 bool model_seek_interference = true);

}  // namespace xprs

#endif  // XPRS_SCHED_COST_H_
