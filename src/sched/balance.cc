#include "sched/balance.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

std::string BalancePoint::ToString() const {
  if (!valid) return "BalancePoint{invalid}";
  return StrFormat("BalancePoint{xi=%.2f xj=%.2f B=%.1f%s}", xi, xj,
                   effective_bandwidth, exact ? "" : " approx");
}

double EffectiveBandwidth(const MachineConfig& machine,
                          const std::vector<IoStream>& streams) {
  const double br = machine.rand_bandwidth();

  double total = 0.0;
  for (const auto& s : streams) total += s.rate;
  if (total <= 0.0) return machine.seq_bandwidth();

  // Special case: a single stream sees its own pattern's ceiling.
  size_t active = 0;
  const IoStream* only = nullptr;
  for (const auto& s : streams) {
    if (s.rate > 0.0) {
      ++active;
      only = &s;
    }
  }
  if (active == 1) {
    return machine.single_stream_bandwidth(only->pattern, only->parallelism);
  }

  // Multiple streams: the dominant sequential stream (if any) preserves a
  // fraction w of the gap between sequential and random bandwidth, where w
  // is how much its traffic exceeds everybody else's combined.
  // With streams u >= v (both sequential) this is w = (u - v) / u =
  // 1 - v/u, i.e. the paper's B = Br + (1 - Ci xi / Cj xj)(Bs - Br).
  double w = 0.0;
  for (const auto& s : streams) {
    if (s.pattern != IoPattern::kSequential || s.rate <= 0.0) continue;
    double rest = total - s.rate;
    w = std::max(w, (s.rate - rest) / s.rate);
  }
  w = std::clamp(w, 0.0, 1.0);
  // The paper's equation blends toward the strict sequential bandwidth Bs;
  // concurrent parallel streams are additionally capped at the
  // almost-sequential ceiling (reads become unordered, §3), so a strongly
  // io-dominant pair still achieves the full nominal bandwidth.
  const double raw = br + w * (machine.seq_bandwidth() - br);
  return std::min(raw, machine.almost_seq_bandwidth());
}

BalancePoint SolveBalanceConstantB(double ci, double cj, int num_cpus,
                                   double bandwidth) {
  BalancePoint bp;
  const double n = static_cast<double>(num_cpus);
  const double b = bandwidth;
  // Order so that ci is the larger rate; remember whether we swapped.
  bool swapped = false;
  if (ci < cj) {
    std::swap(ci, cj);
    swapped = true;
  }
  if (ci <= cj) return bp;  // equal rates: the system is a single line.
  double xi = (b - cj * n) / (ci - cj);
  double xj = (ci * n - b) / (ci - cj);
  if (xi <= 0.0 || xj <= 0.0) return bp;  // both tasks on one side of B/N.
  bp.valid = true;
  bp.exact = true;
  bp.xi = swapped ? xj : xi;
  bp.xj = swapped ? xi : xj;
  bp.effective_bandwidth = b;
  return bp;
}

namespace {

// Residual of the coupled balance equations at a given split: io demand
// minus effective bandwidth, with x_j = N - x_i.
double Residual(double xi, double ci, double cj, IoPattern pi, IoPattern pj,
                int num_cpus, const MachineConfig& machine) {
  const double xj = static_cast<double>(num_cpus) - xi;
  std::vector<IoStream> streams = {{ci * xi, pi, xi}, {cj * xj, pj, xj}};
  return ci * xi + cj * xj - EffectiveBandwidth(machine, streams);
}

}  // namespace

BalancePoint SolveBalance(const TaskProfile& ti, const TaskProfile& tj,
                          const MachineConfig& machine,
                          bool model_seek_interference) {
  const double ci = ti.io_rate();
  const double cj = tj.io_rate();
  const int n = machine.num_cpus;

  if (!model_seek_interference) {
    return SolveBalanceConstantB(ci, cj, n, machine.nominal_bandwidth());
  }

  // Both streams random: the effective bandwidth is the constant random
  // bandwidth, so the closed form applies directly.
  if (ti.pattern == IoPattern::kRandom && tj.pattern == IoPattern::kRandom) {
    return SolveBalanceConstantB(ci, cj, n, machine.rand_bandwidth());
  }

  // Scan x_i over (0, N) for sign changes of the residual, bisect each
  // bracket, and keep the root with the highest effective bandwidth.
  constexpr int kScanSteps = 2048;
  constexpr int kBisectIters = 60;
  const double dn = static_cast<double>(n);
  BalancePoint best;

  auto eval = [&](double xi) {
    return Residual(xi, ci, cj, ti.pattern, tj.pattern, n, machine);
  };

  double prev_x = dn * 1e-6;
  double prev_f = eval(prev_x);
  for (int k = 1; k <= kScanSteps; ++k) {
    double x = dn * (static_cast<double>(k) / kScanSteps);
    if (k == kScanSteps) x = dn * (1.0 - 1e-6);
    double f = eval(x);
    if ((prev_f <= 0.0 && f >= 0.0) || (prev_f >= 0.0 && f <= 0.0)) {
      // Bisect [prev_x, x].
      double lo = prev_x, hi = x, flo = prev_f;
      for (int it = 0; it < kBisectIters; ++it) {
        double mid = 0.5 * (lo + hi);
        double fm = eval(mid);
        if ((flo <= 0.0) == (fm <= 0.0)) {
          lo = mid;
          flo = fm;
        } else {
          hi = mid;
        }
      }
      double xi = 0.5 * (lo + hi);
      double xj = dn - xi;
      if (xi > 1e-9 && xj > 1e-9) {
        std::vector<IoStream> streams = {{ci * xi, ti.pattern, xi},
                                         {cj * xj, tj.pattern, xj}};
        double beff = EffectiveBandwidth(machine, streams);
        if (!best.valid || beff > best.effective_bandwidth) {
          best.valid = true;
          best.exact = true;
          best.xi = xi;
          best.xj = xj;
          best.effective_bandwidth = beff;
        }
      }
    }
    prev_x = x;
    prev_f = f;
  }
  if (best.valid) return best;

  // No coupled root: fall back to the constant-B closed form if it admits
  // one (marked approximate so callers can tell).
  BalancePoint fallback =
      SolveBalanceConstantB(ci, cj, n, machine.nominal_bandwidth());
  fallback.exact = false;
  return fallback;
}

}  // namespace xprs
