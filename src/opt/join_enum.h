// Join-order enumeration: System-R style dynamic programming over relation
// subsets, producing left-deep or bushy sequential plans costed with the
// CostModel ([HONG91]'s phase one), plus a top-K candidate enumeration used
// by the §4 parcost-driven optimizer (for which local pruning is unsound,
// so several plans per subset are retained).

#ifndef XPRS_OPT_JOIN_ENUM_H_
#define XPRS_OPT_JOIN_ENUM_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/plan.h"
#include "opt/cost_model.h"
#include "opt/query.h"

namespace xprs {

/// Plan-tree shape restriction for phase-one enumeration.
enum class TreeShape { kLeftDeep, kBushy };

const char* TreeShapeName(TreeShape shape);

/// A costed candidate plan. `colmap[i]` gives (relation index, column
/// index) of output column i.
struct CandidatePlan {
  std::unique_ptr<PlanNode> plan;
  std::vector<std::pair<int, size_t>> colmap;
  double seqcost = 0.0;
};

/// The enumerator. Handles up to 20 relations (bitset-bounded), though the
/// exhaustive §4 path is only practical for small queries.
class JoinEnumerator {
 public:
  explicit JoinEnumerator(const CostModel* model);

  /// The cheapest (by seqcost) sequential plan of the requested shape.
  /// Requires a connected join graph.
  StatusOr<CandidatePlan> BestPlan(const QuerySpec& query, TreeShape shape);

  /// Up to `per_subset` cheapest plans retained per relation subset,
  /// bushy shapes included; returns the surviving complete plans ordered
  /// by seqcost. Used by parcost-driven optimization where the best
  /// parallel plan need not be the best sequential one.
  StatusOr<std::vector<CandidatePlan>> TopPlans(const QuerySpec& query,
                                                size_t per_subset);

  /// The best access path (seq scan vs index scan) for one base relation.
  CandidatePlan BestAccessPath(const QuerySpec& query, int rel) const;

 private:
  // All join-method alternatives combining `left` and `right` (which must
  // be joinable via the query's equi-join graph).
  std::vector<CandidatePlan> JoinCandidates(const QuerySpec& query,
                                            const CandidatePlan& left,
                                            uint32_t left_set,
                                            const CandidatePlan& right,
                                            uint32_t right_set) const;

  // Finds an equi-join connecting the two sets; false if none.
  bool FindJoinPred(const QuerySpec& query,
                    const std::vector<std::pair<int, size_t>>& left_map,
                    uint32_t left_set, uint32_t right_set,
                    const std::vector<std::pair<int, size_t>>& right_map,
                    size_t* left_col, size_t* right_col) const;

  StatusOr<std::vector<CandidatePlan>> Enumerate(const QuerySpec& query,
                                                 TreeShape shape,
                                                 size_t per_subset);

  const CostModel* const model_;
};

}  // namespace xprs

#endif  // XPRS_OPT_JOIN_ENUM_H_
