// Query specification consumed by the optimizer: base relations with
// selection predicates plus an equi-join graph.

#ifndef XPRS_OPT_QUERY_H_
#define XPRS_OPT_QUERY_H_

#include <cstddef>
#include <vector>

#include "exec/expr.h"
#include "storage/catalog.h"

namespace xprs {

/// A conjunctive select-project-join query.
struct QuerySpec {
  struct BaseRel {
    Table* table = nullptr;
    /// Selection on this relation (column indexes are relative to the
    /// relation's own schema).
    Predicate pred;
  };
  std::vector<BaseRel> relations;

  struct EquiJoin {
    int left_rel = 0;
    size_t left_col = 0;
    int right_rel = 0;
    size_t right_col = 0;
  };
  std::vector<EquiJoin> joins;
};

}  // namespace xprs

#endif  // XPRS_OPT_QUERY_H_
