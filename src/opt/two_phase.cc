#include "opt/two_phase.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

std::string OptimizedQuery::ToString() const {
  return StrFormat(
      "OptimizedQuery{seqcost=%.3fs parcost=%.3fs fragments=%zu %s}\n%s",
      seqcost, parcost, profiles.size(),
      IsLeftDeep(*plan) ? "left-deep" : "bushy", plan->ToString().c_str());
}

TwoPhaseOptimizer::TwoPhaseOptimizer(const MachineConfig& machine,
                                     const CostModel* model,
                                     const SchedulerOptions& sched_options)
    : machine_(machine), model_(model), sched_options_(sched_options) {
  XPRS_CHECK(model != nullptr);
}

double TwoPhaseOptimizer::ParCost(const PlanNode& plan,
                                  int64_t query_id) const {
  FragmentGraph graph = FragmentGraph::Decompose(plan);
  std::vector<TaskProfile> profiles =
      model_->FragmentProfiles(graph, query_id);

  // T_n(F(p)): run the adaptive scheduling algorithm itself over the
  // estimated profiles, on an idealized fluid machine (instant adjustment,
  // no process overhead) — the cost-estimation counterpart of §2.5.
  AdaptiveScheduler scheduler(machine_, sched_options_);
  SimOptions sim_options;
  sim_options.adjust_latency = 0.0;
  sim_options.process_overhead = 0.0;
  sim_options.excess_penalty = 0.0;
  FluidSimulator sim(machine_, sim_options);
  SimResult result = sim.Run(&scheduler, profiles);
  return result.elapsed;
}

OptimizedQuery TwoPhaseOptimizer::Finalize(CandidatePlan candidate,
                                           int64_t query_id) const {
  OptimizedQuery out;
  out.seqcost = candidate.seqcost;
  out.parcost = ParCost(*candidate.plan, query_id);
  out.plan = std::move(candidate.plan);
  out.colmap = std::move(candidate.colmap);
  FragmentGraph graph = FragmentGraph::Decompose(*out.plan);
  out.profiles = model_->FragmentProfiles(graph, query_id);
  return out;
}

StatusOr<OptimizedQuery> TwoPhaseOptimizer::Optimize(const QuerySpec& query,
                                                     TreeShape shape) {
  JoinEnumerator enumerator(model_);
  XPRS_ASSIGN_OR_RETURN(CandidatePlan best, enumerator.BestPlan(query, shape));
  return Finalize(std::move(best), /*query_id=*/0);
}

double TwoPhaseOptimizer::BatchCost(
    const std::vector<const PlanNode*>& plans) const {
  std::vector<TaskProfile> all;
  for (size_t qi = 0; qi < plans.size(); ++qi) {
    XPRS_CHECK(plans[qi] != nullptr);
    FragmentGraph graph = FragmentGraph::Decompose(*plans[qi]);
    std::vector<TaskProfile> profiles = model_->FragmentProfiles(
        graph, static_cast<int64_t>(qi), static_cast<TaskId>(qi) * 100000);
    all.insert(all.end(), profiles.begin(), profiles.end());
  }
  AdaptiveScheduler scheduler(machine_, sched_options_);
  SimOptions sim_options;
  sim_options.adjust_latency = 0.0;
  sim_options.process_overhead = 0.0;
  sim_options.excess_penalty = 0.0;
  FluidSimulator sim(machine_, sim_options);
  return sim.Run(&scheduler, all).elapsed;
}

StatusOr<std::vector<OptimizedQuery>> TwoPhaseOptimizer::OptimizeBatch(
    const std::vector<QuerySpec>& queries, double* batch_makespan,
    size_t per_subset, int max_rounds) {
  XPRS_CHECK(batch_makespan != nullptr);
  JoinEnumerator enumerator(model_);

  // Candidate sets per query.
  std::vector<std::vector<CandidatePlan>> candidates;
  candidates.reserve(queries.size());
  for (const QuerySpec& q : queries) {
    XPRS_ASSIGN_OR_RETURN(std::vector<CandidatePlan> cands,
                          enumerator.TopPlans(q, per_subset));
    XPRS_CHECK(!cands.empty());
    candidates.push_back(std::move(cands));
  }

  // Start from each query's best-seqcost plan; improve one coordinate at
  // a time against the *batch* makespan.
  std::vector<size_t> choice(queries.size(), 0);
  auto chosen_plans = [&]() {
    std::vector<const PlanNode*> plans;
    for (size_t qi = 0; qi < queries.size(); ++qi)
      plans.push_back(candidates[qi][choice[qi]].plan.get());
    return plans;
  };
  double best = BatchCost(chosen_plans());

  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      size_t original = choice[qi];
      for (size_t ci = 0; ci < candidates[qi].size(); ++ci) {
        if (ci == original) continue;
        choice[qi] = ci;
        double cost = BatchCost(chosen_plans());
        if (cost + 1e-9 < best) {
          best = cost;
          original = ci;
          improved = true;
        }
      }
      choice[qi] = original;
    }
    if (!improved) break;
  }

  *batch_makespan = best;
  std::vector<OptimizedQuery> out;
  out.reserve(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    out.push_back(Finalize(std::move(candidates[qi][choice[qi]]),
                           static_cast<int64_t>(qi)));
  }
  return out;
}

StatusOr<OptimizedQuery> TwoPhaseOptimizer::OptimizeParCost(
    const QuerySpec& query, size_t per_subset) {
  JoinEnumerator enumerator(model_);
  XPRS_ASSIGN_OR_RETURN(std::vector<CandidatePlan> candidates,
                        enumerator.TopPlans(query, per_subset));
  XPRS_CHECK(!candidates.empty());

  size_t best_idx = 0;
  double best_parcost = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double pc = ParCost(*candidates[i].plan, /*query_id=*/0);
    if (i == 0 || pc < best_parcost) {
      best_parcost = pc;
      best_idx = i;
    }
  }
  return Finalize(std::move(candidates[best_idx]), /*query_id=*/0);
}

}  // namespace xprs
