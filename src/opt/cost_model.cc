#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

std::string PlanEstimate::ToString() const {
  return StrFormat("Est{rows=%.0f T=%.3fs D=%.0f w=%.0fB}", rows, seq_time,
                   ios, row_bytes);
}

CostModel::CostModel(const CostParams& params) : params_(params) {}

double CostModel::Selectivity(const Predicate& pred,
                              const Table& table) const {
  if (pred.IsTrue()) return 1.0;
  const TableStats& stats = table.stats();
  KeyRange range{INT32_MIN, INT32_MAX};
  // Key predicates are on the stats/index column (column 0 of the paper
  // schema).
  if (pred.ExtractKeyRange(0, &range) && stats.has_key_bounds) {
    // Equi-depth histogram when available, else uniform interpolation.
    return stats.KeyRangeFraction(range.lo, range.hi);
  }
  return params_.default_range_selectivity;
}

PlanEstimate CostModel::EstimateNode(const PlanNode& plan,
                                     const Fragment* frag) const {
  // Blocked input consumed as a materialized temp: cardinality of the
  // producing subtree, cpu-only read cost, no ios.
  if (frag != nullptr && frag->blocked_inputs.count(&plan)) {
    PlanEstimate sub = EstimateNode(plan, nullptr);
    PlanEstimate est;
    est.rows = sub.rows;
    est.seq_time = sub.rows * params_.temp_tuple_time;
    est.ios = 0.0;
    est.row_bytes = sub.row_bytes;
    return est;
  }

  switch (plan.kind) {
    case PlanKind::kSeqScan: {
      const TableStats& stats = plan.table->stats();
      PlanEstimate est;
      double pages = std::max<double>(stats.num_pages, 1.0);
      double tuples = static_cast<double>(stats.num_tuples);
      est.rows = tuples * Selectivity(plan.predicate, *plan.table);
      est.seq_time =
          pages * params_.page_io_time + tuples * params_.tuple_cpu_time;
      est.ios = pages;
      est.row_bytes =
          stats.tuples_per_page > 0 ? 8192.0 / stats.tuples_per_page : 64.0;
      return est;
    }
    case PlanKind::kIndexScan: {
      const TableStats& stats = plan.table->stats();
      PlanEstimate est;
      double tuples = static_cast<double>(stats.num_tuples);
      Predicate range_pred = Predicate::And(
          plan.predicate, Predicate::Between(0, plan.index_range.lo,
                                             plan.index_range.hi));
      double matches =
          std::max(1.0, tuples * Selectivity(range_pred, *plan.table));
      est.rows = matches;
      // One random page fetch per qualifying entry (unclustered index).
      est.seq_time =
          matches * (params_.rand_io_time + params_.tuple_cpu_time);
      est.ios = matches;
      est.row_bytes = stats.tuples_per_page > 0
                          ? 8192.0 / stats.tuples_per_page
                          : 64.0;
      return est;
    }
    case PlanKind::kSort: {
      PlanEstimate child = EstimateNode(*plan.left, frag);
      PlanEstimate est = child;
      double n = std::max(child.rows, 2.0);
      est.seq_time += n * std::log2(n) * params_.sort_compare_time;
      return est;
    }
    case PlanKind::kAggregate: {
      PlanEstimate child = EstimateNode(*plan.left, frag);
      PlanEstimate est;
      // Output cardinality: one row per group; estimate distinct groups as
      // sqrt of the input (no per-column distinct stats above base scans).
      est.rows = plan.group_col >= 0 ? std::max(1.0, std::sqrt(child.rows))
                                     : 1.0;
      est.seq_time = child.seq_time + child.rows * params_.hash_tuple_time;
      est.ios = child.ios;
      est.row_bytes = plan.group_col >= 0 ? 20.0 : 10.0;
      return est;
    }
    case PlanKind::kNestLoopJoin: {
      PlanEstimate outer = EstimateNode(*plan.left, frag);
      // The inner subtree is re-executed per outer tuple; it is never a
      // blocked input (nest loop edges pipeline), so estimate it plainly.
      PlanEstimate inner = EstimateNode(*plan.right, nullptr);
      PlanEstimate est;
      double denom = std::max({outer.rows, inner.rows, 1.0});
      est.rows = outer.rows * inner.rows / denom;
      est.seq_time = outer.seq_time + outer.rows * inner.seq_time +
                     est.rows * params_.tuple_cpu_time;
      est.ios = outer.ios + outer.rows * inner.ios;
      est.row_bytes = outer.row_bytes + inner.row_bytes;
      return est;
    }
    case PlanKind::kMergeJoin: {
      PlanEstimate outer = EstimateNode(*plan.left, frag);
      PlanEstimate inner = EstimateNode(*plan.right, frag);
      PlanEstimate est;
      double denom = std::max({outer.rows, inner.rows, 1.0});
      est.rows = outer.rows * inner.rows / denom;
      est.seq_time = outer.seq_time + inner.seq_time +
                     (outer.rows + inner.rows) * params_.tuple_cpu_time +
                     est.rows * params_.tuple_cpu_time;
      est.ios = outer.ios + inner.ios;
      est.row_bytes = outer.row_bytes + inner.row_bytes;
      return est;
    }
    case PlanKind::kHashJoin: {
      PlanEstimate outer = EstimateNode(*plan.left, frag);
      PlanEstimate inner = EstimateNode(*plan.right, frag);
      PlanEstimate est;
      double denom = std::max({outer.rows, inner.rows, 1.0});
      est.rows = outer.rows * inner.rows / denom;
      est.seq_time = outer.seq_time + inner.seq_time +
                     inner.rows * params_.hash_tuple_time +
                     outer.rows * params_.hash_tuple_time +
                     est.rows * params_.tuple_cpu_time;
      est.ios = outer.ios + inner.ios;
      est.row_bytes = outer.row_bytes + inner.row_bytes;
      // §5 extension: build side larger than the memory budget spills —
      // grace hashing writes and re-reads both inputs once.
      if (params_.memory_pages_budget > 0.0) {
        double build_pages = inner.rows * inner.row_bytes / 8192.0;
        if (build_pages > params_.memory_pages_budget) {
          double outer_pages = outer.rows * outer.row_bytes / 8192.0;
          double extra = 2.0 * (build_pages + outer_pages);
          est.ios += extra;
          est.seq_time += extra * params_.page_io_time;
        }
      }
      return est;
    }
  }
  return PlanEstimate{};
}

PlanEstimate CostModel::Estimate(const PlanNode& plan) const {
  return EstimateNode(plan, nullptr);
}

PlanEstimate CostModel::EstimateFragment(const FragmentGraph& graph,
                                         const Fragment& frag) const {
  (void)graph;
  return EstimateNode(*frag.root, &frag);
}

namespace {

// Sums the working memory a fragment holds: hash tables of the hash joins
// whose probe runs in the fragment, plus the sort buffer when the fragment
// root is a Sort.
void AccumulateMemory(const CostModel& model, const PlanNode& plan,
                      const Fragment& frag, double* bytes) {
  if (frag.blocked_inputs.count(&plan) && &plan != frag.root) return;
  if (plan.kind == PlanKind::kHashJoin) {
    PlanEstimate build = model.Estimate(*plan.right);
    *bytes += build.rows * build.row_bytes;
  }
  if (plan.left) AccumulateMemory(model, *plan.left, frag, bytes);
  if (plan.right && plan.kind != PlanKind::kHashJoin)
    AccumulateMemory(model, *plan.right, frag, bytes);
  if (plan.right && plan.kind == PlanKind::kHashJoin) {
    // The build subtree belongs to another fragment; only recurse if it is
    // not a blocked input (it always is, by construction).
    if (!frag.blocked_inputs.count(plan.right.get()))
      AccumulateMemory(model, *plan.right, frag, bytes);
  }
}

}  // namespace

double CostModel::FragmentMemoryPages(const FragmentGraph& graph,
                                      const Fragment& frag) const {
  (void)graph;
  double bytes = 0.0;
  AccumulateMemory(*this, *frag.root, frag, &bytes);
  if (frag.root->kind == PlanKind::kSort) {
    PlanEstimate sorted = EstimateNode(*frag.root, &frag);
    bytes += sorted.rows * sorted.row_bytes;
  }
  return bytes / 8192.0;
}

namespace {

// Accumulates sequential vs random ios of the fragment-local leaves to
// pick the fragment's dominant access pattern.
void AccumulatePattern(const PlanNode& plan, const Fragment& frag,
                       const CostModel& model, double outer_multiplier,
                       double* seq_ios, double* rand_ios) {
  if (frag.blocked_inputs.count(&plan)) return;
  switch (plan.kind) {
    case PlanKind::kSeqScan:
      *seq_ios +=
          outer_multiplier * std::max<double>(plan.table->stats().num_pages, 1);
      return;
    case PlanKind::kIndexScan:
      *rand_ios += outer_multiplier * model.Estimate(plan).rows;
      return;
    case PlanKind::kNestLoopJoin: {
      AccumulatePattern(*plan.left, frag, model, outer_multiplier, seq_ios,
                        rand_ios);
      double outer_rows = model.Estimate(*plan.left).rows;
      // Inner rescans are effectively random page revisits.
      double inner_ios = model.Estimate(*plan.right).ios;
      *rand_ios += outer_multiplier * outer_rows * inner_ios;
      return;
    }
    default:
      if (plan.left)
        AccumulatePattern(*plan.left, frag, model, outer_multiplier, seq_ios,
                          rand_ios);
      if (plan.right)
        AccumulatePattern(*plan.right, frag, model, outer_multiplier, seq_ios,
                          rand_ios);
      return;
  }
}

}  // namespace

std::vector<TaskProfile> CostModel::FragmentProfiles(
    const FragmentGraph& graph, int64_t query_id, TaskId id_base) const {
  std::vector<TaskProfile> profiles;
  profiles.reserve(graph.fragments().size());
  for (const Fragment& frag : graph.fragments()) {
    PlanEstimate est = EstimateFragment(graph, frag);
    TaskProfile t;
    t.id = id_base + frag.id;
    t.name = StrFormat("q%lld/f%d(%s)", static_cast<long long>(query_id),
                       frag.id, PlanKindName(frag.root->kind));
    t.seq_time = std::max(est.seq_time, 1e-6);
    t.total_ios = est.ios;
    double seq_ios = 0.0, rand_ios = 0.0;
    AccumulatePattern(*frag.root, frag, *this, 1.0, &seq_ios, &rand_ios);
    t.pattern = rand_ios > seq_ios ? IoPattern::kRandom
                                   : IoPattern::kSequential;
    t.query_id = query_id;
    t.memory_pages = FragmentMemoryPages(graph, frag);
    for (int dep : frag.deps) t.deps.push_back(id_base + dep);
    profiles.push_back(std::move(t));
  }
  return profiles;
}

}  // namespace xprs
