// Cost model: cardinality, sequential time (T), i/o count (D) estimation
// for sequential plans and their fragments.
//
// Calibration follows the paper's measurements (§3): the per-page and
// per-tuple times are chosen so that a sequential scan of r_max (one 8 KB
// tuple per page) runs at 70 io/s and a scan of r_min (b = NULL, hundreds
// of tuples per page) at 5 io/s. The estimates feed (a) seqcost-based plan
// enumeration, (b) the §4 parcost computation, and (c) the TaskProfiles the
// adaptive scheduler consumes.

#ifndef XPRS_OPT_COST_MODEL_H_
#define XPRS_OPT_COST_MODEL_H_

#include <string>
#include <vector>

#include "exec/fragment.h"
#include "exec/plan.h"
#include "sched/task.h"

namespace xprs {

/// Calibration constants (seconds). Defaults solve the paper's two
/// calibration points: 1/(t_page + 1*t_tuple) = 70 io/s (r_max) and
/// 1/(t_page + 400*t_tuple) = 5 io/s (r_min).
struct CostParams {
  /// Time to issue+wait one page read in a sequential task: raw sequential
  /// disk service (1/97 s) plus per-page processing overhead.
  double page_io_time = 0.0138138;
  /// Time to issue+wait one *random* page read (unclustered index fetch):
  /// raw random disk service, 1/35 s.
  double rand_io_time = 1.0 / 35.0;
  /// Per-tuple qualification / processing cost.
  double tuple_cpu_time = 0.00046548;
  /// Per-tuple cost of inserting into / probing a hash table.
  double hash_tuple_time = 0.0002;
  /// Per-comparison cost of sorting.
  double sort_compare_time = 0.0001;
  /// Per-tuple cost of reading a materialized (shared-memory) input.
  double temp_tuple_time = 0.0001;
  /// Default selectivity of an equality / range predicate when stats are
  /// unavailable.
  double default_eq_selectivity = 0.01;
  double default_range_selectivity = 0.33;

  /// Working-memory budget for plan costing, in 8 KB pages (0 = assume
  /// unlimited). §5 future-work extension: a hash join whose build side
  /// exceeds the budget pays a grace-hash spill penalty — both inputs are
  /// partitioned to disk and re-read (2 extra ios per input page).
  double memory_pages_budget = 0.0;
};

/// Estimate for one plan node (cumulative over its subtree).
struct PlanEstimate {
  double rows = 0.0;       ///< output cardinality
  double seq_time = 0.0;   ///< T: sequential execution time of the subtree
  double ios = 0.0;        ///< D: page reads of the subtree
  double row_bytes = 0.0;  ///< average output row width (bytes)
  std::string ToString() const;
};

/// Cost model bound to calibration constants.
class CostModel {
 public:
  explicit CostModel(const CostParams& params = CostParams());

  const CostParams& params() const { return params_; }

  /// Estimated selectivity of `pred` against `table`'s key statistics.
  double Selectivity(const Predicate& pred, const Table& table) const;

  /// Recursive estimate of a plan subtree.
  PlanEstimate Estimate(const PlanNode& plan) const;

  /// seqcost(p): estimated sequential execution time of the whole plan.
  double SeqCost(const PlanNode& plan) const { return Estimate(plan).seq_time; }

  /// TaskProfiles for every fragment of `graph`, with dependencies wired,
  /// `query_id` stamped, and working memory estimated (hash tables built
  /// by the fragment's hash joins plus its sort buffers, in 8 KB pages).
  /// Task ids are `id_base + fragment id`.
  std::vector<TaskProfile> FragmentProfiles(const FragmentGraph& graph,
                                            int64_t query_id = -1,
                                            TaskId id_base = 0) const;

  /// Working memory (8 KB pages) fragment `frag` holds while running.
  double FragmentMemoryPages(const FragmentGraph& graph,
                             const Fragment& frag) const;

 private:
  // Estimate of the *local* work of one fragment: the subtree rooted at
  // the fragment root minus its blocked children (their output is read as
  // a materialized temp instead).
  PlanEstimate EstimateFragment(const FragmentGraph& graph,
                                const Fragment& frag) const;

  PlanEstimate EstimateNode(const PlanNode& plan,
                            const Fragment* frag) const;

  CostParams params_;
};

}  // namespace xprs

#endif  // XPRS_OPT_COST_MODEL_H_
