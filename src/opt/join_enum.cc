#include "opt/join_enum.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

const char* TreeShapeName(TreeShape shape) {
  switch (shape) {
    case TreeShape::kLeftDeep:
      return "left-deep";
    case TreeShape::kBushy:
      return "bushy";
  }
  return "?";
}

JoinEnumerator::JoinEnumerator(const CostModel* model) : model_(model) {
  XPRS_CHECK(model != nullptr);
}

CandidatePlan JoinEnumerator::BestAccessPath(const QuerySpec& query,
                                             int rel) const {
  const QuerySpec::BaseRel& base = query.relations[rel];
  CandidatePlan seq;
  seq.plan = MakeSeqScan(base.table, base.pred);
  for (size_t c = 0; c < base.table->schema().num_columns(); ++c)
    seq.colmap.push_back({rel, c});
  seq.seqcost = model_->SeqCost(*seq.plan);

  // Index alternative: only when the predicate actually narrows the key.
  if (base.table->index() != nullptr && base.table->stats().has_key_bounds) {
    KeyRange range{base.table->stats().min_key, base.table->stats().max_key};
    if (base.pred.ExtractKeyRange(0, &range) && range.lo <= range.hi) {
      CandidatePlan idx;
      idx.plan = MakeIndexScan(base.table, base.pred, range);
      idx.colmap = seq.colmap;
      idx.seqcost = model_->SeqCost(*idx.plan);
      if (idx.seqcost < seq.seqcost) return idx;
    }
  }
  return seq;
}

bool JoinEnumerator::FindJoinPred(
    const QuerySpec& query, const std::vector<std::pair<int, size_t>>& left_map,
    uint32_t left_set, uint32_t right_set,
    const std::vector<std::pair<int, size_t>>& right_map, size_t* left_col,
    size_t* right_col) const {
  auto find_col = [](const std::vector<std::pair<int, size_t>>& map, int rel,
                     size_t col, size_t* out) {
    for (size_t i = 0; i < map.size(); ++i) {
      if (map[i].first == rel && map[i].second == col) {
        *out = i;
        return true;
      }
    }
    return false;
  };
  for (const auto& j : query.joins) {
    bool l_in_left = (left_set >> j.left_rel) & 1;
    bool r_in_right = (right_set >> j.right_rel) & 1;
    if (l_in_left && r_in_right) {
      if (find_col(left_map, j.left_rel, j.left_col, left_col) &&
          find_col(right_map, j.right_rel, j.right_col, right_col))
        return true;
    }
    bool r_in_left = (left_set >> j.right_rel) & 1;
    bool l_in_right = (right_set >> j.left_rel) & 1;
    if (r_in_left && l_in_right) {
      if (find_col(left_map, j.right_rel, j.right_col, left_col) &&
          find_col(right_map, j.left_rel, j.left_col, right_col))
        return true;
    }
  }
  return false;
}

std::vector<CandidatePlan> JoinEnumerator::JoinCandidates(
    const QuerySpec& query, const CandidatePlan& left, uint32_t left_set,
    const CandidatePlan& right, uint32_t right_set) const {
  std::vector<CandidatePlan> out;
  size_t lcol, rcol;
  if (!FindJoinPred(query, left.colmap, left_set, right_set, right.colmap,
                    &lcol, &rcol))
    return out;

  std::vector<std::pair<int, size_t>> colmap = left.colmap;
  colmap.insert(colmap.end(), right.colmap.begin(), right.colmap.end());

  auto add = [&](std::unique_ptr<PlanNode> plan) {
    CandidatePlan c;
    c.seqcost = model_->SeqCost(*plan);
    c.plan = std::move(plan);
    c.colmap = colmap;
    out.push_back(std::move(c));
  };

  add(MakeHashJoin(left.plan->Clone(), right.plan->Clone(), lcol, rcol));
  add(MakeMergeJoin(MakeSort(left.plan->Clone(), lcol),
                    MakeSort(right.plan->Clone(), rcol), lcol, rcol));
  add(MakeNestLoopJoin(left.plan->Clone(), right.plan->Clone(), lcol, rcol));
  return out;
}

StatusOr<std::vector<CandidatePlan>> JoinEnumerator::Enumerate(
    const QuerySpec& query, TreeShape shape, size_t per_subset) {
  const int n = static_cast<int>(query.relations.size());
  if (n == 0) return Status::InvalidArgument("query has no relations");
  if (n > 20) return Status::InvalidArgument("too many relations (max 20)");

  // dp[mask] = up to per_subset cheapest plans joining exactly that set.
  std::map<uint32_t, std::vector<CandidatePlan>> dp;
  for (int r = 0; r < n; ++r)
    dp[1u << r].push_back(BestAccessPath(query, r));

  auto keep_best = [per_subset](std::vector<CandidatePlan>* plans) {
    std::sort(plans->begin(), plans->end(),
              [](const CandidatePlan& a, const CandidatePlan& b) {
                return a.seqcost < b.seqcost;
              });
    if (plans->size() > per_subset) plans->resize(per_subset);
  };

  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (__builtin_popcount(mask) < 2) continue;
    std::vector<CandidatePlan> plans;
    // Split mask into (sub, mask^sub).
    for (uint32_t sub = (mask - 1) & mask; sub > 0;
         sub = (sub - 1) & mask) {
      uint32_t rest = mask ^ sub;
      if (shape == TreeShape::kLeftDeep) {
        // Inner must be a single base relation.
        if (__builtin_popcount(rest) != 1) continue;
      } else {
        // Avoid double-counting symmetric partitions... keep both orders:
        // operand order matters (build vs probe, outer vs inner).
      }
      auto li = dp.find(sub);
      auto ri = dp.find(rest);
      if (li == dp.end() || ri == dp.end()) continue;
      for (const CandidatePlan& left : li->second) {
        for (const CandidatePlan& right : ri->second) {
          auto cands = JoinCandidates(query, left, sub, right, rest);
          for (auto& c : cands) plans.push_back(std::move(c));
        }
      }
    }
    if (!plans.empty()) {
      keep_best(&plans);
      dp[mask] = std::move(plans);
    }
  }

  auto it = dp.find(full);
  if (it == dp.end() || it->second.empty())
    return Status::InvalidArgument(
        "join graph is disconnected (cross products unsupported)");
  return std::move(it->second);
}

StatusOr<CandidatePlan> JoinEnumerator::BestPlan(const QuerySpec& query,
                                                 TreeShape shape) {
  if (query.relations.size() == 1) {
    return BestAccessPath(query, 0);
  }
  XPRS_ASSIGN_OR_RETURN(std::vector<CandidatePlan> plans,
                        Enumerate(query, shape, 1));
  return std::move(plans.front());
}

StatusOr<std::vector<CandidatePlan>> JoinEnumerator::TopPlans(
    const QuerySpec& query, size_t per_subset) {
  if (query.relations.size() == 1) {
    std::vector<CandidatePlan> out;
    out.push_back(BestAccessPath(query, 0));
    return out;
  }
  return Enumerate(query, TreeShape::kBushy, per_subset);
}

}  // namespace xprs
