// Two-phase optimization of parallel execution plans (paper §4, extending
// [HONG91]).
//
// Phase one (compile time) chooses a sequential plan by seqcost; phase two
// (run time) parallelizes it: the plan is decomposed into fragments whose
// TaskProfiles feed the adaptive scheduler. The §4 extension estimates
//
//     parcost(p, n) = T_n(F(p))
//
// by *running the actual scheduling algorithm* (over the fluid resource
// model) on the estimated fragment profiles — the same code path that
// executes real schedules — and can optimize bushy plans directly against
// parcost. Because parcost depends on the whole plan tree, local pruning is
// unsound; the parcost path therefore evaluates a top-K candidate set from
// the enumerator.

#ifndef XPRS_OPT_TWO_PHASE_H_
#define XPRS_OPT_TWO_PHASE_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/join_enum.h"
#include "sched/scheduler.h"
#include "sim/fluid_sim.h"

namespace xprs {

/// A fully optimized query: the sequential plan, its fragment DAG, the
/// fragments' estimated TaskProfiles, and both cost figures.
struct OptimizedQuery {
  std::unique_ptr<PlanNode> plan;
  std::vector<std::pair<int, size_t>> colmap;
  double seqcost = 0.0;
  double parcost = 0.0;
  /// Fragment profiles (ids are fragment ids; deps wired).
  std::vector<TaskProfile> profiles;

  std::string ToString() const;
};

/// The XPRS optimizer + parallelizer pair.
class TwoPhaseOptimizer {
 public:
  TwoPhaseOptimizer(const MachineConfig& machine, const CostModel* model,
                    const SchedulerOptions& sched_options = SchedulerOptions());

  /// parcost(p, n): elapsed time of the plan's fragment schedule under the
  /// adaptive scheduling algorithm on the configured machine (§4).
  double ParCost(const PlanNode& plan, int64_t query_id = 0) const;

  /// Classic two-phase optimization: phase one picks the best sequential
  /// plan of `shape` by seqcost; phase two parallelizes it.
  StatusOr<OptimizedQuery> Optimize(const QuerySpec& query,
                                    TreeShape shape = TreeShape::kLeftDeep);

  /// §4 single-user optimization: evaluates parcost on a top-K candidate
  /// set (bushy shapes included) and returns the plan with the smallest
  /// parcost.
  StatusOr<OptimizedQuery> OptimizeParCost(const QuerySpec& query,
                                           size_t per_subset = 3);

  /// Estimated makespan of running the given already-optimized queries
  /// together: all fragment profiles are submitted to one adaptive
  /// schedule (task ids remapped per query).
  double BatchCost(const std::vector<const PlanNode*>& plans) const;

  /// §5 future-work extension: joint optimization of a query batch. Each
  /// query contributes a top-K candidate set; the combination minimizing
  /// the *combined* makespan under the adaptive scheduler is found by
  /// greedy coordinate descent (a candidate change is kept only if the
  /// batch makespan improves). Returns one OptimizedQuery per input, in
  /// order; their `parcost` fields hold the standalone parcost, and the
  /// achieved batch makespan is returned through *batch_makespan.
  StatusOr<std::vector<OptimizedQuery>> OptimizeBatch(
      const std::vector<QuerySpec>& queries, double* batch_makespan,
      size_t per_subset = 3, int max_rounds = 4);

 private:
  OptimizedQuery Finalize(CandidatePlan candidate, int64_t query_id) const;

  MachineConfig machine_;
  const CostModel* const model_;
  SchedulerOptions sched_options_;
};

}  // namespace xprs

#endif  // XPRS_OPT_TWO_PHASE_H_
