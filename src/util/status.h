// Status / StatusOr: error-handling primitives used throughout the library.
//
// Library code does not throw exceptions (per the project style); fallible
// operations return Status or StatusOr<T>. Invariant violations use the
// CHECK macros in util/check.h.

#ifndef XPRS_UTIL_STATUS_H_
#define XPRS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xprs {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kAborted,
  kIoError,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a StatusCode ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail: a code plus an optional message.
///
/// Statuses are cheap to copy in the OK case (no allocation). Use the
/// factory functions (Status::OK(), Status::InvalidArgument(...), ...) to
/// construct them.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A Status or a value of type T. Exactly one is present.
///
/// Typical use:
///   StatusOr<Plan> plan = Optimize(query);
///   if (!plan.ok()) return plan.status();
///   Use(plan.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Must not be called with OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xprs

/// Propagates a non-OK Status from the current function.
#define XPRS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::xprs::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// assigns the value to `lhs`.
#define XPRS_ASSIGN_OR_RETURN(lhs, expr)        \
  auto XPRS_CONCAT_(_sor_, __LINE__) = (expr);  \
  if (!XPRS_CONCAT_(_sor_, __LINE__).ok())      \
    return XPRS_CONCAT_(_sor_, __LINE__).status(); \
  lhs = std::move(XPRS_CONCAT_(_sor_, __LINE__)).value()

#define XPRS_CONCAT_INNER_(a, b) a##b
#define XPRS_CONCAT_(a, b) XPRS_CONCAT_INNER_(a, b)

#endif  // XPRS_UTIL_STATUS_H_
