// Hardware spin lock.
//
// The paper's shared-memory argument (§1) rests on synchronization via
// hardware spin locks rather than message passing; this is the primitive the
// real-thread executor uses for its short critical sections.

#ifndef XPRS_UTIL_SPINLOCK_H_
#define XPRS_UTIL_SPINLOCK_H_

#include <atomic>

namespace xprs {

/// Test-and-test-and-set spin lock. Satisfies the C++ Lockable requirements
/// so it can be used with std::lock_guard / std::unique_lock.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load to avoid cache-line ping-pong.
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace xprs

#endif  // XPRS_UTIL_SPINLOCK_H_
