#include "util/str.h"

#include <cstdio>

namespace xprs {

std::string StrFormatV(const char* fmt, va_list ap) {
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string out = StrFormatV(fmt, ap);
  va_end(ap);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

}  // namespace xprs
