// Leveled logging to stderr.
//
// Default level is kWarn so tests and benchmarks stay quiet; examples raise
// it to kInfo to narrate what the system is doing.

#ifndef XPRS_UTIL_LOGGING_H_
#define XPRS_UTIL_LOGGING_H_

#include <string>

namespace xprs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits a log record if `level` >= the global level. Thread-safe.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

}  // namespace xprs

#define XPRS_LOG(level, ...)                                              \
  do {                                                                    \
    if (static_cast<int>(::xprs::LogLevel::level) >=                      \
        static_cast<int>(::xprs::GetLogLevel())) {                        \
      ::xprs::LogMessage(::xprs::LogLevel::level, __FILE__, __LINE__,     \
                         ::xprs::StrFormat(__VA_ARGS__));                 \
    }                                                                     \
  } while (0)

#endif  // XPRS_UTIL_LOGGING_H_
