// Small string utilities: printf-style formatting, concatenation, joining.
//
// GCC 12's libstdc++ does not ship std::format, so the library carries a
// minimal snprintf-backed StrFormat.

#ifndef XPRS_UTIL_STR_H_
#define XPRS_UTIL_STR_H_

#include <cstdarg>
#include <sstream>
#include <string>
#include <vector>

namespace xprs {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of StrFormat.
std::string StrFormatV(const char* fmt, va_list ap);

/// Streams all arguments into a string (uses operator<<).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Joins elements with a separator using operator<<.
template <typename Container>
std::string StrJoin(const Container& items, const std::string& sep) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& item : items) {
    if (!first) oss << sep;
    first = false;
    oss << item;
  }
  return oss.str();
}

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char delim);

}  // namespace xprs

#endif  // XPRS_UTIL_STR_H_
