#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace xprs {

void RunningStat::Add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
  } else {
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentiles::Get(double p) const {
  if (samples_.empty()) return 0.0;
  XPRS_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples_.begin(), samples_.end());
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  XPRS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
      if (i + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace xprs
