#include "util/rng.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace xprs {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  XPRS_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  XPRS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t r = (span == 0) ? Next() : NextUint64(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextDouble(double lo, double hi) {
  XPRS_CHECK_LT(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

namespace {

struct SeedState {
  bool overridden = false;
  uint64_t seed = 0;
};

SeedState ReadSeedEnv(uint64_t fallback) {
  SeedState state;
  state.seed = fallback;
  const char* env = std::getenv("XPRS_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(env, &end, 0);  // 0: dec/hex
    if (end != nullptr && *end == '\0') {
      state.overridden = true;
      state.seed = static_cast<uint64_t>(parsed);
    } else {
      std::fprintf(stderr, "xprs: ignoring unparseable XPRS_SEED='%s'\n",
                   env);
    }
  }
  std::fprintf(stderr, "xprs: seed=%" PRIu64 " (%s); replay with XPRS_SEED=%"
               PRIu64 "\n",
               state.seed, state.overridden ? "XPRS_SEED" : "default",
               state.seed);
  return state;
}

// Resolved (and logged) once per process; the first caller's fallback
// wins. Thread-safe via static-local initialization.
const SeedState& GlobalSeedState(uint64_t fallback) {
  static SeedState state = ReadSeedEnv(fallback);
  return state;
}

}  // namespace

uint64_t BaseSeed(uint64_t fallback) {
  return GlobalSeedState(fallback).seed;
}

uint64_t TestSeed(uint64_t site_seed) {
  const SeedState& env = GlobalSeedState(0xC0FFEE);
  if (!env.overridden) return site_seed;
  uint64_t z = env.seed + 0x9E3779B97F4A7C15ULL * (site_seed | 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace xprs
