// Running statistics and fixed-width text tables for experiment output.

#ifndef XPRS_UTIL_STATS_H_
#define XPRS_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace xprs {

/// Welford-style online mean/variance/min/max accumulator.
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Accumulates samples and reports percentiles (exact, by sorting).
class Percentiles {
 public:
  void Add(double x) { samples_.push_back(x); }
  size_t count() const { return samples_.size(); }
  /// p in [0,100]. Returns 0 when empty.
  double Get(double p) const;

 private:
  mutable std::vector<double> samples_;
};

/// Simple fixed-width text table used by the benchmark harnesses to print
/// the paper's tables/figures as aligned rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Renders with a header rule, columns padded to the widest cell.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xprs

#endif  // XPRS_UTIL_STATS_H_
