#include "util/status.h"

namespace xprs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace xprs
