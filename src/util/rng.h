// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every randomized component in the library takes an explicit Rng (or a
// seed) so that experiments, tests and benchmarks are exactly reproducible.

#ifndef XPRS_UTIL_RNG_H_
#define XPRS_UTIL_RNG_H_

#include <cstdint>
#include <utility>

#include "util/check.h"

namespace xprs {

/// xoshiro256** generator. Not thread-safe; give each thread its own
/// instance (see Fork()).
class Rng {
 public:
  /// Seeds the generator. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed = 0xC0FFEE) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Derives an independent child generator; advances this one.
  Rng Fork() { return Rng(Next() ^ 0x9E3779B97F4A7C15ULL); }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container* c) {
    XPRS_CHECK(c != nullptr);
    auto n = c->size();
    for (size_t i = n; i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      using std::swap;
      swap((*c)[i - 1], (*c)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Base seed for randomized tests and benchmarks: the XPRS_SEED environment
/// variable (decimal or 0x-prefixed hex) when set and parseable, `fallback`
/// otherwise. The env var is read once per process; the chosen seed and its
/// source are printed to stderr on first use so every run — flaky failures
/// included — can be replayed exactly (`XPRS_SEED=<n> <binary>`).
uint64_t BaseSeed(uint64_t fallback = 0xC0FFEE);

/// Effective seed for one call site: `site_seed` itself when XPRS_SEED is
/// unset (bit-identical to historical behavior), otherwise a mix of the
/// override and the site seed so one env var reshuffles every site while
/// distinct sites stay decorrelated.
uint64_t TestSeed(uint64_t site_seed);

}  // namespace xprs

#endif  // XPRS_UTIL_RNG_H_
