// CHECK macros for invariant enforcement.
//
// CHECKs are active in all build types: a failed CHECK prints the condition,
// file and line, then aborts. They guard programmer invariants; user-facing
// failure paths return Status instead.

#ifndef XPRS_UTIL_CHECK_H_
#define XPRS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace xprs::internal {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace xprs::internal

#define XPRS_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::xprs::internal::CheckFailed(#cond, __FILE__, __LINE__, "");        \
  } while (0)

#define XPRS_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond))                                                           \
      ::xprs::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg));     \
  } while (0)

#define XPRS_CHECK_OK(expr)                                                \
  do {                                                                     \
    ::xprs::Status _st = (expr);                                           \
    if (!_st.ok())                                                         \
      ::xprs::internal::CheckFailed(#expr, __FILE__, __LINE__,             \
                                    _st.ToString().c_str());               \
  } while (0)

#define XPRS_CHECK_GE(a, b) XPRS_CHECK((a) >= (b))
#define XPRS_CHECK_GT(a, b) XPRS_CHECK((a) > (b))
#define XPRS_CHECK_LE(a, b) XPRS_CHECK((a) <= (b))
#define XPRS_CHECK_LT(a, b) XPRS_CHECK((a) < (b))
#define XPRS_CHECK_EQ(a, b) XPRS_CHECK((a) == (b))
#define XPRS_CHECK_NE(a, b) XPRS_CHECK((a) != (b))

#endif  // XPRS_UTIL_CHECK_H_
