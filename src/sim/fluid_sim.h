// FluidSimulator: a deterministic fluid (piecewise-constant-rate) simulator
// of the XPRS machine — N processors plus a striped disk array with
// pattern-dependent bandwidth.
//
// This is the performance substrate of the reproduction (see DESIGN.md §1):
// the paper measured on a 12-processor Sequent Symmetry with 4 disks, which
// we do not have. The simulator implements exactly the resource model the
// paper's analysis is built on (§2.2-2.3): a task run at parallelism x
// progresses x times its sequential rate and demands io at C_i * x io/s;
// when total io demand exceeds the effective disk bandwidth — itself
// degraded by seek interference between concurrent streams — all demanding
// streams are throttled proportionally. Between events all rates are
// constant, so completion times are computed exactly (no time-stepping
// error) and runs are bit-reproducible.

#ifndef XPRS_SIM_FLUID_SIM_H_
#define XPRS_SIM_FLUID_SIM_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "sched/env.h"
#include "sched/machine.h"
#include "sched/scheduler.h"
#include "sched/task.h"
#include "util/status.h"

namespace xprs {

/// Simulator tunables.
struct SimOptions {
  /// Latency (seconds) before a parallelism adjustment takes effect —
  /// models the §2.4 master/slave signal rendezvous. 0 = instantaneous.
  double adjust_latency = 0.05;

  /// Per-extra-process efficiency loss: a task at parallelism x progresses
  /// at rate x / (1 + overhead * (x - 1)). Models the per-process
  /// coordination cost. 0 = ideal linear speedup.
  double process_overhead = 0.0;

  /// Penalty for parallelism beyond the task's resource-limited maximum
  /// (maxp): effective speedup = min(x, maxp) - excess_penalty*(x - maxp).
  /// [HONG91] measured *severe* penalties past maxp (disk-queue thrash) —
  /// progress degrades rather than plateaus. 0 = flat plateau.
  double excess_penalty = 0.15;

  /// Hard stop for the simulation clock (guards against scheduler bugs).
  double max_sim_time = 1e7;

  /// Number of trailing trace samples attached to a runaway diagnostic.
  size_t diagnostic_trace_samples = 32;
};

/// Per-task outcome.
struct SimTaskResult {
  TaskId id = -1;
  double arrival_time = 0.0;
  double start_time = -1.0;
  double finish_time = -1.0;
  double ios_done = 0.0;
  /// Response time = finish - arrival.
  double response_time() const { return finish_time - arrival_time; }
};

/// One sample of the utilization trace (taken at every event boundary).
struct SimTraceSample {
  double time = 0.0;          ///< interval start
  double duration = 0.0;      ///< interval length
  double cpus_busy = 0.0;     ///< physical processors busy (capped at N)
  double io_rate = 0.0;       ///< granted aggregate io rate (io/s)
  double effective_bw = 0.0;  ///< effective bandwidth during the interval
  int tasks_running = 0;
  /// Per-task processor allocation during the interval.
  std::vector<std::pair<TaskId, double>> allocations;
};

/// Whole-run outcome.
struct SimResult {
  /// Non-OK when the run was aborted (e.g. the simulation clock ran past
  /// SimOptions::max_sim_time, which indicates a scheduler bug). All other
  /// fields then describe the partial run up to the abort; the diagnostic
  /// fields below identify the offending tasks and the final schedule.
  Status status;

  /// Time the last task finished (or the abort time on error).
  double elapsed = 0.0;
  /// Time-averaged fraction of processors busy over [0, elapsed].
  double cpu_utilization = 0.0;
  /// Time-averaged io rate divided by the nominal bandwidth B.
  double io_utilization = 0.0;
  /// Dynamic adjustments issued by the scheduler.
  size_t num_adjustments = 0;
  /// Mean response time across finished tasks.
  double mean_response_time = 0.0;
  /// Per-task outcomes. On error, unfinished tasks have finish_time < 0.
  std::map<TaskId, SimTaskResult> tasks;

  /// On error: the tasks that were still running when the run aborted.
  std::vector<TaskId> diagnostic_tasks;
  /// On error: the last SimOptions::diagnostic_trace_samples utilization
  /// samples before the abort — the schedule that led to the runaway.
  std::vector<SimTraceSample> diagnostic_trace;

  bool ok() const { return status.ok(); }
  std::string ToString() const;
};

/// Renders a per-task ASCII Gantt chart of a finished run: one row per
/// task, `width` columns across [0, elapsed], cell glyph scaled by the
/// task's parallelism in that interval (' ' idle, '1'..'8' processors).
std::string RenderGantt(const std::vector<SimTraceSample>& trace,
                        const SimResult& result, int width = 72);

/// The fluid simulator. Usage:
///
///   FluidSimulator sim(machine, sim_options);
///   AdaptiveScheduler sched(machine, sched_options);
///   SimResult r = sim.Run(&sched, tasks);
///
/// Tasks are delivered to the scheduler at their arrival_time; the
/// scheduler starts/adjusts them through the ExecutionEnv interface; the
/// simulator advances time to the next completion / arrival / adjustment
/// and reports completions back.
class FluidSimulator : public ExecutionEnv {
 public:
  explicit FluidSimulator(const MachineConfig& machine,
                          const SimOptions& options = SimOptions());

  /// Attaches trace/metrics publishing (task spans, event boundaries,
  /// utilization counters). Optional; call before Run().
  void SetObservability(const Observability& obs) { obs_ = obs; }

  /// Runs the given workload under `scheduler`. Returns a result whose
  /// `status` is non-OK — with the offending task set and the trailing
  /// utilization trace attached — instead of crashing when the simulation
  /// clock runs away past SimOptions::max_sim_time.
  SimResult Run(AdaptiveScheduler* scheduler,
                const std::vector<TaskProfile>& tasks);

  /// Utilization trace of the last Run().
  const std::vector<SimTraceSample>& trace() const { return trace_; }

  // --- ExecutionEnv interface (called by the scheduler) ---
  double Now() const override { return now_; }
  void StartTask(TaskId id, double parallelism) override;
  void AdjustParallelism(TaskId id, double parallelism) override;
  double RemainingSeqTime(TaskId id) const override;

 private:
  struct Active {
    TaskProfile profile;
    double parallelism = 0.0;
    double work_done = 0.0;      // sequential-seconds completed
    double start_time = 0.0;
    // Pending adjustment (applied at apply_time), if apply_time >= 0.
    double pending_parallelism = 0.0;
    double pending_apply_time = -1.0;
  };

  // Piecewise-constant progress rates for the current instant.
  struct Rates {
    std::vector<double> per_task;  // seq-seconds per second, aligned w/ ids
    std::vector<TaskId> ids;
    double effective_bw = 0.0;
    double granted_io = 0.0;
    double cpus_busy = 0.0;
  };
  Rates ComputeRates() const;

  // Fills the aggregate fields of `out` from the run so far. `aborted`
  // marks tasks unfinished-by-error rather than invariant violations.
  void Finalize(SimResult* out, double cpu_time_integral, double io_integral,
                size_t num_adjustments, bool aborted) const;

  MachineConfig machine_;
  SimOptions options_;
  Observability obs_;

  double now_ = 0.0;
  std::map<TaskId, Active> active_;
  std::map<TaskId, TaskProfile> submitted_;  // everything Run() was given
  std::map<TaskId, SimTaskResult> results_;
  std::vector<SimTraceSample> trace_;
};

}  // namespace xprs

#endif  // XPRS_SIM_FLUID_SIM_H_
