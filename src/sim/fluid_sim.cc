#include "sim/fluid_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sched/balance.h"
#include "util/check.h"
#include "util/str.h"

namespace xprs {

namespace {
constexpr double kEps = 1e-9;
}

std::string SimResult::ToString() const {
  std::string s = StrFormat(
      "SimResult{elapsed=%.3fs cpu=%.1f%% io=%.1f%% adj=%zu "
      "mean_resp=%.3fs tasks=%zu}",
      elapsed, cpu_utilization * 100.0, io_utilization * 100.0,
      num_adjustments, mean_response_time, tasks.size());
  if (!status.ok()) s += " [" + status.ToString() + "]";
  return s;
}

FluidSimulator::FluidSimulator(const MachineConfig& machine,
                               const SimOptions& options)
    : machine_(machine), options_(options) {}

void FluidSimulator::StartTask(TaskId id, double parallelism) {
  XPRS_CHECK_MSG(submitted_.count(id) > 0, "start of unknown task");
  XPRS_CHECK_MSG(active_.find(id) == active_.end(), "task already running");
  XPRS_CHECK_GT(parallelism, 0.0);
  Active a;
  a.profile = submitted_.at(id);
  a.parallelism = parallelism;
  a.work_done = 0.0;
  a.start_time = now_;
  active_[id] = a;
  results_[id].start_time = now_;
  if (obs_.tracing()) {
    obs_.Emit({"task " + a.profile.name, "sim", 'B', now_, 0.0, id,
               {{"parallelism", parallelism},
                {"seq_time", a.profile.seq_time},
                {"io_rate", a.profile.io_rate()}}});
  }
}

void FluidSimulator::AdjustParallelism(TaskId id, double parallelism) {
  auto it = active_.find(id);
  XPRS_CHECK_MSG(it != active_.end(), "adjust of task not running");
  XPRS_CHECK_GT(parallelism, 0.0);
  if (options_.adjust_latency <= 0.0) {
    it->second.parallelism = parallelism;
    it->second.pending_apply_time = -1.0;
  } else {
    it->second.pending_parallelism = parallelism;
    it->second.pending_apply_time = now_ + options_.adjust_latency;
  }
  if (obs_.tracing()) {
    obs_.Emit({"adjust", "sim", 'i', now_, 0.0, id,
               {{"parallelism", parallelism},
                {"latency", options_.adjust_latency}}});
  }
}

double FluidSimulator::RemainingSeqTime(TaskId id) const {
  auto it = active_.find(id);
  if (it == active_.end()) return 0.0;
  return std::max(0.0, it->second.profile.seq_time - it->second.work_done);
}

FluidSimulator::Rates FluidSimulator::ComputeRates() const {
  Rates r;
  double total_demand = 0.0;
  std::vector<IoStream> streams;
  std::vector<double> speedups;
  for (const auto& [id, a] : active_) {
    double x = a.parallelism;
    // Useful parallelism plateaus at maxp and degrades past it ([HONG91]).
    double maxp = MaxParallelism(a.profile, machine_);
    double useful =
        std::min(x, maxp) - options_.excess_penalty * std::max(0.0, x - maxp);
    useful = std::max(useful, 0.25);
    double speedup = useful / (1.0 + options_.process_overhead * (x - 1.0));
    r.ids.push_back(id);
    speedups.push_back(speedup);
    r.cpus_busy += x;
    double demand = a.profile.io_rate() * speedup;
    total_demand += demand;
    if (demand > 0.0) streams.push_back({demand, a.profile.pattern, x});
  }
  // Transient oversubscription is possible while a downward adjustment is
  // still in flight (the §2.4 rendezvous) — the processes time-share and
  // everyone's progress scales down uniformly. The reported busy figure is
  // physical processors, which cannot exceed N.
  double cpu_scale = 1.0;
  const double n = static_cast<double>(machine_.num_cpus);
  if (r.cpus_busy > n + kEps) {
    cpu_scale = n / r.cpus_busy;
    r.cpus_busy = n;
  }

  r.effective_bw = streams.empty() ? machine_.seq_bandwidth()
                                   : EffectiveBandwidth(machine_, streams);
  total_demand *= cpu_scale;
  double io_factor =
      total_demand > r.effective_bw ? r.effective_bw / total_demand : 1.0;

  size_t k = 0;
  for (const auto& [id, a] : active_) {
    double rate = speedups[k] * cpu_scale;
    if (a.profile.io_rate() > 0.0) rate *= io_factor;
    r.per_task.push_back(rate);
    r.granted_io += a.profile.io_rate() * rate;
    ++k;
  }
  return r;
}

SimResult FluidSimulator::Run(AdaptiveScheduler* scheduler,
                              const std::vector<TaskProfile>& tasks) {
  XPRS_CHECK(scheduler != nullptr);
  now_ = 0.0;
  active_.clear();
  submitted_.clear();
  results_.clear();
  trace_.clear();

  scheduler->Bind(this);

  std::vector<TaskProfile> arrivals = tasks;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const TaskProfile& a, const TaskProfile& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  for (const auto& t : arrivals) {
    XPRS_CHECK_GE(t.arrival_time, 0.0);
    submitted_[t.id] = t;
    SimTaskResult tr;
    tr.id = t.id;
    tr.arrival_time = t.arrival_time;
    results_[t.id] = tr;
  }

  size_t next_arrival = 0;
  double cpu_time_integral = 0.0;
  double io_integral = 0.0;

  for (;;) {
    // Deliver all arrivals due now as one batch so the scheduler's initial
    // pairing sees every simultaneously arriving task.
    if (next_arrival < arrivals.size() &&
        arrivals[next_arrival].arrival_time <= now_ + kEps) {
      std::vector<TaskProfile> batch;
      while (next_arrival < arrivals.size() &&
             arrivals[next_arrival].arrival_time <= now_ + kEps) {
        batch.push_back(arrivals[next_arrival]);
        ++next_arrival;
      }
      scheduler->SubmitBatch(batch);
    }

    if (active_.empty()) {
      if (next_arrival < arrivals.size()) {
        now_ = arrivals[next_arrival].arrival_time;  // idle gap
        continue;
      }
      XPRS_CHECK_MSG(scheduler->NumPending() == 0,
                     "deadlock: pending tasks but nothing runable");
      break;
    }

    if (now_ >= options_.max_sim_time) {
      // Runaway clock: the active tasks are not converging toward
      // completion — a scheduler bug (e.g. a starved survivor at
      // near-zero parallelism). Return a diagnosable error carrying the
      // offending task set and the trailing schedule instead of crashing.
      SimResult out;
      std::string offenders;
      for (const auto& [id, a] : active_) {
        out.diagnostic_tasks.push_back(id);
        offenders += StrFormat(
            "%s task %lld (%s) x=%.3f remaining=%.3fs",
            offenders.empty() ? "" : ",", static_cast<long long>(id),
            a.profile.name.c_str(), a.parallelism,
            std::max(0.0, a.profile.seq_time - a.work_done));
      }
      const size_t keep =
          std::min(options_.diagnostic_trace_samples, trace_.size());
      out.diagnostic_trace.assign(trace_.end() - keep, trace_.end());
      out.status = Status::Aborted(StrFormat(
          "simulation ran away: clock %.3fs exceeded max_sim_time %.3fs "
          "with %zu task(s) unfinished:%s (last %zu trace samples "
          "attached)",
          now_, options_.max_sim_time, active_.size(), offenders.c_str(),
          keep));
      if (obs_.tracing()) {
        obs_.Emit({"runaway abort", "sim", 'i', now_, 0.0, -1,
                   {{"unfinished", static_cast<int64_t>(active_.size())}}});
      }
      Finalize(&out, cpu_time_integral, io_integral,
               scheduler->num_adjustments(), /*aborted=*/true);
      return out;
    }

    Rates rates = ComputeRates();

    // Next event: earliest completion, adjustment application or arrival.
    double t_next = std::numeric_limits<double>::max();
    for (size_t k = 0; k < rates.ids.size(); ++k) {
      const Active& a = active_.at(rates.ids[k]);
      XPRS_CHECK_GT(rates.per_task[k], 0.0);
      double left = a.profile.seq_time - a.work_done;
      t_next = std::min(t_next, now_ + std::max(0.0, left) / rates.per_task[k]);
    }
    for (const auto& [id, a] : active_) {
      if (a.pending_apply_time >= 0.0 && a.pending_apply_time > now_ + kEps)
        t_next = std::min(t_next, a.pending_apply_time);
    }
    if (next_arrival < arrivals.size())
      t_next = std::min(t_next, arrivals[next_arrival].arrival_time);
    t_next = std::max(t_next, now_);

    const double dt = t_next - now_;
    if (dt > 0.0) {
      SimTraceSample sample{now_,
                            dt,
                            rates.cpus_busy,
                            rates.granted_io,
                            rates.effective_bw,
                            static_cast<int>(active_.size()),
                            {}};
      for (const auto& [id, a] : active_)
        sample.allocations.push_back({id, a.parallelism});
      trace_.push_back(std::move(sample));
      cpu_time_integral += rates.cpus_busy * dt;
      io_integral += rates.granted_io * dt;
      if (obs_.tracing()) {
        // Counter tracks render as stacked area charts in Perfetto; one
        // sample per event boundary is enough for piecewise-constant rates.
        obs_.Emit({"cpus busy", "sim", 'C', now_, 0.0, 0,
                   {{"busy", rates.cpus_busy}}});
        obs_.Emit({"io rate", "sim", 'C', now_, 0.0, 0,
                   {{"granted", rates.granted_io},
                    {"effective_bw", rates.effective_bw}}});
      }
      if (obs_.metrics != nullptr) {
        obs_.metrics->counter("sim.events")->Increment();
        obs_.metrics->histogram("sim.interval_seconds")->Observe(dt);
      }
      size_t k = 0;
      for (auto& [id, a] : active_) {
        a.work_done += rates.per_task[k] * dt;
        ++k;
      }
    }
    now_ = t_next;

    // Apply matured adjustments.
    for (auto& [id, a] : active_) {
      if (a.pending_apply_time >= 0.0 && a.pending_apply_time <= now_ + kEps) {
        a.parallelism = a.pending_parallelism;
        a.pending_apply_time = -1.0;
      }
    }

    // Collect completions, then notify the scheduler one by one (each
    // notification may start or adjust other tasks).
    std::vector<TaskId> done;
    for (const auto& [id, a] : active_) {
      double left = a.profile.seq_time - a.work_done;
      if (left <= 1e-9 * std::max(1.0, a.profile.seq_time)) done.push_back(id);
    }
    for (TaskId id : done) {
      const Active& a = active_.at(id);
      SimTaskResult& tr = results_.at(id);
      tr.finish_time = now_;
      tr.ios_done = a.profile.total_ios;
      if (obs_.tracing()) {
        obs_.Emit({"task " + a.profile.name, "sim", 'E', now_, 0.0, id,
                   {{"response", tr.response_time()}}});
      }
      active_.erase(id);
      scheduler->OnTaskFinished(id);
    }
  }

  SimResult out;
  Finalize(&out, cpu_time_integral, io_integral, scheduler->num_adjustments(),
           /*aborted=*/false);
  return out;
}

void FluidSimulator::Finalize(SimResult* out, double cpu_time_integral,
                              double io_integral, size_t num_adjustments,
                              bool aborted) const {
  out->elapsed = now_;
  out->num_adjustments = num_adjustments;
  double resp_sum = 0.0;
  size_t finished = 0;
  for (const auto& [id, tr] : results_) {
    XPRS_CHECK_MSG(aborted || tr.finish_time >= 0.0, "task never finished");
    if (tr.finish_time >= 0.0) {
      resp_sum += tr.response_time();
      ++finished;
    }
    out->tasks[id] = tr;
  }
  out->mean_response_time =
      finished == 0 ? 0.0 : resp_sum / static_cast<double>(finished);
  if (now_ > 0.0) {
    out->cpu_utilization =
        cpu_time_integral / (now_ * static_cast<double>(machine_.num_cpus));
    out->io_utilization = io_integral / (now_ * machine_.nominal_bandwidth());
  }
  if (obs_.metrics != nullptr) {
    MetricsRegistry& m = *obs_.metrics;
    m.counter("sim.runs")->Increment();
    if (aborted) m.counter("sim.runaway_aborts")->Increment();
    m.gauge("sim.elapsed_seconds")->Set(out->elapsed);
    m.gauge("sim.cpu_utilization")->Set(out->cpu_utilization);
    m.gauge("sim.io_utilization")->Set(out->io_utilization);
    m.gauge("sim.mean_response_seconds")->Set(out->mean_response_time);
    m.gauge("sim.cpu_seconds_integral")->Set(cpu_time_integral);
    m.gauge("sim.io_ops_integral")->Set(io_integral);
  }
}

std::string RenderGantt(const std::vector<SimTraceSample>& trace,
                        const SimResult& result, int width) {
  if (result.tasks.empty() || result.elapsed <= 0.0 || width < 8) return "";
  const double col_time = result.elapsed / width;

  // Per task, per column: max parallelism seen during the column.
  std::map<TaskId, std::vector<double>> rows;
  for (const auto& [id, tr] : result.tasks) rows[id].assign(width, 0.0);
  for (const auto& s : trace) {
    int c0 = std::clamp(static_cast<int>(s.time / col_time), 0, width - 1);
    int c1 = std::clamp(static_cast<int>((s.time + s.duration) / col_time),
                        0, width - 1);
    for (const auto& [id, x] : s.allocations) {
      auto it = rows.find(id);
      if (it == rows.end()) continue;
      for (int c = c0; c <= c1; ++c)
        it->second[c] = std::max(it->second[c], x);
    }
  }

  std::string out = StrFormat("time 0 .. %.1fs, one column = %.2fs\n",
                              result.elapsed, col_time);
  for (const auto& [id, cells] : rows) {
    out += StrFormat("task %4lld |", static_cast<long long>(id));
    for (double x : cells) {
      if (x <= 0.0) {
        out += ' ';
      } else {
        int level = std::clamp(static_cast<int>(std::lround(x)), 1, 9);
        out += static_cast<char>('0' + level);
      }
    }
    out += StrFormat("| resp %.1fs\n", result.tasks.at(id).response_time());
  }
  return out;
}

}  // namespace xprs
