// SqlEngine: binds parsed SQL against a catalog, optimizes it with the
// two-phase optimizer, executes the plan, and projects the requested
// columns — the front door a downstream user talks to.

#ifndef XPRS_SQL_ENGINE_H_
#define XPRS_SQL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "opt/two_phase.h"
#include "parallel/master.h"
#include "sql/parser.h"

namespace xprs {

/// Result of one statement.
struct SqlResult {
  Schema schema;
  std::vector<Tuple> rows;
  /// Optimizer figures for the executed plan.
  double seqcost = 0.0;
  double parcost = 0.0;
  /// Pretty-printed physical plan (EXPLAIN-style).
  std::string plan_text;

  /// EXPLAIN ANALYZE only: annotated plan with actual rows/pages/time next
  /// to the optimizer estimates, plus the fragment / adjustment-timeline /
  /// utilization sections for parallel runs. Empty otherwise.
  std::string analyze_text;
  /// EXPLAIN ANALYZE only: the same report as a JSON document.
  std::string analyze_json;
  /// EXPLAIN ANALYZE only: the raw profile behind the reports.
  std::shared_ptr<QueryProfile> profile;

  std::string ToString() const;
};

/// The engine.
///
/// Thread-safety: the engine holds no per-statement state — Execute /
/// Explain / ExecuteParallel build everything (binder output, optimizer,
/// operator trees, parallel master) on the caller's stack — so concurrent
/// statements from different threads are safe, provided the catalog
/// follows its DDL-then-serve discipline (see storage/catalog.h): tables
/// referenced by in-flight queries must not be loaded, re-indexed or
/// re-analyzed concurrently. The catalog's name map takes its own lock, the
/// cost model is immutable, and the storage read paths (disk array, buffer
/// pool, heap file, B+tree) are shared by parallel slaves already. The
/// serving layer (src/serve) relies on this to run one engine under N
/// sessions.
class SqlEngine {
 public:
  SqlEngine(Catalog* catalog, const MachineConfig& machine,
            const CostModel* model);

  /// Parses, optimizes (bushy two-phase by default) and executes `sql`.
  /// A ctx.cancel token (or deadline) is honored from planning onwards:
  /// the statement returns Cancelled / DeadlineExceeded with zero pinned
  /// frames instead of running to completion.
  StatusOr<SqlResult> Execute(const std::string& sql,
                              const ExecContext& ctx = ExecContext(),
                              TreeShape shape = TreeShape::kBushy);

  /// Parses and optimizes only; plan_text / costs are filled, rows empty.
  StatusOr<SqlResult> Explain(const std::string& sql,
                              TreeShape shape = TreeShape::kBushy);

  /// Like Execute, but runs the plan through the master backend: fragments
  /// are scheduled by the adaptive algorithm and executed by real slave
  /// threads with dynamic parallelism adjustment.
  StatusOr<SqlResult> ExecuteParallel(
      const std::string& sql, const MasterOptions& options = MasterOptions(),
      TreeShape shape = TreeShape::kBushy);

  /// EXPLAIN ANALYZE: executes `sql` with a QueryProfile attached and fills
  /// analyze_text / analyze_json / profile (actual-vs-estimated per
  /// operator). The SQL text itself may also carry an `EXPLAIN ANALYZE`
  /// prefix through Execute / ExecuteParallel with the same effect.
  StatusOr<SqlResult> ExplainAnalyze(const std::string& sql,
                                     const ExecContext& ctx = ExecContext(),
                                     TreeShape shape = TreeShape::kBushy);

  /// EXPLAIN ANALYZE through the parallel master: the report additionally
  /// carries per-fragment stats and the §2.4 adjustment timeline.
  StatusOr<SqlResult> ExplainAnalyzeParallel(
      const std::string& sql, const MasterOptions& options = MasterOptions(),
      TreeShape shape = TreeShape::kBushy);

  /// Admission-time resource estimate for the serving layer (src/serve):
  /// parses and optimizes `sql` and reports the whole plan viewed as one
  /// task — estimated sequential time T, total page reads D, the dominant
  /// i/o pattern (random as soon as the plan index-scans), and working
  /// memory summed over the plan's fragments (hash tables, sort buffers,
  /// in 8 KB pages). Never executes anything.
  StatusOr<TaskProfile> EstimateProfile(const std::string& sql,
                                        TreeShape shape = TreeShape::kBushy);

 private:
  struct Bound {
    QuerySpec spec;
    ParsedQuery parsed;
  };

  StatusOr<Bound> Bind(const std::string& sql) const;

  // Resolves a column reference to (relation index, column index).
  StatusOr<std::pair<int, size_t>> ResolveColumn(
      const Bound& bound, const SqlColumnRef& ref) const;

  // Position of (rel, col) in an optimized plan's output, via its colmap.
  static StatusOr<size_t> OutputIndex(
      const std::vector<std::pair<int, size_t>>& colmap, int rel, size_t col);

  StatusOr<SqlResult> Run(const std::string& sql, const ExecContext* ctx,
                          TreeShape shape,
                          const MasterOptions* master = nullptr,
                          bool force_analyze = false);

  Catalog* const catalog_;
  MachineConfig machine_;
  const CostModel* const model_;
};

}  // namespace xprs

#endif  // XPRS_SQL_ENGINE_H_
