#include "sql/lexer.h"

#include <cctype>

#include "util/str.h"

namespace xprs {

StatusOr<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto error = [&](const char* msg, size_t at) {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", msg, at));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    Token tok;
    tok.offset = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_'))
        ++i;
      tok.kind = TokKind::kIdent;
      tok.text = sql.substr(start, i - start);
      for (char& ch : tok.text)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      tok.kind = TokKind::kInt;
      tok.text = sql.substr(start, i - start);
      tok.int_value = std::stoll(tok.text);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      size_t start = ++i;
      std::string body;
      for (;;) {
        if (i >= n) return error("unterminated string literal", start - 1);
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            body.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        body.push_back(sql[i++]);
      }
      tok.kind = TokKind::kString;
      tok.text = std::move(body);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Multi-char symbols first.
    auto sym = [&](const char* s) {
      tok.kind = TokKind::kSymbol;
      tok.text = s;
      i += tok.text.size();
      tokens.push_back(tok);
    };
    if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
      sym("<=");
    } else if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      sym(">=");
    } else if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      sym("<>");
    } else if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      tok.kind = TokKind::kSymbol;
      tok.text = "<>";  // normalize
      i += 2;
      tokens.push_back(tok);
    } else if (c == '(' || c == ')' || c == ',' || c == '*' || c == '.' ||
               c == '=' || c == '<' || c == '>') {
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(tok);
    } else {
      return error("unexpected character", i);
    }
  }

  Token end;
  end.kind = TokKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace xprs
