#include "sql/parser.h"

#include "util/str.h"

namespace xprs {

std::string SqlColumnRef::ToString() const {
  return qualifier.empty() ? column : qualifier + "." + column;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedQuery> Parse() {
    ParsedQuery q;
    if (AcceptKeyword("explain")) {
      q.explain = true;
      q.analyze = AcceptKeyword("analyze");
    }
    XPRS_RETURN_IF_ERROR(ExpectKeyword("select"));
    XPRS_RETURN_IF_ERROR(ParseSelectList(&q));
    XPRS_RETURN_IF_ERROR(ExpectKeyword("from"));
    XPRS_RETURN_IF_ERROR(ParseFromList(&q));
    if (AcceptKeyword("where")) XPRS_RETURN_IF_ERROR(ParseWhere(&q));
    if (AcceptKeyword("group")) {
      XPRS_RETURN_IF_ERROR(ExpectKeyword("by"));
      SqlColumnRef col;
      XPRS_RETURN_IF_ERROR(ParseColumnRef(&col));
      q.group_by = col;
    }
    if (!Peek().Is(TokKind::kEnd))
      return Error("unexpected trailing input");
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("%s near offset %zu", msg.c_str(), Peek().offset));
  }

  bool AcceptKeyword(const char* kw) {
    if (Peek().Is(TokKind::kIdent, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) return Error(StrFormat("expected '%s'", kw));
    return Status::OK();
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().Is(TokKind::kSymbol, s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) return Error(StrFormat("expected '%s'", s));
    return Status::OK();
  }

  Status ParseColumnRef(SqlColumnRef* out) {
    if (!Peek().Is(TokKind::kIdent)) return Error("expected column");
    std::string first = Take().text;
    if (AcceptSymbol(".")) {
      if (!Peek().Is(TokKind::kIdent)) return Error("expected column name");
      out->qualifier = first;
      out->column = Take().text;
    } else {
      out->qualifier.clear();
      out->column = first;
    }
    return Status::OK();
  }

  Status ParseSelectList(ParsedQuery* q) {
    do {
      SqlSelectItem item;
      if (AcceptSymbol("*")) {
        item.kind = SqlSelectItem::Kind::kStar;
      } else if (Peek().Is(TokKind::kIdent) &&
                 Peek(1).Is(TokKind::kSymbol, "(")) {
        const std::string& fn = Peek().text;
        AggFunc func;
        if (fn == "count") {
          func = AggFunc::kCount;
        } else if (fn == "sum") {
          func = AggFunc::kSum;
        } else if (fn == "min") {
          func = AggFunc::kMin;
        } else if (fn == "max") {
          func = AggFunc::kMax;
        } else {
          return Error("unknown function '" + fn + "'");
        }
        Take();  // function name
        Take();  // '('
        item.kind = SqlSelectItem::Kind::kAggregate;
        item.func = func;
        XPRS_RETURN_IF_ERROR(ParseColumnRef(&item.column));
        XPRS_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        item.kind = SqlSelectItem::Kind::kColumn;
        XPRS_RETURN_IF_ERROR(ParseColumnRef(&item.column));
      }
      q->select.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseFromList(ParsedQuery* q) {
    do {
      if (!Peek().Is(TokKind::kIdent)) return Error("expected table name");
      SqlTableRef ref;
      ref.table = Take().text;
      ref.alias = ref.table;
      // Optional alias: an identifier that is not a clause keyword.
      if (Peek().Is(TokKind::kIdent) && Peek().text != "where" &&
          Peek().text != "group") {
        ref.alias = Take().text;
      }
      q->from.push_back(std::move(ref));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseWhere(ParsedQuery* q) {
    do {
      SqlCondition cond;
      XPRS_RETURN_IF_ERROR(ParseColumnRef(&cond.lhs));

      if (AcceptKeyword("between")) {
        cond.kind = SqlCondition::Kind::kBetween;
        if (!Peek().Is(TokKind::kInt)) return Error("expected integer");
        cond.lo = static_cast<int32_t>(Take().int_value);
        XPRS_RETURN_IF_ERROR(ExpectKeyword("and"));
        if (!Peek().Is(TokKind::kInt)) return Error("expected integer");
        cond.hi = static_cast<int32_t>(Take().int_value);
        q->where.push_back(std::move(cond));
        continue;
      }

      CmpOp op;
      if (AcceptSymbol("=")) {
        op = CmpOp::kEq;
      } else if (AcceptSymbol("<>")) {
        op = CmpOp::kNe;
      } else if (AcceptSymbol("<=")) {
        op = CmpOp::kLe;
      } else if (AcceptSymbol(">=")) {
        op = CmpOp::kGe;
      } else if (AcceptSymbol("<")) {
        op = CmpOp::kLt;
      } else if (AcceptSymbol(">")) {
        op = CmpOp::kGt;
      } else {
        return Error("expected comparison operator");
      }
      cond.op = op;

      if (Peek().Is(TokKind::kInt)) {
        cond.kind = SqlCondition::Kind::kCompare;
        cond.constant = Value(static_cast<int32_t>(Take().int_value));
      } else if (Peek().Is(TokKind::kString)) {
        cond.kind = SqlCondition::Kind::kCompare;
        cond.constant = Value(Take().text);
      } else if (Peek().Is(TokKind::kIdent)) {
        if (op != CmpOp::kEq)
          return Error("join conditions must use '='");
        cond.kind = SqlCondition::Kind::kJoin;
        XPRS_RETURN_IF_ERROR(ParseColumnRef(&cond.rhs));
      } else {
        return Error("expected literal or column");
      }
      q->where.push_back(std::move(cond));
    } while (AcceptKeyword("and"));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ParsedQuery> ParseSql(const std::string& sql) {
  XPRS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace xprs
