// SQL lexer for the small query dialect the engine supports.

#ifndef XPRS_SQL_LEXER_H_
#define XPRS_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace xprs {

/// Token kinds.
enum class TokKind {
  kIdent,    ///< identifier or keyword (keywords matched case-insensitively)
  kInt,      ///< integer literal
  kString,   ///< 'single quoted'
  kSymbol,   ///< one of ( ) , * . = < > <= >= <>
  kEnd,
};

/// One token.
struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     ///< identifier (lowercased) / symbol / string body
  int64_t int_value = 0;
  size_t offset = 0;    ///< byte offset in the input, for error messages

  bool Is(TokKind k, const char* t = nullptr) const {
    return kind == k && (t == nullptr || text == t);
  }
};

/// Tokenizes `sql`; the final token is kEnd. Identifiers are lowercased
/// (the dialect is case-insensitive); string bodies keep their case.
StatusOr<std::vector<Token>> Lex(const std::string& sql);

}  // namespace xprs

#endif  // XPRS_SQL_LEXER_H_
