// SQL parser producing the small AST the binder consumes.
//
// Supported dialect (enough for the paper's workloads — selections,
// multi-way equi-joins, aggregates):
//
//   [EXPLAIN [ANALYZE]]
//   SELECT <item> [, <item>]*
//   FROM <table> [alias] [, <table> [alias]]*
//   [WHERE <cond> [AND <cond>]*]
//   [GROUP BY <colref>]
//
//   item  := * | colref | count(colref) | sum(colref) | min(colref)
//          | max(colref)
//   cond  := colref op (int | 'string')     -- selection
//          | colref BETWEEN int AND int     -- selection
//          | colref = colref                -- equi-join
//   op    := = | <> | < | <= | > | >=
//   colref:= column | table.column | alias.column

#ifndef XPRS_SQL_PARSER_H_
#define XPRS_SQL_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/plan.h"
#include "sql/lexer.h"
#include "storage/tuple.h"

namespace xprs {

/// A possibly-qualified column reference.
struct SqlColumnRef {
  std::string qualifier;  ///< table name or alias; empty = unqualified
  std::string column;
  std::string ToString() const;
};

/// One SELECT-list item.
struct SqlSelectItem {
  enum class Kind { kStar, kColumn, kAggregate };
  Kind kind = Kind::kStar;
  SqlColumnRef column;            // kColumn / kAggregate
  AggFunc func = AggFunc::kCount; // kAggregate
};

/// FROM-list entry.
struct SqlTableRef {
  std::string table;
  std::string alias;  ///< equals `table` when none given
};

/// One WHERE conjunct.
struct SqlCondition {
  enum class Kind { kCompare, kBetween, kJoin };
  Kind kind = Kind::kCompare;
  SqlColumnRef lhs;
  // kCompare:
  CmpOp op = CmpOp::kEq;
  Value constant;
  // kBetween:
  int32_t lo = 0, hi = 0;
  // kJoin:
  SqlColumnRef rhs;
};

/// A parsed (not yet bound) query.
struct ParsedQuery {
  std::vector<SqlSelectItem> select;
  std::vector<SqlTableRef> from;
  std::vector<SqlCondition> where;
  std::optional<SqlColumnRef> group_by;
  /// EXPLAIN <select>: plan only, no execution.
  bool explain = false;
  /// EXPLAIN ANALYZE <select>: execute with profiling, report actuals.
  bool analyze = false;
};

/// Parses one SELECT statement.
StatusOr<ParsedQuery> ParseSql(const std::string& sql);

}  // namespace xprs

#endif  // XPRS_SQL_PARSER_H_
