#include "sql/engine.h"

#include <algorithm>
#include <functional>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

namespace {

// Writes every node's cumulative optimizer estimate into the profile so
// EXPLAIN ANALYZE can print actual-vs-estimated side by side.
void AnnotateEstimates(const CostModel& model, const PlanNode& node,
                       QueryProfile* profile) {
  PlanEstimate est = model.Estimate(node);
  profile->SetEstimate(&node, est.rows, est.ios, est.seq_time);
  if (node.left) AnnotateEstimates(model, *node.left, profile);
  if (node.right) AnnotateEstimates(model, *node.right, profile);
}

// Estimated CPU/disk utilization timeline: run the adaptive scheduler over
// the plan's fragment profiles in the fluid resource model — the same
// machinery parcost uses — and sample its utilization trace.
void AnnotateUtilization(const MachineConfig& machine, const CostModel& model,
                         const PlanNode& plan, const SchedulerOptions& sched,
                         QueryProfile* profile) {
  FragmentGraph graph = FragmentGraph::Decompose(plan);
  std::vector<TaskProfile> tasks =
      model.FragmentProfiles(graph, /*query_id=*/0, /*id_base=*/0);
  FluidSimulator sim(machine);
  AdaptiveScheduler scheduler(machine, sched);
  SimResult result = sim.Run(&scheduler, tasks);
  if (!result.ok()) return;  // estimate only; profile stays usable
  for (const SimTraceSample& s : sim.trace()) {
    UtilSample sample;
    sample.time = s.time;
    sample.duration = s.duration;
    sample.cpus_busy = s.cpus_busy;
    sample.io_rate = s.io_rate;
    sample.effective_bw = s.effective_bw;
    sample.tasks_running = s.tasks_running;
    profile->AddUtilSample(sample);
  }
}

}  // namespace

std::string SqlResult::ToString() const {
  std::string out = schema.ToString() + "\n";
  for (const auto& row : rows) {
    out += row.ToString();
    out += '\n';
  }
  return out;
}

SqlEngine::SqlEngine(Catalog* catalog, const MachineConfig& machine,
                     const CostModel* model)
    : catalog_(catalog), machine_(machine), model_(model) {
  XPRS_CHECK(catalog != nullptr);
  XPRS_CHECK(model != nullptr);
}

StatusOr<std::pair<int, size_t>> SqlEngine::ResolveColumn(
    const Bound& bound, const SqlColumnRef& ref) const {
  int found_rel = -1;
  size_t found_col = 0;
  for (size_t i = 0; i < bound.parsed.from.size(); ++i) {
    const SqlTableRef& t = bound.parsed.from[i];
    if (!ref.qualifier.empty() && ref.qualifier != t.alias) continue;
    const Schema& schema = bound.spec.relations[i].table->schema();
    auto col = schema.ColumnIndex(ref.column);
    if (!col.ok()) {
      if (!ref.qualifier.empty())
        return Status::InvalidArgument(
            StrFormat("no column '%s' in %s", ref.column.c_str(),
                      t.alias.c_str()));
      continue;
    }
    if (found_rel >= 0)
      return Status::InvalidArgument("ambiguous column '" + ref.column + "'");
    found_rel = static_cast<int>(i);
    found_col = col.value();
    if (!ref.qualifier.empty()) break;
  }
  if (found_rel < 0)
    return Status::InvalidArgument("unknown column '" + ref.ToString() + "'");
  return std::make_pair(found_rel, found_col);
}

StatusOr<size_t> SqlEngine::OutputIndex(
    const std::vector<std::pair<int, size_t>>& colmap, int rel, size_t col) {
  for (size_t i = 0; i < colmap.size(); ++i)
    if (colmap[i].first == rel && colmap[i].second == col) return i;
  return Status::Internal("column lost during optimization");
}

StatusOr<SqlEngine::Bound> SqlEngine::Bind(const std::string& sql) const {
  XPRS_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));

  Bound bound;
  bound.parsed = std::move(parsed);

  // FROM: resolve tables, reject duplicate aliases.
  for (const SqlTableRef& ref : bound.parsed.from) {
    XPRS_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(ref.table));
    bound.spec.relations.push_back({table, Predicate()});
  }
  for (size_t i = 0; i < bound.parsed.from.size(); ++i)
    for (size_t j = i + 1; j < bound.parsed.from.size(); ++j)
      if (bound.parsed.from[i].alias == bound.parsed.from[j].alias)
        return Status::InvalidArgument("duplicate table alias '" +
                                       bound.parsed.from[i].alias + "'");

  // WHERE conjuncts: selections attach to their relation; joins go to the
  // equi-join graph.
  for (const SqlCondition& cond : bound.parsed.where) {
    XPRS_ASSIGN_OR_RETURN(auto lhs, ResolveColumn(bound, cond.lhs));
    switch (cond.kind) {
      case SqlCondition::Kind::kCompare: {
        Predicate p = Predicate::Compare(lhs.second, cond.op, cond.constant);
        Predicate& existing = bound.spec.relations[lhs.first].pred;
        existing = Predicate::And(existing, p);
        break;
      }
      case SqlCondition::Kind::kBetween: {
        Predicate p = Predicate::Between(lhs.second, cond.lo, cond.hi);
        Predicate& existing = bound.spec.relations[lhs.first].pred;
        existing = Predicate::And(existing, p);
        break;
      }
      case SqlCondition::Kind::kJoin: {
        XPRS_ASSIGN_OR_RETURN(auto rhs, ResolveColumn(bound, cond.rhs));
        if (lhs.first == rhs.first)
          return Status::InvalidArgument(
              "self-comparison within one relation is not a join");
        bound.spec.joins.push_back(
            {lhs.first, lhs.second, rhs.first, rhs.second});
        break;
      }
    }
  }
  return bound;
}

StatusOr<SqlResult> SqlEngine::Run(const std::string& sql,
                                   const ExecContext* ctx, TreeShape shape,
                                   const MasterOptions* master,
                                   bool force_analyze) {
  // Fail fast on an already-cancelled or expired query: planning time
  // counts against the deadline too. The token also rides ctx into the
  // executors, which poll it at every batch boundary.
  if (ctx != nullptr && ctx->cancel != nullptr)
    XPRS_RETURN_IF_ERROR(ctx->cancel->Check());
  XPRS_ASSIGN_OR_RETURN(Bound bound, Bind(sql));
  const ParsedQuery& parsed = bound.parsed;

  // Inline EXPLAIN [ANALYZE] prefixes: plain EXPLAIN degrades to plan-only;
  // ANALYZE executes with profiling attached.
  const bool analyze = force_analyze || parsed.analyze;
  if (parsed.explain && !analyze) ctx = nullptr;

  // Validate the select list shape.
  size_t num_aggs = 0;
  for (const auto& item : parsed.select)
    num_aggs += item.kind == SqlSelectItem::Kind::kAggregate;
  if (num_aggs > 1)
    return Status::Unimplemented("at most one aggregate per query");
  if (num_aggs == 1 && parsed.select.size() != 1)
    return Status::Unimplemented(
        "an aggregate query selects exactly the aggregate");
  if (parsed.group_by.has_value() && num_aggs == 0)
    return Status::InvalidArgument("GROUP BY requires an aggregate");

  TwoPhaseOptimizer optimizer(machine_, model_);
  XPRS_ASSIGN_OR_RETURN(OptimizedQuery optimized,
                        optimizer.Optimize(bound.spec, shape));

  std::unique_ptr<PlanNode> plan = std::move(optimized.plan);

  // Wrap an aggregate on top when requested.
  if (num_aggs == 1) {
    const SqlSelectItem& agg = parsed.select[0];
    XPRS_ASSIGN_OR_RETURN(auto agg_rc, ResolveColumn(bound, agg.column));
    XPRS_ASSIGN_OR_RETURN(
        size_t agg_out,
        OutputIndex(optimized.colmap, agg_rc.first, agg_rc.second));
    int group_out = -1;
    if (parsed.group_by.has_value()) {
      XPRS_ASSIGN_OR_RETURN(auto g_rc,
                            ResolveColumn(bound, *parsed.group_by));
      XPRS_ASSIGN_OR_RETURN(
          size_t g_out,
          OutputIndex(optimized.colmap, g_rc.first, g_rc.second));
      group_out = static_cast<int>(g_out);
    }
    plan = MakeAggregate(std::move(plan), agg.func, agg_out, group_out);
  }

  SqlResult result;
  result.seqcost = optimized.seqcost;
  result.parcost = optimized.parcost;
  result.plan_text = plan->ToString();

  // `plan` may be moved into the profile below; use the raw pointer after
  // this point.
  const PlanNode* planp = plan.get();

  if (ctx == nullptr) {  // EXPLAIN
    result.schema = planp->output_schema;
    return result;
  }

  // EXPLAIN ANALYZE: build the profile over the final plan (aggregate
  // included), annotate per-node estimates and the fluid-sim utilization
  // timeline, and attach it to the execution context(s).
  std::shared_ptr<QueryProfile> profile;
  ExecContext profiled_ctx;
  MasterOptions profiled_master;
  if (analyze) {
    profile = std::make_shared<QueryProfile>(planp);
    AnnotateEstimates(*model_, *planp, profile.get());
    AnnotateUtilization(machine_, *model_, *planp,
                        master != nullptr ? master->sched : SchedulerOptions(),
                        profile.get());
    profile->AdoptPlan(std::move(plan));
    profiled_ctx = *ctx;
    profiled_ctx.profile = profile.get();
    ctx = &profiled_ctx;
    if (master != nullptr) {
      profiled_master = *master;
      profiled_master.ctx.profile = profile.get();
      master = &profiled_master;
    }
  }

  std::vector<Tuple> rows;
  if (master != nullptr) {
    // Parallel path: fragments of the plan run on slave-backend threads
    // under the adaptive scheduler.
    ParallelMaster backend(machine_, model_, *master);
    XPRS_ASSIGN_OR_RETURN(MasterRunResult run,
                          backend.Run({{planp, /*query_id=*/0}}));
    rows = std::move(run.query_results.at(0));
  } else {
    XPRS_ASSIGN_OR_RETURN(rows, ExecutePlanSequential(*planp, *ctx));
  }

  if (profile != nullptr) {
    result.analyze_text = profile->ToText();
    result.analyze_json = profile->ToJson();
    result.profile = profile;
    // Reconcile with any attached observability: publish profile.* counters
    // and the utilization timeline next to the scheduler's own events.
    if (master != nullptr) {
      profile->PublishMetrics(master->obs.metrics);
      profile->EmitTrace(master->obs.trace);
    }
  }

  if (num_aggs == 1) {
    result.schema = planp->output_schema;
    result.rows = std::move(rows);
    return result;
  }

  // Projection: * expands to every column with qualified names; explicit
  // columns project through the optimizer's colmap.
  std::vector<size_t> out_cols;
  std::vector<Column> out_schema;
  auto qualified_name = [&](size_t output_index) {
    auto [rel, col] = optimized.colmap[output_index];
    return parsed.from[rel].alias + "." +
           bound.spec.relations[rel].table->schema().column(col).name;
  };
  for (const auto& item : parsed.select) {
    if (item.kind == SqlSelectItem::Kind::kStar) {
      for (size_t i = 0; i < optimized.colmap.size(); ++i) {
        out_cols.push_back(i);
        auto [rel, col] = optimized.colmap[i];
        out_schema.push_back(
            {qualified_name(i),
             bound.spec.relations[rel].table->schema().column(col).type});
      }
      continue;
    }
    XPRS_ASSIGN_OR_RETURN(auto rc, ResolveColumn(bound, item.column));
    XPRS_ASSIGN_OR_RETURN(size_t idx,
                          OutputIndex(optimized.colmap, rc.first, rc.second));
    out_cols.push_back(idx);
    out_schema.push_back(
        {qualified_name(idx),
         bound.spec.relations[rc.first].table->schema().column(rc.second)
             .type});
  }

  result.schema = Schema(std::move(out_schema));
  result.rows.reserve(rows.size());
  for (const Tuple& row : rows) {
    std::vector<Value> values;
    values.reserve(out_cols.size());
    for (size_t idx : out_cols) values.push_back(row.value(idx));
    result.rows.push_back(Tuple(std::move(values)));
  }
  return result;
}

StatusOr<SqlResult> SqlEngine::Execute(const std::string& sql,
                                       const ExecContext& ctx,
                                       TreeShape shape) {
  return Run(sql, &ctx, shape);
}

StatusOr<SqlResult> SqlEngine::Explain(const std::string& sql,
                                       TreeShape shape) {
  return Run(sql, nullptr, shape);
}

StatusOr<SqlResult> SqlEngine::ExecuteParallel(const std::string& sql,
                                               const MasterOptions& options,
                                               TreeShape shape) {
  return Run(sql, &options.ctx, shape, &options);
}

StatusOr<SqlResult> SqlEngine::ExplainAnalyze(const std::string& sql,
                                              const ExecContext& ctx,
                                              TreeShape shape) {
  return Run(sql, &ctx, shape, nullptr, /*force_analyze=*/true);
}

StatusOr<SqlResult> SqlEngine::ExplainAnalyzeParallel(
    const std::string& sql, const MasterOptions& options, TreeShape shape) {
  return Run(sql, &options.ctx, shape, &options, /*force_analyze=*/true);
}

StatusOr<TaskProfile> SqlEngine::EstimateProfile(const std::string& sql,
                                                 TreeShape shape) {
  XPRS_ASSIGN_OR_RETURN(Bound bound, Bind(sql));
  TwoPhaseOptimizer optimizer(machine_, model_);
  XPRS_ASSIGN_OR_RETURN(OptimizedQuery optimized,
                        optimizer.Optimize(bound.spec, shape));
  const PlanNode& plan = *optimized.plan;

  PlanEstimate est = model_->Estimate(plan);
  TaskProfile profile;
  profile.name = sql.substr(0, 40);
  // Degenerate estimates (empty relations) still need a positive T so the
  // scheduler's io-rate classification stays defined.
  profile.seq_time = std::max(est.seq_time, 1e-6);
  profile.total_ios = est.ios;

  // The whole plan is random-io as soon as any leaf index-scans: one
  // pointer-chasing stream drags the aggregate bandwidth to the random
  // ceiling (§2.3), which is the conservative admission assumption.
  std::function<bool(const PlanNode&)> has_index_scan =
      [&](const PlanNode& node) {
        if (node.kind == PlanKind::kIndexScan) return true;
        if (node.left != nullptr && has_index_scan(*node.left)) return true;
        return node.right != nullptr && has_index_scan(*node.right);
      };
  profile.pattern = has_index_scan(plan) ? IoPattern::kRandom
                                         : IoPattern::kSequential;

  // Working memory: sum over fragments is the safe bound for a query whose
  // fragments may overlap (pipelined builds feeding a probing consumer).
  FragmentGraph graph = FragmentGraph::Decompose(plan);
  for (int id : graph.TopologicalOrder())
    profile.memory_pages += model_->FragmentMemoryPages(graph,
                                                        graph.fragment(id));
  return profile;
}

}  // namespace xprs
