#include "exec/expr.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

struct Predicate::Node {
  Kind kind = Kind::kTrue;
  // kCompare:
  size_t column = 0;
  CmpOp op = CmpOp::kEq;
  Value constant;
  // kAnd / kOr:
  std::shared_ptr<const Node> left, right;
};

Predicate::Predicate() : node_(std::make_shared<Node>()) {}

Predicate::Predicate(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

Predicate Predicate::Compare(size_t column, CmpOp op, Value constant) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kCompare;
  node->column = column;
  node->op = op;
  node->constant = std::move(constant);
  return Predicate(std::move(node));
}

Predicate Predicate::Between(size_t column, int32_t lo, int32_t hi) {
  return And(Compare(column, CmpOp::kGe, Value(lo)),
             Compare(column, CmpOp::kLe, Value(hi)));
}

Predicate Predicate::And(Predicate a, Predicate b) {
  if (a.IsTrue()) return b;
  if (b.IsTrue()) return a;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = a.node_;
  node->right = b.node_;
  return Predicate(std::move(node));
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = a.node_;
  node->right = b.node_;
  return Predicate(std::move(node));
}

namespace {

bool EvalCompare(const Value& v, CmpOp op, const Value& constant) {
  if (IsNull(v) || IsNull(constant)) return false;
  int c = CompareValues(v, constant);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

bool Predicate::Eval(const Tuple& tuple) const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare:
      XPRS_CHECK_LT(n->column, tuple.size());
      return EvalCompare(tuple.value(n->column), n->op, n->constant);
    case Kind::kAnd:
      return Predicate(n->left).Eval(tuple) && Predicate(n->right).Eval(tuple);
    case Kind::kOr:
      return Predicate(n->left).Eval(tuple) || Predicate(n->right).Eval(tuple);
  }
  return false;
}

bool Predicate::IsTrue() const { return node_->kind == Kind::kTrue; }

bool Predicate::ExtractKeyRange(size_t column, KeyRange* range) const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
    case Kind::kOr:
      return false;
    case Kind::kCompare: {
      if (n->column != column) return false;
      const int32_t* k = std::get_if<int32_t>(&n->constant);
      if (k == nullptr) return false;
      switch (n->op) {
        case CmpOp::kEq:
          range->lo = std::max(range->lo, *k);
          range->hi = std::min(range->hi, *k);
          return true;
        case CmpOp::kLt:
          range->hi = std::min(range->hi, *k - 1);
          return true;
        case CmpOp::kLe:
          range->hi = std::min(range->hi, *k);
          return true;
        case CmpOp::kGt:
          range->lo = std::max(range->lo, *k + 1);
          return true;
        case CmpOp::kGe:
          range->lo = std::max(range->lo, *k);
          return true;
        case CmpOp::kNe:
          return false;
      }
      return false;
    }
    case Kind::kAnd: {
      bool l = Predicate(n->left).ExtractKeyRange(column, range);
      bool r = Predicate(n->right).ExtractKeyRange(column, range);
      return l || r;
    }
  }
  return false;
}

Predicate Predicate::ShiftColumns(size_t offset) const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
      return Predicate();
    case Kind::kCompare:
      return Compare(n->column + offset, n->op, n->constant);
    case Kind::kAnd:
      return And(Predicate(n->left).ShiftColumns(offset),
                 Predicate(n->right).ShiftColumns(offset));
    case Kind::kOr:
      return Or(Predicate(n->left).ShiftColumns(offset),
                Predicate(n->right).ShiftColumns(offset));
  }
  return Predicate();
}

std::string Predicate::ToString() const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCompare:
      return StrFormat("col%zu %s %s", n->column, CmpOpName(n->op),
                       ValueToString(n->constant).c_str());
    case Kind::kAnd:
      return "(" + Predicate(n->left).ToString() + " AND " +
             Predicate(n->right).ToString() + ")";
    case Kind::kOr:
      return "(" + Predicate(n->left).ToString() + " OR " +
             Predicate(n->right).ToString() + ")";
  }
  return "?";
}

}  // namespace xprs
