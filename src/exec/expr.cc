#include "exec/expr.h"

#include <algorithm>
#include <iterator>
#include <numeric>

#include "exec/batch.h"
#include "util/check.h"
#include "util/str.h"

namespace xprs {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

struct Predicate::Node {
  Kind kind = Kind::kTrue;
  // kCompare:
  size_t column = 0;
  CmpOp op = CmpOp::kEq;
  Value constant;
  // kAnd / kOr:
  std::shared_ptr<const Node> left, right;
};

Predicate::Predicate() : node_(std::make_shared<Node>()) {}

Predicate::Predicate(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

Predicate Predicate::Compare(size_t column, CmpOp op, Value constant) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kCompare;
  node->column = column;
  node->op = op;
  node->constant = std::move(constant);
  return Predicate(std::move(node));
}

Predicate Predicate::Between(size_t column, int32_t lo, int32_t hi) {
  return And(Compare(column, CmpOp::kGe, Value(lo)),
             Compare(column, CmpOp::kLe, Value(hi)));
}

Predicate Predicate::And(Predicate a, Predicate b) {
  if (a.IsTrue()) return b;
  if (b.IsTrue()) return a;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = a.node_;
  node->right = b.node_;
  return Predicate(std::move(node));
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = a.node_;
  node->right = b.node_;
  return Predicate(std::move(node));
}

namespace {

bool EvalCompare(const Value& v, CmpOp op, const Value& constant) {
  if (IsNull(v) || IsNull(constant)) return false;
  int c = CompareValues(v, constant);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

// Column-wise comparison: appends the rows of `in` whose (non-NULL) value
// in `column` compares true against `constant`. Mirrors EvalCompare,
// including the CompareValues type CHECK — which only fires for rows that
// actually hold a non-NULL value, so all-NULL columns pass as on the
// tuple path.
void EvalCompareColumn(const ColumnBatch& batch, size_t column, CmpOp op,
                       const Value& constant, const std::vector<uint32_t>& in,
                       std::vector<uint32_t>* out) {
  if (IsNull(constant)) return;  // NULL comparisons are always false
  XPRS_CHECK_LT(column, batch.num_columns());
  const ColumnBatch::Column& col = batch.column(column);
  if (const int32_t* c = std::get_if<int32_t>(&constant)) {
    const bool types_match =
        batch.schema().column(column).type == TypeId::kInt4;
    const int32_t k = *c;
    // One tight loop per operator: the branch on `op` stays out of the
    // per-row path.
    switch (op) {
      case CmpOp::kEq:
        for (uint32_t r : in)
          if (!col.nulls[r]) {
            XPRS_CHECK_MSG(types_match, "comparing values of unequal types");
            if (col.ints[r] == k) out->push_back(r);
          }
        break;
      case CmpOp::kNe:
        for (uint32_t r : in)
          if (!col.nulls[r]) {
            XPRS_CHECK_MSG(types_match, "comparing values of unequal types");
            if (col.ints[r] != k) out->push_back(r);
          }
        break;
      case CmpOp::kLt:
        for (uint32_t r : in)
          if (!col.nulls[r]) {
            XPRS_CHECK_MSG(types_match, "comparing values of unequal types");
            if (col.ints[r] < k) out->push_back(r);
          }
        break;
      case CmpOp::kLe:
        for (uint32_t r : in)
          if (!col.nulls[r]) {
            XPRS_CHECK_MSG(types_match, "comparing values of unequal types");
            if (col.ints[r] <= k) out->push_back(r);
          }
        break;
      case CmpOp::kGt:
        for (uint32_t r : in)
          if (!col.nulls[r]) {
            XPRS_CHECK_MSG(types_match, "comparing values of unequal types");
            if (col.ints[r] > k) out->push_back(r);
          }
        break;
      case CmpOp::kGe:
        for (uint32_t r : in)
          if (!col.nulls[r]) {
            XPRS_CHECK_MSG(types_match, "comparing values of unequal types");
            if (col.ints[r] >= k) out->push_back(r);
          }
        break;
    }
    return;
  }
  const std::string& k = std::get<std::string>(constant);
  const bool types_match = batch.schema().column(column).type == TypeId::kText;
  for (uint32_t r : in) {
    if (col.nulls[r]) continue;
    XPRS_CHECK_MSG(types_match, "comparing values of unequal types");
    const int c = col.texts[r].compare(k);
    bool pass = false;
    switch (op) {
      case CmpOp::kEq:
        pass = c == 0;
        break;
      case CmpOp::kNe:
        pass = c != 0;
        break;
      case CmpOp::kLt:
        pass = c < 0;
        break;
      case CmpOp::kLe:
        pass = c <= 0;
        break;
      case CmpOp::kGt:
        pass = c > 0;
        break;
      case CmpOp::kGe:
        pass = c >= 0;
        break;
    }
    if (pass) out->push_back(r);
  }
}

}  // namespace

bool Predicate::Eval(const Tuple& tuple) const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare:
      XPRS_CHECK_LT(n->column, tuple.size());
      return EvalCompare(tuple.value(n->column), n->op, n->constant);
    case Kind::kAnd:
      return Predicate(n->left).Eval(tuple) && Predicate(n->right).Eval(tuple);
    case Kind::kOr:
      return Predicate(n->left).Eval(tuple) || Predicate(n->right).Eval(tuple);
  }
  return false;
}

void Predicate::EvalBatchNode(const Node& node, const ColumnBatch& batch,
                              const std::vector<uint32_t>& in,
                              std::vector<uint32_t>* out) {
  switch (node.kind) {
    case Kind::kTrue:
      *out = in;
      return;
    case Kind::kCompare:
      EvalCompareColumn(batch, node.column, node.op, node.constant, in, out);
      return;
    case Kind::kAnd: {
      // Sequential refinement: the right side only sees left survivors.
      std::vector<uint32_t> mid;
      EvalBatchNode(*node.left, batch, in, &mid);
      EvalBatchNode(*node.right, batch, mid, out);
      return;
    }
    case Kind::kOr: {
      // Both subsets of the ascending `in` stay sorted, so a merge dedups.
      std::vector<uint32_t> a, b;
      EvalBatchNode(*node.left, batch, in, &a);
      EvalBatchNode(*node.right, batch, in, &b);
      std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(*out));
      return;
    }
  }
}

void Predicate::FilterBatch(ColumnBatch* batch) const {
  if (node_->kind == Kind::kTrue) return;  // every active row survives
  std::vector<uint32_t> in;
  if (batch->has_selection()) {
    in = batch->selection();
  } else {
    in.resize(batch->size());
    std::iota(in.begin(), in.end(), 0u);
  }
  std::vector<uint32_t> out;
  out.reserve(in.size());
  EvalBatchNode(*node_, *batch, in, &out);
  batch->SetSelection(std::move(out));
}

bool Predicate::IsTrue() const { return node_->kind == Kind::kTrue; }

void Predicate::CollectColumns(std::vector<uint8_t>* mask) const {
  std::vector<const Node*> stack = {node_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    switch (n->kind) {
      case Kind::kTrue:
        break;
      case Kind::kCompare:
        if (n->column < mask->size()) (*mask)[n->column] = 1;
        break;
      case Kind::kAnd:
      case Kind::kOr:
        stack.push_back(n->left.get());
        stack.push_back(n->right.get());
        break;
    }
  }
}

bool Predicate::ExtractKeyRange(size_t column, KeyRange* range) const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
    case Kind::kOr:
      return false;
    case Kind::kCompare: {
      if (n->column != column) return false;
      const int32_t* k = std::get_if<int32_t>(&n->constant);
      if (k == nullptr) return false;
      switch (n->op) {
        case CmpOp::kEq:
          range->lo = std::max(range->lo, *k);
          range->hi = std::min(range->hi, *k);
          return true;
        case CmpOp::kLt:
          range->hi = std::min(range->hi, *k - 1);
          return true;
        case CmpOp::kLe:
          range->hi = std::min(range->hi, *k);
          return true;
        case CmpOp::kGt:
          range->lo = std::max(range->lo, *k + 1);
          return true;
        case CmpOp::kGe:
          range->lo = std::max(range->lo, *k);
          return true;
        case CmpOp::kNe:
          return false;
      }
      return false;
    }
    case Kind::kAnd: {
      bool l = Predicate(n->left).ExtractKeyRange(column, range);
      bool r = Predicate(n->right).ExtractKeyRange(column, range);
      return l || r;
    }
  }
  return false;
}

Predicate Predicate::ShiftColumns(size_t offset) const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
      return Predicate();
    case Kind::kCompare:
      return Compare(n->column + offset, n->op, n->constant);
    case Kind::kAnd:
      return And(Predicate(n->left).ShiftColumns(offset),
                 Predicate(n->right).ShiftColumns(offset));
    case Kind::kOr:
      return Or(Predicate(n->left).ShiftColumns(offset),
                Predicate(n->right).ShiftColumns(offset));
  }
  return Predicate();
}

std::string Predicate::ToString() const {
  const Node* n = node_.get();
  switch (n->kind) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCompare:
      return StrFormat("col%zu %s %s", n->column, CmpOpName(n->op),
                       ValueToString(n->constant).c_str());
    case Kind::kAnd:
      return "(" + Predicate(n->left).ToString() + " AND " +
             Predicate(n->right).ToString() + ")";
    case Kind::kOr:
      return "(" + Predicate(n->left).ToString() + " OR " +
             Predicate(n->right).ToString() + ")";
  }
  return "?";
}

}  // namespace xprs
