// Plan fragments: the units of parallel execution (§2.1).
//
// A sequential plan is decomposed at its *blocking edges* — edges where one
// operation must consume its input completely before producing anything:
// the input of a Sort and the build side of a HashJoin. The maximal
// pipelineable subgraphs between blocking edges are the plan fragments;
// inter-operation parallelism in XPRS is inter-fragment parallelism.
//
// Fragment outputs are materialized into shared memory (TempResult) and
// consumed by the parent fragment through a TempSourceOp.

#ifndef XPRS_EXEC_FRAGMENT_H_
#define XPRS_EXEC_FRAGMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/plan.h"

namespace xprs {

/// One plan fragment.
struct Fragment {
  int id = -1;
  /// Root of the fragment's subtree within the original plan. For a
  /// sort-boundary fragment this *is* the Sort node (the producing
  /// fragment pays the sort work).
  const PlanNode* root = nullptr;
  /// Blocked inputs: plan node -> id of the fragment that produces it.
  std::map<const PlanNode*, int> blocked_inputs;
  /// Fragments that must finish before this one can run.
  std::vector<int> deps;

  std::string ToString() const;
};

/// The fragment DAG of one plan.
class FragmentGraph {
 public:
  /// Decomposes `plan` (which must outlive the graph).
  static FragmentGraph Decompose(const PlanNode& plan);

  const std::vector<Fragment>& fragments() const { return fragments_; }
  const Fragment& fragment(int id) const { return fragments_[id]; }

  /// Fragment producing the final query output.
  int root_fragment() const { return root_fragment_; }

  /// Ids in a valid execution order (dependencies first).
  std::vector<int> TopologicalOrder() const;

  std::string ToString() const;

 private:
  int NewFragment(const PlanNode* root);
  // Walks `node` within fragment `frag`, splitting at blocking edges.
  void Walk(const PlanNode* node, int frag);

  std::vector<Fragment> fragments_;
  int root_fragment_ = -1;
};

/// Structural invariants of a decomposition, asserted by the differential
/// harness: the root fragment's root is the plan root; every blocked input
/// maps to a fragment rooted at exactly that node and listed in deps; the
/// topological order is a dependency-respecting permutation of all
/// fragments; and the fragments' pipeline node sets partition the plan —
/// each plan node is owned by exactly one fragment (fragment accounting).
/// Returns FailedPrecondition describing the first violation.
Status ValidateFragmentGraph(const FragmentGraph& graph, const PlanNode& plan);

/// Executes one fragment with the given materialized inputs, optionally as
/// one worker of a static page partition (worker `partition_index` of
/// `num_partitions` over the fragment's driving scan).
StatusOr<TempResult> ExecuteFragment(
    const FragmentGraph& graph, int frag_id,
    const std::map<int, const TempResult*>& inputs, const ExecContext& ctx,
    int num_partitions = 1, int partition_index = 0);

/// Builds the operator tree of one fragment (blocked inputs replaced by
/// TempSourceOp over `inputs`). Exposed for the parallel executor.
StatusOr<std::unique_ptr<Operator>> BuildFragmentOperators(
    const FragmentGraph& graph, int frag_id,
    const std::map<int, const TempResult*>& inputs, const ExecContext& ctx,
    int num_partitions = 1, int partition_index = 0);

/// Factory for the fragment's *driving* source — the left-most leaf of its
/// pipeline (a scan, or the TempSource of a blocked left-most input). The
/// parallel executor uses this to substitute dynamically partitioned
/// sources. Receives the leaf plan node, or nullptr when the driving leaf
/// is a blocked input (the factory then wraps that fragment's TempResult).
using DrivingLeafFactory =
    std::function<StatusOr<std::unique_ptr<Operator>>(const PlanNode* leaf)>;

/// BuildFragmentOperators variant replacing the driving leaf via `factory`;
/// all other leaves are built normally (inner scans run whole).
StatusOr<std::unique_ptr<Operator>> BuildFragmentOperatorsWithDriver(
    const FragmentGraph& graph, int frag_id,
    const std::map<int, const TempResult*>& inputs, const ExecContext& ctx,
    const DrivingLeafFactory& factory);

/// The driving leaf of a fragment: its left-most plan node that is either
/// a scan or a blocked input. Returns the node (which may be a blocked
/// input node — check fragment.blocked_inputs).
const PlanNode* DrivingLeaf(const FragmentGraph& graph, int frag_id);

/// Executes a whole plan fragment-by-fragment in dependency order (each
/// fragment sequential). Must produce exactly what ExecutePlanSequential
/// produces — the integration tests assert this.
StatusOr<std::vector<Tuple>> ExecutePlanFragmented(const PlanNode& plan,
                                                   const ExecContext& ctx);

}  // namespace xprs

#endif  // XPRS_EXEC_FRAGMENT_H_
