#include "exec/batch.h"

#include "util/check.h"

namespace xprs {

void ColumnBatch::Reset(const Schema* schema) {
  XPRS_CHECK(schema != nullptr);
  if (schema_ != schema) {
    schema_ = schema;
    columns_.resize(schema->num_columns());
  }
  num_rows_ = 0;
  sel_.clear();
  has_sel_ = false;
}

uint32_t ColumnBatch::AddRow() {
  const uint32_t row = num_rows_++;
  for (Column& c : columns_) {
    if (c.nulls.size() <= row) c.nulls.resize(row + 1);
    c.nulls[row] = 1;
  }
  return row;
}

Status ColumnBatch::AppendSerializedTuple(const uint8_t* data, uint16_t size,
                                          const std::vector<uint8_t>* mask) {
  const uint32_t row = AddRow();
  uint32_t pos = 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (pos >= size) return Status::Internal("truncated tuple (null byte)");
    const bool null = data[pos++] != 0;
    if (null) continue;  // AddRow initialized the row to all-NULL
    // Masked-out columns are parsed past (the wire format is sequential)
    // but never stored; bounds checks stay identical either way.
    const bool wanted = mask == nullptr || (*mask)[c] != 0;
    switch (schema_->column(c).type) {
      case TypeId::kInt4: {
        if (pos + 4 > size) return Status::Internal("truncated tuple (int4)");
        if (wanted) {
          const uint32_t raw = static_cast<uint32_t>(data[pos]) |
                               static_cast<uint32_t>(data[pos + 1]) << 8 |
                               static_cast<uint32_t>(data[pos + 2]) << 16 |
                               static_cast<uint32_t>(data[pos + 3]) << 24;
          SetInt(c, row, static_cast<int32_t>(raw));
        }
        pos += 4;
        break;
      }
      case TypeId::kText: {
        if (pos + 4 > size)
          return Status::Internal("truncated tuple (text length)");
        const uint32_t len = static_cast<uint32_t>(data[pos]) |
                             static_cast<uint32_t>(data[pos + 1]) << 8 |
                             static_cast<uint32_t>(data[pos + 2]) << 16 |
                             static_cast<uint32_t>(data[pos + 3]) << 24;
        pos += 4;
        if (pos + len > size) return Status::Internal("truncated tuple (text)");
        if (wanted)
          SetText(c, row, reinterpret_cast<const char*>(data + pos), len);
        pos += len;
        break;
      }
    }
  }
  return Status::OK();
}

void ColumnBatch::AppendTuple(const Tuple& tuple) {
  XPRS_CHECK_EQ(tuple.size(), columns_.size());
  const uint32_t row = AddRow();
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Value& v = tuple.value(c);
    if (IsNull(v)) continue;
    if (const int32_t* iv = std::get_if<int32_t>(&v)) {
      SetInt(c, row, *iv);
    } else {
      const std::string& sv = std::get<std::string>(v);
      SetText(c, row, sv.data(), sv.size());
    }
  }
}

void ColumnBatch::CopyValue(size_t dst_col, uint32_t dst_row,
                            const ColumnBatch& src, size_t src_col,
                            uint32_t src_row) {
  const Column& from = src.columns_[src_col];
  if (from.nulls[src_row]) return;  // destination row starts all-NULL
  if (src.schema_->column(src_col).type == TypeId::kInt4) {
    SetInt(dst_col, dst_row, from.ints[src_row]);
  } else {
    const std::string& s = from.texts[src_row];
    SetText(dst_col, dst_row, s.data(), s.size());
  }
}

void ColumnBatch::AppendRowFrom(const ColumnBatch& src, uint32_t src_row) {
  XPRS_CHECK_EQ(columns_.size(), src.columns_.size());
  const uint32_t row = AddRow();
  for (size_t c = 0; c < columns_.size(); ++c)
    CopyValue(c, row, src, c, src_row);
}

void ColumnBatch::AppendConcatRow(const ColumnBatch& left, uint32_t left_row,
                                  const ColumnBatch& right, uint32_t right_row,
                                  const std::vector<uint8_t>* mask) {
  const size_t split = left.columns_.size();
  XPRS_CHECK_EQ(columns_.size(), split + right.columns_.size());
  const uint32_t row = AddRow();
  for (size_t c = 0; c < split; ++c) {
    if (mask == nullptr || (*mask)[c] != 0) CopyValue(c, row, left, c, left_row);
  }
  for (size_t c = 0; c < right.columns_.size(); ++c) {
    if (mask == nullptr || (*mask)[split + c] != 0)
      CopyValue(split + c, row, right, c, right_row);
  }
}

Tuple ColumnBatch::MaterializeRow(uint32_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = columns_[c];
    if (col.nulls[row]) {
      values.emplace_back(std::monostate{});
    } else if (schema_->column(c).type == TypeId::kInt4) {
      values.emplace_back(col.ints[row]);
    } else {
      values.emplace_back(col.texts[row]);
    }
  }
  return Tuple(std::move(values));
}

}  // namespace xprs
