// Plan-to-operator-tree builder and the sequential reference executor.

#ifndef XPRS_EXEC_EXECUTOR_H_
#define XPRS_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "exec/operators.h"
#include "exec/plan.h"

namespace xprs {

/// Builds a complete operator tree for a plan (no fragment boundaries —
/// blocking operators like Sort and the hash-join build run inline).
/// `num_partitions`/`partition_index` statically page-partition the
/// *left-most* scan of the tree; inner/build scans are executed in full.
StatusOr<std::unique_ptr<Operator>> BuildOperatorTree(
    const PlanNode& plan, const ExecContext& ctx, int num_partitions = 1,
    int partition_index = 0);

/// Convenience: build + drain. The trusted reference executor tests and
/// the parallel executor compare against.
StatusOr<std::vector<Tuple>> ExecutePlanSequential(const PlanNode& plan,
                                                   const ExecContext& ctx);

/// ExecutePlanSequential with ctx.vectorized forced on: batch-capable
/// subtrees run through the ColumnBatch operators (exec/batch_ops.h).
StatusOr<std::vector<Tuple>> ExecutePlanVectorized(const PlanNode& plan,
                                                   const ExecContext& ctx);

/// Knobs for ExecutePlanResilient.
struct ResilientExecOptions {
  /// Budget per rung of the ladder (the first attempt counts).
  RetryPolicy retry;
  /// When set, a ResourceExhausted that survives the retry budget —
  /// buffer-pool admission control under memory pressure — degrades the
  /// query instead of failing it: the plan re-runs with the pool bypassed
  /// and spilling enabled on this temp array (§5 memory-bounded paths).
  DiskArray* degrade_spill_array = nullptr;
  /// In-memory tuple budget per operator for the degraded spill run.
  size_t degrade_spill_tuples = 64;
  /// resilience.* metric / trace target. Optional.
  Observability obs;
};

/// Serial execution behind the resilience ladder: retryable failures
/// (IoError, ResourceExhausted) are retried with bounded exponential
/// backoff; persistent buffer-pool exhaustion degrades to the spill path
/// when configured; cancellation and deadlines are never retried. Each
/// rung emits resilience.retry.query / resilience.degrade.spill events.
StatusOr<std::vector<Tuple>> ExecutePlanResilient(
    const PlanNode& plan, const ExecContext& ctx,
    const ResilientExecOptions& options);

}  // namespace xprs

#endif  // XPRS_EXEC_EXECUTOR_H_
