// Plan-to-operator-tree builder and the sequential reference executor.

#ifndef XPRS_EXEC_EXECUTOR_H_
#define XPRS_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "exec/operators.h"
#include "exec/plan.h"

namespace xprs {

/// Builds a complete operator tree for a plan (no fragment boundaries —
/// blocking operators like Sort and the hash-join build run inline).
/// `num_partitions`/`partition_index` statically page-partition the
/// *left-most* scan of the tree; inner/build scans are executed in full.
StatusOr<std::unique_ptr<Operator>> BuildOperatorTree(
    const PlanNode& plan, const ExecContext& ctx, int num_partitions = 1,
    int partition_index = 0);

/// Convenience: build + drain. The trusted reference executor tests and
/// the parallel executor compare against.
StatusOr<std::vector<Tuple>> ExecutePlanSequential(const PlanNode& plan,
                                                   const ExecContext& ctx);

}  // namespace xprs

#endif  // XPRS_EXEC_EXECUTOR_H_
