#include "exec/batch_ops.h"

#include <algorithm>

#include "util/check.h"

namespace xprs {

namespace {

// Target rows per produced batch; never zero so fill loops terminate.
uint32_t BatchTarget(const ExecContext& ctx) {
  return static_cast<uint32_t>(std::max<size_t>(1, ctx.batch_rows));
}

}  // namespace

// ----------------------------------------------------------- BatchSeqScan

BatchSeqScanOp::BatchSeqScanOp(Table* table, ExecContext ctx,
                               int num_partitions, int partition_index)
    : table_(table),
      ctx_(ctx),
      num_partitions_(num_partitions),
      partition_index_(partition_index) {
  XPRS_CHECK(table != nullptr);
  XPRS_CHECK_GE(num_partitions, 1);
  XPRS_CHECK_GE(partition_index, 0);
  XPRS_CHECK_LT(partition_index, num_partitions);
}

Status BatchSeqScanOp::Open() {
  next_page_ = 0;
  pages_read_ = 0;
  // Advance to this worker's first page.
  while (next_page_ < table_->file().num_pages() &&
         static_cast<int>(next_page_ % num_partitions_) != partition_index_)
    ++next_page_;
  if (owns_node_stats_) ProfOpen();
  return Status::OK();
}

Status BatchSeqScanOp::NextBatch(ColumnBatch* out, bool* eof) {
  *eof = false;
  out->Reset(&table_->schema());
  const uint32_t target = BatchTarget(ctx_);
  while (out->size() < target && next_page_ < table_->file().num_pages()) {
    if (ctx_.cancel != nullptr) XPRS_RETURN_IF_ERROR(ctx_.cancel->Check());
    // The pin (when pooled) lives exactly as long as this page's decode.
    PageHandle handle;
    const Page* page;
    if (ctx_.pool != nullptr) {
      XPRS_ASSIGN_OR_RETURN(BlockId block, table_->file().BlockOf(next_page_));
      auto fetched = FetchWithBackpressure(ctx_, block);
      if (!fetched.ok()) return fetched.status();
      handle = std::move(fetched).value();
      page = &handle.page();
    } else {
      XPRS_RETURN_IF_ERROR(table_->file().ReadPage(next_page_, &direct_page_));
      page = &direct_page_;
    }
    ++pages_read_;
    ProfPagesRead(1);
    const uint16_t n = page->num_tuples();
    for (uint16_t slot = 0; slot < n; ++slot) {
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(page->GetTuple(slot, &data, &size));
      XPRS_RETURN_IF_ERROR(out->AppendSerializedTuple(
          data, size, decode_mask_.empty() ? nullptr : &decode_mask_));
    }
    next_page_ += num_partitions_;
  }
  if (out->size() == 0) {
    *eof = true;
    return Status::OK();
  }
  if (owns_node_stats_) ProfRowsOut(out->size());
  return Status::OK();
}

// ------------------------------------------------------------ BatchFilter

BatchFilterOp::BatchFilterOp(std::unique_ptr<BatchOperator> child,
                             Predicate predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  XPRS_CHECK(child_ != nullptr);
}

Status BatchFilterOp::Open() {
  ProfOpen();
  return child_->Open();
}

Status BatchFilterOp::NextBatch(ColumnBatch* out, bool* eof) {
  *eof = false;
  for (;;) {
    bool child_eof = false;
    XPRS_RETURN_IF_ERROR(child_->NextBatch(out, &child_eof));
    if (child_eof) {
      *eof = true;
      return Status::OK();
    }
    const uint32_t evaluated = out->ActiveSize();
    if (prof_ == nullptr) {
      predicate_.FilterBatch(out);
    } else {
      const uint64_t t0 = ProfileNowNs();
      predicate_.FilterBatch(out);
      ProfEvalBatch(evaluated, ProfileNowNs() - t0);
    }
    if (out->ActiveSize() > 0) {
      ProfRowsOut(out->ActiveSize());
      return Status::OK();
    }
    // All rows filtered: keep pulling so consumers never see empty batches.
  }
}

void BatchFilterOp::PruneOutputColumns(const std::vector<uint8_t>& needed) {
  std::vector<uint8_t> merged = needed;
  predicate_.CollectColumns(&merged);
  child_->PruneOutputColumns(merged);
}

// ---------------------------------------------------------- BatchHashJoin

BatchHashJoinOp::BatchHashJoinOp(std::unique_ptr<BatchOperator> outer,
                                 std::unique_ptr<BatchOperator> inner,
                                 size_t left_key, size_t right_key,
                                 ExecContext ctx)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      left_key_(left_key),
      right_key_(right_key),
      ctx_(ctx),
      schema_(Schema::Concat(outer_->schema(), inner_->schema())) {}

Status BatchHashJoinOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) {
    table_.clear();
    (void)inner_->Close();
    (void)outer_->Close();
  }
  return st;
}

Status BatchHashJoinOp::OpenImpl() {
  table_.clear();
  build_.Reset(&inner_->schema());
  probe_pos_ = 0;
  have_probe_ = false;
  outer_done_ = false;
  // Blocking build phase.
  XPRS_RETURN_IF_ERROR(inner_->Open());
  const bool key_is_int =
      inner_->schema().column(right_key_).type == TypeId::kInt4;
  for (;;) {
    bool eof = false;
    XPRS_RETURN_IF_ERROR(inner_->NextBatch(&scratch_, &eof));
    if (eof) break;
    if (ctx_.cancel != nullptr) XPRS_RETURN_IF_ERROR(ctx_.cancel->Check());
    const uint32_t n = scratch_.ActiveSize();
    for (uint32_t k = 0; k < n; ++k) {
      const uint32_t r = scratch_.ActiveRow(k);
      if (scratch_.IsNullAt(right_key_, r)) continue;  // NULL keys never match
      XPRS_CHECK_MSG(key_is_int, "join key must be int4");
      table_.emplace(scratch_.IntAt(right_key_, r), build_.size());
      build_.AppendRowFrom(scratch_, r);
    }
  }
  XPRS_RETURN_IF_ERROR(inner_->Close());
  ProfBuildRows(build_.size());
  ProfOpen();
  return outer_->Open();
}

Status BatchHashJoinOp::NextBatch(ColumnBatch* out, bool* eof) {
  *eof = false;
  out->Reset(&schema_);
  const uint32_t target = BatchTarget(ctx_);
  const bool key_is_int =
      outer_->schema().column(left_key_).type == TypeId::kInt4;
  for (;;) {
    if (have_probe_) {
      const uint32_t n = probe_.ActiveSize();
      while (probe_pos_ < n) {
        const uint32_t r = probe_.ActiveRow(probe_pos_++);
        if (probe_.IsNullAt(left_key_, r)) continue;  // NULL keys never match
        XPRS_CHECK_MSG(key_is_int, "join key must be int4");
        auto [lo, hi] = table_.equal_range(probe_.IntAt(left_key_, r));
        const std::vector<uint8_t>* mask =
            emit_mask_.empty() ? nullptr : &emit_mask_;
        for (auto it = lo; it != hi; ++it)
          out->AppendConcatRow(probe_, r, build_, it->second, mask);
        // A probe row is never split across output batches, so the batch
        // may overshoot the target by one row's match count.
        if (out->size() >= target) {
          ProfRowsOut(out->size());
          return Status::OK();
        }
      }
      have_probe_ = false;
    }
    if (outer_done_) break;
    bool probe_eof = false;
    XPRS_RETURN_IF_ERROR(outer_->NextBatch(&probe_, &probe_eof));
    if (probe_eof) {
      outer_done_ = true;
      break;
    }
    probe_pos_ = 0;
    have_probe_ = true;
  }
  if (out->size() == 0) {
    *eof = true;
    return Status::OK();
  }
  ProfRowsOut(out->size());
  return Status::OK();
}

Status BatchHashJoinOp::Close() {
  table_.clear();
  return outer_->Close();
}

void BatchHashJoinOp::PruneOutputColumns(const std::vector<uint8_t>& needed) {
  emit_mask_ = needed;
  // Each side must still produce its join key even when the consumer
  // drops it from the output.
  const size_t split = outer_->schema().num_columns();
  std::vector<uint8_t> outer_needed(needed.begin(), needed.begin() + split);
  outer_needed[left_key_] = 1;
  outer_->PruneOutputColumns(outer_needed);
  std::vector<uint8_t> inner_needed(needed.begin() + split, needed.end());
  inner_needed[right_key_] = 1;
  inner_->PruneOutputColumns(inner_needed);
}

// --------------------------------------------------------- BatchAggregate

BatchAggregateOp::BatchAggregateOp(std::unique_ptr<BatchOperator> child,
                                   Schema output_schema, AggFunc func,
                                   size_t agg_col, int group_col,
                                   ExecContext ctx)
    : child_(std::move(child)),
      schema_(std::move(output_schema)),
      func_(func),
      agg_col_(agg_col),
      group_col_(group_col),
      ctx_(ctx) {
  XPRS_CHECK(child_ != nullptr);
}

Status BatchAggregateOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) (void)child_->Close();
  return st;
}

Status BatchAggregateOp::OpenImpl() {
  results_.Reset(&schema_);
  pos_ = 0;

  struct Acc {
    int64_t count = 0;
    int64_t sum = 0;
    int32_t min = 0;
    int32_t max = 0;
    bool any = false;
  };
  std::unordered_map<int32_t, Acc> groups;
  Acc global;

  const Schema& in = child_->schema();
  const bool agg_is_int = in.column(agg_col_).type == TypeId::kInt4;
  XPRS_RETURN_IF_ERROR(child_->Open());
  for (;;) {
    bool eof = false;
    XPRS_RETURN_IF_ERROR(child_->NextBatch(&scratch_, &eof));
    if (eof) break;
    if (ctx_.cancel != nullptr) XPRS_RETURN_IF_ERROR(ctx_.cancel->Check());
    const uint32_t n = scratch_.ActiveSize();
    for (uint32_t k = 0; k < n; ++k) {
      const uint32_t r = scratch_.ActiveRow(k);
      if (scratch_.IsNullAt(agg_col_, r)) continue;  // SQL: skip NULL inputs
      if (!agg_is_int)
        return Status::InvalidArgument("aggregate column must be int4");
      const int32_t value = scratch_.IntAt(agg_col_, r);

      Acc* acc = &global;
      if (group_col_ >= 0) {
        const size_t g = static_cast<size_t>(group_col_);
        if (scratch_.IsNullAt(g, r)) continue;  // NULL group key: dropped
        XPRS_CHECK_MSG(in.column(g).type == TypeId::kInt4,
                       "join key must be int4");
        acc = &groups[scratch_.IntAt(g, r)];
      }
      ++acc->count;
      acc->sum += value;
      if (!acc->any || value < acc->min) acc->min = value;
      if (!acc->any || value > acc->max) acc->max = value;
      acc->any = true;
    }
  }
  XPRS_RETURN_IF_ERROR(child_->Close());

  auto emit = [this](const Acc& acc) -> int32_t {
    switch (func_) {
      case AggFunc::kCount:
        return static_cast<int32_t>(acc.count);
      case AggFunc::kSum:
        return static_cast<int32_t>(acc.sum);
      case AggFunc::kMin:
        return acc.min;
      case AggFunc::kMax:
        return acc.max;
    }
    return 0;
  };

  if (group_col_ >= 0) {
    // Deterministic output order: by group key.
    std::vector<int32_t> keys;
    keys.reserve(groups.size());
    for (const auto& [k, acc] : groups) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    for (int32_t k : keys) {
      const uint32_t row = results_.AddRow();
      results_.SetInt(0, row, k);
      results_.SetInt(1, row, emit(groups.at(k)));
    }
  } else if (global.any || func_ == AggFunc::kCount) {
    const uint32_t row = results_.AddRow();
    results_.SetInt(0, row, emit(global));
  }
  ProfOpen();
  return Status::OK();
}

Status BatchAggregateOp::NextBatch(ColumnBatch* out, bool* eof) {
  *eof = false;
  out->Reset(&schema_);
  const uint32_t target = BatchTarget(ctx_);
  while (pos_ < results_.size() && out->size() < target)
    out->AppendRowFrom(results_, pos_++);
  if (out->size() == 0) {
    *eof = true;
    return Status::OK();
  }
  ProfRowsOut(out->size());
  return Status::OK();
}

Status BatchAggregateOp::Close() {
  results_.Reset(&schema_);
  pos_ = 0;
  return Status::OK();
}

// --------------------------------------------------------- BatchFromTuple

BatchFromTupleOp::BatchFromTupleOp(std::unique_ptr<Operator> child,
                                   size_t batch_rows)
    : child_(std::move(child)),
      batch_rows_(std::max<size_t>(1, batch_rows)) {
  XPRS_CHECK(child_ != nullptr);
}

Status BatchFromTupleOp::NextBatch(ColumnBatch* out, bool* eof) {
  *eof = false;
  out->Reset(&child_->schema());
  while (out->size() < batch_rows_) {
    Tuple tuple;
    bool child_eof = false;
    XPRS_RETURN_IF_ERROR(child_->Next(&tuple, &child_eof));
    if (child_eof) break;
    out->AppendTuple(tuple);
  }
  if (out->size() == 0) *eof = true;
  return Status::OK();
}

// ------------------------------------------------------ VectorizedAdapter

VectorizedAdapterOp::VectorizedAdapterOp(std::unique_ptr<BatchOperator> child,
                                         CancellationToken* cancel)
    : child_(std::move(child)), cancel_(cancel) {
  XPRS_CHECK(child_ != nullptr);
}

Status VectorizedAdapterOp::Open() {
  if (cancel_ != nullptr) XPRS_RETURN_IF_ERROR(cancel_->Check());
  pos_ = 0;
  have_batch_ = false;
  done_ = false;
  return child_->Open();
}

Status VectorizedAdapterOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (have_batch_ && pos_ < batch_.ActiveSize()) {
      *out = batch_.MaterializeRow(batch_.ActiveRow(pos_++));
      return Status::OK();
    }
    have_batch_ = false;
    if (done_) {
      *eof = true;
      return Status::OK();
    }
    // One poll per batch (vs per 64 tuples on the tuple path).
    if (cancel_ != nullptr) XPRS_RETURN_IF_ERROR(cancel_->Check());
    bool child_eof = false;
    XPRS_RETURN_IF_ERROR(child_->NextBatch(&batch_, &child_eof));
    if (child_eof) {
      done_ = true;
      *eof = true;
      return Status::OK();
    }
    pos_ = 0;
    have_batch_ = true;
  }
}

// --------------------------------------------------------------- builders

namespace {

bool HookLeaf(const PlanNode& node, bool partition_leftmost,
              const BatchLeafHooks* hooks) {
  return hooks != nullptr && hooks->is_leaf &&
         hooks->is_leaf(&node, partition_leftmost);
}

}  // namespace

bool VectorizableSubtree(const PlanNode& node, const ExecContext& ctx,
                         bool partition_leftmost,
                         const BatchLeafHooks* hooks) {
  if (HookLeaf(node, partition_leftmost, hooks)) return true;
  switch (node.kind) {
    case PlanKind::kSeqScan:
      return true;
    case PlanKind::kAggregate:
      return VectorizableSubtree(*node.left, ctx, partition_leftmost, hooks);
    case PlanKind::kHashJoin: {
      // Spill-configured contexts use GraceHashJoinOp; stay on the tuple
      // path so memory bounds keep holding.
      if (ctx.spill.temp_array != nullptr) return false;
      // Non-int4 keys fall back to the tuple path, which only type-checks
      // keys it actually extracts (all-NULL inputs pass).
      const Schema& ls = node.left->output_schema;
      const Schema& rs = node.right->output_schema;
      if (node.left_key >= ls.num_columns() ||
          ls.column(node.left_key).type != TypeId::kInt4 ||
          node.right_key >= rs.num_columns() ||
          rs.column(node.right_key).type != TypeId::kInt4)
        return false;
      return VectorizableSubtree(*node.left, ctx, partition_leftmost, hooks) &&
             VectorizableSubtree(*node.right, ctx, false, hooks);
    }
    default:
      return false;
  }
}

StatusOr<std::unique_ptr<BatchOperator>> BuildBatchTree(
    const PlanNode& node, const ExecContext& ctx, int num_partitions,
    int partition_index, bool partition_leftmost,
    const BatchLeafHooks* hooks) {
  if (HookLeaf(node, partition_leftmost, hooks)) {
    // Foreign leaves re-emit another node's (already profiled) output.
    return hooks->make(&node, partition_leftmost);
  }
  OperatorStats* stats =
      ctx.profile != nullptr ? ctx.profile->StatsFor(&node) : nullptr;
  switch (node.kind) {
    case PlanKind::kSeqScan: {
      const int n = partition_leftmost ? num_partitions : 1;
      const int i = partition_leftmost ? partition_index : 0;
      auto scan = std::make_unique<BatchSeqScanOp>(node.table, ctx, n, i);
      scan->set_profile_stats(stats);
      if (node.predicate.IsTrue())
        return std::unique_ptr<BatchOperator>(std::move(scan));
      // The filter owns the node's opens / tuples_out / evals; the scan
      // underneath contributes only pages_read.
      scan->set_owns_node_stats(false);
      auto filter =
          std::make_unique<BatchFilterOp>(std::move(scan), node.predicate);
      filter->set_profile_stats(stats);
      return std::unique_ptr<BatchOperator>(std::move(filter));
    }
    case PlanKind::kAggregate: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchOperator> child,
          BuildBatchTree(*node.left, ctx, num_partitions, partition_index,
                         partition_leftmost, hooks));
      // The aggregate reads only its agg / group columns: prune the rest
      // out of the child pipeline (scans skip the decode, joins skip the
      // copy). The root of a pipeline is never pruned, so results at the
      // adapter boundary are unaffected.
      std::vector<uint8_t> needed(child->schema().num_columns(), 0);
      needed[node.agg_col] = 1;
      if (node.group_col >= 0) needed[node.group_col] = 1;
      child->PruneOutputColumns(needed);
      auto op = std::make_unique<BatchAggregateOp>(
          std::move(child), node.output_schema, node.agg_func, node.agg_col,
          node.group_col, ctx);
      op->set_profile_stats(stats);
      return std::unique_ptr<BatchOperator>(std::move(op));
    }
    case PlanKind::kHashJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchOperator> outer,
          BuildBatchTree(*node.left, ctx, num_partitions, partition_index,
                         partition_leftmost, hooks));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<BatchOperator> inner,
                            BuildBatchTree(*node.right, ctx, 1, 0, false,
                                           hooks));
      auto op = std::make_unique<BatchHashJoinOp>(std::move(outer),
                                                  std::move(inner),
                                                  node.left_key,
                                                  node.right_key, ctx);
      op->set_profile_stats(stats);
      return std::unique_ptr<BatchOperator>(std::move(op));
    }
    default:
      return Status::Internal("plan node is not vectorizable");
  }
}

StatusOr<std::unique_ptr<Operator>> BuildVectorizedTree(
    const PlanNode& node, const ExecContext& ctx, int num_partitions,
    int partition_index, bool partition_leftmost,
    const BatchLeafHooks* hooks) {
  XPRS_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchOperator> root,
      BuildBatchTree(node, ctx, num_partitions, partition_index,
                     partition_leftmost, hooks));
  // The adapter is the subtree's outermost cancellation point; it is not
  // profiled (the batch operators own their nodes' stats).
  return std::unique_ptr<Operator>(
      std::make_unique<VectorizedAdapterOp>(std::move(root), ctx.cancel));
}

}  // namespace xprs
