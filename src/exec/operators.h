// Volcano-style sequential operators.
//
// Every operator implements Open / Next / Close. Scans pay disk time
// through the storage layer (optionally via a shared buffer pool), which is
// what gives each plan fragment its i/o rate C_i.

#ifndef XPRS_EXEC_OPERATORS_H_
#define XPRS_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/profile.h"
#include "resilience/retry.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace xprs {

/// Spill configuration for memory-bounded operators (external sort,
/// grace hash join).
struct SpillConfig {
  /// Disk array temporary files are written to. nullptr = never spill
  /// (pure in-memory operators are used instead).
  DiskArray* temp_array = nullptr;
  /// Maximum tuples held in memory per operator before spilling.
  size_t memory_tuples = 4096;
};

/// Shared execution state.
struct ExecContext {
  /// When set, page reads go through this pool; otherwise directly to the
  /// disk array.
  BufferPool* pool = nullptr;
  /// When spill.temp_array is set, plan builders produce spilling Sort and
  /// HashJoin operators bounded by spill.memory_tuples (§5 extension).
  SpillConfig spill;
  /// When set, the plan builders bind every operator to the matching
  /// OperatorStats and insert the timing decorator — the EXPLAIN ANALYZE
  /// path. Null (the default) keeps execution instrumentation-free.
  QueryProfile* profile = nullptr;
  /// Cooperative cancellation / per-query deadline. Nullable. Scans poll
  /// it at page boundaries; the plan builders additionally insert a
  /// CancelGuardOp over every operator so blocking drains (sort, hash
  /// build, aggregate) also terminate promptly.
  CancellationToken* cancel = nullptr;
  /// When set, ResourceExhausted from BufferPool::Fetch (admission control
  /// under memory pressure) is retried with backoff before surfacing; see
  /// FetchWithBackpressure. Null = a single attempt, pre-existing behavior.
  const RetryPolicy* fetch_retry = nullptr;
  /// Trace/metrics target for resilience events raised on the execution
  /// path (backpressure retries, degradations). Optional.
  Observability obs;
  /// When true, plan builders compile vectorizable subtrees (SeqScan /
  /// HashJoin / Aggregate; see exec/batch_ops.h) to batch-at-a-time
  /// operators bridged through a VectorizedAdapterOp. Plans (or subtrees)
  /// the batch path cannot run fall back to the tuple operators.
  bool vectorized = false;
  /// Target rows per ColumnBatch on the vectorized path.
  size_t batch_rows = 1024;
};

/// Base iterator.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares for iteration. May perform blocking work (sort, hash build).
  virtual Status Open() = 0;

  /// Produces the next tuple into *out; sets *eof instead when exhausted.
  virtual Status Next(Tuple* out, bool* eof) = 0;

  /// Releases resources; the operator may be re-Opened afterwards.
  virtual Status Close() { return Status::OK(); }

  /// Output schema.
  virtual const Schema& schema() const = 0;

  /// Binds the operator's internal hooks (pages read, spill bytes,
  /// predicate-eval time) to shared stats. Null detaches.
  void set_profile_stats(OperatorStats* stats) { prof_ = stats; }
  OperatorStats* profile_stats() const { return prof_; }

 protected:
  // Hot-path hooks: exactly one pointer test each when profiling is off.
  void ProfPagesRead(uint64_t n) {
    if (prof_) prof_->pages_read.fetch_add(n, std::memory_order_relaxed);
  }
  void ProfPagesWritten(uint64_t n) {
    if (prof_) prof_->pages_written.fetch_add(n, std::memory_order_relaxed);
  }
  void ProfSpill(uint64_t bytes, uint64_t runs) {
    if (prof_) {
      prof_->spill_bytes.fetch_add(bytes, std::memory_order_relaxed);
      prof_->spill_runs.fetch_add(runs, std::memory_order_relaxed);
    }
  }
  void ProfBuildRows(uint64_t n) {
    if (prof_) prof_->build_rows.fetch_add(n, std::memory_order_relaxed);
  }
  /// Evaluates `pred` against `t`, timing the evaluation when profiling.
  bool ProfEval(const Predicate& pred, const Tuple& t) {
    if (prof_ == nullptr) return pred.Eval(t);
    const uint64_t t0 = ProfileNowNs();
    const bool pass = pred.Eval(t);
    prof_->eval_ns.fetch_add(ProfileNowNs() - t0, std::memory_order_relaxed);
    prof_->evals.fetch_add(1, std::memory_order_relaxed);
    return pass;
  }

  OperatorStats* prof_ = nullptr;
};

/// Sequential scan over a heap file with an optional static page partition:
/// worker `partition_index` of `num_partitions` reads pages
/// {p | p mod num_partitions == partition_index} (§2.4 page partitioning).
class SeqScanOp : public Operator {
 public:
  SeqScanOp(Table* table, Predicate predicate, ExecContext ctx,
            int num_partitions = 1, int partition_index = 0);

  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  /// Releases the pooled page pin (idempotent); blocking consumers call
  /// this on their own error paths so a cancelled drain leaves no pins.
  Status Close() override;
  const Schema& schema() const override { return table_->schema(); }

  /// Pages this scan actually read (after Open).
  uint64_t pages_read() const { return pages_read_; }

 private:
  Status LoadPage(uint32_t page_index);

  Table* const table_;
  const Predicate predicate_;
  const ExecContext ctx_;
  const int num_partitions_;
  const int partition_index_;

  uint32_t next_page_ = 0;
  uint16_t next_slot_ = 0;
  bool page_loaded_ = false;
  Page direct_page_;          // used when no buffer pool
  PageHandle pooled_page_;    // used with a buffer pool
  const Page* current_ = nullptr;
  uint64_t pages_read_ = 0;
};

/// Unclustered index scan: walks index entries with key in `range`, fetches
/// each qualifying tuple by TupleId (one random page read per tuple — the
/// §3 "most IO-bound" access pattern), applies the residual predicate.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(Table* table, Predicate predicate, KeyRange range,
              ExecContext ctx);

  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  const Schema& schema() const override { return table_->schema(); }

  uint64_t tuples_fetched() const { return tuples_fetched_; }

 private:
  Table* const table_;
  const Predicate predicate_;
  const KeyRange range_;
  const ExecContext ctx_;
  std::optional<BTreeIndex::Iterator> it_;
  uint64_t tuples_fetched_ = 0;
};

/// Filter.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, Predicate predicate);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<Operator> child_;
  const Predicate predicate_;
};

/// Nested-loop equality join; re-opens the inner input per outer tuple.
class NestLoopJoinOp : public Operator {
 public:
  NestLoopJoinOp(std::unique_ptr<Operator> outer,
                 std::unique_ptr<Operator> inner, size_t left_key,
                 size_t right_key);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  const size_t left_key_, right_key_;
  Schema schema_;
  Tuple outer_tuple_;
  bool have_outer_ = false;
  bool inner_open_ = false;
};

/// Hash join: builds an in-memory table from the inner (right) input on
/// Open — a blocking edge — then pipelines the outer probe side.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> outer, std::unique_ptr<Operator> inner,
             size_t left_key, size_t right_key);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  size_t build_rows() const { return build_rows_; }

 private:
  Status OpenImpl();

  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  const size_t left_key_, right_key_;
  Schema schema_;
  std::unordered_multimap<int32_t, Tuple> table_;
  size_t build_rows_ = 0;
  Tuple outer_tuple_;
  std::unordered_multimap<int32_t, Tuple>::const_iterator match_, match_end_;
  bool probing_ = false;
};

/// Merge join over two inputs sorted on their keys; buffers one inner key
/// group to handle duplicate outer keys.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(std::unique_ptr<Operator> outer, std::unique_ptr<Operator> inner,
              size_t left_key, size_t right_key);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  Status OpenImpl();
  Status AdvanceOuter();
  Status LoadInnerGroup(int32_t key);

  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  const size_t left_key_, right_key_;
  Schema schema_;

  Tuple outer_tuple_;
  bool outer_eof_ = false;
  bool have_outer_ = false;

  Tuple inner_pending_;      // next inner tuple past the buffered group
  bool have_inner_pending_ = false;
  bool inner_eof_ = false;

  std::vector<Tuple> group_;  // buffered inner tuples with group_key_
  bool have_group_ = false;
  int32_t group_key_ = 0;
  size_t group_pos_ = 0;
};

/// Hash aggregation: drains its input on Open (a blocking edge), emits
/// one row per group — [group key,] aggregate value. NULL inputs are
/// skipped (SQL semantics); count counts non-null values of the column.
class AggregateOp : public Operator {
 public:
  AggregateOp(std::unique_ptr<Operator> child, Schema output_schema,
              AggFunc func, size_t agg_col, int group_col);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  Status OpenImpl();

  std::unique_ptr<Operator> child_;
  const Schema schema_;
  const AggFunc func_;
  const size_t agg_col_;
  const int group_col_;
  std::vector<Tuple> results_;
  size_t pos_ = 0;
};

/// Sort: drains its input on Open (a blocking edge), emits in key order.
class SortOp : public Operator {
 public:
  SortOp(std::unique_ptr<Operator> child, size_t sort_key);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  Status OpenImpl();

  std::unique_ptr<Operator> child_;
  const size_t sort_key_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// A materialized intermediate result living in shared memory.
struct TempResult {
  Schema schema;
  std::vector<Tuple> tuples;
};

/// Source over a materialized intermediate (fragment input).
class TempSourceOp : public Operator {
 public:
  explicit TempSourceOp(const TempResult* temp);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  const Schema& schema() const override { return temp_->schema; }

 private:
  const TempResult* const temp_;
  size_t pos_ = 0;
};

/// Cancellation decorator inserted by the plan builders when ctx.cancel is
/// set. Open() checks the token before any work (a 0 ms deadline fails at
/// the root without touching storage); Next() tests the cancelled flag on
/// every call and the armed deadline every kDeadlineStride calls, keeping
/// clock reads off the per-tuple path. Because blocking operators (sort,
/// hash build, aggregate) drain their children inside Open(), a guard on
/// the child bounds how long the drain can outlive a cancellation.
class CancelGuardOp : public Operator {
 public:
  CancelGuardOp(std::unique_ptr<Operator> child, CancellationToken* token);
  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  static constexpr uint32_t kDeadlineStride = 64;

  std::unique_ptr<Operator> child_;
  CancellationToken* const token_;
  uint32_t calls_ = 0;
};

/// Wraps `op` in a CancelGuardOp when `token` is non-null.
std::unique_ptr<Operator> MaybeCancelGuard(std::unique_ptr<Operator> op,
                                           CancellationToken* token);

/// Fetches `block` through ctx.pool (which must be set), absorbing
/// transient backpressure: ResourceExhausted — the pool's admission
/// control under memory-pages pressure — is retried per ctx.fetch_retry
/// with exponential backoff, polling ctx.cancel between attempts, and
/// emits resilience.backpressure.* events through ctx.obs. Every other
/// error, and exhaustion of the retry budget, surfaces unchanged.
StatusOr<PageHandle> FetchWithBackpressure(const ExecContext& ctx,
                                           BlockId block);

/// Drains an operator into a vector (Open/Next/Close).
StatusOr<std::vector<Tuple>> Drain(Operator* op);

}  // namespace xprs

#endif  // XPRS_EXEC_OPERATORS_H_
