// Batch-at-a-time (vectorized) operators and their plan builder.
//
// The BatchOperator protocol mirrors Volcano's Open/Next/Close with
// NextBatch(ColumnBatch*, bool* eof) in the middle: a returned batch has
// at least one active row (operators skip all-filtered batches
// internally), and *eof marks exhaustion. Compared to the tuple path this
// moves three per-tuple costs to per-batch granularity: profiler stats
// updates (one fetch_add per batch), cancellation/deadline polls (one
// token check per batch or page), and predicate evaluation (one
// column-wise pass per batch via Predicate::FilterBatch).
//
// Vectorizable plan shapes are SeqScan (+ its predicate as a BatchFilterOp
// over the decoded columns), in-memory HashJoin, and Aggregate. Everything
// else — Sort, MergeJoin, NestLoopJoin, IndexScan, and the spilling
// operators — stays tuple-at-a-time; BuildVectorizedTree bridges a batch
// subtree into those consumers (and into fragments, the parallel master
// and Drain) through a VectorizedAdapterOp, while BatchFromTupleOp makes
// foreign tuple sources (materialized fragment inputs, dynamically driven
// scan leaves) look like batch sources inside a vectorized subtree.

#ifndef XPRS_EXEC_BATCH_OPS_H_
#define XPRS_EXEC_BATCH_OPS_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/batch.h"
#include "exec/operators.h"

namespace xprs {

/// Base batch iterator.
class BatchOperator {
 public:
  virtual ~BatchOperator() = default;

  /// Prepares for iteration. May perform blocking work (hash build,
  /// aggregation). Implementations release every resource they acquired —
  /// including their children's — before returning a non-OK status, so a
  /// failed Open never needs a matching Close.
  virtual Status Open() = 0;

  /// Produces the next batch into *out (>= 1 active row) or sets *eof.
  virtual Status NextBatch(ColumnBatch* out, bool* eof) = 0;

  /// Releases resources; the operator may be re-Opened afterwards.
  virtual Status Close() { return Status::OK(); }

  /// Output schema.
  virtual const Schema& schema() const = 0;

  /// Binds the operator to its plan node's shared stats. Null detaches.
  void set_profile_stats(OperatorStats* stats) { prof_ = stats; }
  OperatorStats* profile_stats() const { return prof_; }

  /// Late materialization: the consumer reads only the columns where
  /// `needed[c] != 0` (one byte per output column). Operators that honor
  /// this stop decoding/copying the other columns — which stay NULL in
  /// emitted batches — and propagate their own column demands (join keys,
  /// filter predicates) to their children. Must be called before Open;
  /// the default ignores the hint. Never called on a pipeline root: the
  /// adapter materializes every column.
  virtual void PruneOutputColumns(const std::vector<uint8_t>& /*needed*/) {}

 protected:
  // Hot-path hooks: one pointer test when profiling is off, and at most
  // one update per batch when it is on.
  void ProfOpen() {
    if (prof_) prof_->opens.fetch_add(1, std::memory_order_relaxed);
  }
  void ProfRowsOut(uint64_t n) {
    if (prof_) prof_->tuples_out.fetch_add(n, std::memory_order_relaxed);
  }
  void ProfPagesRead(uint64_t n) {
    if (prof_) prof_->pages_read.fetch_add(n, std::memory_order_relaxed);
  }
  void ProfBuildRows(uint64_t n) {
    if (prof_) prof_->build_rows.fetch_add(n, std::memory_order_relaxed);
  }
  void ProfEvalBatch(uint64_t evals, uint64_t ns) {
    if (prof_) {
      prof_->evals.fetch_add(evals, std::memory_order_relaxed);
      prof_->eval_ns.fetch_add(ns, std::memory_order_relaxed);
    }
  }

  OperatorStats* prof_ = nullptr;
};

/// Batched sequential scan: decodes whole heap pages straight into columns
/// (no per-tuple Tuple/Value materialization) until the batch reaches
/// ctx.batch_rows. Supports the same static page partitioning as SeqScanOp
/// and polls ctx.cancel once per page. Pins are held one page at a time —
/// never across NextBatch calls.
class BatchSeqScanOp : public BatchOperator {
 public:
  BatchSeqScanOp(Table* table, ExecContext ctx, int num_partitions = 1,
                 int partition_index = 0);

  Status Open() override;
  Status NextBatch(ColumnBatch* out, bool* eof) override;
  const Schema& schema() const override { return table_->schema(); }

  /// When a BatchFilterOp above this scan owns the plan node's stats
  /// (opens / tuples_out), the scan contributes only pages_read.
  void set_owns_node_stats(bool owns) { owns_node_stats_ = owns; }

  /// Masked-out columns are parsed past but not decoded (no int store,
  /// no string copy).
  void PruneOutputColumns(const std::vector<uint8_t>& needed) override {
    decode_mask_ = needed;
  }

  uint64_t pages_read() const { return pages_read_; }

 private:
  Table* const table_;
  const ExecContext ctx_;
  const int num_partitions_;
  const int partition_index_;

  uint32_t next_page_ = 0;
  uint64_t pages_read_ = 0;
  Page direct_page_;  // used when no buffer pool
  bool owns_node_stats_ = true;
  std::vector<uint8_t> decode_mask_;  ///< empty = decode everything
};

/// Batched filter: refines the child batch's selection vector in place
/// (no materialization), skipping all-filtered batches internally.
class BatchFilterOp : public BatchOperator {
 public:
  BatchFilterOp(std::unique_ptr<BatchOperator> child, Predicate predicate);

  Status Open() override;
  Status NextBatch(ColumnBatch* out, bool* eof) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

  /// Forwards the consumer's demand plus the predicate's own columns.
  void PruneOutputColumns(const std::vector<uint8_t>& needed) override;

 private:
  std::unique_ptr<BatchOperator> child_;
  const Predicate predicate_;
};

/// Batched hash join: drains the inner (build) input batch-at-a-time into
/// a column store plus a key -> row-index table on Open, then streams
/// probe batches from the outer input, emitting concatenated match rows.
/// NULL keys never match. Both join key columns must be int4.
class BatchHashJoinOp : public BatchOperator {
 public:
  BatchHashJoinOp(std::unique_ptr<BatchOperator> outer,
                  std::unique_ptr<BatchOperator> inner, size_t left_key,
                  size_t right_key, ExecContext ctx);

  Status Open() override;
  Status NextBatch(ColumnBatch* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  size_t build_rows() const { return build_.size(); }

  /// Emits only the needed columns of each match row; children are asked
  /// for the needed slice plus their join key.
  void PruneOutputColumns(const std::vector<uint8_t>& needed) override;

 private:
  Status OpenImpl();

  std::unique_ptr<BatchOperator> outer_;
  std::unique_ptr<BatchOperator> inner_;
  const size_t left_key_, right_key_;
  const ExecContext ctx_;
  Schema schema_;

  ColumnBatch build_;  ///< dense column store of the build side
  std::unordered_multimap<int32_t, uint32_t> table_;  ///< key -> build row
  ColumnBatch scratch_;  ///< build-drain scratch batch
  ColumnBatch probe_;
  uint32_t probe_pos_ = 0;
  bool have_probe_ = false;
  bool outer_done_ = false;
  std::vector<uint8_t> emit_mask_;  ///< empty = emit every column
};

/// Batched hash aggregation: drains its child on Open (one accumulator
/// update per active row, read directly from the columns), emits one row
/// per group in key order. Mirrors AggregateOp's NULL semantics exactly.
class BatchAggregateOp : public BatchOperator {
 public:
  BatchAggregateOp(std::unique_ptr<BatchOperator> child, Schema output_schema,
                   AggFunc func, size_t agg_col, int group_col,
                   ExecContext ctx);

  Status Open() override;
  Status NextBatch(ColumnBatch* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  Status OpenImpl();

  std::unique_ptr<BatchOperator> child_;
  const Schema schema_;
  const AggFunc func_;
  const size_t agg_col_;
  const int group_col_;
  const ExecContext ctx_;

  ColumnBatch scratch_;
  ColumnBatch results_;
  uint32_t pos_ = 0;
};

/// Bridges a tuple operator into a batch subtree (fragment temp sources,
/// dynamically driven scan leaves): pulls up to `batch_rows` tuples per
/// NextBatch. Not profiled — foreign leaves re-emit another node's output.
class BatchFromTupleOp : public BatchOperator {
 public:
  BatchFromTupleOp(std::unique_ptr<Operator> child, size_t batch_rows);

  Status Open() override { return child_->Open(); }
  Status NextBatch(ColumnBatch* out, bool* eof) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<Operator> child_;
  const size_t batch_rows_;
};

/// Bridges a batch subtree into the tuple protocol: Next() walks the
/// current batch's active rows, pulling (and polling `cancel` on) one
/// batch at a time. Deliberately not wrapped in ProfiledOp or
/// CancelGuardOp by the builders — the batch operators own their node's
/// stats and the adapter polls per batch, not per 64 tuples.
class VectorizedAdapterOp : public Operator {
 public:
  VectorizedAdapterOp(std::unique_ptr<BatchOperator> child,
                      CancellationToken* cancel);

  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<BatchOperator> child_;
  CancellationToken* const cancel_;
  ColumnBatch batch_;
  uint32_t pos_ = 0;
  bool have_batch_ = false;
  bool done_ = false;
};

/// Foreign-leaf hooks for the fragment builder: substitute batch sources
/// for plan nodes a vectorized subtree cannot build itself (blocked
/// fragment inputs, the dynamically driven leaf). `partition_leftmost` is
/// true only along the spine from the subtree root to its left-most leaf.
struct BatchLeafHooks {
  /// True when `make` would substitute this node.
  std::function<bool(const PlanNode* node, bool partition_leftmost)> is_leaf;
  std::function<StatusOr<std::unique_ptr<BatchOperator>>(
      const PlanNode* node, bool partition_leftmost)>
      make;
};

/// True when the whole subtree rooted at `node` compiles to a batch
/// pipeline: SeqScan / HashJoin / Aggregate nodes (hash joins defer to
/// GraceHashJoinOp when spilling is configured) plus hook-substituted
/// leaves. `hooks` may be null.
bool VectorizableSubtree(const PlanNode& node, const ExecContext& ctx,
                         bool partition_leftmost,
                         const BatchLeafHooks* hooks);

/// Builds the batch pipeline for a vectorizable subtree, binding each
/// node's stats when ctx.profile is set. Callers must have checked
/// VectorizableSubtree.
StatusOr<std::unique_ptr<BatchOperator>> BuildBatchTree(
    const PlanNode& node, const ExecContext& ctx, int num_partitions,
    int partition_index, bool partition_leftmost,
    const BatchLeafHooks* hooks);

/// BuildBatchTree bridged into the tuple protocol via VectorizedAdapterOp.
StatusOr<std::unique_ptr<Operator>> BuildVectorizedTree(
    const PlanNode& node, const ExecContext& ctx, int num_partitions,
    int partition_index, bool partition_leftmost,
    const BatchLeafHooks* hooks);

}  // namespace xprs

#endif  // XPRS_EXEC_BATCH_OPS_H_
