#include "exec/operators.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

namespace {

// Extracts an int32 join key; NULL keys never match.
bool GetKey(const Tuple& tuple, size_t column, int32_t* key) {
  const Value& v = tuple.value(column);
  if (IsNull(v)) return false;
  const int32_t* k = std::get_if<int32_t>(&v);
  XPRS_CHECK_MSG(k != nullptr, "join key must be int4");
  *key = *k;
  return true;
}

}  // namespace

// ---------------------------------------------------------------- SeqScan

SeqScanOp::SeqScanOp(Table* table, Predicate predicate, ExecContext ctx,
                     int num_partitions, int partition_index)
    : table_(table),
      predicate_(std::move(predicate)),
      ctx_(ctx),
      num_partitions_(num_partitions),
      partition_index_(partition_index) {
  XPRS_CHECK(table != nullptr);
  XPRS_CHECK_GE(num_partitions, 1);
  XPRS_CHECK_GE(partition_index, 0);
  XPRS_CHECK_LT(partition_index, num_partitions);
}

Status SeqScanOp::Open() {
  next_page_ = 0;
  next_slot_ = 0;
  page_loaded_ = false;
  pages_read_ = 0;
  current_ = nullptr;
  pooled_page_.Release();
  // Advance to this worker's first page.
  while (next_page_ < table_->file().num_pages() &&
         static_cast<int>(next_page_ % num_partitions_) != partition_index_)
    ++next_page_;
  return Status::OK();
}

Status SeqScanOp::LoadPage(uint32_t page_index) {
  if (ctx_.cancel != nullptr) {
    Status live = ctx_.cancel->Check();
    if (!live.ok()) {
      pooled_page_.Release();
      return live;
    }
  }
  if (ctx_.pool != nullptr) {
    XPRS_ASSIGN_OR_RETURN(BlockId block, table_->file().BlockOf(page_index));
    auto handle = FetchWithBackpressure(ctx_, block);
    if (!handle.ok()) return handle.status();
    pooled_page_ = std::move(handle).value();
    current_ = &pooled_page_.page();
  } else {
    XPRS_RETURN_IF_ERROR(table_->file().ReadPage(page_index, &direct_page_));
    current_ = &direct_page_;
  }
  ++pages_read_;
  ProfPagesRead(1);
  page_loaded_ = true;
  next_slot_ = 0;
  return Status::OK();
}

Status SeqScanOp::Close() {
  pooled_page_ = PageHandle();
  current_ = nullptr;
  page_loaded_ = false;
  return Status::OK();
}

Status SeqScanOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (!page_loaded_) {
      if (next_page_ >= table_->file().num_pages()) {
        *eof = true;
        return Status::OK();
      }
      XPRS_RETURN_IF_ERROR(LoadPage(next_page_));
    }
    while (next_slot_ < current_->num_tuples()) {
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(current_->GetTuple(next_slot_, &data, &size));
      ++next_slot_;
      XPRS_ASSIGN_OR_RETURN(Tuple tuple,
                            Tuple::Deserialize(table_->schema(), data, size));
      if (ProfEval(predicate_, tuple)) {
        *out = std::move(tuple);
        return Status::OK();
      }
    }
    // Page exhausted: step to this worker's next page.
    page_loaded_ = false;
    pooled_page_.Release();
    next_page_ += num_partitions_;
  }
}

// -------------------------------------------------------------- IndexScan

IndexScanOp::IndexScanOp(Table* table, Predicate predicate, KeyRange range,
                         ExecContext ctx)
    : table_(table),
      predicate_(std::move(predicate)),
      range_(range),
      ctx_(ctx) {
  XPRS_CHECK(table != nullptr);
  XPRS_CHECK_MSG(table->index() != nullptr, "index scan without index");
}

Status IndexScanOp::Open() {
  // No cleanup needed on failure: the iterator is the only resource and it
  // is only installed on success; page pins are scoped to each Next call.
  XPRS_ASSIGN_OR_RETURN(it_,
                        table_->index()->ScanChecked(range_.lo, range_.hi));
  tuples_fetched_ = 0;
  return Status::OK();
}

Status IndexScanOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  while (it_->Valid()) {
    // Every iteration costs a random page read, so a per-tuple poll of the
    // token is in the noise here.
    if (ctx_.cancel != nullptr) XPRS_RETURN_IF_ERROR(ctx_.cancel->Check());
    TupleId tid = it_->tid();
    it_->Next();
    Tuple tuple;
    if (ctx_.pool != nullptr) {
      XPRS_ASSIGN_OR_RETURN(BlockId block, table_->file().BlockOf(tid.page));
      auto handle = FetchWithBackpressure(ctx_, block);
      if (!handle.ok()) return handle.status();
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(handle->page().GetTuple(tid.slot, &data, &size));
      XPRS_ASSIGN_OR_RETURN(tuple,
                            Tuple::Deserialize(table_->schema(), data, size));
    } else {
      XPRS_ASSIGN_OR_RETURN(tuple, table_->file().ReadTuple(tid));
    }
    ++tuples_fetched_;
    ProfPagesRead(1);  // one random page per fetched tuple (§3)
    if (ProfEval(predicate_, tuple)) {
      *out = std::move(tuple);
      return Status::OK();
    }
  }
  *eof = true;
  return Status::OK();
}

// ----------------------------------------------------------------- Filter

FilterOp::FilterOp(std::unique_ptr<Operator> child, Predicate predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  XPRS_CHECK(child_ != nullptr);
}

Status FilterOp::Open() { return child_->Open(); }

Status FilterOp::Next(Tuple* out, bool* eof) {
  for (;;) {
    XPRS_RETURN_IF_ERROR(child_->Next(out, eof));
    if (*eof || ProfEval(predicate_, *out)) return Status::OK();
  }
}

Status FilterOp::Close() { return child_->Close(); }

// ----------------------------------------------------------- NestLoopJoin

NestLoopJoinOp::NestLoopJoinOp(std::unique_ptr<Operator> outer,
                               std::unique_ptr<Operator> inner,
                               size_t left_key, size_t right_key)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      left_key_(left_key),
      right_key_(right_key),
      schema_(Schema::Concat(outer_->schema(), inner_->schema())) {}

Status NestLoopJoinOp::Open() {
  XPRS_RETURN_IF_ERROR(outer_->Open());
  have_outer_ = false;
  inner_open_ = false;
  return Status::OK();
}

Status NestLoopJoinOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (!have_outer_) {
      bool outer_eof;
      XPRS_RETURN_IF_ERROR(outer_->Next(&outer_tuple_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      if (inner_open_) XPRS_RETURN_IF_ERROR(inner_->Close());
      XPRS_RETURN_IF_ERROR(inner_->Open());
      inner_open_ = true;
    }
    int32_t lk;
    if (!GetKey(outer_tuple_, left_key_, &lk)) {
      have_outer_ = false;  // NULL key joins nothing
      continue;
    }
    for (;;) {
      Tuple inner_tuple;
      bool inner_eof;
      XPRS_RETURN_IF_ERROR(inner_->Next(&inner_tuple, &inner_eof));
      if (inner_eof) {
        have_outer_ = false;
        break;
      }
      int32_t rk;
      if (GetKey(inner_tuple, right_key_, &rk) && rk == lk) {
        *out = Tuple::Concat(outer_tuple_, inner_tuple);
        return Status::OK();
      }
    }
  }
}

Status NestLoopJoinOp::Close() {
  XPRS_RETURN_IF_ERROR(outer_->Close());
  if (inner_open_) {
    inner_open_ = false;
    return inner_->Close();
  }
  return Status::OK();
}

// --------------------------------------------------------------- HashJoin

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> outer,
                       std::unique_ptr<Operator> inner, size_t left_key,
                       size_t right_key)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      left_key_(left_key),
      right_key_(right_key),
      schema_(Schema::Concat(outer_->schema(), inner_->schema())) {}

Status HashJoinOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) {
    // A failed build must not leak the open inner child (or its pinned
    // buffer frames): Drain and the blocking consumers above skip Close
    // after a failed Open. Closes are tolerant of never-opened children.
    table_.clear();
    (void)inner_->Close();
    (void)outer_->Close();
  }
  return st;
}

Status HashJoinOp::OpenImpl() {
  table_.clear();
  build_rows_ = 0;
  probing_ = false;
  // Blocking build phase.
  XPRS_RETURN_IF_ERROR(inner_->Open());
  for (;;) {
    Tuple tuple;
    bool eof;
    XPRS_RETURN_IF_ERROR(inner_->Next(&tuple, &eof));
    if (eof) break;
    int32_t key;
    if (!GetKey(tuple, right_key_, &key)) continue;
    table_.emplace(key, std::move(tuple));
    ++build_rows_;
  }
  XPRS_RETURN_IF_ERROR(inner_->Close());
  ProfBuildRows(build_rows_);
  return outer_->Open();
}

Status HashJoinOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (probing_ && match_ != match_end_) {
      *out = Tuple::Concat(outer_tuple_, match_->second);
      ++match_;
      return Status::OK();
    }
    probing_ = false;
    bool outer_eof;
    XPRS_RETURN_IF_ERROR(outer_->Next(&outer_tuple_, &outer_eof));
    if (outer_eof) {
      *eof = true;
      return Status::OK();
    }
    int32_t key;
    if (!GetKey(outer_tuple_, left_key_, &key)) continue;
    auto [lo, hi] = table_.equal_range(key);
    match_ = lo;
    match_end_ = hi;
    probing_ = true;
  }
}

Status HashJoinOp::Close() {
  table_.clear();
  return outer_->Close();
}

// -------------------------------------------------------------- MergeJoin

MergeJoinOp::MergeJoinOp(std::unique_ptr<Operator> outer,
                         std::unique_ptr<Operator> inner, size_t left_key,
                         size_t right_key)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      left_key_(left_key),
      right_key_(right_key),
      schema_(Schema::Concat(outer_->schema(), inner_->schema())) {}

Status MergeJoinOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) {
    // The outer (often a sorted, blocking subtree) must not stay open when
    // the inner's Open fails.
    (void)outer_->Close();
    (void)inner_->Close();
  }
  return st;
}

Status MergeJoinOp::OpenImpl() {
  XPRS_RETURN_IF_ERROR(outer_->Open());
  XPRS_RETURN_IF_ERROR(inner_->Open());
  outer_eof_ = have_outer_ = false;
  inner_eof_ = have_inner_pending_ = false;
  have_group_ = false;
  group_.clear();
  group_pos_ = 0;
  return Status::OK();
}

Status MergeJoinOp::AdvanceOuter() {
  bool eof;
  XPRS_RETURN_IF_ERROR(outer_->Next(&outer_tuple_, &eof));
  outer_eof_ = eof;
  have_outer_ = !eof;
  return Status::OK();
}

// Buffers every inner tuple whose key equals `key`, consuming smaller keys.
Status MergeJoinOp::LoadInnerGroup(int32_t key) {
  group_.clear();
  group_pos_ = 0;
  have_group_ = true;
  group_key_ = key;
  for (;;) {
    if (!have_inner_pending_) {
      if (inner_eof_) return Status::OK();
      bool eof;
      XPRS_RETURN_IF_ERROR(inner_->Next(&inner_pending_, &eof));
      if (eof) {
        inner_eof_ = true;
        return Status::OK();
      }
      have_inner_pending_ = true;
    }
    int32_t ik;
    if (!GetKey(inner_pending_, right_key_, &ik)) {
      have_inner_pending_ = false;  // NULL keys join nothing
      continue;
    }
    if (ik < key) {
      have_inner_pending_ = false;
      continue;
    }
    if (ik > key) return Status::OK();  // keep pending for a later group
    group_.push_back(inner_pending_);
    have_inner_pending_ = false;
  }
}

Status MergeJoinOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (have_outer_ && have_group_ && group_pos_ < group_.size()) {
      *out = Tuple::Concat(outer_tuple_, group_[group_pos_]);
      ++group_pos_;
      return Status::OK();
    }
    // Need a new outer tuple (and possibly a new inner group).
    int32_t prev_key = group_key_;
    bool had_group = have_group_;
    XPRS_RETURN_IF_ERROR(AdvanceOuter());
    if (!have_outer_) {
      *eof = true;
      return Status::OK();
    }
    int32_t ok;
    if (!GetKey(outer_tuple_, left_key_, &ok)) continue;
    if (had_group && ok == prev_key) {
      group_pos_ = 0;  // duplicate outer key: rescan the buffered group
      continue;
    }
    XPRS_CHECK_MSG(!had_group || ok >= prev_key,
                   "merge join input not sorted");
    XPRS_RETURN_IF_ERROR(LoadInnerGroup(ok));
    group_pos_ = 0;
  }
}

Status MergeJoinOp::Close() {
  XPRS_RETURN_IF_ERROR(outer_->Close());
  return inner_->Close();
}

// -------------------------------------------------------------- Aggregate

AggregateOp::AggregateOp(std::unique_ptr<Operator> child, Schema output_schema,
                         AggFunc func, size_t agg_col, int group_col)
    : child_(std::move(child)),
      schema_(std::move(output_schema)),
      func_(func),
      agg_col_(agg_col),
      group_col_(group_col) {
  XPRS_CHECK(child_ != nullptr);
}

Status AggregateOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) {
    results_.clear();
    (void)child_->Close();  // a failed drain must not leak the open child
  }
  return st;
}

Status AggregateOp::OpenImpl() {
  results_.clear();
  pos_ = 0;

  struct Acc {
    int64_t count = 0;
    int64_t sum = 0;
    int32_t min = 0;
    int32_t max = 0;
    bool any = false;
  };
  std::unordered_map<int32_t, Acc> groups;
  Acc global;

  XPRS_RETURN_IF_ERROR(child_->Open());
  for (;;) {
    Tuple tuple;
    bool eof;
    XPRS_RETURN_IF_ERROR(child_->Next(&tuple, &eof));
    if (eof) break;
    const Value& v = tuple.value(agg_col_);
    if (IsNull(v)) continue;
    const int32_t* value = std::get_if<int32_t>(&v);
    if (value == nullptr)
      return Status::InvalidArgument("aggregate column must be int4");

    Acc* acc = &global;
    if (group_col_ >= 0) {
      int32_t key;
      if (!GetKey(tuple, static_cast<size_t>(group_col_), &key)) continue;
      acc = &groups[key];
    }
    ++acc->count;
    acc->sum += *value;
    if (!acc->any || *value < acc->min) acc->min = *value;
    if (!acc->any || *value > acc->max) acc->max = *value;
    acc->any = true;
  }
  XPRS_RETURN_IF_ERROR(child_->Close());

  auto emit = [this](const Acc& acc) -> int32_t {
    switch (func_) {
      case AggFunc::kCount:
        return static_cast<int32_t>(acc.count);
      case AggFunc::kSum:
        return static_cast<int32_t>(acc.sum);
      case AggFunc::kMin:
        return acc.min;
      case AggFunc::kMax:
        return acc.max;
    }
    return 0;
  };

  if (group_col_ >= 0) {
    // Deterministic output order: by group key.
    std::vector<int32_t> keys;
    keys.reserve(groups.size());
    for (const auto& [k, acc] : groups) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    for (int32_t k : keys)
      results_.push_back(Tuple({Value(k), Value(emit(groups.at(k)))}));
  } else if (global.any || func_ == AggFunc::kCount) {
    results_.push_back(Tuple({Value(emit(global))}));
  }
  return Status::OK();
}

Status AggregateOp::Next(Tuple* out, bool* eof) {
  if (pos_ >= results_.size()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = results_[pos_++];
  return Status::OK();
}

Status AggregateOp::Close() {
  results_.clear();
  return Status::OK();
}

// ------------------------------------------------------------------- Sort

SortOp::SortOp(std::unique_ptr<Operator> child, size_t sort_key)
    : child_(std::move(child)), sort_key_(sort_key) {}

Status SortOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) {
    rows_.clear();
    (void)child_->Close();  // a failed drain must not leak the open child
  }
  return st;
}

Status SortOp::OpenImpl() {
  rows_.clear();
  pos_ = 0;
  XPRS_RETURN_IF_ERROR(child_->Open());
  for (;;) {
    Tuple tuple;
    bool eof;
    XPRS_RETURN_IF_ERROR(child_->Next(&tuple, &eof));
    if (eof) break;
    rows_.push_back(std::move(tuple));
  }
  XPRS_RETURN_IF_ERROR(child_->Close());
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     return CompareValues(a.value(sort_key_),
                                          b.value(sort_key_)) < 0;
                   });
  return Status::OK();
}

Status SortOp::Next(Tuple* out, bool* eof) {
  if (pos_ >= rows_.size()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = rows_[pos_++];
  return Status::OK();
}

Status SortOp::Close() {
  rows_.clear();
  return Status::OK();
}

// ------------------------------------------------------------- TempSource

TempSourceOp::TempSourceOp(const TempResult* temp) : temp_(temp) {
  XPRS_CHECK(temp != nullptr);
}

Status TempSourceOp::Open() {
  pos_ = 0;
  return Status::OK();
}

Status TempSourceOp::Next(Tuple* out, bool* eof) {
  if (pos_ >= temp_->tuples.size()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = temp_->tuples[pos_++];
  return Status::OK();
}

// ------------------------------------------------------------ CancelGuard

CancelGuardOp::CancelGuardOp(std::unique_ptr<Operator> child,
                             CancellationToken* token)
    : child_(std::move(child)), token_(token) {
  XPRS_CHECK(child_ != nullptr);
  XPRS_CHECK(token != nullptr);
}

Status CancelGuardOp::Open() {
  XPRS_RETURN_IF_ERROR(token_->Check());
  calls_ = 0;
  return child_->Open();
}

Status CancelGuardOp::Next(Tuple* out, bool* eof) {
  if (token_->cancelled()) return token_->Check();
  if ((++calls_ & (kDeadlineStride - 1)) == 0)
    XPRS_RETURN_IF_ERROR(token_->Check());
  return child_->Next(out, eof);
}

std::unique_ptr<Operator> MaybeCancelGuard(std::unique_ptr<Operator> op,
                                           CancellationToken* token) {
  if (token == nullptr) return op;
  return std::make_unique<CancelGuardOp>(std::move(op), token);
}

// ---------------------------------------------------- FetchWithBackpressure

StatusOr<PageHandle> FetchWithBackpressure(const ExecContext& ctx,
                                           BlockId block) {
  XPRS_CHECK(ctx.pool != nullptr);
  int failures = 0;
  for (;;) {
    auto handle = ctx.pool->Fetch(block);
    if (handle.ok() ||
        handle.status().code() != StatusCode::kResourceExhausted) {
      return handle;
    }
    if (ctx.fetch_retry == nullptr ||
        failures + 1 >= ctx.fetch_retry->max_attempts) {
      EmitResilienceEvent(ctx.obs, "backpressure.exhausted", -1.0,
                          static_cast<int64_t>(block));
      return handle;
    }
    ++failures;
    EmitResilienceEvent(ctx.obs, "backpressure.retry", -1.0,
                        static_cast<int64_t>(block),
                        {{"failures", failures}});
    XPRS_RETURN_IF_ERROR(BackoffSleep(*ctx.fetch_retry, failures, ctx.cancel));
  }
}

// ------------------------------------------------------------------ Drain

StatusOr<std::vector<Tuple>> Drain(Operator* op) {
  XPRS_CHECK(op != nullptr);
  // A failed Open cleans up after itself (operators close their children on
  // every failure exit), so Close is owed only once Open has succeeded.
  XPRS_RETURN_IF_ERROR(op->Open());
  std::vector<Tuple> rows;
  for (;;) {
    Tuple tuple;
    bool eof;
    Status st = op->Next(&tuple, &eof);
    if (!st.ok()) {
      (void)op->Close();  // release scan pins held mid-page
      return st;
    }
    if (eof) break;
    rows.push_back(std::move(tuple));
  }
  XPRS_RETURN_IF_ERROR(op->Close());
  return rows;
}

}  // namespace xprs
