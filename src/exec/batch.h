// ColumnBatch: the unit of vectorized execution.
//
// A batch holds ~1-4K rows in column-major form — one vector of int32
// payloads / std::string payloads / null bytes per schema column — plus an
// optional selection vector of active row indices. Filters refine the
// selection in place instead of materializing survivors, so a batch flows
// through a pipeline with a single decode at the scan and a single
// materialization at the consumer boundary (VectorizedAdapterOp).
//
// Batches are designed for reuse: Reset() rewinds the row count but keeps
// every vector's capacity (including per-row std::string capacity), so a
// steady-state pipeline allocates nothing per batch.

#ifndef XPRS_EXEC_BATCH_H_
#define XPRS_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/tuple.h"
#include "util/status.h"

namespace xprs {

class ColumnBatch {
 public:
  /// Default target rows per batch (ExecContext.batch_rows).
  static constexpr uint32_t kDefaultRows = 1024;

  /// One column's storage. Only the vector matching the schema type is
  /// populated; value slots of NULL rows are unspecified.
  struct Column {
    std::vector<int32_t> ints;
    std::vector<std::string> texts;
    std::vector<uint8_t> nulls;  ///< 1 = NULL
  };

  ColumnBatch() = default;

  /// Rebinds the batch to `schema` (which must outlive the batch) and
  /// clears rows + selection. Storage capacity is retained.
  void Reset(const Schema* schema);

  const Schema& schema() const { return *schema_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Physical rows appended since the last Reset.
  uint32_t size() const { return num_rows_; }

  // --- selection vector ---
  /// Without a selection every physical row is active; with one, only the
  /// listed rows (ascending physical indices) are.
  bool has_selection() const { return has_sel_; }
  const std::vector<uint32_t>& selection() const { return sel_; }
  uint32_t ActiveSize() const {
    return has_sel_ ? static_cast<uint32_t>(sel_.size()) : num_rows_;
  }
  uint32_t ActiveRow(uint32_t k) const { return has_sel_ ? sel_[k] : k; }
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }
  void ClearSelection() {
    sel_.clear();
    has_sel_ = false;
  }

  // --- row assembly ---
  /// Appends one physical row, initialized to all-NULL, and returns its
  /// index. Fill values with SetInt / SetText.
  uint32_t AddRow();
  void SetInt(size_t col, uint32_t row, int32_t value) {
    Column& c = columns_[col];
    if (c.ints.size() <= row) c.ints.resize(row + 1);
    c.ints[row] = value;
    c.nulls[row] = 0;
  }
  void SetText(size_t col, uint32_t row, const char* data, size_t len) {
    Column& c = columns_[col];
    if (c.texts.size() <= row) c.texts.resize(row + 1);
    c.texts[row].assign(data, len);
    c.nulls[row] = 0;
  }

  /// Decodes one serialized tuple (the heap-page wire format) straight
  /// into the columns — the scan path; no Tuple/Value is materialized.
  /// With `mask` (one byte per column, 0 = skip), masked-out columns are
  /// parsed past but not stored and stay NULL — late materialization for
  /// consumers that read a column subset.
  Status AppendSerializedTuple(const uint8_t* data, uint16_t size,
                               const std::vector<uint8_t>* mask = nullptr);

  /// Appends a materialized tuple (adapter boundaries, temp sources).
  void AppendTuple(const Tuple& tuple);

  /// Copies physical row `src_row` of `src` (same schema layout).
  void AppendRowFrom(const ColumnBatch& src, uint32_t src_row);

  /// Appends the concatenation of `left[left_row]` and `right[right_row]`
  /// (join output; this batch's schema is the concatenated schema). With
  /// `mask` (over the concatenated columns, 0 = skip), skipped columns
  /// stay NULL.
  void AppendConcatRow(const ColumnBatch& left, uint32_t left_row,
                       const ColumnBatch& right, uint32_t right_row,
                       const std::vector<uint8_t>* mask = nullptr);

  // --- row access ---
  bool IsNullAt(size_t col, uint32_t row) const {
    return columns_[col].nulls[row] != 0;
  }
  int32_t IntAt(size_t col, uint32_t row) const {
    return columns_[col].ints[row];
  }
  const std::string& TextAt(size_t col, uint32_t row) const {
    return columns_[col].texts[row];
  }

  /// Materializes one physical row as a Tuple (consumer boundary).
  Tuple MaterializeRow(uint32_t row) const;

 private:
  // Copies column `src_col` of src[src_row] into column `dst_col` of the
  // (already added) row `dst_row`.
  void CopyValue(size_t dst_col, uint32_t dst_row, const ColumnBatch& src,
                 size_t src_col, uint32_t src_row);

  const Schema* schema_ = nullptr;
  std::vector<Column> columns_;
  uint32_t num_rows_ = 0;
  std::vector<uint32_t> sel_;
  bool has_sel_ = false;
};

}  // namespace xprs

#endif  // XPRS_EXEC_BATCH_H_
