#include "exec/spill_ops.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

namespace {

std::atomic<int64_t> g_temp_counter{0};

std::string NextTempName(const char* prefix) {
  return StrFormat("%s_%lld", prefix,
                   static_cast<long long>(
                       g_temp_counter.fetch_add(1, std::memory_order_relaxed)));
}

bool KeyOf(const Tuple& tuple, size_t column, int32_t* key) {
  const Value& v = tuple.value(column);
  if (IsNull(v)) return false;
  const int32_t* k = std::get_if<int32_t>(&v);
  XPRS_CHECK_MSG(k != nullptr, "key column must be int4");
  *key = *k;
  return true;
}

}  // namespace

// ----------------------------------------------------------- ExternalSort

ExternalSortOp::ExternalSortOp(std::unique_ptr<Operator> child,
                               size_t sort_key, const SpillConfig& config)
    : child_(std::move(child)), sort_key_(sort_key), config_(config) {
  XPRS_CHECK(child_ != nullptr);
  XPRS_CHECK_GE(config.memory_tuples, 2u);
}

Status ExternalSortOp::SpillRun(std::vector<Tuple>* run) {
  std::stable_sort(run->begin(), run->end(),
                   [this](const Tuple& a, const Tuple& b) {
                     return CompareValues(a.value(sort_key_),
                                          b.value(sort_key_)) < 0;
                   });
  auto cursor = std::make_unique<RunCursor>();
  cursor->file = std::make_unique<HeapFile>(
      NextTempName("tmp_sort"), child_->schema(), config_.temp_array);
  for (const Tuple& t : *run) XPRS_RETURN_IF_ERROR(cursor->file->Append(t));
  XPRS_RETURN_IF_ERROR(cursor->file->Flush());
  ProfPagesWritten(cursor->file->num_pages());
  ProfSpill(static_cast<uint64_t>(cursor->file->num_pages()) * kPageSize,
            /*runs=*/1);
  runs_.push_back(std::move(cursor));
  ++runs_spilled_;
  run->clear();
  return Status::OK();
}

Status ExternalSortOp::AdvanceCursor(RunCursor* cursor) {
  cursor->has_current = false;
  if (cursor->done) return Status::OK();
  for (;;) {
    if (!cursor->loaded) {
      if (cursor->page >= cursor->file->num_pages()) {
        cursor->done = true;
        return Status::OK();
      }
      XPRS_RETURN_IF_ERROR(
          cursor->file->ReadPage(cursor->page, &cursor->buffer));
      ProfPagesRead(1);
      cursor->loaded = true;
      cursor->slot = 0;
    }
    if (cursor->slot >= cursor->buffer.num_tuples()) {
      ++cursor->page;
      cursor->loaded = false;
      continue;
    }
    const uint8_t* data;
    uint16_t size;
    XPRS_RETURN_IF_ERROR(
        cursor->buffer.GetTuple(cursor->slot, &data, &size));
    ++cursor->slot;
    XPRS_ASSIGN_OR_RETURN(cursor->current,
                          Tuple::Deserialize(child_->schema(), data, size));
    cursor->has_current = true;
    return Status::OK();
  }
}

Status ExternalSortOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) {
    // Drain() does not Close() an operator whose Open failed: release the
    // temp runs and buffered rows here — and close the child so it drops
    // any pooled-page pins — so a sort cancelled (or faulted) mid-spill
    // leaves nothing behind.
    rows_.clear();
    runs_.clear();
    pos_ = 0;
    (void)child_->Close();
  }
  return st;
}

Status ExternalSortOp::OpenImpl() {
  rows_.clear();
  runs_.clear();
  runs_spilled_ = 0;
  pos_ = 0;
  in_memory_ = true;

  XPRS_RETURN_IF_ERROR(child_->Open());
  for (;;) {
    Tuple tuple;
    bool eof;
    XPRS_RETURN_IF_ERROR(child_->Next(&tuple, &eof));
    if (eof) break;
    rows_.push_back(std::move(tuple));
    if (config_.temp_array != nullptr &&
        rows_.size() >= config_.memory_tuples) {
      in_memory_ = false;
      XPRS_RETURN_IF_ERROR(SpillRun(&rows_));
    }
  }
  XPRS_RETURN_IF_ERROR(child_->Close());

  if (in_memory_) {
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Tuple& a, const Tuple& b) {
                       return CompareValues(a.value(sort_key_),
                                            b.value(sort_key_)) < 0;
                     });
    return Status::OK();
  }

  if (!rows_.empty()) XPRS_RETURN_IF_ERROR(SpillRun(&rows_));
  for (auto& cursor : runs_) XPRS_RETURN_IF_ERROR(AdvanceCursor(cursor.get()));
  return Status::OK();
}

Status ExternalSortOp::Next(Tuple* out, bool* eof) {
  if (in_memory_) {
    if (pos_ >= rows_.size()) {
      *eof = true;
      return Status::OK();
    }
    *eof = false;
    *out = rows_[pos_++];
    return Status::OK();
  }

  // K-way merge: linear scan over run heads (K is small).
  RunCursor* best = nullptr;
  for (auto& cursor : runs_) {
    if (!cursor->has_current) continue;
    if (best == nullptr ||
        CompareValues(cursor->current.value(sort_key_),
                      best->current.value(sort_key_)) < 0) {
      best = cursor.get();
    }
  }
  if (best == nullptr) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = std::move(best->current);
  return AdvanceCursor(best);
}

Status ExternalSortOp::Close() {
  rows_.clear();
  runs_.clear();
  return Status::OK();
}

// ---------------------------------------------------------- GraceHashJoin

GraceHashJoinOp::GraceHashJoinOp(std::unique_ptr<Operator> outer,
                                 std::unique_ptr<Operator> inner,
                                 size_t left_key, size_t right_key,
                                 const SpillConfig& config,
                                 int num_partitions)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      left_key_(left_key),
      right_key_(right_key),
      config_(config),
      num_partitions_(num_partitions),
      schema_(Schema::Concat(outer_->schema(), inner_->schema())) {
  XPRS_CHECK_GE(num_partitions, 2);
}

Status GraceHashJoinOp::ScanFile(
    HeapFile* file, const Schema& schema,
    const std::function<Status(Tuple)>& sink) {
  Page page;
  for (uint32_t p = 0; p < file->num_pages(); ++p) {
    XPRS_RETURN_IF_ERROR(file->ReadPage(p, &page));
    ProfPagesRead(1);
    for (uint16_t s = 0; s < page.num_tuples(); ++s) {
      const uint8_t* data;
      uint16_t size;
      XPRS_RETURN_IF_ERROR(page.GetTuple(s, &data, &size));
      XPRS_ASSIGN_OR_RETURN(Tuple tuple,
                            Tuple::Deserialize(schema, data, size));
      XPRS_RETURN_IF_ERROR(sink(std::move(tuple)));
    }
  }
  return Status::OK();
}

Status GraceHashJoinOp::PartitionInput(
    Operator* input, const Schema& schema, size_t key,
    std::vector<std::unique_ptr<HeapFile>>* parts) {
  parts->clear();
  for (int i = 0; i < num_partitions_; ++i) {
    parts->push_back(std::make_unique<HeapFile>(
        NextTempName("tmp_grace"), schema, config_.temp_array));
  }
  for (;;) {
    Tuple tuple;
    bool eof;
    XPRS_RETURN_IF_ERROR(input->Next(&tuple, &eof));
    if (eof) break;
    int32_t k;
    if (!KeyOf(tuple, key, &k)) continue;  // NULL keys join nothing
    // Cheap integer hash spreading adjacent keys across partitions.
    uint32_t h = static_cast<uint32_t>(k) * 2654435761u;
    XPRS_RETURN_IF_ERROR(
        (*parts)[h % static_cast<uint32_t>(num_partitions_)]->Append(tuple));
  }
  for (auto& f : *parts) XPRS_RETURN_IF_ERROR(f->Flush());
  uint64_t pages = 0;
  for (auto& f : *parts) pages += f->num_pages();
  ProfPagesWritten(pages);
  ProfSpill(pages * kPageSize, /*runs=*/parts->size());
  return Status::OK();
}

Status GraceHashJoinOp::LoadPartition(int index) {
  table_.clear();
  probe_rows_.clear();
  probe_pos_ = 0;
  XPRS_RETURN_IF_ERROR(ScanFile(
      build_parts_[index].get(), inner_->schema(), [this](Tuple t) {
        int32_t k;
        if (KeyOf(t, right_key_, &k)) table_.emplace(k, std::move(t));
        return Status::OK();
      }));
  ProfBuildRows(table_.size());
  XPRS_RETURN_IF_ERROR(ScanFile(
      probe_parts_[index].get(), outer_->schema(), [this](Tuple t) {
        probe_rows_.push_back(std::move(t));
        return Status::OK();
      }));
  return Status::OK();
}

Status GraceHashJoinOp::Open() {
  Status st = OpenImpl();
  if (!st.ok()) {
    // As above: a failed Open is not Closed, so drop the partition files
    // and staged state here, and close both inputs to release their pins.
    table_.clear();
    probe_rows_.clear();
    build_parts_.clear();
    probe_parts_.clear();
    (void)outer_->Close();
    (void)inner_->Close();
  }
  return st;
}

Status GraceHashJoinOp::OpenImpl() {
  spilled_ = false;
  table_.clear();
  build_parts_.clear();
  probe_parts_.clear();
  probing_ = false;
  current_partition_ = -1;

  XPRS_RETURN_IF_ERROR(inner_->Open());
  std::vector<Tuple> staged;
  bool overflow = false;
  for (;;) {
    Tuple tuple;
    bool eof;
    XPRS_RETURN_IF_ERROR(inner_->Next(&tuple, &eof));
    if (eof) break;
    staged.push_back(std::move(tuple));
    if (staged.size() > config_.memory_tuples) {
      overflow = true;
      break;
    }
  }

  if (!overflow) {
    // Fits: classic in-memory hash join over the staged build side.
    XPRS_RETURN_IF_ERROR(inner_->Close());
    for (Tuple& t : staged) {
      int32_t k;
      if (KeyOf(t, right_key_, &k)) table_.emplace(k, std::move(t));
    }
    ProfBuildRows(table_.size());
    return outer_->Open();
  }

  // Spill: partition the staged prefix plus the rest of the build input,
  // then the whole probe input.
  XPRS_CHECK_MSG(config_.temp_array != nullptr,
                 "grace hash join needs a temp array to spill");
  spilled_ = true;
  build_parts_.clear();
  for (int i = 0; i < num_partitions_; ++i) {
    build_parts_.push_back(std::make_unique<HeapFile>(
        NextTempName("tmp_grace"), inner_->schema(), config_.temp_array));
  }
  auto route = [this](const Tuple& t, size_t key,
                      std::vector<std::unique_ptr<HeapFile>>* parts) {
    int32_t k;
    if (!KeyOf(t, key, &k)) return Status::OK();
    uint32_t h = static_cast<uint32_t>(k) * 2654435761u;
    return (*parts)[h % static_cast<uint32_t>(num_partitions_)]->Append(t);
  };
  for (const Tuple& t : staged)
    XPRS_RETURN_IF_ERROR(route(t, right_key_, &build_parts_));
  staged.clear();
  for (;;) {
    Tuple tuple;
    bool eof;
    XPRS_RETURN_IF_ERROR(inner_->Next(&tuple, &eof));
    if (eof) break;
    XPRS_RETURN_IF_ERROR(route(tuple, right_key_, &build_parts_));
  }
  XPRS_RETURN_IF_ERROR(inner_->Close());
  for (auto& f : build_parts_) XPRS_RETURN_IF_ERROR(f->Flush());
  uint64_t build_pages = 0;
  for (auto& f : build_parts_) build_pages += f->num_pages();
  ProfPagesWritten(build_pages);
  ProfSpill(build_pages * kPageSize, /*runs=*/build_parts_.size());

  XPRS_RETURN_IF_ERROR(outer_->Open());
  XPRS_RETURN_IF_ERROR(
      PartitionInput(outer_.get(), outer_->schema(), left_key_,
                     &probe_parts_));
  XPRS_RETURN_IF_ERROR(outer_->Close());

  current_partition_ = 0;
  return LoadPartition(0);
}

Status GraceHashJoinOp::Next(Tuple* out, bool* eof) {
  *eof = false;
  for (;;) {
    if (probing_ && match_ != match_end_) {
      *out = Tuple::Concat(probe_tuple_, match_->second);
      ++match_;
      return Status::OK();
    }
    probing_ = false;

    if (!spilled_) {
      bool outer_eof;
      XPRS_RETURN_IF_ERROR(outer_->Next(&probe_tuple_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
    } else {
      while (probe_pos_ >= probe_rows_.size()) {
        ++current_partition_;
        if (current_partition_ >= num_partitions_) {
          *eof = true;
          return Status::OK();
        }
        XPRS_RETURN_IF_ERROR(LoadPartition(current_partition_));
      }
      probe_tuple_ = std::move(probe_rows_[probe_pos_++]);
    }

    int32_t key;
    if (!KeyOf(probe_tuple_, left_key_, &key)) continue;
    auto [lo, hi] = table_.equal_range(key);
    match_ = lo;
    match_end_ = hi;
    probing_ = true;
  }
}

Status GraceHashJoinOp::Close() {
  table_.clear();
  probe_rows_.clear();
  build_parts_.clear();
  probe_parts_.clear();
  if (!spilled_) return outer_->Close();
  return Status::OK();
}

}  // namespace xprs
