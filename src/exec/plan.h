// Sequential query execution plans: binary trees of relational operations
// (§2.1: sequential scan, index scan, nestloop join, mergejoin, hashjoin —
// plus the sort mergejoin inputs need).

#ifndef XPRS_EXEC_PLAN_H_
#define XPRS_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "storage/catalog.h"

namespace xprs {

/// Physical operator kinds.
enum class PlanKind {
  kSeqScan,
  kIndexScan,
  kNestLoopJoin,
  kMergeJoin,
  kHashJoin,
  kSort,
  kAggregate,
};

/// Aggregate functions.
enum class AggFunc { kCount, kSum, kMin, kMax };

const char* AggFuncName(AggFunc func);

const char* PlanKindName(PlanKind kind);

/// A node of a sequential plan tree.
struct PlanNode {
  PlanKind kind;
  Schema output_schema;

  // Scans.
  Table* table = nullptr;     ///< base relation (scans only)
  Predicate predicate;        ///< qualification (scans; extra join filter)
  KeyRange index_range;       ///< key interval (index scan)

  // Joins: equality on left column `left_key` = right column `right_key`
  // (right column index is relative to the right input's schema).
  size_t left_key = 0;
  size_t right_key = 0;

  // Sort: column to order by.
  size_t sort_key = 0;

  // Aggregate: function, aggregated column, and optional group-by column
  // (-1 = single global group).
  AggFunc agg_func = AggFunc::kCount;
  size_t agg_col = 0;
  int group_col = -1;

  std::unique_ptr<PlanNode> left;   ///< outer input / sort input
  std::unique_ptr<PlanNode> right;  ///< inner input (joins)

  /// Pretty tree rendering for logs and tests.
  std::string ToString(int indent = 0) const;

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;
};

/// Builders.
std::unique_ptr<PlanNode> MakeSeqScan(Table* table, Predicate predicate);
std::unique_ptr<PlanNode> MakeIndexScan(Table* table, Predicate predicate,
                                        KeyRange range);
std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> input,
                                   size_t sort_key);
std::unique_ptr<PlanNode> MakeNestLoopJoin(std::unique_ptr<PlanNode> outer,
                                           std::unique_ptr<PlanNode> inner,
                                           size_t left_key, size_t right_key);
std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> outer,
                                        std::unique_ptr<PlanNode> inner,
                                        size_t left_key, size_t right_key);
std::unique_ptr<PlanNode> MakeHashJoin(std::unique_ptr<PlanNode> outer,
                                       std::unique_ptr<PlanNode> inner,
                                       size_t left_key, size_t right_key);

/// Aggregation over `input`: `func` applied to column `agg_col`, grouped
/// by `group_col` (-1 for one global group). Output schema: [group key,]
/// aggregate value (both int4).
std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> input,
                                        AggFunc func, size_t agg_col,
                                        int group_col = -1);

/// True if the plan is a left-deep tree (every right child is a scan).
bool IsLeftDeep(const PlanNode& plan);

/// Number of nodes.
size_t PlanSize(const PlanNode& plan);

}  // namespace xprs

#endif  // XPRS_EXEC_PLAN_H_
