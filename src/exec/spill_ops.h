// Spilling operators: external merge sort and grace hash join.
//
// The §5 memory extension prices grace-hash spills into the cost model;
// these operators make that runtime behaviour real. Both bound their
// working memory to a tuple budget and overflow to temporary heap files on
// the (timed) disk array, so a spilling plan actually pays the extra io
// the optimizer charged it for.

#ifndef XPRS_EXEC_SPILL_OPS_H_
#define XPRS_EXEC_SPILL_OPS_H_

#include <functional>
#include <memory>
#include <vector>

#include "exec/operators.h"
#include "storage/heap_file.h"

namespace xprs {

/// External merge sort: builds sorted runs of at most
/// `config.memory_tuples` tuples, spills each run to a temporary heap
/// file, then streams a k-way merge of the runs. With no temp array (or
/// when the input fits) it degenerates to the in-memory sort.
class ExternalSortOp : public Operator {
 public:
  ExternalSortOp(std::unique_ptr<Operator> child, size_t sort_key,
                 const SpillConfig& config);

  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return child_->schema(); }

  /// Number of runs spilled to disk during the last Open (0 = stayed in
  /// memory). Survives Close().
  size_t runs_spilled() const { return runs_spilled_; }

  /// Temp run files currently held open (0 after Close or a failed Open —
  /// a cancelled mid-spill sort must not leak its runs).
  size_t open_runs() const { return runs_.size(); }

 private:
  Status OpenImpl();

  struct RunCursor {
    std::unique_ptr<HeapFile> file;
    uint32_t page = 0;
    uint16_t slot = 0;
    Page buffer;
    bool loaded = false;
    bool done = false;
    Tuple current;
    bool has_current = false;
  };

  Status SpillRun(std::vector<Tuple>* run);
  Status AdvanceCursor(RunCursor* cursor);

  std::unique_ptr<Operator> child_;
  const size_t sort_key_;
  const SpillConfig config_;

  // In-memory path.
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
  bool in_memory_ = true;

  // Spilled path.
  std::vector<std::unique_ptr<RunCursor>> runs_;
  size_t runs_spilled_ = 0;
};

/// Grace hash join: when the build input exceeds the memory budget, both
/// inputs are hash-partitioned to temporary heap files, then each
/// partition pair is joined with an in-memory hash table. Without a temp
/// array it CHECK-fails rather than silently exceeding the budget.
class GraceHashJoinOp : public Operator {
 public:
  GraceHashJoinOp(std::unique_ptr<Operator> outer,
                  std::unique_ptr<Operator> inner, size_t left_key,
                  size_t right_key, const SpillConfig& config,
                  int num_partitions = 8);

  Status Open() override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  const Schema& schema() const override { return schema_; }

  /// True when Open spilled (the build side exceeded the budget).
  bool spilled() const { return spilled_; }

  /// Partition files currently held open (0 after Close or a failed Open).
  size_t open_partitions() const {
    return build_parts_.size() + probe_parts_.size();
  }

 private:
  Status OpenImpl();
  Status PartitionInput(Operator* input, const Schema& schema, size_t key,
                        std::vector<std::unique_ptr<HeapFile>>* parts);
  Status LoadPartition(int index);
  Status ScanFile(HeapFile* file, const Schema& schema,
                  const std::function<Status(Tuple)>& sink);

  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  const size_t left_key_, right_key_;
  const SpillConfig config_;
  const int num_partitions_;
  Schema schema_;

  bool spilled_ = false;

  // Spilled state.
  std::vector<std::unique_ptr<HeapFile>> build_parts_;
  std::vector<std::unique_ptr<HeapFile>> probe_parts_;
  int current_partition_ = -1;
  std::unordered_multimap<int32_t, Tuple> table_;
  std::vector<Tuple> probe_rows_;
  size_t probe_pos_ = 0;
  std::unordered_multimap<int32_t, Tuple>::const_iterator match_, match_end_;
  bool probing_ = false;
  Tuple probe_tuple_;
};

}  // namespace xprs

#endif  // XPRS_EXEC_SPILL_OPS_H_
