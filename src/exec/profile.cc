#include "exec/profile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "exec/operators.h"
#include "util/check.h"
#include "util/str.h"

namespace xprs {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

const char* EventKindName(AdjustmentEvent::Kind kind) {
  switch (kind) {
    case AdjustmentEvent::Kind::kStart:
      return "start";
    case AdjustmentEvent::Kind::kAdjust:
      return "adjust";
    case AdjustmentEvent::Kind::kFinish:
      return "finish";
  }
  return "?";
}

// The timing decorator. Inserted between a parent and its child only when
// a profile is attached, so the profiling-off hot path never sees it.
// Times are *inclusive* (children run inside the parent's Next); the text
// renderer derives self time by subtracting child inclusive times.
class ProfiledOp : public Operator {
 public:
  ProfiledOp(std::unique_ptr<Operator> inner, OperatorStats* stats)
      : inner_(std::move(inner)), stats_(stats) {
    XPRS_CHECK(inner_ != nullptr);
    XPRS_CHECK(stats_ != nullptr);
  }

  Status Open() override {
    const uint64_t t0 = ProfileNowNs();
    Status status = inner_->Open();
    stats_->open_ns.fetch_add(ProfileNowNs() - t0, kRelaxed);
    stats_->opens.fetch_add(1, kRelaxed);
    return status;
  }

  Status Next(Tuple* out, bool* eof) override {
    const uint64_t t0 = ProfileNowNs();
    Status status = inner_->Next(out, eof);
    stats_->next_ns.fetch_add(ProfileNowNs() - t0, kRelaxed);
    if (status.ok() && !*eof) stats_->tuples_out.fetch_add(1, kRelaxed);
    return status;
  }

  Status Close() override {
    const uint64_t t0 = ProfileNowNs();
    Status status = inner_->Close();
    stats_->close_ns.fetch_add(ProfileNowNs() - t0, kRelaxed);
    return status;
  }

  const Schema& schema() const override { return inner_->schema(); }

 private:
  std::unique_ptr<Operator> inner_;
  OperatorStats* const stats_;
};

std::string Ns2Ms(uint64_t ns) {
  return StrFormat("%.3fms", static_cast<double>(ns) * 1e-6);
}

}  // namespace

std::string AdjustmentEvent::ToString() const {
  return StrFormat("+%.3fs %s f%d x%g", time_seconds, EventKindName(kind),
                   frag_id, parallelism);
}

std::string OperatorLabel(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kSeqScan:
      return StrFormat("SeqScan(%s, %s)", node.table->name().c_str(),
                       node.predicate.ToString().c_str());
    case PlanKind::kIndexScan:
      return StrFormat("IndexScan(%s, %s, keys %s)",
                       node.table->name().c_str(),
                       node.predicate.ToString().c_str(),
                       node.index_range.ToString().c_str());
    case PlanKind::kSort:
      return StrFormat("Sort(col%zu)", node.sort_key);
    case PlanKind::kAggregate:
      return StrFormat("Aggregate(%s(col%zu)%s)", AggFuncName(node.agg_func),
                       node.agg_col,
                       node.group_col >= 0
                           ? StrFormat(" group by col%d", node.group_col)
                                 .c_str()
                           : "");
    default:
      return StrFormat("%s(l.col%zu = r.col%zu)", PlanKindName(node.kind),
                       node.left_key, node.right_key);
  }
}

QueryProfile::QueryProfile(const PlanNode* plan) : plan_(plan) {
  XPRS_CHECK(plan != nullptr);
  Index(plan, /*parent=*/-1, /*depth=*/0);
}

void QueryProfile::Index(const PlanNode* node, int parent, int depth) {
  auto stats = std::make_unique<OperatorStats>();
  stats->id = static_cast<int>(operators_.size());
  stats->parent = parent;
  stats->depth = depth;
  stats->kind = node->kind;
  stats->label = OperatorLabel(*node);
  OperatorStats* raw = stats.get();
  operators_.push_back(std::move(stats));
  by_node_[node] = raw;
  const int id = raw->id;
  if (node->left) Index(node->left.get(), id, depth + 1);
  if (node->right) Index(node->right.get(), id, depth + 1);
}

void QueryProfile::AdoptPlan(std::unique_ptr<PlanNode> plan) {
  XPRS_CHECK(plan.get() == plan_);
  owned_plan_ = std::move(plan);
}

OperatorStats* QueryProfile::StatsFor(const PlanNode* node) {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

const OperatorStats* QueryProfile::StatsFor(const PlanNode* node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

bool QueryProfile::Covers(const PlanNode* node) const {
  return by_node_.count(node) != 0;
}

void QueryProfile::SetEstimate(const PlanNode* node, double rows, double ios,
                               double seq_time) {
  OperatorStats* stats = StatsFor(node);
  if (stats == nullptr) return;
  stats->est_rows = rows;
  stats->est_ios = ios;
  stats->est_seq_time = seq_time;
  stats->has_estimate = true;
}

void QueryProfile::RecordFragment(const FragmentStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  fragments_.push_back(stats);
}

void QueryProfile::RecordEvent(const AdjustmentEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  timeline_.push_back(event);
}

void QueryProfile::AddUtilSample(const UtilSample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  utilization_.push_back(sample);
}

std::vector<FragmentStats> QueryProfile::fragments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FragmentStats> out = fragments_;
  std::sort(out.begin(), out.end(),
            [](const FragmentStats& a, const FragmentStats& b) {
              return a.frag_id < b.frag_id;
            });
  return out;
}

std::vector<AdjustmentEvent> QueryProfile::timeline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timeline_;
}

std::vector<UtilSample> QueryProfile::utilization() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return utilization_;
}

uint64_t QueryProfile::TotalTuplesOut() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->tuples_out.load(kRelaxed);
  return total;
}

uint64_t QueryProfile::TotalPagesRead() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->pages_read.load(kRelaxed);
  return total;
}

uint64_t QueryProfile::TotalPagesWritten() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->pages_written.load(kRelaxed);
  return total;
}

uint64_t QueryProfile::TotalSpillBytes() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->spill_bytes.load(kRelaxed);
  return total;
}

uint64_t QueryProfile::TotalEvals() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->evals.load(kRelaxed);
  return total;
}

std::string QueryProfile::ToText(const ProfileRenderOptions& options) const {
  // Inclusive nanoseconds per operator; self = inclusive - children.
  std::vector<uint64_t> inclusive(operators_.size(), 0);
  std::vector<uint64_t> self(operators_.size(), 0);
  for (size_t i = 0; i < operators_.size(); ++i) {
    const OperatorStats& op = *operators_[i];
    inclusive[i] = op.open_ns.load(kRelaxed) + op.next_ns.load(kRelaxed) +
                   op.close_ns.load(kRelaxed);
    self[i] = inclusive[i];
  }
  for (size_t i = 0; i < operators_.size(); ++i) {
    int parent = operators_[i]->parent;
    if (parent >= 0) {
      uint64_t& p = self[parent];
      p = p > inclusive[i] ? p - inclusive[i] : 0;
    }
  }

  std::string out;
  for (size_t i = 0; i < operators_.size(); ++i) {
    const OperatorStats& op = *operators_[i];
    out += std::string(2 * static_cast<size_t>(op.depth), ' ');
    out += op.label;
    if (op.has_estimate) {
      out += StrFormat("  (est rows=%.0f ios=%.0f seq=%.3fs)", op.est_rows,
                       op.est_ios, op.est_seq_time);
    }
    out += StrFormat("  (actual rows=%llu pages=%llu",
                     static_cast<unsigned long long>(
                         op.tuples_out.load(kRelaxed)),
                     static_cast<unsigned long long>(
                         op.pages_read.load(kRelaxed)));
    if (uint64_t w = op.pages_written.load(kRelaxed); w > 0) {
      out += StrFormat(
          " written=%llu spill=%lluB runs=%llu",
          static_cast<unsigned long long>(w),
          static_cast<unsigned long long>(op.spill_bytes.load(kRelaxed)),
          static_cast<unsigned long long>(op.spill_runs.load(kRelaxed)));
    }
    if (uint64_t b = op.build_rows.load(kRelaxed); b > 0) {
      out += StrFormat(" build=%llu", static_cast<unsigned long long>(b));
    }
    if (uint64_t e = op.evals.load(kRelaxed); e > 0) {
      out += StrFormat(" evals=%llu", static_cast<unsigned long long>(e));
      if (options.include_times) {
        out += StrFormat(" eval=%s",
                         Ns2Ms(op.eval_ns.load(kRelaxed)).c_str());
      }
    }
    if (options.include_times) {
      out += StrFormat(" open=%s self=%s total=%s",
                       Ns2Ms(op.open_ns.load(kRelaxed)).c_str(),
                       Ns2Ms(self[i]).c_str(), Ns2Ms(inclusive[i]).c_str());
    }
    out += ")\n";
  }

  if (!options.include_parallel) return out;

  const std::vector<FragmentStats> frags = fragments();
  if (!frags.empty()) {
    out += "fragments:\n";
    for (const FragmentStats& f : frags) {
      out += StrFormat("  f%d %s  %s granules=%llu  degree %d->%d"
                       " adjusts=%d slaves=%d tuples=%llu",
                       f.frag_id, f.root_label.c_str(),
                       f.partition_kind.c_str(),
                       static_cast<unsigned long long>(f.granules),
                       f.initial_parallelism, f.final_parallelism,
                       f.adjustments, f.slaves_spawned,
                       static_cast<unsigned long long>(f.tuples_out));
      if (options.include_times)
        out += StrFormat("  wall=%.3fms", f.wall_seconds * 1e3);
      out += "\n";
    }
  }
  const std::vector<AdjustmentEvent> events = timeline();
  if (!events.empty()) {
    out += "timeline:\n";
    for (const AdjustmentEvent& e : events) {
      if (options.include_times) {
        out += "  " + e.ToString() + "\n";
      } else {
        out += StrFormat("  %s f%d x%g\n", EventKindName(e.kind), e.frag_id,
                         e.parallelism);
      }
    }
  }
  const std::vector<UtilSample> util = utilization();
  if (!util.empty()) {
    double total = 0.0, cpu = 0.0, io = 0.0;
    for (const UtilSample& s : util) {
      total += s.duration;
      cpu += s.cpus_busy * s.duration;
      io += s.io_rate * s.duration;
    }
    if (total > 0.0) {
      out += StrFormat(
          "utilization (fluid-sim estimate): %zu samples over %.3fs, "
          "avg %.2f cpus busy, avg %.1f io/s\n",
          util.size(), total, cpu / total, io / total);
    }
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"operators\":[";
  for (size_t i = 0; i < operators_.size(); ++i) {
    const OperatorStats& op = *operators_[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"id\":%d,\"parent\":%d,\"kind\":\"%s\",\"label\":\"%s\"",
        op.id, op.parent, PlanKindName(op.kind),
        JsonEscape(op.label).c_str());
    if (op.has_estimate) {
      out += StrFormat(
          ",\"est\":{\"rows\":%.9g,\"ios\":%.9g,\"seq_time\":%.9g}",
          op.est_rows, op.est_ios, op.est_seq_time);
    }
    out += StrFormat(
        ",\"actual\":{\"rows\":%llu,\"pages_read\":%llu,"
        "\"pages_written\":%llu,\"spill_bytes\":%llu,\"spill_runs\":%llu,"
        "\"build_rows\":%llu,\"evals\":%llu,\"eval_seconds\":%.9g,"
        "\"open_seconds\":%.9g,\"next_seconds\":%.9g,"
        "\"close_seconds\":%.9g,\"opens\":%llu}}",
        static_cast<unsigned long long>(op.tuples_out.load(kRelaxed)),
        static_cast<unsigned long long>(op.pages_read.load(kRelaxed)),
        static_cast<unsigned long long>(op.pages_written.load(kRelaxed)),
        static_cast<unsigned long long>(op.spill_bytes.load(kRelaxed)),
        static_cast<unsigned long long>(op.spill_runs.load(kRelaxed)),
        static_cast<unsigned long long>(op.build_rows.load(kRelaxed)),
        static_cast<unsigned long long>(op.evals.load(kRelaxed)),
        1e-9 * static_cast<double>(op.eval_ns.load(kRelaxed)),
        1e-9 * static_cast<double>(op.open_ns.load(kRelaxed)),
        1e-9 * static_cast<double>(op.next_ns.load(kRelaxed)),
        1e-9 * static_cast<double>(op.close_ns.load(kRelaxed)),
        static_cast<unsigned long long>(op.opens.load(kRelaxed)));
  }
  out += "],\"fragments\":[";
  const std::vector<FragmentStats> frags = fragments();
  for (size_t i = 0; i < frags.size(); ++i) {
    const FragmentStats& f = frags[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"id\":%d,\"root\":\"%s\",\"partition\":\"%s\","
        "\"granules\":%llu,\"initial_parallelism\":%d,"
        "\"final_parallelism\":%d,\"adjustments\":%d,\"slaves\":%d,"
        "\"wall_seconds\":%.9g,\"tuples\":%llu}",
        f.frag_id, JsonEscape(f.root_label).c_str(),
        JsonEscape(f.partition_kind).c_str(),
        static_cast<unsigned long long>(f.granules), f.initial_parallelism,
        f.final_parallelism, f.adjustments, f.slaves_spawned, f.wall_seconds,
        static_cast<unsigned long long>(f.tuples_out));
  }
  out += "],\"timeline\":[";
  const std::vector<AdjustmentEvent> events = timeline();
  for (size_t i = 0; i < events.size(); ++i) {
    const AdjustmentEvent& e = events[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"kind\":\"%s\",\"time\":%.9g,\"fragment\":%d,\"task\":%lld,"
        "\"parallelism\":%.9g}",
        EventKindName(e.kind), e.time_seconds, e.frag_id,
        static_cast<long long>(e.task), e.parallelism);
  }
  out += "],\"utilization\":[";
  const std::vector<UtilSample> util = utilization();
  for (size_t i = 0; i < util.size(); ++i) {
    const UtilSample& s = util[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"time\":%.9g,\"duration\":%.9g,\"cpus_busy\":%.9g,"
        "\"io_rate\":%.9g,\"effective_bw\":%.9g,\"tasks\":%d}",
        s.time, s.duration, s.cpus_busy, s.io_rate, s.effective_bw,
        s.tasks_running);
  }
  out += StrFormat(
      "],\"totals\":{\"tuples_out\":%llu,\"pages_read\":%llu,"
      "\"pages_written\":%llu,\"spill_bytes\":%llu,\"evals\":%llu,"
      "\"operators\":%zu}}",
      static_cast<unsigned long long>(TotalTuplesOut()),
      static_cast<unsigned long long>(TotalPagesRead()),
      static_cast<unsigned long long>(TotalPagesWritten()),
      static_cast<unsigned long long>(TotalSpillBytes()),
      static_cast<unsigned long long>(TotalEvals()), operators_.size());
  return out;
}

Status QueryProfile::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open())
    return Status::Internal("cannot open profile output " + path);
  out << ToJson() << "\n";
  out.close();
  if (!out.good()) return Status::Internal("short write to " + path);
  return Status::OK();
}

void QueryProfile::PublishMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->counter("profile.queries")->Increment();
  metrics->counter("profile.tuples_out")->Increment(TotalTuplesOut());
  metrics->counter("profile.pages_read")->Increment(TotalPagesRead());
  metrics->counter("profile.pages_written")->Increment(TotalPagesWritten());
  metrics->counter("profile.spill_bytes")->Increment(TotalSpillBytes());
  metrics->counter("profile.evals")->Increment(TotalEvals());
  Histogram* hist = metrics->histogram("profile.operator_seconds");
  for (const auto& op : operators_) hist->Observe(op->inclusive_seconds());
}

void QueryProfile::EmitTrace(TraceSink* sink) const {
  if (sink == nullptr) return;
  for (const UtilSample& s : utilization()) {
    sink->Record({"profile cpus busy", "profile", 'C', s.time, 0.0, 0,
                  {{"value", s.cpus_busy}}});
    sink->Record({"profile io rate", "profile", 'C', s.time, 0.0, 0,
                  {{"value", s.io_rate}}});
  }
  for (const FragmentStats& f : fragments()) {
    // Fragment spans are anchored at the matching timeline start event
    // when one exists (master runs); standalone runs start at 0.
    double begin = 0.0;
    for (const AdjustmentEvent& e : timeline()) {
      if (e.frag_id == f.frag_id && e.kind == AdjustmentEvent::Kind::kStart) {
        begin = e.time_seconds;
        break;
      }
    }
    sink->Record({StrFormat("profile frag f%d", f.frag_id), "profile", 'X',
                  begin, f.wall_seconds, f.frag_id,
                  {{"root", f.root_label},
                   {"granules", static_cast<int64_t>(f.granules)},
                   {"adjustments", f.adjustments},
                   {"tuples", static_cast<int64_t>(f.tuples_out)}}});
  }
}

std::unique_ptr<Operator> MaybeProfile(std::unique_ptr<Operator> op,
                                       const PlanNode* node,
                                       QueryProfile* profile) {
  if (profile == nullptr || op == nullptr) return op;
  OperatorStats* stats = profile->StatsFor(node);
  if (stats == nullptr) return op;  // foreign plan sharing the context
  op->set_profile_stats(stats);
  return std::make_unique<ProfiledOp>(std::move(op), stats);
}

}  // namespace xprs
