// Selection predicates over tuples.
//
// The paper's workload queries are one-variable selections (§3); joins in
// §4 add equality conditions between columns. This small predicate AST
// covers column-vs-constant comparisons, BETWEEN, conjunction and
// disjunction — and exposes enough structure for the optimizer to extract
// index key ranges and selectivities.

#ifndef XPRS_EXEC_EXPR_H_
#define XPRS_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace xprs {

class ColumnBatch;

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// A boolean predicate over a tuple.
class Predicate {
 public:
  /// Always-true predicate (empty qualification).
  Predicate();

  /// column <op> constant.
  static Predicate Compare(size_t column, CmpOp op, Value constant);

  /// lo <= column <= hi (int4 column).
  static Predicate Between(size_t column, int32_t lo, int32_t hi);

  /// Conjunction / disjunction.
  static Predicate And(Predicate a, Predicate b);
  static Predicate Or(Predicate a, Predicate b);

  /// Evaluates against a tuple. NULL comparisons are false (SQL-ish).
  bool Eval(const Tuple& tuple) const;

  /// Vectorized Eval: refines `batch`'s selection vector to the active
  /// rows satisfying the predicate, without materializing survivors. One
  /// column-wise pass per comparison node; same NULL semantics as Eval.
  void FilterBatch(ColumnBatch* batch) const;

  /// True when this predicate is the constant TRUE.
  bool IsTrue() const;

  /// If the predicate constrains int4 `column` to a contiguous key range
  /// (a single comparison or BETWEEN, possibly inside a conjunction),
  /// narrows *range and returns true. Used to drive index scans.
  bool ExtractKeyRange(size_t column, KeyRange* range) const;

  /// Rewrites column references for a tuple that has been prefixed by
  /// `offset` columns (join right sides).
  Predicate ShiftColumns(size_t offset) const;

  /// Marks every column this predicate reads in `mask` (one byte per
  /// column; references past mask->size() are ignored). Drives the batch
  /// builders' column pruning: a pruned scan must still decode the
  /// columns its filter evaluates.
  void CollectColumns(std::vector<uint8_t>* mask) const;

  std::string ToString() const;

 private:
  enum class Kind { kTrue, kCompare, kAnd, kOr };

  struct Node;
  explicit Predicate(std::shared_ptr<const Node> node);

  // Evaluates `node` over the rows listed in `in` (ascending physical
  // indices), appending survivors to *out in the same order.
  static void EvalBatchNode(const Node& node, const ColumnBatch& batch,
                            const std::vector<uint32_t>& in,
                            std::vector<uint32_t>* out);

  std::shared_ptr<const Node> node_;
};

}  // namespace xprs

#endif  // XPRS_EXEC_EXPR_H_
