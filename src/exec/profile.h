// Per-query profiler: the EXPLAIN ANALYZE substrate.
//
// A QueryProfile mirrors one plan tree with an OperatorStats node per plan
// node. Operators publish their actuals (tuples out, pages read/written,
// spill bytes, predicate-eval time) into the shared stats through a single
// nullable pointer — profiling off costs one pointer test per hook — while
// a timing decorator (inserted by the plan builders only when a profile is
// attached) measures inclusive Open/Next/Close wall time per node. All
// actual counters are atomics because every slave backend of a parallel
// fragment runs its own pipeline copy against the *same* per-plan-node
// stats.
//
// On top of the operator tree the profile records the parallel run:
// per-fragment wall time / degree / partition bounds (from
// ParallelFragmentRun), the master's start+adjustment timeline (the §2.4
// decisions that produce the INTER-WITH-ADJ gain), and CPU/disk utilization
// samples from the fluid simulator's estimated schedule. Rendering:
// annotated plan text (EXPLAIN ANALYZE), a JSON document, Chrome 'C'
// counter events for the utilization timeline, and a MetricsRegistry
// publication whose totals reconcile with the per-operator counters.

#ifndef XPRS_EXEC_PROFILE_H_
#define XPRS_EXEC_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/plan.h"
#include "obs/obs.h"

namespace xprs {

class Operator;

/// Shared per-plan-node instrumentation. Actual counters are relaxed
/// atomics: every slave pipeline of a parallel fragment updates the same
/// instance. Estimates are written once, before execution starts.
struct OperatorStats {
  // --- identity (fixed at QueryProfile construction) ---
  int id = 0;               ///< preorder index within the plan
  int parent = -1;          ///< preorder index of the parent (-1 = root)
  int depth = 0;            ///< tree depth (root = 0)
  PlanKind kind = PlanKind::kSeqScan;
  std::string label;        ///< e.g. "HashJoin(l.col0 = r.col1)"

  // --- optimizer estimates (filled via SetEstimate, cumulative subtree) ---
  double est_rows = 0.0;
  double est_ios = 0.0;
  double est_seq_time = 0.0;
  bool has_estimate = false;

  // --- actuals ---
  std::atomic<uint64_t> opens{0};
  std::atomic<uint64_t> tuples_out{0};
  std::atomic<uint64_t> pages_read{0};     ///< data pages fetched
  std::atomic<uint64_t> pages_written{0};  ///< spill pages written
  std::atomic<uint64_t> spill_bytes{0};    ///< bytes spilled to temp files
  std::atomic<uint64_t> spill_runs{0};     ///< sort runs / grace partitions
  std::atomic<uint64_t> build_rows{0};     ///< hash-build side rows
  std::atomic<uint64_t> evals{0};          ///< predicate evaluations
  std::atomic<uint64_t> eval_ns{0};        ///< time inside Predicate::Eval
  std::atomic<uint64_t> open_ns{0};        ///< inclusive Open wall time
  std::atomic<uint64_t> next_ns{0};        ///< inclusive Next wall time
  std::atomic<uint64_t> close_ns{0};       ///< inclusive Close wall time

  /// Inclusive wall seconds (open + next + close).
  double inclusive_seconds() const {
    return 1e-9 * static_cast<double>(open_ns.load(std::memory_order_relaxed) +
                                      next_ns.load(std::memory_order_relaxed) +
                                      close_ns.load(std::memory_order_relaxed));
  }
};

/// One parallel fragment's runtime summary (recorded by
/// ParallelFragmentRun when it finishes).
struct FragmentStats {
  int frag_id = -1;
  std::string root_label;      ///< label of the fragment's root operator
  std::string partition_kind;  ///< "pages", "range" or "batches"
  uint64_t granules = 0;       ///< partition bound: total driving granules
  int initial_parallelism = 0;
  int final_parallelism = 0;
  int adjustments = 0;         ///< §2.4 adjustments applied to this run
  int slaves_spawned = 0;      ///< distinct slave threads over the run
  double wall_seconds = 0.0;   ///< Start() to last-slave-finished
  uint64_t tuples_out = 0;     ///< merged output cardinality
};

/// One entry of the master's parallelism timeline.
struct AdjustmentEvent {
  enum class Kind { kStart, kAdjust, kFinish };
  Kind kind = Kind::kStart;
  double time_seconds = 0.0;  ///< seconds since the master run started
  int frag_id = -1;
  int64_t task = -1;
  double parallelism = 0.0;
  std::string ToString() const;
};

/// One CPU/disk utilization sample (from the fluid simulator's estimated
/// schedule of the query's fragments).
struct UtilSample {
  double time = 0.0;
  double duration = 0.0;
  double cpus_busy = 0.0;
  double io_rate = 0.0;
  double effective_bw = 0.0;
  int tasks_running = 0;
};

/// Rendering knobs. Golden tests disable wall-clock fields so the output
/// is byte-stable across runs.
struct ProfileRenderOptions {
  bool include_times = true;
  /// Include fragment / timeline / utilization sections (meaningful for
  /// parallel runs).
  bool include_parallel = true;
};

/// The per-query profile. Thread-safe: operator stats are atomics;
/// fragment/timeline/utilization recording takes a short mutex (per
/// fragment event, not per tuple).
class QueryProfile {
 public:
  /// Builds the mirror tree for `plan` (which must outlive the profile).
  explicit QueryProfile(const PlanNode* plan);

  const PlanNode* plan() const { return plan_; }

  /// Takes ownership of the profiled plan so the profile (and its node
  /// labels / StatsFor keys) can outlive the query that built it. `plan`
  /// must be the tree this profile was constructed over.
  void AdoptPlan(std::unique_ptr<PlanNode> plan);

  /// Stats of a plan node; nullptr when `node` is not part of this
  /// profile's plan (a foreign plan sharing the ExecContext).
  OperatorStats* StatsFor(const PlanNode* node);
  const OperatorStats* StatsFor(const PlanNode* node) const;

  /// True when `node` belongs to the profiled plan.
  bool Covers(const PlanNode* node) const;

  /// Preorder stats list (stable pointers for the profile's lifetime).
  const std::vector<std::unique_ptr<OperatorStats>>& operators() const {
    return operators_;
  }

  /// Fills a node's optimizer estimate (call before execution).
  void SetEstimate(const PlanNode* node, double rows, double ios,
                   double seq_time);

  // --- parallel-run recording (thread-safe) ---
  void RecordFragment(const FragmentStats& stats);
  void RecordEvent(const AdjustmentEvent& event);
  void AddUtilSample(const UtilSample& sample);

  std::vector<FragmentStats> fragments() const;
  std::vector<AdjustmentEvent> timeline() const;
  std::vector<UtilSample> utilization() const;

  // --- totals (sum over operators) ---
  uint64_t TotalTuplesOut() const;
  uint64_t TotalPagesRead() const;
  uint64_t TotalPagesWritten() const;
  uint64_t TotalSpillBytes() const;
  uint64_t TotalEvals() const;

  /// Annotated plan tree plus (optionally) fragment / timeline /
  /// utilization sections — the EXPLAIN ANALYZE report body.
  std::string ToText(const ProfileRenderOptions& options = {}) const;

  /// Complete JSON document: {"operators":[...],"fragments":[...],
  /// "timeline":[...],"utilization":[...],"totals":{...}}.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

  /// Adds the profile's totals to `profile.*` counters so an attached
  /// MetricsRegistry reconciles with the per-operator stats
  /// (profile.tuples_out == TotalTuplesOut(), ...).
  void PublishMetrics(MetricsRegistry* metrics) const;

  /// Emits the utilization samples as Chrome 'C' counter events
  /// ("profile cpus busy", "profile io rate") plus one 'X' span per
  /// fragment, so a trace viewer shows the query's timeline next to the
  /// scheduler's own events.
  void EmitTrace(TraceSink* sink) const;

 private:
  void Index(const PlanNode* node, int parent, int depth);

  const PlanNode* plan_;
  std::unique_ptr<PlanNode> owned_plan_;  // set by AdoptPlan
  std::vector<std::unique_ptr<OperatorStats>> operators_;  // preorder
  std::map<const PlanNode*, OperatorStats*> by_node_;

  mutable std::mutex mutex_;
  std::vector<FragmentStats> fragments_;
  std::vector<AdjustmentEvent> timeline_;
  std::vector<UtilSample> utilization_;
};

/// Human-readable operator label used by profiles ("SeqScan(r1, ...)").
std::string OperatorLabel(const PlanNode& node);

/// When `profile` is attached and covers `node`: binds the operator's
/// internal hooks to the node's stats and wraps it in the timing decorator.
/// Otherwise returns `op` untouched (zero overhead). The builders call this
/// on every operator they construct.
std::unique_ptr<Operator> MaybeProfile(std::unique_ptr<Operator> op,
                                       const PlanNode* node,
                                       QueryProfile* profile);

/// Monotonic nanosecond clock used by the instrumentation hooks.
inline uint64_t ProfileNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace xprs

#endif  // XPRS_EXEC_PROFILE_H_
