#include "exec/fragment.h"

#include <algorithm>

#include "exec/batch_ops.h"
#include "exec/profile.h"
#include "exec/spill_ops.h"

#include "util/check.h"
#include "util/str.h"

namespace xprs {

std::string Fragment::ToString() const {
  std::string deps_str = StrJoin(deps, ",");
  return StrFormat("Fragment{%d root=%s deps=[%s] inputs=%zu}", id,
                   PlanKindName(root->kind), deps_str.c_str(),
                   blocked_inputs.size());
}

int FragmentGraph::NewFragment(const PlanNode* root) {
  Fragment f;
  f.id = static_cast<int>(fragments_.size());
  f.root = root;
  fragments_.push_back(std::move(f));
  return fragments_.back().id;
}

FragmentGraph FragmentGraph::Decompose(const PlanNode& plan) {
  FragmentGraph g;
  g.root_fragment_ = g.NewFragment(&plan);
  g.Walk(&plan, g.root_fragment_);
  return g;
}

void FragmentGraph::Walk(const PlanNode* node, int frag) {
  switch (node->kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kIndexScan:
      return;

    case PlanKind::kSort:
    case PlanKind::kAggregate:
      if (node == fragments_[frag].root) {
        // This fragment *is* the blocking producer: the pipeline below
        // feeds the sort buffer / aggregation table, and the fragment pays
        // that work.
        Walk(node->left.get(), frag);
      } else {
        // Blocking edge: everything from this node down is a new fragment.
        int child = NewFragment(node);
        fragments_[frag].blocked_inputs[node] = child;
        fragments_[frag].deps.push_back(child);
        Walk(node, child);
      }
      return;

    case PlanKind::kNestLoopJoin:
    case PlanKind::kMergeJoin:
      // Both inputs pipeline (merge join inputs are Sort nodes, which cut
      // their own boundaries above).
      Walk(node->left.get(), frag);
      Walk(node->right.get(), frag);
      return;

    case PlanKind::kHashJoin: {
      // Probe side pipelines; the build side is a blocking edge.
      Walk(node->left.get(), frag);
      int child = NewFragment(node->right.get());
      fragments_[frag].blocked_inputs[node->right.get()] = child;
      fragments_[frag].deps.push_back(child);
      Walk(node->right.get(), child);
      return;
    }
  }
}

std::vector<int> FragmentGraph::TopologicalOrder() const {
  // Children are always created after their parent, so descending id order
  // is a valid schedule; Kahn's algorithm keeps this robust anyway.
  std::vector<int> in_deg(fragments_.size(), 0);
  std::vector<std::vector<int>> fwd(fragments_.size());
  for (const auto& f : fragments_) {
    for (int dep : f.deps) {
      fwd[dep].push_back(f.id);
      ++in_deg[f.id];
    }
  }
  std::vector<int> order;
  std::vector<int> queue;
  for (const auto& f : fragments_)
    if (in_deg[f.id] == 0) queue.push_back(f.id);
  while (!queue.empty()) {
    int id = queue.back();
    queue.pop_back();
    order.push_back(id);
    for (int next : fwd[id])
      if (--in_deg[next] == 0) queue.push_back(next);
  }
  XPRS_CHECK_EQ(order.size(), fragments_.size());
  return order;
}

std::string FragmentGraph::ToString() const {
  std::string out;
  for (const auto& f : fragments_) {
    out += f.ToString();
    out += '\n';
  }
  return out;
}

namespace {

// Counts the plan nodes fragment `frag` owns: its pipeline from the root
// down, stopping at (not counting) blocked inputs. Nodes under a blocked
// input belong to the producing fragment.
size_t CountOwnedNodes(const Fragment& frag, const PlanNode* node) {
  if (node != frag.root && frag.blocked_inputs.count(node)) return 0;
  size_t n = 1;
  if (node->left) n += CountOwnedNodes(frag, node->left.get());
  if (node->right) n += CountOwnedNodes(frag, node->right.get());
  return n;
}

}  // namespace

Status ValidateFragmentGraph(const FragmentGraph& graph,
                             const PlanNode& plan) {
  const auto& fragments = graph.fragments();
  if (fragments.empty()) return Status::FailedPrecondition("no fragments");
  int root = graph.root_fragment();
  if (root < 0 || root >= static_cast<int>(fragments.size()))
    return Status::FailedPrecondition("root fragment id out of range");
  if (graph.fragment(root).root != &plan)
    return Status::FailedPrecondition(
        "root fragment is not rooted at the plan root");

  size_t owned = 0;
  for (const Fragment& frag : fragments) {
    if (frag.root == nullptr)
      return Status::FailedPrecondition(
          StrFormat("fragment %d has no root", frag.id));
    // Every blocked input maps to an in-range fragment rooted at exactly
    // that node and listed among deps.
    for (const auto& [node, child] : frag.blocked_inputs) {
      if (child < 0 || child >= static_cast<int>(fragments.size()))
        return Status::FailedPrecondition(
            StrFormat("fragment %d: blocked input points to fragment %d",
                      frag.id, child));
      if (graph.fragment(child).root != node)
        return Status::FailedPrecondition(
            StrFormat("fragment %d: child fragment %d rooted elsewhere",
                      frag.id, child));
      if (std::find(frag.deps.begin(), frag.deps.end(), child) ==
          frag.deps.end())
        return Status::FailedPrecondition(
            StrFormat("fragment %d: child %d missing from deps", frag.id,
                      child));
    }
    if (frag.deps.size() != frag.blocked_inputs.size())
      return Status::FailedPrecondition(
          StrFormat("fragment %d: %zu deps vs %zu blocked inputs", frag.id,
                    frag.deps.size(), frag.blocked_inputs.size()));
    owned += CountOwnedNodes(frag, frag.root);
  }
  // Fragment accounting: pipelines partition the plan tree.
  if (owned != PlanSize(plan))
    return Status::FailedPrecondition(
        StrFormat("fragments own %zu nodes, plan has %zu", owned,
                  PlanSize(plan)));

  // The topological order covers every fragment once, dependencies first.
  std::vector<int> order = graph.TopologicalOrder();
  if (order.size() != fragments.size())
    return Status::FailedPrecondition("topological order size mismatch");
  std::map<int, size_t> position;
  for (size_t i = 0; i < order.size(); ++i) {
    if (!position.emplace(order[i], i).second)
      return Status::FailedPrecondition(
          StrFormat("fragment %d appears twice in topological order",
                    order[i]));
  }
  for (const Fragment& frag : fragments) {
    auto self = position.find(frag.id);
    if (self == position.end())
      return Status::FailedPrecondition(
          StrFormat("fragment %d missing from topological order", frag.id));
    for (int dep : frag.deps) {
      auto it = position.find(dep);
      if (it == position.end() || it->second >= self->second)
        return Status::FailedPrecondition(
            StrFormat("fragment %d scheduled before its dep %d", frag.id,
                      dep));
    }
  }
  return Status::OK();
}

namespace {

StatusOr<std::unique_ptr<Operator>> BuildFrag(
    const FragmentGraph& graph, const Fragment& frag, const PlanNode* node,
    const std::map<int, const TempResult*>& inputs, const ExecContext& ctx,
    int num_partitions, int partition_index, bool partition_leftmost,
    const DrivingLeafFactory* factory) {
  // A blocked input is replaced by a source over the producing fragment's
  // materialized output (or by the driving factory if it is the driving
  // leaf). Neither is profiled: a temp source re-emits another fragment's
  // output (profiling it would double-count the producing node), and the
  // factory's driven ops are bound to stats by the parallel layer.
  auto blocked = frag.blocked_inputs.find(node);
  if (blocked != frag.blocked_inputs.end()) {
    if (partition_leftmost && factory != nullptr) {
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> leaf, (*factory)(node));
      return MaybeCancelGuard(std::move(leaf), ctx.cancel);
    }
    auto temp = inputs.find(blocked->second);
    if (temp == inputs.end() || temp->second == nullptr)
      return Status::FailedPrecondition(
          StrFormat("fragment %d input (fragment %d) not materialized",
                    frag.id, blocked->second));
    return MaybeCancelGuard(std::make_unique<TempSourceOp>(temp->second),
                            ctx.cancel);
  }
  if (partition_leftmost && factory != nullptr &&
      (node->kind == PlanKind::kSeqScan ||
       node->kind == PlanKind::kIndexScan)) {
    XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> leaf, (*factory)(node));
    return MaybeCancelGuard(std::move(leaf), ctx.cancel);
  }

  // Vectorized mode: compile maximal batch-capable subtrees, bridging
  // foreign leaves (blocked fragment inputs, the dynamically driven leaf)
  // into the batch pipeline through BatchFromTupleOp. Non-vectorizable
  // subtrees fall through to the tuple operators below.
  if (ctx.vectorized) {
    BatchLeafHooks hooks;
    hooks.is_leaf = [&frag, factory](const PlanNode* n, bool leftmost) {
      return frag.blocked_inputs.count(n) > 0 ||
             (leftmost && factory != nullptr &&
              (n->kind == PlanKind::kSeqScan ||
               n->kind == PlanKind::kIndexScan));
    };
    hooks.make = [&frag, &inputs, &ctx, factory](const PlanNode* n,
                                                 bool leftmost)
        -> StatusOr<std::unique_ptr<BatchOperator>> {
      // Mirrors the tuple-path leaf substitution above: the driving
      // factory serves the driving leaf, materialized producer output
      // serves every other blocked input. Neither is profiled.
      std::unique_ptr<Operator> leaf;
      auto blocked_leaf = frag.blocked_inputs.find(n);
      if (blocked_leaf != frag.blocked_inputs.end() &&
          !(leftmost && factory != nullptr)) {
        auto temp = inputs.find(blocked_leaf->second);
        if (temp == inputs.end() || temp->second == nullptr)
          return Status::FailedPrecondition(
              StrFormat("fragment %d input (fragment %d) not materialized",
                        frag.id, blocked_leaf->second));
        leaf = std::make_unique<TempSourceOp>(temp->second);
      } else {
        XPRS_ASSIGN_OR_RETURN(leaf, (*factory)(n));
      }
      return std::unique_ptr<BatchOperator>(
          std::make_unique<BatchFromTupleOp>(
              MaybeCancelGuard(std::move(leaf), ctx.cancel),
              ctx.batch_rows));
    };
    if (VectorizableSubtree(*node, ctx, partition_leftmost, &hooks)) {
      return BuildVectorizedTree(*node, ctx, num_partitions, partition_index,
                                 partition_leftmost, &hooks);
    }
  }

  std::unique_ptr<Operator> op;
  switch (node->kind) {
    case PlanKind::kSeqScan: {
      int n = partition_leftmost ? num_partitions : 1;
      int i = partition_leftmost ? partition_index : 0;
      op = std::make_unique<SeqScanOp>(node->table, node->predicate, ctx, n,
                                       i);
      break;
    }
    case PlanKind::kIndexScan:
      op = std::make_unique<IndexScanOp>(node->table, node->predicate,
                                         node->index_range, ctx);
      break;
    case PlanKind::kSort: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> child,
          BuildFrag(graph, frag, node->left.get(), inputs, ctx,
                    num_partitions, partition_index, partition_leftmost,
                    factory));
      if (ctx.spill.temp_array != nullptr) {
        op = std::make_unique<ExternalSortOp>(std::move(child),
                                              node->sort_key, ctx.spill);
      } else {
        op = std::make_unique<SortOp>(std::move(child), node->sort_key);
      }
      break;
    }
    case PlanKind::kAggregate: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> child,
          BuildFrag(graph, frag, node->left.get(), inputs, ctx,
                    num_partitions, partition_index, partition_leftmost,
                    factory));
      op = std::make_unique<AggregateOp>(std::move(child),
                                         node->output_schema, node->agg_func,
                                         node->agg_col, node->group_col);
      break;
    }
    case PlanKind::kNestLoopJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          BuildFrag(graph, frag, node->left.get(), inputs, ctx,
                    num_partitions, partition_index, partition_leftmost,
                    factory));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            BuildFrag(graph, frag, node->right.get(), inputs,
                                      ctx, 1, 0, false, nullptr));
      op = std::make_unique<NestLoopJoinOp>(std::move(outer),
                                            std::move(inner), node->left_key,
                                            node->right_key);
      break;
    }
    case PlanKind::kMergeJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          BuildFrag(graph, frag, node->left.get(), inputs, ctx,
                    num_partitions, partition_index, partition_leftmost,
                    factory));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            BuildFrag(graph, frag, node->right.get(), inputs,
                                      ctx, 1, 0, false, nullptr));
      op = std::make_unique<MergeJoinOp>(std::move(outer), std::move(inner),
                                         node->left_key, node->right_key);
      break;
    }
    case PlanKind::kHashJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          BuildFrag(graph, frag, node->left.get(), inputs, ctx,
                    num_partitions, partition_index, partition_leftmost,
                    factory));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            BuildFrag(graph, frag, node->right.get(), inputs,
                                      ctx, 1, 0, false, nullptr));
      if (ctx.spill.temp_array != nullptr) {
        op = std::make_unique<GraceHashJoinOp>(std::move(outer),
                                               std::move(inner),
                                               node->left_key,
                                               node->right_key, ctx.spill);
      } else {
        op = std::make_unique<HashJoinOp>(std::move(outer), std::move(inner),
                                          node->left_key, node->right_key);
      }
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown plan kind");
  return MaybeCancelGuard(MaybeProfile(std::move(op), node, ctx.profile),
                          ctx.cancel);
}

}  // namespace

StatusOr<std::unique_ptr<Operator>> BuildFragmentOperators(
    const FragmentGraph& graph, int frag_id,
    const std::map<int, const TempResult*>& inputs, const ExecContext& ctx,
    int num_partitions, int partition_index) {
  const Fragment& frag = graph.fragment(frag_id);
  return BuildFrag(graph, frag, frag.root, inputs, ctx, num_partitions,
                   partition_index, /*partition_leftmost=*/true, nullptr);
}

StatusOr<std::unique_ptr<Operator>> BuildFragmentOperatorsWithDriver(
    const FragmentGraph& graph, int frag_id,
    const std::map<int, const TempResult*>& inputs, const ExecContext& ctx,
    const DrivingLeafFactory& factory) {
  const Fragment& frag = graph.fragment(frag_id);
  return BuildFrag(graph, frag, frag.root, inputs, ctx, 1, 0,
                   /*partition_leftmost=*/true, &factory);
}

const PlanNode* DrivingLeaf(const FragmentGraph& graph, int frag_id) {
  const Fragment& frag = graph.fragment(frag_id);
  const PlanNode* node = frag.root;
  for (;;) {
    if (frag.blocked_inputs.count(node)) return node;
    switch (node->kind) {
      case PlanKind::kSeqScan:
      case PlanKind::kIndexScan:
        return node;
      default:
        node = node->left.get();
    }
  }
}

StatusOr<TempResult> ExecuteFragment(
    const FragmentGraph& graph, int frag_id,
    const std::map<int, const TempResult*>& inputs, const ExecContext& ctx,
    int num_partitions, int partition_index) {
  XPRS_ASSIGN_OR_RETURN(
      std::unique_ptr<Operator> root,
      BuildFragmentOperators(graph, frag_id, inputs, ctx, num_partitions,
                             partition_index));
  TempResult result;
  result.schema = graph.fragment(frag_id).root->output_schema;
  XPRS_ASSIGN_OR_RETURN(result.tuples, Drain(root.get()));
  return result;
}

StatusOr<std::vector<Tuple>> ExecutePlanFragmented(const PlanNode& plan,
                                                   const ExecContext& ctx) {
  FragmentGraph graph = FragmentGraph::Decompose(plan);
  std::map<int, TempResult> results;
  for (int id : graph.TopologicalOrder()) {
    std::map<int, const TempResult*> inputs;
    for (int dep : graph.fragment(id).deps) inputs[dep] = &results.at(dep);
    XPRS_ASSIGN_OR_RETURN(TempResult r,
                          ExecuteFragment(graph, id, inputs, ctx));
    results[id] = std::move(r);
  }
  return std::move(results.at(graph.root_fragment()).tuples);
}

}  // namespace xprs
