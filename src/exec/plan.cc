#include "exec/plan.h"

#include "util/check.h"
#include "util/str.h"

namespace xprs {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kNestLoopJoin:
      return "NestLoopJoin";
    case PlanKind::kMergeJoin:
      return "MergeJoin";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kAggregate:
      return "Aggregate";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(2 * indent, ' ');
  std::string out = pad + PlanKindName(kind);
  switch (kind) {
    case PlanKind::kSeqScan:
      out += StrFormat("(%s, %s)", table->name().c_str(),
                       predicate.ToString().c_str());
      break;
    case PlanKind::kIndexScan:
      out += StrFormat("(%s, %s, keys %s)", table->name().c_str(),
                       predicate.ToString().c_str(),
                       index_range.ToString().c_str());
      break;
    case PlanKind::kSort:
      out += StrFormat("(col%zu)", sort_key);
      break;
    case PlanKind::kAggregate:
      out += StrFormat("(%s(col%zu)%s)", AggFuncName(agg_func), agg_col,
                       group_col >= 0
                           ? StrFormat(" group by col%d", group_col).c_str()
                           : "");
      break;
    default:
      out += StrFormat("(l.col%zu = r.col%zu)", left_key, right_key);
      break;
  }
  out += "\n";
  if (left) out += left->ToString(indent + 1);
  if (right) out += right->ToString(indent + 1);
  return out;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->output_schema = output_schema;
  copy->table = table;
  copy->predicate = predicate;
  copy->index_range = index_range;
  copy->left_key = left_key;
  copy->right_key = right_key;
  copy->sort_key = sort_key;
  copy->agg_func = agg_func;
  copy->agg_col = agg_col;
  copy->group_col = group_col;
  if (left) copy->left = left->Clone();
  if (right) copy->right = right->Clone();
  return copy;
}

std::unique_ptr<PlanNode> MakeSeqScan(Table* table, Predicate predicate) {
  XPRS_CHECK(table != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kSeqScan;
  node->table = table;
  node->predicate = std::move(predicate);
  node->output_schema = table->schema();
  return node;
}

std::unique_ptr<PlanNode> MakeIndexScan(Table* table, Predicate predicate,
                                        KeyRange range) {
  XPRS_CHECK(table != nullptr);
  XPRS_CHECK_MSG(table->index() != nullptr, "index scan without index");
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kIndexScan;
  node->table = table;
  node->predicate = std::move(predicate);
  node->index_range = range;
  node->output_schema = table->schema();
  return node;
}

std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> input,
                                   size_t sort_key) {
  XPRS_CHECK(input != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kSort;
  node->sort_key = sort_key;
  node->output_schema = input->output_schema;
  node->left = std::move(input);
  return node;
}

namespace {

std::unique_ptr<PlanNode> MakeJoin(PlanKind kind,
                                   std::unique_ptr<PlanNode> outer,
                                   std::unique_ptr<PlanNode> inner,
                                   size_t left_key, size_t right_key) {
  XPRS_CHECK(outer != nullptr);
  XPRS_CHECK(inner != nullptr);
  XPRS_CHECK_LT(left_key, outer->output_schema.num_columns());
  XPRS_CHECK_LT(right_key, inner->output_schema.num_columns());
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->left_key = left_key;
  node->right_key = right_key;
  node->output_schema =
      Schema::Concat(outer->output_schema, inner->output_schema);
  node->left = std::move(outer);
  node->right = std::move(inner);
  return node;
}

}  // namespace

std::unique_ptr<PlanNode> MakeNestLoopJoin(std::unique_ptr<PlanNode> outer,
                                           std::unique_ptr<PlanNode> inner,
                                           size_t left_key,
                                           size_t right_key) {
  return MakeJoin(PlanKind::kNestLoopJoin, std::move(outer), std::move(inner),
                  left_key, right_key);
}

std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> outer,
                                        std::unique_ptr<PlanNode> inner,
                                        size_t left_key, size_t right_key) {
  return MakeJoin(PlanKind::kMergeJoin, std::move(outer), std::move(inner),
                  left_key, right_key);
}

std::unique_ptr<PlanNode> MakeHashJoin(std::unique_ptr<PlanNode> outer,
                                       std::unique_ptr<PlanNode> inner,
                                       size_t left_key, size_t right_key) {
  return MakeJoin(PlanKind::kHashJoin, std::move(outer), std::move(inner),
                  left_key, right_key);
}

std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> input,
                                        AggFunc func, size_t agg_col,
                                        int group_col) {
  XPRS_CHECK(input != nullptr);
  XPRS_CHECK_LT(agg_col, input->output_schema.num_columns());
  if (group_col >= 0)
    XPRS_CHECK_LT(static_cast<size_t>(group_col),
                  input->output_schema.num_columns());
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->agg_func = func;
  node->agg_col = agg_col;
  node->group_col = group_col;
  std::vector<Column> cols;
  if (group_col >= 0)
    cols.push_back({"group", TypeId::kInt4});
  cols.push_back({AggFuncName(func), TypeId::kInt4});
  node->output_schema = Schema(std::move(cols));
  node->left = std::move(input);
  return node;
}

bool IsLeftDeep(const PlanNode& plan) {
  if (plan.right) {
    const PlanNode* r = plan.right.get();
    // Skip over a sort on the inner side (mergejoin inner of a base rel).
    while (r->kind == PlanKind::kSort) r = r->left.get();
    if (r->kind != PlanKind::kSeqScan && r->kind != PlanKind::kIndexScan)
      return false;
    if (!IsLeftDeep(*plan.right)) return false;
  }
  if (plan.left && !IsLeftDeep(*plan.left)) return false;
  return true;
}

size_t PlanSize(const PlanNode& plan) {
  size_t n = 1;
  if (plan.left) n += PlanSize(*plan.left);
  if (plan.right) n += PlanSize(*plan.right);
  return n;
}

}  // namespace xprs
