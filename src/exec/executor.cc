#include "exec/executor.h"

#include "exec/profile.h"
#include "exec/spill_ops.h"
#include "util/check.h"

namespace xprs {

namespace {

// `partition_leftmost` is true only along the spine from the root to the
// left-most scan: that scan drives the pipeline and is the one that gets
// page-partitioned for intra-operation parallelism.
StatusOr<std::unique_ptr<Operator>> Build(const PlanNode& plan,
                                          const ExecContext& ctx,
                                          int num_partitions,
                                          int partition_index,
                                          bool partition_leftmost) {
  std::unique_ptr<Operator> op;
  switch (plan.kind) {
    case PlanKind::kSeqScan: {
      int n = partition_leftmost ? num_partitions : 1;
      int i = partition_leftmost ? partition_index : 0;
      op = std::make_unique<SeqScanOp>(plan.table, plan.predicate, ctx, n, i);
      break;
    }
    case PlanKind::kIndexScan:
      // Static partitioning of index scans is by key range; the sequential
      // builder runs them whole (the parallel module range-partitions).
      op = std::make_unique<IndexScanOp>(plan.table, plan.predicate,
                                         plan.index_range, ctx);
      break;
    case PlanKind::kSort: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> child,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      if (ctx.spill.temp_array != nullptr) {
        op = std::make_unique<ExternalSortOp>(std::move(child), plan.sort_key,
                                              ctx.spill);
      } else {
        op = std::make_unique<SortOp>(std::move(child), plan.sort_key);
      }
      break;
    }
    case PlanKind::kAggregate: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> child,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      op = std::make_unique<AggregateOp>(std::move(child), plan.output_schema,
                                         plan.agg_func, plan.agg_col,
                                         plan.group_col);
      break;
    }
    case PlanKind::kNestLoopJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            Build(*plan.right, ctx, 1, 0, false));
      op = std::make_unique<NestLoopJoinOp>(std::move(outer), std::move(inner),
                                            plan.left_key, plan.right_key);
      break;
    }
    case PlanKind::kMergeJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            Build(*plan.right, ctx, 1, 0, false));
      op = std::make_unique<MergeJoinOp>(std::move(outer), std::move(inner),
                                         plan.left_key, plan.right_key);
      break;
    }
    case PlanKind::kHashJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            Build(*plan.right, ctx, 1, 0, false));
      if (ctx.spill.temp_array != nullptr) {
        op = std::make_unique<GraceHashJoinOp>(std::move(outer),
                                               std::move(inner), plan.left_key,
                                               plan.right_key, ctx.spill);
      } else {
        op = std::make_unique<HashJoinOp>(std::move(outer), std::move(inner),
                                          plan.left_key, plan.right_key);
      }
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown plan kind");
  return MaybeProfile(std::move(op), &plan, ctx.profile);
}

}  // namespace

StatusOr<std::unique_ptr<Operator>> BuildOperatorTree(const PlanNode& plan,
                                                      const ExecContext& ctx,
                                                      int num_partitions,
                                                      int partition_index) {
  return Build(plan, ctx, num_partitions, partition_index,
               /*partition_leftmost=*/true);
}

StatusOr<std::vector<Tuple>> ExecutePlanSequential(const PlanNode& plan,
                                                   const ExecContext& ctx) {
  XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> root,
                        BuildOperatorTree(plan, ctx));
  return Drain(root.get());
}

}  // namespace xprs
