#include "exec/executor.h"

#include "exec/batch_ops.h"
#include "exec/profile.h"
#include "exec/spill_ops.h"
#include "util/check.h"

namespace xprs {

namespace {

// `partition_leftmost` is true only along the spine from the root to the
// left-most scan: that scan drives the pipeline and is the one that gets
// page-partitioned for intra-operation parallelism.
StatusOr<std::unique_ptr<Operator>> Build(const PlanNode& plan,
                                          const ExecContext& ctx,
                                          int num_partitions,
                                          int partition_index,
                                          bool partition_leftmost) {
  // Vectorized mode: compile maximal batch-capable subtrees to the batch
  // operators. Non-vectorizable ancestors (sort, merge join, ...) fall
  // through to the tuple operators below, and their child recursion lands
  // back here — so mixed plans get a tuple crown over vectorized subtrees.
  if (ctx.vectorized &&
      VectorizableSubtree(plan, ctx, partition_leftmost, nullptr)) {
    return BuildVectorizedTree(plan, ctx, num_partitions, partition_index,
                               partition_leftmost, nullptr);
  }
  std::unique_ptr<Operator> op;
  switch (plan.kind) {
    case PlanKind::kSeqScan: {
      int n = partition_leftmost ? num_partitions : 1;
      int i = partition_leftmost ? partition_index : 0;
      op = std::make_unique<SeqScanOp>(plan.table, plan.predicate, ctx, n, i);
      break;
    }
    case PlanKind::kIndexScan:
      // Static partitioning of index scans is by key range; the sequential
      // builder runs them whole (the parallel module range-partitions).
      op = std::make_unique<IndexScanOp>(plan.table, plan.predicate,
                                         plan.index_range, ctx);
      break;
    case PlanKind::kSort: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> child,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      if (ctx.spill.temp_array != nullptr) {
        op = std::make_unique<ExternalSortOp>(std::move(child), plan.sort_key,
                                              ctx.spill);
      } else {
        op = std::make_unique<SortOp>(std::move(child), plan.sort_key);
      }
      break;
    }
    case PlanKind::kAggregate: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> child,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      op = std::make_unique<AggregateOp>(std::move(child), plan.output_schema,
                                         plan.agg_func, plan.agg_col,
                                         plan.group_col);
      break;
    }
    case PlanKind::kNestLoopJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            Build(*plan.right, ctx, 1, 0, false));
      op = std::make_unique<NestLoopJoinOp>(std::move(outer), std::move(inner),
                                            plan.left_key, plan.right_key);
      break;
    }
    case PlanKind::kMergeJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            Build(*plan.right, ctx, 1, 0, false));
      op = std::make_unique<MergeJoinOp>(std::move(outer), std::move(inner),
                                         plan.left_key, plan.right_key);
      break;
    }
    case PlanKind::kHashJoin: {
      XPRS_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          Build(*plan.left, ctx, num_partitions, partition_index,
                partition_leftmost));
      XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                            Build(*plan.right, ctx, 1, 0, false));
      if (ctx.spill.temp_array != nullptr) {
        op = std::make_unique<GraceHashJoinOp>(std::move(outer),
                                               std::move(inner), plan.left_key,
                                               plan.right_key, ctx.spill);
      } else {
        op = std::make_unique<HashJoinOp>(std::move(outer), std::move(inner),
                                          plan.left_key, plan.right_key);
      }
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown plan kind");
  return MaybeCancelGuard(MaybeProfile(std::move(op), &plan, ctx.profile),
                          ctx.cancel);
}

}  // namespace

StatusOr<std::unique_ptr<Operator>> BuildOperatorTree(const PlanNode& plan,
                                                      const ExecContext& ctx,
                                                      int num_partitions,
                                                      int partition_index) {
  return Build(plan, ctx, num_partitions, partition_index,
               /*partition_leftmost=*/true);
}

StatusOr<std::vector<Tuple>> ExecutePlanSequential(const PlanNode& plan,
                                                   const ExecContext& ctx) {
  XPRS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> root,
                        BuildOperatorTree(plan, ctx));
  return Drain(root.get());
}

StatusOr<std::vector<Tuple>> ExecutePlanVectorized(const PlanNode& plan,
                                                   const ExecContext& ctx) {
  ExecContext vectorized_ctx = ctx;
  vectorized_ctx.vectorized = true;
  return ExecutePlanSequential(plan, vectorized_ctx);
}

StatusOr<std::vector<Tuple>> ExecutePlanResilient(
    const PlanNode& plan, const ExecContext& ctx,
    const ResilientExecOptions& options) {
  ExecContext attempt_ctx = ctx;
  // Let scans absorb transient backpressure inline before a whole-plan
  // retry becomes necessary.
  if (attempt_ctx.fetch_retry == nullptr)
    attempt_ctx.fetch_retry = &options.retry;
  if (attempt_ctx.obs.trace == nullptr && attempt_ctx.obs.metrics == nullptr)
    attempt_ctx.obs = options.obs;
  bool degraded = false;
  int failures = 0;
  for (;;) {
    auto result = ExecutePlanSequential(plan, attempt_ctx);
    if (result.ok() || !IsRetryableStatus(result.status())) return result;
    ++failures;
    if (failures < options.retry.max_attempts) {
      EmitResilienceEvent(options.obs, "retry.query", -1.0, 0,
                          {{"failures", failures},
                           {"status", result.status().ToString()}});
      XPRS_RETURN_IF_ERROR(BackoffSleep(options.retry, failures, ctx.cancel));
      continue;
    }
    if (!degraded &&
        result.status().code() == StatusCode::kResourceExhausted &&
        options.degrade_spill_array != nullptr) {
      // The retry budget could not absorb the memory pressure: bypass the
      // pool and bound operator memory via the spill path instead of
      // failing the query.
      degraded = true;
      failures = 0;
      attempt_ctx.pool = nullptr;
      attempt_ctx.spill.temp_array = options.degrade_spill_array;
      attempt_ctx.spill.memory_tuples =
          attempt_ctx.spill.temp_array == ctx.spill.temp_array &&
                  ctx.spill.temp_array != nullptr
              ? std::min(ctx.spill.memory_tuples,
                         options.degrade_spill_tuples)
              : options.degrade_spill_tuples;
      EmitResilienceEvent(options.obs, "degrade.spill", -1.0, 0,
                          {{"memory_tuples",
                            static_cast<int64_t>(
                                attempt_ctx.spill.memory_tuples)}});
      continue;
    }
    return result;
  }
}

}  // namespace xprs
