#include "testing/differential.h"

#include <algorithm>
#include <map>
#include <utility>

#include "parallel/fragment_run.h"
#include "parallel/master.h"
#include "sched/machine.h"
#include "serve/query_scheduler.h"
#include "storage/buffer_pool.h"
#include "util/check.h"
#include "util/str.h"
#include "workload/relations.h"

namespace xprs {

std::string DifferentialReport::ToString() const {
  return StrFormat(
      "plans=%llu executions=%llu reference_rows=%llu fault_cases=%llu "
      "faults_injected=%llu chaos_recovered=%llu chaos_retryable=%llu",
      static_cast<unsigned long long>(plans_checked),
      static_cast<unsigned long long>(executions_compared),
      static_cast<unsigned long long>(reference_rows),
      static_cast<unsigned long long>(fault_cases),
      static_cast<unsigned long long>(faults_injected),
      static_cast<unsigned long long>(chaos_recovered),
      static_cast<unsigned long long>(chaos_retryable_failures));
}

namespace {

// First scan node of `kind` in the plan tree, or nullptr.
const PlanNode* FindScan(const PlanNode& plan, PlanKind kind) {
  if (plan.kind == kind) return &plan;
  if (plan.left != nullptr) {
    if (const PlanNode* hit = FindScan(*plan.left, kind)) return hit;
  }
  if (plan.right != nullptr) {
    if (const PlanNode* hit = FindScan(*plan.right, kind)) return hit;
  }
  return nullptr;
}

}  // namespace

DifferentialOracle::DifferentialOracle(DiskArray* array,
                                       const DifferentialOptions& options,
                                       uint64_t seed)
    : array_(array),
      options_(options),
      rng_(seed),
      temp_array_(array != nullptr ? array->num_disks() : 4,
                  DiskMode::kInstant),
      model_(CostParams()) {
  XPRS_CHECK(array_ != nullptr);
}

DifferentialOracle::Canon DifferentialOracle::Canonicalize(
    const std::vector<Tuple>& rows) {
  Canon canon;
  for (const Tuple& t : rows) canon.insert(t.ToString());
  return canon;
}

Status DifferentialOracle::Compare(const PlanNode& plan,
                                   const std::string& mode,
                                   const Canon& reference,
                                   const std::vector<Tuple>& got) {
  ++report_.executions_compared;
  Canon actual = Canonicalize(got);
  if (actual == reference) return Status::OK();

  // Render a small symmetric difference for the failure message.
  std::string diff;
  int shown = 0;
  for (const std::string& row : reference) {
    if (actual.count(row) != reference.count(row) && shown < 3) {
      diff += StrFormat("\n  reference x%d, %s x%d: %s",
                        static_cast<int>(reference.count(row)), mode.c_str(),
                        static_cast<int>(actual.count(row)), row.c_str());
      ++shown;
    }
  }
  for (const std::string& row : actual) {
    if (reference.count(row) == 0 && shown < 6) {
      diff += StrFormat("\n  only in %s: %s", mode.c_str(), row.c_str());
      ++shown;
    }
  }
  return Status::Internal(StrFormat(
      "differential mismatch in mode '%s': reference has %d rows, got %d%s\n"
      "plan:\n%s",
      mode.c_str(), static_cast<int>(reference.size()),
      static_cast<int>(actual.size()), diff.c_str(),
      plan.ToString().c_str()));
}

StatusOr<std::vector<Tuple>> DifferentialOracle::RunParallelFragments(
    const PlanNode& plan, int degree, bool vectorized) {
  FragmentGraph graph = FragmentGraph::Decompose(plan);
  std::map<int, TempResult> done;
  for (int id : graph.TopologicalOrder()) {
    std::map<int, const TempResult*> inputs;
    for (int dep : graph.fragment(id).deps) inputs[dep] = &done.at(dep);

    ParallelFragmentRun::Options run_options;
    run_options.initial_parallelism = degree;
    run_options.max_slots = std::max(options_.max_slots, degree);
    run_options.ctx.vectorized = vectorized;
    ParallelFragmentRun run(&graph, id, std::move(inputs), run_options);
    XPRS_RETURN_IF_ERROR(run.Start());
    if (options_.adjust_during_run) {
      // Exercise the §2.4 adjustment protocol mid-run: bounce the degree
      // down and back up. Adjustments racing fragment completion are
      // ignored by the run — both interleavings are legal.
      run.Adjust(1 + static_cast<int>(rng_.NextUint64(
                         static_cast<uint64_t>(run_options.max_slots))));
      run.Adjust(degree);
    }
    auto result = run.Wait();
    if (!result.ok()) return result.status();
    done[id] = std::move(result).value();
  }
  return std::move(done.at(graph.root_fragment()).tuples);
}

StatusOr<std::vector<Tuple>> DifferentialOracle::RunMaster(
    const PlanNode& plan, bool chaos) {
  MachineConfig machine;
  machine.num_cpus = 4;
  MasterOptions master_options;
  master_options.sched.policy = SchedPolicy::kInterWithAdj;
  master_options.max_slots = options_.max_slots;
  if (chaos) {
    master_options.retry = options_.chaos_retry;
    master_options.obs = options_.chaos_obs;
  }
  ParallelMaster master(machine, &model_, master_options);
  auto result = master.Run({QueryJob{&plan, /*query_id=*/1}});
  if (!result.ok()) return result.status();
  XPRS_RETURN_IF_ERROR(
      ValidateSchedDecisions(result->decisions, &result->task_finish_times));
  return std::move(result->query_results.at(1));
}

Status DifferentialOracle::CheckPlan(const PlanNode& plan) {
  // Structural invariant first: the decomposition must account for every
  // plan node exactly once.
  FragmentGraph graph = FragmentGraph::Decompose(plan);
  XPRS_RETURN_IF_ERROR(ValidateFragmentGraph(graph, plan));

  ExecContext plain;
  XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> ref,
                        ExecutePlanSequential(plan, plain));
  Canon reference = Canonicalize(ref);
  ++report_.plans_checked;
  ++report_.executions_compared;  // the reference run itself
  report_.reference_rows += ref.size();

  if (options_.run_fragmented) {
    XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                          ExecutePlanFragmented(plan, plain));
    XPRS_RETURN_IF_ERROR(Compare(plan, "fragmented", reference, got));
  }

  for (int degree : options_.degrees) {
    XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                          RunParallelFragments(plan, degree));
    XPRS_RETURN_IF_ERROR(
        Compare(plan, StrFormat("parallel(%d)", degree), reference, got));
  }

  if (options_.run_master) {
    XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got, RunMaster(plan));
    XPRS_RETURN_IF_ERROR(Compare(plan, "master", reference, got));
  }

  if (options_.run_profiled) {
    // Profiling decorators must be invisible to the result, and the
    // profile's root operator must account for every reference row.
    QueryProfile profile(&plan);
    ExecContext ctx;
    ctx.profile = &profile;
    XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                          ExecutePlanSequential(plan, ctx));
    XPRS_RETURN_IF_ERROR(Compare(plan, "profiled", reference, got));
    const uint64_t root_out =
        profile.operators().front()->tuples_out.load(std::memory_order_relaxed);
    if (root_out != ref.size()) {
      return Status::Internal(StrFormat(
          "profiled run: root operator counted %llu tuples, reference has "
          "%llu\nplan:\n%s",
          static_cast<unsigned long long>(root_out),
          static_cast<unsigned long long>(ref.size()),
          plan.ToString().c_str()));
    }
  }

  if (options_.run_spill) {
    ExecContext ctx;
    ctx.spill.temp_array = &temp_array_;
    ctx.spill.memory_tuples = options_.spill_memory_tuples;
    XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                          ExecutePlanSequential(plan, ctx));
    XPRS_RETURN_IF_ERROR(Compare(plan, "spill", reference, got));
  }

  if (options_.run_buffer_pool) {
    BufferPool pool(array_, options_.buffer_pool_frames);
    ExecContext ctx;
    ctx.pool = &pool;
    XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                          ExecutePlanSequential(plan, ctx));
    XPRS_RETURN_IF_ERROR(Compare(plan, "pooled", reference, got));
    if (pool.PinnedFrames() != 0) {
      return Status::Internal(
          StrFormat("pooled run left %d pinned frames\nplan:\n%s",
                    static_cast<int>(pool.PinnedFrames()),
                    plan.ToString().c_str()));
    }
  }

  if (options_.run_vectorized) {
    // Bare vectorized run at the default batch size.
    {
      XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                            ExecutePlanVectorized(plan, plain));
      XPRS_RETURN_IF_ERROR(Compare(plan, "vectorized", reference, got));
    }
    // Tiny batches stress every batch-boundary carry-over path.
    {
      ExecContext ctx;
      ctx.batch_rows = options_.small_batch_rows;
      XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                            ExecutePlanVectorized(plan, ctx));
      XPRS_RETURN_IF_ERROR(Compare(
          plan,
          StrFormat("vectorized(batch=%d)",
                    static_cast<int>(options_.small_batch_rows)),
          reference, got));
    }
    // Batch subtrees under fragment boundaries (temp sources bridged in
    // through BatchFromTupleOp).
    if (options_.run_fragmented) {
      ExecContext ctx;
      ctx.vectorized = true;
      XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                            ExecutePlanFragmented(plan, ctx));
      XPRS_RETURN_IF_ERROR(
          Compare(plan, "vectorized-fragmented", reference, got));
    }
    // Batched scans over the shared pool: page pins are scoped to each
    // page's decode, so the run must leave zero pinned frames.
    if (options_.run_buffer_pool) {
      BufferPool pool(array_, options_.buffer_pool_frames);
      ExecContext ctx;
      ctx.pool = &pool;
      XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                            ExecutePlanVectorized(plan, ctx));
      XPRS_RETURN_IF_ERROR(Compare(plan, "vectorized-pooled", reference, got));
      if (pool.PinnedFrames() != 0) {
        return Status::Internal(StrFormat(
            "vectorized pooled run left %d pinned frames\nplan:\n%s",
            static_cast<int>(pool.PinnedFrames()), plan.ToString().c_str()));
      }
    }
    // The batch operators own their plan nodes' stats: the profiled run
    // must be invisible to the result and account for every root row.
    if (options_.run_profiled) {
      QueryProfile profile(&plan);
      ExecContext ctx;
      ctx.profile = &profile;
      ctx.vectorized = true;
      XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> got,
                            ExecutePlanSequential(plan, ctx));
      XPRS_RETURN_IF_ERROR(
          Compare(plan, "vectorized-profiled", reference, got));
      const uint64_t root_out = profile.operators().front()->tuples_out.load(
          std::memory_order_relaxed);
      if (root_out != ref.size()) {
        return Status::Internal(StrFormat(
            "vectorized profiled run: root operator counted %llu tuples, "
            "reference has %llu\nplan:\n%s",
            static_cast<unsigned long long>(root_out),
            static_cast<unsigned long long>(ref.size()),
            plan.ToString().c_str()));
      }
    }
    // Slave pipelines built vectorized (one degree keeps the mode cheap).
    if (!options_.degrees.empty()) {
      const int degree = options_.degrees.front();
      XPRS_ASSIGN_OR_RETURN(
          std::vector<Tuple> got,
          RunParallelFragments(plan, degree, /*vectorized=*/true));
      XPRS_RETURN_IF_ERROR(
          Compare(plan, StrFormat("vectorized-parallel(%d)", degree),
                  reference, got));
    }
  }
  return Status::OK();
}

Status DifferentialOracle::FaultCase(const PlanNode& plan,
                                     const Canon& reference,
                                     const ExecContext& ctx,
                                     ScriptedFaultInjector* injector,
                                     const std::string& label) {
  ++report_.fault_cases;
  const uint64_t before = injector->faults_injected();
  auto faulted = ExecutePlanSequential(plan, ctx);
  const uint64_t fired = injector->faults_injected() - before;
  report_.faults_injected += fired;

  if (ctx.pool != nullptr && ctx.pool->PinnedFrames() != 0) {
    return Status::Internal(StrFormat(
        "fault case '%s' left %d pinned frames after the faulted run",
        label.c_str(), static_cast<int>(ctx.pool->PinnedFrames())));
  }
  if (faulted.ok() && fired > 0) {
    return Status::Internal(StrFormat(
        "fault case '%s': %d injected fault(s) did not surface as Status\n"
        "plan:\n%s",
        label.c_str(), static_cast<int>(fired), plan.ToString().c_str()));
  }
  // fired == 0 with an OK run means the plan never exercised this hook
  // (e.g. an empty index range, or a spill hook on a non-spilling plan);
  // the comparison below still has to hold.

  // Transient faults clear after firing: the identical retry must succeed
  // and reproduce the reference exactly.
  auto retried = ExecutePlanSequential(plan, ctx);
  if (!retried.ok()) {
    return Status::Internal(StrFormat(
        "fault case '%s': retry after transient fault failed: %s",
        label.c_str(), retried.status().ToString().c_str()));
  }
  XPRS_RETURN_IF_ERROR(
      Compare(plan, StrFormat("%s-retry", label.c_str()), reference,
              retried.value()));
  if (ctx.pool != nullptr && ctx.pool->PinnedFrames() != 0) {
    return Status::Internal(
        StrFormat("fault case '%s' left %d pinned frames after the retry",
                  label.c_str(), static_cast<int>(ctx.pool->PinnedFrames())));
  }
  return Status::OK();
}

Status DifferentialOracle::CheckFaultSurfacing(const PlanNode& plan) {
  ExecContext plain;
  XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> ref,
                        ExecutePlanSequential(plan, plain));
  Canon reference = Canonicalize(ref);

  {
    // Disk-array read hook: the first page read fails with IoError.
    ScriptedFaultInjector injector;
    ScriptedFaultInjector::Script script;
    script.fail_nth_read = 1;
    injector.Arm(script);
    array_->SetFaultInjector(&injector);
    Status status = FaultCase(plan, reference, plain, &injector, "read-fault");
    array_->SetFaultInjector(nullptr);
    XPRS_RETURN_IF_ERROR(status);
  }
  {
    // Buffer-pool fetch hook: the first Fetch fails before touching pool
    // state; pins must balance on both the faulted run and the retry.
    BufferPool pool(array_, options_.buffer_pool_frames);
    ScriptedFaultInjector injector;
    ScriptedFaultInjector::Script script;
    script.fail_nth_fetch = 1;
    injector.Arm(script);
    pool.SetFaultInjector(&injector);
    ExecContext ctx;
    ctx.pool = &pool;
    Status status = FaultCase(plan, reference, ctx, &injector, "fetch-fault");
    pool.SetFaultInjector(nullptr);
    XPRS_RETURN_IF_ERROR(status);
  }
  if (const PlanNode* scan = FindScan(plan, PlanKind::kSeqScan);
      scan != nullptr && scan->table != nullptr) {
    // Heap-file read hook: targets a single relation's pages instead of
    // the whole array; the first ReadPage of that file fails.
    ScriptedFaultInjector injector;
    ScriptedFaultInjector::Script script;
    script.fail_nth_read = 1;
    injector.Arm(script);
    scan->table->file().SetFaultInjector(&injector);
    Status status =
        FaultCase(plan, reference, plain, &injector, "heapfile-read-fault");
    scan->table->file().SetFaultInjector(nullptr);
    XPRS_RETURN_IF_ERROR(status);
  }
  if (const PlanNode* scan = FindScan(plan, PlanKind::kIndexScan);
      scan != nullptr && scan->table != nullptr &&
      scan->table->mutable_index() != nullptr) {
    // B+tree read hook: the first checked descent/scan over the index
    // fails before any tuple fetch.
    ScriptedFaultInjector injector;
    ScriptedFaultInjector::Script script;
    script.fail_nth_read = 1;
    injector.Arm(script);
    scan->table->mutable_index()->SetFaultInjector(&injector);
    Status status =
        FaultCase(plan, reference, plain, &injector, "btree-read-fault");
    scan->table->mutable_index()->SetFaultInjector(nullptr);
    XPRS_RETURN_IF_ERROR(status);
  }
  {
    // Temp-array write hook: the first spill write is torn short. Plans
    // that never spill exercise the vacuous branch of FaultCase.
    ScriptedFaultInjector injector;
    ScriptedFaultInjector::Script script;
    script.short_nth_write = 1;
    script.short_write_bytes = 512;
    injector.Arm(script);
    temp_array_.SetFaultInjector(&injector);
    ExecContext ctx;
    ctx.spill.temp_array = &temp_array_;
    ctx.spill.memory_tuples = options_.spill_memory_tuples;
    Status status =
        FaultCase(plan, reference, ctx, &injector, "short-write-fault");
    temp_array_.SetFaultInjector(nullptr);
    XPRS_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

Status DifferentialOracle::ChaosCase(
    const PlanNode& plan, const Canon& reference, const std::string& label,
    const std::function<StatusOr<std::vector<Tuple>>()>& run) {
  ScriptedFaultInjector injector;
  ScriptedFaultInjector::Script script;
  script.read_fault_rate = options_.chaos_read_fault_rate;
  injector.Arm(script, rng_.Next());
  array_->SetFaultInjector(&injector);
  ++report_.fault_cases;
  auto got = run();
  array_->SetFaultInjector(nullptr);
  const uint64_t fired = injector.faults_injected();
  report_.faults_injected += fired;

  if (!got.ok()) {
    // A chaos failure is legal exactly when it is retryable: the caller
    // could re-submit and (the faults being independent) expect to make
    // progress. Cancelled / Internal / crash-shaped outcomes are bugs.
    if (!IsRetryableStatus(got.status())) {
      return Status::Internal(StrFormat(
          "chaos mode '%s' failed with a non-retryable status: %s\nplan:\n%s",
          label.c_str(), got.status().ToString().c_str(),
          plan.ToString().c_str()));
    }
    ++report_.chaos_retryable_failures;
    return Status::OK();
  }
  if (fired > 0) ++report_.chaos_recovered;
  return Compare(plan, StrFormat("chaos-%s", label.c_str()), reference,
                 got.value());
}

Status DifferentialOracle::CheckPlanChaos(const PlanNode& plan) {
  if (options_.chaos_read_fault_rate <= 0.0) return Status::OK();

  // Clean reference first (no injector armed).
  ExecContext plain;
  XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> ref,
                        ExecutePlanSequential(plan, plain));
  Canon reference = Canonicalize(ref);
  ++report_.plans_checked;
  ++report_.executions_compared;
  report_.reference_rows += ref.size();

  // Modes behind the resilience ladder: expected to absorb most faults
  // (retry / degrade), recorded on chaos_obs.
  XPRS_RETURN_IF_ERROR(ChaosCase(plan, reference, "resilient-serial", [&] {
    ResilientExecOptions res;
    res.retry = options_.chaos_retry;
    res.degrade_spill_array = &temp_array_;
    res.degrade_spill_tuples = options_.spill_memory_tuples;
    res.obs = options_.chaos_obs;
    return ExecutePlanResilient(plan, plain, res);
  }));
  if (options_.run_master) {
    XPRS_RETURN_IF_ERROR(ChaosCase(plan, reference, "master", [&] {
      return RunMaster(plan, /*chaos=*/true);
    }));
  }

  // Bare modes: no ladder, so injected faults usually surface — which is
  // fine as long as the status is retryable and the result never diverges.
  if (options_.run_fragmented) {
    XPRS_RETURN_IF_ERROR(ChaosCase(plan, reference, "fragmented", [&] {
      ExecContext ctx;
      return ExecutePlanFragmented(plan, ctx);
    }));
  }
  for (int degree : options_.degrees) {
    XPRS_RETURN_IF_ERROR(
        ChaosCase(plan, reference, StrFormat("parallel(%d)", degree),
                  [&] { return RunParallelFragments(plan, degree); }));
  }
  if (options_.run_buffer_pool) {
    BufferPool pool(array_, options_.buffer_pool_frames);
    ExecContext ctx;
    ctx.pool = &pool;
    XPRS_RETURN_IF_ERROR(
        ChaosCase(plan, reference, "pooled",
                  [&] { return ExecutePlanSequential(plan, ctx); }));
    if (pool.PinnedFrames() != 0) {
      return Status::Internal(
          StrFormat("chaos pooled run left %d pinned frames\nplan:\n%s",
                    static_cast<int>(pool.PinnedFrames()),
                    plan.ToString().c_str()));
    }
  }
  if (options_.run_vectorized) {
    // Bare vectorized run under chaos: faults surfacing mid-batch (scan
    // decode, hash build) must propagate retryably through the adapter.
    XPRS_RETURN_IF_ERROR(
        ChaosCase(plan, reference, "vectorized",
                  [&] { return ExecutePlanVectorized(plan, plain); }));
  }
  return Status::OK();
}

Status DifferentialOracle::CheckRandomReadFaults(const PlanNode& plan,
                                                 double rate) {
  if (rate <= 0.0) return Status::OK();
  ExecContext plain;
  XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> ref,
                        ExecutePlanSequential(plan, plain));
  Canon reference = Canonicalize(ref);

  ScriptedFaultInjector injector;
  ScriptedFaultInjector::Script script;
  script.read_fault_rate = rate;
  injector.Arm(script, rng_.Next());
  array_->SetFaultInjector(&injector);
  ++report_.fault_cases;
  auto faulted = ExecutePlanSequential(plan, plain);
  array_->SetFaultInjector(nullptr);
  const uint64_t fired = injector.faults_injected();
  report_.faults_injected += fired;

  if (faulted.ok()) {
    if (fired > 0) {
      return Status::Internal(StrFormat(
          "random read faults: %d injected fault(s) did not surface\n"
          "plan:\n%s",
          static_cast<int>(fired), plan.ToString().c_str()));
    }
    XPRS_RETURN_IF_ERROR(
        Compare(plan, "random-fault-clean", reference, faulted.value()));
  }

  XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> retried,
                        ExecutePlanSequential(plan, plain));
  return Compare(plan, "random-fault-retry", reference, retried);
}

Status DifferentialOracle::CheckPlansConcurrent(
    const std::vector<const PlanNode*>& plans) {
  return RunConcurrent(plans, /*chaos=*/false);
}

Status DifferentialOracle::CheckPlansConcurrentChaos(
    const std::vector<const PlanNode*>& plans) {
  if (options_.chaos_read_fault_rate <= 0.0) return Status::OK();
  return RunConcurrent(plans, /*chaos=*/true);
}

Status DifferentialOracle::RunConcurrent(
    const std::vector<const PlanNode*>& plans, bool chaos) {
  if (options_.concurrent_sessions <= 0 || plans.empty()) return Status::OK();

  // Serial references first, with nothing armed and no pool attached.
  ExecContext plain;
  std::vector<Canon> references;
  references.reserve(plans.size());
  for (const PlanNode* plan : plans) {
    XPRS_CHECK(plan != nullptr);
    XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> ref,
                          ExecutePlanSequential(*plan, plain));
    report_.reference_rows += ref.size();
    references.push_back(Canonicalize(ref));
    ++report_.plans_checked;
  }

  BufferPool pool(array_, options_.buffer_pool_frames);

  ServeOptions serve;
  serve.machine = MachineConfig::PaperConfig();
  serve.max_concurrent = options_.concurrent_sessions;
  serve.max_queue_depth =
      std::max(options_.concurrent_queue_depth, plans.size());
  QueryScheduler scheduler(serve);

  ScriptedFaultInjector injector;
  if (chaos) {
    ScriptedFaultInjector::Script script;
    script.read_fault_rate = options_.chaos_read_fault_rate;
    injector.Arm(script, rng_.Next());
    array_->SetFaultInjector(&injector);
    ++report_.fault_cases;
  }

  std::vector<ServeTicket> tickets(plans.size());
  Status overall = Status::OK();
  for (size_t i = 0; i < plans.size(); ++i) {
    const PlanNode* plan = plans[i];
    ServeRequest request;
    PlanEstimate est = model_.Estimate(*plan);
    request.estimate.name = StrFormat("concurrent-%d", static_cast<int>(i));
    request.estimate.seq_time = std::max(est.seq_time, 1e-6);
    request.estimate.total_ios = est.ios;
    request.session_id =
        static_cast<int64_t>(i) % options_.concurrent_sessions;
    request.label = request.estimate.name;
    if (chaos) {
      // Behind the resilience ladder: injected faults are retried, and
      // persistent pool pressure degrades to the spill path.
      request.job = [this, plan,
                     &pool](const ExecGrant& grant) -> StatusOr<SqlResult> {
        ExecContext ctx;
        ctx.pool = &pool;
        ctx.cancel = grant.cancel;
        ResilientExecOptions res;
        res.retry = options_.chaos_retry;
        res.degrade_spill_array = &temp_array_;
        res.degrade_spill_tuples = options_.spill_memory_tuples;
        res.obs = options_.chaos_obs;
        XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                              ExecutePlanResilient(*plan, ctx, res));
        SqlResult result;
        result.rows = std::move(rows);
        return result;
      };
    } else {
      request.job = [plan,
                     &pool](const ExecGrant& grant) -> StatusOr<SqlResult> {
        ExecContext ctx;
        ctx.pool = &pool;
        ctx.cancel = grant.cancel;
        XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                              ExecutePlanSequential(*plan, ctx));
        SqlResult result;
        result.rows = std::move(rows);
        return result;
      };
    }
    StatusOr<ServeTicket> ticket = scheduler.Submit(std::move(request));
    if (!ticket.ok()) {
      overall = Status::Internal(
          StrFormat("concurrent submit %d rejected: %s", static_cast<int>(i),
                    ticket.status().ToString().c_str()));
      break;
    }
    tickets[i] = *ticket;
  }

  // Wait for every accepted query before disarming anything.
  for (size_t i = 0; i < plans.size(); ++i) {
    if (!tickets[i].valid()) continue;
    StatusOr<SqlResult> result = tickets[i].Wait();
    if (!result.ok()) {
      if (chaos && IsRetryableStatus(result.status())) {
        ++report_.chaos_retryable_failures;
        continue;
      }
      if (overall.ok()) {
        overall = Status::Internal(StrFormat(
            "concurrent query %d failed: %s\nplan:\n%s", static_cast<int>(i),
            result.status().ToString().c_str(),
            plans[i]->ToString().c_str()));
      }
      continue;
    }
    Status compared =
        Compare(*plans[i], chaos ? "concurrent-chaos" : "concurrent",
                references[i], result->rows);
    if (compared.ok() && chaos && injector.faults_injected() > 0)
      ++report_.chaos_recovered;
    if (!compared.ok() && overall.ok()) overall = compared;
  }

  scheduler.Shutdown();
  if (chaos) {
    array_->SetFaultInjector(nullptr);
    report_.faults_injected += injector.faults_injected();
  }
  XPRS_RETURN_IF_ERROR(overall);
  if (pool.PinnedFrames() != 0) {
    return Status::Internal(
        StrFormat("concurrent replay left %d pinned frames",
                  static_cast<int>(pool.PinnedFrames())));
  }
  if (scheduler.NumQueued() != 0 || scheduler.NumRunning() != 0) {
    return Status::Internal("concurrent replay left queries behind");
  }
  return Status::OK();
}

Status DifferentialOracle::CheckScanIoConservation(Table* table) {
  XPRS_CHECK(table != nullptr);
  ExecContext plain;

  array_->ResetStats();
  SeqScanOp serial(table, Predicate(), plain);
  XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> serial_rows, Drain(&serial));
  const uint64_t serial_pages = serial.pages_read();
  const uint64_t serial_reads = array_->total_stats().reads;
  Canon reference = Canonicalize(serial_rows);
  ++report_.executions_compared;

  if (serial_pages != table->stats().num_pages) {
    return Status::Internal(StrFormat(
        "serial scan of %s read %d pages but the catalog says %d",
        table->name().c_str(), static_cast<int>(serial_pages),
        static_cast<int>(table->stats().num_pages)));
  }

  for (int degree : options_.degrees) {
    array_->ResetStats();
    uint64_t partition_pages = 0;
    std::vector<Tuple> merged;
    for (int part = 0; part < degree; ++part) {
      SeqScanOp scan(table, Predicate(), plain, degree, part);
      XPRS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Drain(&scan));
      partition_pages += scan.pages_read();
      merged.insert(merged.end(), rows.begin(), rows.end());
    }
    const uint64_t partition_reads = array_->total_stats().reads;
    // §2.2: parallelism rescales time, never the io demand D_i. The
    // partitions must cover the serial page set exactly, both as counted
    // by the scans and as served by the array.
    if (partition_pages != serial_pages || partition_reads != serial_reads) {
      return Status::Internal(StrFormat(
          "io conservation violated on %s at degree %d: serial %d pages "
          "(%d array reads), partitions %d pages (%d array reads)",
          table->name().c_str(), degree, static_cast<int>(serial_pages),
          static_cast<int>(serial_reads), static_cast<int>(partition_pages),
          static_cast<int>(partition_reads)));
    }
    XPRS_RETURN_IF_ERROR(Compare(
        *MakeSeqScan(table, Predicate()),
        StrFormat("partitioned-scan(%d)", degree), reference, merged));
  }
  array_->ResetStats();
  return Status::OK();
}

Status CheckShortWriteSurfacing(Catalog* catalog, const std::string& name,
                                uint64_t seed) {
  XPRS_CHECK(catalog != nullptr);
  ScriptedFaultInjector injector;
  ScriptedFaultInjector::Script script;
  script.short_nth_write = 1;
  script.short_write_bytes = 256;
  injector.Arm(script);
  catalog->disk_array()->SetFaultInjector(&injector);
  Rng rng(seed);
  auto built = BuildRelation(catalog, name, /*num_tuples=*/300,
                             /*text_width=*/24, /*key_range=*/50, &rng);
  catalog->disk_array()->SetFaultInjector(nullptr);
  if (built.ok()) {
    return Status::Internal(
        "short write during bulk load did not surface as Status");
  }
  if (injector.faults_injected() == 0) {
    return Status::Internal(
        "bulk load failed but no fault was injected: " +
        built.status().ToString());
  }
  return Status::OK();
}

}  // namespace xprs
