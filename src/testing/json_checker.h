// Minimal JSON validity checker shared by the observability tests: verifies
// one complete JSON value spans the whole input. Enough to guarantee
// Perfetto / chrome://tracing (and any real parser) can read our exports;
// not a general-purpose parser — no unicode-escape validation, permissive
// number grammar.

#ifndef XPRS_TESTING_JSON_CHECKER_H_
#define XPRS_TESTING_JSON_CHECKER_H_

#include <cctype>
#include <string>

namespace xprs {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace xprs

#endif  // XPRS_TESTING_JSON_CHECKER_H_
