// The differential correctness oracle.
//
// Every generated plan is executed several independent ways and the
// canonicalized result sets (multisets of rendered tuples — row order is
// not part of the comparison) must agree with the trusted sequential
// reference executor:
//
//   - serial           ExecutePlanSequential, direct disk reads
//   - fragmented       ExecutePlanFragmented (fragment-at-a-time, serial)
//   - parallel(d)      ParallelFragmentRun per fragment in dependency
//                      order at each configured degree, with random
//                      mid-run parallelism adjustments (§2.4)
//   - master           the full ParallelMaster control loop under the
//                      adaptive scheduler (§2.5); the decision log is
//                      validated with ValidateSchedDecisions
//   - profiled         ExecutePlanSequential with a QueryProfile attached;
//                      the instrumentation must be invisible to the result
//   - spill            memory-constrained external sort / grace hash join
//                      (§5 extension) over a temp disk array
//   - pooled           reads through a small shared BufferPool; the run
//                      must leave zero pinned frames
//   - vectorized       ctx.vectorized batch execution (exec/batch_ops.h),
//                      run bare, with a tiny batch size (carry-over state),
//                      fragmented, pooled (zero pinned frames), profiled
//                      (root tuples_out must match), and parallel
//   - concurrent       the whole plan set replayed through the serve
//                      QueryScheduler with several sessions submitting in
//                      parallel against a shared buffer pool
//                      (CheckPlansConcurrent, plus a chaos variant)
//
// Structural invariants ride along: every plan's fragment decomposition is
// checked with ValidateFragmentGraph, and CheckScanIoConservation asserts
// the §2.2 fluid-model premise that a task's total io demand D_i is a
// property of the task — page partitioning at any degree must read exactly
// the pages the serial scan reads, no more, no fewer.
//
// CheckFaultSurfacing arms the storage fault hooks (disk-array read,
// buffer-pool fetch, short write during spill) one at a time and asserts
// injected faults surface as Status — never aborts — with balanced pins,
// and that the transient-fault retry reproduces the reference result.

#ifndef XPRS_TESTING_DIFFERENTIAL_H_
#define XPRS_TESTING_DIFFERENTIAL_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/fragment.h"
#include "opt/cost_model.h"
#include "storage/catalog.h"
#include "storage/disk_array.h"
#include "storage/fault_injector.h"
#include "util/rng.h"

namespace xprs {

/// Knobs of one oracle instance.
struct DifferentialOptions {
  /// Degrees of parallelism the per-fragment parallel mode runs at.
  std::vector<int> degrees = {2, 3, 5};
  bool run_fragmented = true;
  bool run_master = true;
  bool run_spill = true;
  bool run_buffer_pool = true;
  /// Re-run sequentially with a QueryProfile attached: the instrumentation
  /// decorators must not change the result, and the profile's root
  /// tuples_out must equal the reference cardinality.
  bool run_profiled = true;
  /// Re-run through the vectorized (batch-at-a-time) path: bare, with a
  /// deliberately tiny batch size, fragmented, pooled, profiled, and at
  /// the first configured parallel degree. Also adds a vectorized case to
  /// chaos mode.
  bool run_vectorized = true;
  /// Batch size for the tiny-batch vectorized run; a small prime stresses
  /// batch-boundary carry-over state (partial probe batches, result
  /// slicing) that a page-aligned 1024 never hits.
  size_t small_batch_rows = 7;
  /// Issue random Adjust() calls while parallel fragments run.
  bool adjust_during_run = true;
  /// Spill threshold (tuples in memory per operator). Small enough that
  /// generated joins and sorts actually hit the external paths.
  size_t spill_memory_tuples = 64;
  size_t buffer_pool_frames = 16;
  int max_slots = 8;

  /// Chaos mode (CheckPlanChaos): while each execution mode runs, every
  /// disk read independently fails with this probability (seeded from the
  /// oracle's rng). Bare modes may fail — any failure must carry a
  /// *retryable* status (IoError / ResourceExhausted), never a crash or a
  /// wrong answer — while the modes behind the resilience ladder
  /// (resilient serial, master) usually absorb the faults and must then
  /// match the reference exactly. 0 disables CheckPlanChaos.
  double chaos_read_fault_rate = 0.0;
  /// Retry budget per rung for the chaos resilient-serial / master runs.
  /// Backoff defaults to zero so fixed-seed chaos suites stay fast.
  RetryPolicy chaos_retry = [] {
    RetryPolicy p;
    p.max_attempts = 4;
    p.initial_backoff_ms = 0;
    return p;
  }();
  /// resilience.* metric + trace sink for chaos recoveries. Optional.
  Observability chaos_obs;

  /// Concurrent mode (CheckPlansConcurrent): number of parallel sessions
  /// replaying a plan set through the serve QueryScheduler — each plan is
  /// submitted to one of this many round-robin sessions and executed on
  /// the scheduler's worker threads against a shared buffer pool. Every
  /// per-query result must match its serial reference and the pool must
  /// end with zero pinned frames. 0 disables the mode.
  int concurrent_sessions = 4;
  /// Scheduler queue capacity for the concurrent mode (clamped up to the
  /// plan-set size so replay never trips admission control).
  size_t concurrent_queue_depth = 64;
};

/// Counters accumulated across CheckPlan / fault / conservation calls.
struct DifferentialReport {
  uint64_t plans_checked = 0;
  uint64_t executions_compared = 0;
  uint64_t reference_rows = 0;
  uint64_t faults_injected = 0;
  uint64_t fault_cases = 0;
  /// Chaos-mode outcomes: runs that absorbed at least one injected fault
  /// and still matched the reference, vs. runs that failed retryably.
  uint64_t chaos_recovered = 0;
  uint64_t chaos_retryable_failures = 0;
  std::string ToString() const;
};

class DifferentialOracle {
 public:
  /// `array` is the disk array the checked plans' tables live on; it is
  /// also the target of the read-hook fault cases. Must outlive the
  /// oracle. All randomness (adjustment points, fault placement) derives
  /// from `seed`.
  DifferentialOracle(DiskArray* array, const DifferentialOptions& options,
                     uint64_t seed);

  /// Runs `plan` through every configured mode and compares against the
  /// sequential reference. Non-OK describes the first divergence (the
  /// message embeds the plan and the mode).
  Status CheckPlan(const PlanNode& plan);

  /// Fault cases for the read and fetch hooks (plus the spill write hook
  /// when the plan spills): each armed fault must surface as Status with
  /// zero pinned frames, and the transient retry must match the reference.
  Status CheckFaultSurfacing(const PlanNode& plan);

  /// Chaos mode: re-runs `plan` through the configured modes with a
  /// seeded rate-`options.chaos_read_fault_rate` read-fault injector armed
  /// the whole time. Every mode must either reproduce the reference result
  /// exactly or fail with a retryable status; the resilience-ladder modes
  /// record their recoveries on `options.chaos_obs` (resilience.retry.* /
  /// resilience.degrade.* counters and trace events). No-op when the rate
  /// is <= 0.
  Status CheckPlanChaos(const PlanNode& plan);

  /// Random-rate read faults: while armed, every disk read independently
  /// fails with probability `rate` (seeded from the oracle's rng). The run
  /// must either fail with a Status — with every injected fault accounted
  /// for — or succeed with the exact reference result; after disarming,
  /// an identical run must match the reference. No-op when rate <= 0.
  Status CheckRandomReadFaults(const PlanNode& plan, double rate);

  /// Concurrent mode: replays `plans` through a serve QueryScheduler with
  /// `options.concurrent_sessions` sessions submitting in round-robin.
  /// Serial references are computed first; each concurrently executed
  /// query must reproduce its reference exactly, and the shared buffer
  /// pool must end with zero pinned frames. No-op when
  /// concurrent_sessions is 0 or `plans` is empty.
  Status CheckPlansConcurrent(const std::vector<const PlanNode*>& plans);

  /// Chaos variant of the concurrent mode: the whole replay runs with a
  /// seeded rate-`chaos_read_fault_rate` read-fault injector armed on the
  /// array while every query executes behind the resilience ladder
  /// (retry + spill degrade). Each query must either match its reference
  /// or fail with a retryable status. No-op when the rate is <= 0.
  Status CheckPlansConcurrentChaos(const std::vector<const PlanNode*>& plans);

  /// §2.2 io conservation: a page-partitioned scan of `table` at every
  /// configured degree reads exactly the serial scan's pages.
  Status CheckScanIoConservation(Table* table);

  const DifferentialReport& report() const { return report_; }

 private:
  using Canon = std::multiset<std::string>;
  static Canon Canonicalize(const std::vector<Tuple>& rows);
  Status Compare(const PlanNode& plan, const std::string& mode,
                 const Canon& reference, const std::vector<Tuple>& got);

  StatusOr<std::vector<Tuple>> RunParallelFragments(const PlanNode& plan,
                                                    int degree,
                                                    bool vectorized = false);
  // `chaos` arms the resilience ladder (options_.chaos_retry + chaos_obs)
  // on the master so injected faults are retried / degraded instead of
  // failing the run outright.
  StatusOr<std::vector<Tuple>> RunMaster(const PlanNode& plan,
                                         bool chaos = false);
  // One armed-hook case: runs `plan` under `ctx`, asserting a fired fault
  // surfaces as Status and a clean retry matches `reference`.
  Status FaultCase(const PlanNode& plan, const Canon& reference,
                   const ExecContext& ctx, ScriptedFaultInjector* injector,
                   const std::string& label);
  // One chaos case: runs `run` with a rate injector armed on the array;
  // the outcome must be the reference result or a retryable failure.
  Status ChaosCase(const PlanNode& plan, const Canon& reference,
                   const std::string& label,
                   const std::function<StatusOr<std::vector<Tuple>>()>& run);
  // Shared body of the concurrent modes.
  Status RunConcurrent(const std::vector<const PlanNode*>& plans, bool chaos);

  DiskArray* const array_;
  const DifferentialOptions options_;
  Rng rng_;
  /// Spill target for the memory-constrained mode (and the write-hook
  /// fault case). kInstant: only accounting, no sleeps.
  DiskArray temp_array_;
  CostModel model_;
  DifferentialReport report_;
};

/// Write-hook fault case independent of query shape: arms a short write on
/// `array` and bulk-loads a throwaway relation into `catalog` (which must
/// live on `array`), asserting the torn write surfaces as Status from the
/// loader. `name` must be unused in the catalog.
Status CheckShortWriteSurfacing(Catalog* catalog, const std::string& name,
                                uint64_t seed);

}  // namespace xprs

#endif  // XPRS_TESTING_DIFFERENTIAL_H_
