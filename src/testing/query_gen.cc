#include "testing/query_gen.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/str.h"
#include "workload/relations.h"

namespace xprs {

StatusOr<std::vector<Table*>> BuildGeneratedWorkload(
    Catalog* catalog, const GeneratedWorkloadOptions& options, Rng* rng) {
  XPRS_CHECK(catalog != nullptr);
  XPRS_CHECK(rng != nullptr);
  XPRS_CHECK_GE(options.num_relations, 1);
  XPRS_CHECK_LE(options.min_tuples, options.max_tuples);
  XPRS_CHECK_GE(options.min_key_range, 1);
  XPRS_CHECK_LE(options.min_key_range, options.max_key_range);
  std::vector<Table*> tables;
  for (int i = 0; i < options.num_relations; ++i) {
    uint64_t tuples = static_cast<uint64_t>(
        rng->NextInt(static_cast<int64_t>(options.min_tuples),
                     static_cast<int64_t>(options.max_tuples)));
    int32_t key_range = static_cast<int32_t>(
        rng->NextInt(options.min_key_range, options.max_key_range));
    // One relation in five carries a NULL text column (the r_min shape).
    int text_width = rng->NextBool(0.2)
                         ? -1
                         : static_cast<int>(
                               rng->NextInt(0, options.max_text_width));
    double null_fraction =
        options.max_null_key_fraction > 0.0
            ? rng->NextDouble() * options.max_null_key_fraction
            : 0.0;
    XPRS_ASSIGN_OR_RETURN(
        Table * table,
        BuildRelation(catalog, StrFormat("t%d", i), tuples, text_width,
                      key_range, rng, null_fraction));
    tables.push_back(table);
  }
  return tables;
}

QueryGenerator::QueryGenerator(std::vector<Table*> tables,
                               const Options& options, uint64_t seed)
    : tables_(std::move(tables)), options_(options), rng_(seed) {
  XPRS_CHECK(!tables_.empty());
  for (Table* table : tables_) XPRS_CHECK(table != nullptr);
}

Predicate QueryGenerator::RandomComparison(const Table& table) {
  const TableStats& stats = table.stats();
  // Constants straddle the key domain so some predicates are empty or
  // all-pass — both are edge cases the oracle should see.
  int32_t lo = stats.has_key_bounds ? stats.min_key : 0;
  int32_t hi = stats.has_key_bounds ? stats.max_key : 8;
  int32_t constant =
      static_cast<int32_t>(rng_.NextInt(lo - 3, hi + 3));
  static constexpr CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                   CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  CmpOp op = kOps[rng_.NextUint64(6)];
  return Predicate::Compare(0, op, Value(constant));
}

Predicate QueryGenerator::RandomPredicate(const Table& table) {
  double pick = rng_.NextDouble();
  if (pick < 0.5) return RandomComparison(table);
  if (pick < 0.7) {
    const TableStats& stats = table.stats();
    int32_t min = stats.has_key_bounds ? stats.min_key : 0;
    int32_t max = stats.has_key_bounds ? stats.max_key : 8;
    int32_t a = static_cast<int32_t>(rng_.NextInt(min - 2, max + 2));
    int32_t b = static_cast<int32_t>(rng_.NextInt(min - 2, max + 2));
    return Predicate::Between(0, std::min(a, b), std::max(a, b));
  }
  if (pick < 0.85)
    return Predicate::And(RandomComparison(table), RandomComparison(table));
  return Predicate::Or(RandomComparison(table), RandomComparison(table));
}

QueryGenerator::Sub QueryGenerator::MakeScan() {
  Table* table = tables_[rng_.NextUint64(tables_.size())];
  Predicate predicate = rng_.NextBool(options_.filter_prob)
                            ? RandomPredicate(*table)
                            : Predicate();
  Sub sub;
  if (table->index() != nullptr && rng_.NextBool(options_.index_scan_prob)) {
    const TableStats& stats = table->stats();
    int32_t min = stats.has_key_bounds ? stats.min_key : 0;
    int32_t max = stats.has_key_bounds ? stats.max_key : 8;
    int32_t a = static_cast<int32_t>(rng_.NextInt(min - 1, max + 1));
    int32_t b = static_cast<int32_t>(rng_.NextInt(min - 1, max + 1));
    KeyRange range{std::min(a, b), std::max(a, b)};
    sub.plan = MakeIndexScan(table, std::move(predicate), range);
  } else {
    sub.plan = MakeSeqScan(table, std::move(predicate));
  }
  sub.int_cols = {0};  // paper schema: a int4, b text
  return sub;
}

QueryGenerator::Sub QueryGenerator::MakeJoinChain() {
  Sub left = MakeScan();
  int num_joins =
      static_cast<int>(rng_.NextUint64(options_.max_joins + 1));
  for (int j = 0; j < num_joins; ++j) {
    Sub right = MakeScan();
    size_t left_width = left.plan->output_schema.num_columns();
    size_t left_key = left.int_cols[rng_.NextUint64(left.int_cols.size())];
    size_t right_key = right.int_cols[rng_.NextUint64(right.int_cols.size())];

    double total = options_.nestloop_weight + options_.hash_weight +
                   options_.merge_weight;
    double pick = rng_.NextDouble() * total;
    std::unique_ptr<PlanNode> joined;
    if (pick < options_.nestloop_weight) {
      joined = MakeNestLoopJoin(std::move(left.plan), std::move(right.plan),
                                left_key, right_key);
    } else if (pick < options_.nestloop_weight + options_.hash_weight) {
      joined = MakeHashJoin(std::move(left.plan), std::move(right.plan),
                            left_key, right_key);
    } else {
      // Merge join consumes sorted inputs; give it the Sorts it needs.
      joined = MakeMergeJoin(MakeSort(std::move(left.plan), left_key),
                             MakeSort(std::move(right.plan), right_key),
                             left_key, right_key);
    }
    for (size_t col : right.int_cols)
      left.int_cols.push_back(left_width + col);
    left.plan = std::move(joined);
  }
  return left;
}

std::unique_ptr<PlanNode> QueryGenerator::NextPlan() {
  Sub sub = MakeJoinChain();
  if (rng_.NextBool(options_.aggregate_prob)) {
    size_t agg_col = sub.int_cols[rng_.NextUint64(sub.int_cols.size())];
    int group_col =
        rng_.NextBool(0.5)
            ? static_cast<int>(
                  sub.int_cols[rng_.NextUint64(sub.int_cols.size())])
            : -1;
    static constexpr AggFunc kFuncs[] = {AggFunc::kCount, AggFunc::kSum,
                                         AggFunc::kMin, AggFunc::kMax};
    AggFunc func = kFuncs[rng_.NextUint64(4)];
    sub.plan = MakeAggregate(std::move(sub.plan), func, agg_col, group_col);
    sub.int_cols.clear();
    if (group_col >= 0) sub.int_cols.push_back(0);
    sub.int_cols.push_back(group_col >= 0 ? 1 : 0);
  }
  if (rng_.NextBool(options_.sort_root_prob)) {
    size_t sort_key = sub.int_cols[rng_.NextUint64(sub.int_cols.size())];
    sub.plan = MakeSort(std::move(sub.plan), sort_key);
  }
  ++num_generated_;
  return std::move(sub.plan);
}

}  // namespace xprs
