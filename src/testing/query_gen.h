// Seeded random query generation for the differential correctness harness.
//
// The generator owns a small catalog of paper-schema relations (built with
// varying cardinalities, tuple widths, key ranges and NULL-key fractions)
// and produces random physical plans over them: sequential and index scans
// with Compare/Between/And/Or qualifications, left-deep chains of
// nestloop / hash / merge joins (merge joins get the Sorts their inputs
// need), and optional Aggregate and Sort roots. Every plan it emits is
// executable by the sequential reference executor, the fragmented executor
// and the parallel master alike — the differential oracle runs each plan
// through all of them and compares.
//
// Determinism contract: a generator constructed with the same tables,
// options and seed yields the same plan sequence. Harness binaries derive
// the seed via TestSeed() so XPRS_SEED replays a whole run.

#ifndef XPRS_TESTING_QUERY_GEN_H_
#define XPRS_TESTING_QUERY_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/plan.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace xprs {

/// Shape of the relation population backing generated queries.
struct GeneratedWorkloadOptions {
  int num_relations = 3;
  uint64_t min_tuples = 60;
  uint64_t max_tuples = 320;
  /// Keys are drawn from [0, key_range) with key_range itself uniform in
  /// [min_key_range, max_key_range]; small ranges keep joins productive.
  int32_t min_key_range = 16;
  int32_t max_key_range = 240;
  int max_text_width = 48;
  /// Upper bound of the per-relation NULL-key fraction (each relation
  /// draws its own fraction in [0, this]).
  double max_null_key_fraction = 0.15;
};

/// Builds `options.num_relations` relations named t0, t1, ... into
/// `catalog` and returns them. All randomness comes from `rng`.
StatusOr<std::vector<Table*>> BuildGeneratedWorkload(
    Catalog* catalog, const GeneratedWorkloadOptions& options, Rng* rng);

/// Random plan generator over a fixed table set.
class QueryGenerator {
 public:
  struct Options {
    /// Maximum number of joins per plan (left-deep chain length - 1).
    int max_joins = 2;
    double filter_prob = 0.65;
    double index_scan_prob = 0.3;
    double aggregate_prob = 0.35;
    double sort_root_prob = 0.35;
    /// Relative odds of the three join algorithms. Nestloop is kept rare:
    /// it re-opens its inner scan per outer tuple, so it dominates the
    /// harness runtime when the outer side is large.
    double nestloop_weight = 1.0;
    double hash_weight = 3.0;
    double merge_weight = 2.0;
  };

  /// `tables` must outlive the generator (they are catalog-owned).
  QueryGenerator(std::vector<Table*> tables, const Options& options,
                 uint64_t seed);

  /// The next random plan. Never null.
  std::unique_ptr<PlanNode> NextPlan();

  /// Plans generated so far.
  uint64_t num_generated() const { return num_generated_; }

 private:
  // A subtree plus the int4 column positions of its output schema (join
  // keys, sort keys, aggregate and group columns must be int4).
  struct Sub {
    std::unique_ptr<PlanNode> plan;
    std::vector<size_t> int_cols;
  };

  Sub MakeScan();
  Sub MakeJoinChain();
  Predicate RandomPredicate(const Table& table);
  Predicate RandomComparison(const Table& table);

  std::vector<Table*> tables_;
  Options options_;
  Rng rng_;
  uint64_t num_generated_ = 0;
};

}  // namespace xprs

#endif  // XPRS_TESTING_QUERY_GEN_H_
