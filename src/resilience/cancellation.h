// Cooperative cancellation and per-query deadlines.
//
// A CancellationToken is owned by whoever issues the query (a test, a
// shell session, the bench driver) and shared by plain pointer with every
// component executing on the query's behalf: the serial executor's
// operator tree, the parallel master's control loop, and each slave
// pipeline inside a ParallelFragmentRun. Execution is cooperative — no
// thread is ever killed. Operators poll Check() at batch boundaries
// (page loads, Next() calls through the cancel guard) and unwind with
// Status::Cancelled / Status::DeadlineExceeded, releasing buffer-pool pins
// through the usual RAII handles on the way out, so a cancelled query
// always leaves zero pinned frames.
//
// The token latches: the first observation of an expired deadline converts
// the token to the cancelled state with kDeadlineExceeded, and every later
// Check() returns the same status. Cancel() and Check() are safe to call
// concurrently from any thread. The live-path cost of Check() is one
// relaxed atomic load plus, when a deadline is armed, one steady-clock
// read — callers on per-tuple paths stride the deadline check (see
// CancelGuardOp in exec/operators.cc).

#ifndef XPRS_RESILIENCE_CANCELLATION_H_
#define XPRS_RESILIENCE_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace xprs {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Moves the token to the cancelled state (idempotent; the first caller
  /// wins the reason). Wakes nobody — execution notices at the next poll.
  /// A Cancel is "hard": it survives a later ResetPreempted, so a user
  /// cancellation that races a scheduler preemption always wins.
  void Cancel(std::string reason = "query cancelled");

  /// Scheduler-side preemption: latches the cancelled state like Cancel so
  /// the query unwinds cooperatively (pins released through RAII), but
  /// marks the latch as preemption so ResetPreempted can re-arm the token
  /// for a re-run. Returns false (and does nothing) when the token is
  /// already terminal.
  bool Preempt(std::string reason = "preempted for memory reclaim");

  /// Re-arms a token latched by Preempt. Returns true when the token is
  /// live again (the query may be re-queued); false when it was never
  /// preempted or a hard Cancel arrived meanwhile — the cancelled state
  /// then stands. An armed deadline survives and re-latches on its own.
  bool ResetPreempted();

  /// Arms a deadline `ms` milliseconds from now on the steady clock.
  /// ms <= 0 arms an already-expired deadline: the query fails with
  /// DeadlineExceeded at its first cancellation point instead of running.
  void SetDeadlineAfterMs(int64_t ms);

  /// True once cancelled (explicitly or via a latched deadline). One
  /// relaxed load; does NOT observe a not-yet-latched expired deadline.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while the query may keep running; Cancelled or DeadlineExceeded
  /// afterwards. Latches an expired deadline on first observation.
  Status Check() const;

  /// Steady-clock nanoseconds of the armed deadline, or -1 when none is
  /// armed. The admission queue uses this to sleep until the earliest
  /// queued deadline instead of polling.
  int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_acquire);
  }

  /// Steady-clock nanoseconds used for deadlines (exposed for tests).
  static int64_t NowNs();

 private:
  static constexpr int64_t kNoDeadline = -1;

  // Sets the terminal state exactly once; later callers are no-ops.
  void Latch(StatusCode code, std::string reason) const;
  Status TerminalStatus() const;

  mutable std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  // Guards code_/reason_/preempted_/hard_cancel_ while latching; read-side
  // only runs after the acquire load of cancelled_ observes true.
  mutable std::mutex mutex_;
  mutable StatusCode code_ = StatusCode::kCancelled;
  mutable std::string reason_;
  /// Latched by Preempt (clearable); cleared by ResetPreempted.
  bool preempted_ = false;
  /// Set by Cancel even when the token is already latched, so a user
  /// cancellation during a preemption unwind sticks.
  bool hard_cancel_ = false;
};

}  // namespace xprs

#endif  // XPRS_RESILIENCE_CANCELLATION_H_
