#include "resilience/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace xprs {

int RetryPolicy::BackoffMs(int failures) const {
  if (failures < 1) failures = 1;
  double ms = std::max(0, initial_backoff_ms);
  for (int i = 1; i < failures; ++i) ms *= std::max(1.0, backoff_multiplier);
  return static_cast<int>(std::min<double>(ms, std::max(0, max_backoff_ms)));
}

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

Status BackoffSleep(const RetryPolicy& policy, int failures,
                    const CancellationToken* token) {
  return BackoffSleepMs(policy.BackoffMs(failures), token);
}

Status BackoffSleepMs(int ms, const CancellationToken* token) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  // Sleep in 1 ms slices so cancellation cuts the wait short.
  while (std::chrono::steady_clock::now() < until) {
    if (token != nullptr) XPRS_RETURN_IF_ERROR(token->Check());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (token != nullptr) XPRS_RETURN_IF_ERROR(token->Check());
  return Status::OK();
}

int JitteredBackoffMs(const RetryPolicy& policy, int failures, Rng* rng) {
  const int base = policy.BackoffMs(failures);
  if (rng == nullptr || base <= 0) return base;
  // Uniform in [base/2, base + base/2]: full-jitter spreads a retry storm
  // over one backoff period without ever collapsing the wait to zero.
  const int half = std::max(1, base / 2);
  return half + static_cast<int>(rng->NextUint64(
                    static_cast<uint64_t>(base) + 1));
}

void EmitResilienceEvent(
    const Observability& obs, const std::string& kind, double time_seconds,
    int64_t track, std::vector<std::pair<std::string, TraceValue>> args) {
  const std::string name = "resilience." + kind;
  if (obs.metrics != nullptr) obs.metrics->counter(name)->Increment();
  if (obs.tracing()) {
    if (time_seconds < 0.0) {
      time_seconds =
          static_cast<double>(CancellationToken::NowNs()) / 1e9;
    }
    obs.Emit({name, "resilience", 'i', time_seconds, 0.0, track,
              std::move(args)});
  }
}

}  // namespace xprs
