#include "resilience/cancellation.h"

namespace xprs {

int64_t CancellationToken::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CancellationToken::Cancel(std::string reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  hard_cancel_ = true;
  if (cancelled_.load(std::memory_order_relaxed)) {
    // Upgrade a soft preemption latch in place: the user cancel's reason
    // is what the query should surface.
    if (preempted_) {
      code_ = StatusCode::kCancelled;
      reason_ = std::move(reason);
    }
    return;
  }
  code_ = StatusCode::kCancelled;
  reason_ = std::move(reason);
  cancelled_.store(true, std::memory_order_release);
}

bool CancellationToken::Preempt(std::string reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_.load(std::memory_order_relaxed)) return false;
  preempted_ = true;
  code_ = StatusCode::kCancelled;
  reason_ = std::move(reason);
  cancelled_.store(true, std::memory_order_release);
  return true;
}

bool CancellationToken::ResetPreempted() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!preempted_) return false;
  preempted_ = false;
  if (hard_cancel_) return false;  // a real Cancel raced in: it wins
  code_ = StatusCode::kCancelled;
  reason_.clear();
  cancelled_.store(false, std::memory_order_release);
  return true;
}

void CancellationToken::SetDeadlineAfterMs(int64_t ms) {
  if (ms < 0) ms = 0;
  deadline_ns_.store(NowNs() + ms * 1000000, std::memory_order_relaxed);
}

void CancellationToken::Latch(StatusCode code, std::string reason) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_.load(std::memory_order_relaxed)) return;
  code_ = code;
  reason_ = std::move(reason);
  cancelled_.store(true, std::memory_order_release);
}

Status CancellationToken::TerminalStatus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Status(code_, reason_);
}

Status CancellationToken::Check() const {
  if (cancelled_.load(std::memory_order_acquire)) return TerminalStatus();
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != kNoDeadline && NowNs() >= deadline) {
    Latch(StatusCode::kDeadlineExceeded, "query deadline exceeded");
    return TerminalStatus();
  }
  return Status::OK();
}

}  // namespace xprs
