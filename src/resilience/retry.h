// Retry policy, retryability classification, and the resilience event
// vocabulary shared by the executor, the parallel master, and the buffer
// pool backpressure path.
//
// The degradation ladder (DESIGN.md "Resilience") is:
//
//   retry           same work, same granules, after a bounded exponential
//                   backoff — absorbs transient storage faults
//   degrade         halve the fragment's parallelism via the §2.4
//                   adjustment path, or (serial executor) fall back to the
//                   spill path under buffer-pool pressure
//   serial fallback re-run the fragment on the master thread with the
//                   trusted sequential executor
//   fail            surface the last Status to the caller
//
// Cancellation and deadlines are never retried: a cancelled query must
// stop, not loop. Every rung emits a `resilience.*` counter plus an
// instant trace event through EmitResilienceEvent so recoveries are
// visible in metrics snapshots and Chrome traces.

#ifndef XPRS_RESILIENCE_RETRY_H_
#define XPRS_RESILIENCE_RETRY_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "resilience/cancellation.h"
#include "util/rng.h"
#include "util/status.h"

namespace xprs {

/// Bounded exponential backoff. `max_attempts` counts the first try:
/// max_attempts = 3 means one initial attempt plus two retries per rung of
/// the degradation ladder.
struct RetryPolicy {
  int max_attempts = 3;
  int initial_backoff_ms = 1;
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 50;

  /// Backoff before retry number `failures` (>= 1), in milliseconds.
  int BackoffMs(int failures) const;
};

/// True for fault classes worth retrying: transient storage errors
/// (kIoError) and resource pressure (kResourceExhausted). Cancellation,
/// deadline expiry and logic errors are terminal.
bool IsRetryableStatus(const Status& status);

/// Sleeps the policy's backoff for retry number `failures`, polling
/// `token` (nullable) so a cancelled query stops waiting. Returns the
/// token's terminal status if it fired, OK otherwise.
Status BackoffSleep(const RetryPolicy& policy, int failures,
                    const CancellationToken* token);

/// Sleeps `ms` milliseconds in 1 ms cancellation-polling slices (the
/// primitive under BackoffSleep, exposed for jittered ladders).
Status BackoffSleepMs(int ms, const CancellationToken* token);

/// The policy's backoff for retry `failures` with ±50% decorrelation
/// jitter from `rng`, so a fleet of queries retrying the same fault does
/// not thunder back in lockstep. `rng` must not be shared across threads.
int JitteredBackoffMs(const RetryPolicy& policy, int failures, Rng* rng);

/// Increments counter `resilience.<kind>` and emits an instant trace event
/// of the same name (category "resilience", `track` as the tid). The
/// timestamp is `time_seconds` on whatever clock the caller's trace uses;
/// pass a negative value to stamp with the process steady clock.
void EmitResilienceEvent(
    const Observability& obs, const std::string& kind, double time_seconds,
    int64_t track,
    std::vector<std::pair<std::string, TraceValue>> args = {});

}  // namespace xprs

#endif  // XPRS_RESILIENCE_RETRY_H_
