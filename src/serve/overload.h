// Overload control for the serving layer: health states, circuit
// breakers, and poison-query quarantine.
//
// The §2.3 balance-point scheduler assumes queries that run to completion
// on a healthy machine. Under a sustained fault storm or memory squeeze
// that optimism turns into retry loops, unbounded queues and a disk being
// hammered by work that cannot succeed. This header adds the three
// classic serving defenses on top of the scheduler's static budgets:
//
//   OverloadController  an explicit health state machine
//                       (healthy -> degraded -> shedding) driven by
//                       rolling windows of fault rate and latency plus
//                       instantaneous queue depth / memory / buffer-pool
//                       pressure. Escalation is immediate; recovery is
//                       monotone and deliberate (a minimum dwell time and
//                       N consecutive clean evaluations per step down).
//                       While unhealthy the controller shrinks the
//                       scheduler's effective cpu/io/memory/queue budgets
//                       and, in shedding, fast-rejects low-priority work
//                       at admission.
//
//   CircuitBreaker      per fault domain (storage reads, spill io).
//                       Consecutive failures open the breaker; while open
//                       every attempt fast-fails instead of hammering the
//                       failing disk; after a cooldown a half-open probe
//                       decides between closing and re-opening.
//
//   PoisonLog           SlowQueryLog-style quarantine record. A statement
//                       that keeps failing across whole-query retries is
//                       recorded (sql, session, grant, seed, status) and
//                       never re-admitted: re-submissions are rejected
//                       synchronously without touching the planner or an
//                       operator, so one bad plan cannot starve the fleet.
//
// All three are thread-safe and publish `overload.*` metrics plus
// state-transition trace events through the shared Observability.

#ifndef XPRS_SERVE_OVERLOAD_H_
#define XPRS_SERVE_OVERLOAD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "serve/lifecycle.h"
#include "util/status.h"

namespace xprs {

// --- health state machine ---------------------------------------------------

enum class HealthState { kHealthy = 0, kDegraded = 1, kShedding = 2 };

const char* HealthStateName(HealthState state);

struct OverloadOptions {
  /// Master switch; when false every hook is a no-op and the scheduler
  /// behaves exactly as before this controller existed.
  bool enabled = true;

  /// Rolling window of completion outcomes/latencies the fault-rate and
  /// p95 signals are computed over.
  size_t window = 64;
  /// Minimum outcomes in the window before fault/latency signals count.
  size_t min_samples = 16;

  // Signal thresholds. A signal at or above its shedding threshold forces
  // kShedding; at or above its degraded threshold, kDegraded. Thresholds
  // set to 0 (latency) disable that signal.
  double degraded_fault_rate = 0.25;
  double shedding_fault_rate = 0.50;
  /// Queue depth as a fraction of max_queue_depth.
  double degraded_queue_frac = 0.80;
  double shedding_queue_frac = 0.95;
  /// Scheduler memory budget in use / buffer-pool pinned fraction
  /// (whichever is higher; the pool probe is optional).
  double degraded_mem_frac = 0.92;
  double shedding_mem_frac = 0.99;
  /// p95 of submit-to-resolve latency, seconds. 0 disables.
  double degraded_p95_seconds = 0.0;
  double shedding_p95_seconds = 0.0;

  /// Admission floors: while shedding (resp. degraded), submissions with
  /// priority below the floor are rejected synchronously. The defaults
  /// shed everything at default priority (0) while unhealthy work of
  /// priority >= 1 still gets through.
  int shed_priority_floor = 1;
  int degraded_priority_floor = std::numeric_limits<int>::min();

  // Effective-budget scale factors applied by the scheduler per state.
  double cpu_scale_degraded = 0.75;
  double cpu_scale_shedding = 0.50;
  double mem_scale_degraded = 0.75;
  double mem_scale_shedding = 0.50;
  double io_scale_degraded = 0.75;
  double io_scale_shedding = 0.50;
  double queue_scale_shedding = 0.50;

  /// Recovery is monotone: a state must hold for min_dwell_seconds AND see
  /// recovery_clean_evals consecutive evaluations below its own entry
  /// thresholds before stepping down one level.
  double min_dwell_seconds = 0.10;
  int recovery_clean_evals = 8;
};

/// Instantaneous pressure the scheduler reports at each evaluation.
struct OverloadSignals {
  double queue_frac = 0.0;
  double mem_frac = 0.0;
};

/// One recorded state change (timestamps are seconds since the controller
/// was constructed, on the steady clock).
struct OverloadTransition {
  double t_seconds = 0.0;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  std::string reason;
};

class OverloadController {
 public:
  /// Message prefix of every admission-shed status (IsOverloadShed).
  static const char* kShedPrefix;

  OverloadController(const OverloadOptions& options, const Observability& obs);

  OverloadController(const OverloadController&) = delete;
  OverloadController& operator=(const OverloadController&) = delete;

  /// Optional extra memory-pressure probe (e.g. buffer-pool pinned
  /// fraction); sampled at every evaluation and max-ed with the
  /// scheduler's own mem_frac. Install before queries flow.
  void SetMemoryProbe(std::function<double()> probe);

  /// Records one completed query: whether it failed (cancellations are the
  /// caller's business to exclude) and its submit-to-resolve latency.
  void RecordOutcome(bool failure, double latency_seconds);

  /// Re-evaluates the state machine against the rolling windows plus the
  /// instantaneous signals. Cheap; called at every submit and completion.
  void Evaluate(const OverloadSignals& signals);

  /// OK when `priority` may be admitted in the current state; otherwise a
  /// distinct ResourceExhausted shed status (IsOverloadShed). Counts the
  /// shed.
  Status AdmissionCheck(int priority);

  /// True iff `status` is the controller's admission shed (as opposed to a
  /// queue-full reject or storage ResourceExhausted).
  static bool IsOverloadShed(const Status& status);

  /// Counts a shed decided by the caller (e.g. the scheduler's scaled
  /// queue cap) so sheds()/metrics stay complete.
  void CountShed();

  HealthState state() const {
    return static_cast<HealthState>(state_.load(std::memory_order_acquire));
  }

  // Effective-budget scales for the current state (1.0 while healthy).
  double cpu_scale() const;
  double mem_scale() const;
  double io_scale() const;
  double queue_scale() const;

  const OverloadOptions& options() const { return options_; }
  std::vector<OverloadTransition> transitions() const;
  /// True iff the controller ever reached `state`.
  bool reached(HealthState state) const;
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }

 private:
  /// Highest state the current signals justify, plus a reason.
  HealthState TargetLocked(const OverloadSignals& signals,
                           std::string* reason) const;
  void TransitionLocked(HealthState to, const std::string& reason);
  double NowSeconds() const;

  const OverloadOptions options_;
  Observability obs_;

  mutable std::mutex mutex_;
  std::function<double()> memory_probe_;
  std::deque<bool> outcomes_;       // true = failure
  size_t window_failures_ = 0;
  std::deque<double> latencies_;    // seconds, same window
  double last_transition_seconds_ = 0.0;
  int clean_evals_ = 0;
  std::vector<OverloadTransition> transitions_;
  bool reached_[3] = {true, false, false};

  std::atomic<int> state_{static_cast<int>(HealthState::kHealthy)};
  std::atomic<uint64_t> sheds_{0};

  std::chrono::steady_clock::time_point epoch_;

  Gauge* g_state_ = nullptr;
  Counter* m_transitions_ = nullptr;
  Counter* m_shed_ = nullptr;
};

// --- circuit breaker --------------------------------------------------------

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive domain failures that trip the breaker open.
  int failure_threshold = 5;
  /// Cooldown before an open breaker lets a half-open probe through.
  double open_seconds = 0.10;
  /// Consecutive probe successes that close a half-open breaker.
  int half_open_successes = 1;
};

/// One fault domain's breaker (storage reads, spill io). Thread-safe.
class CircuitBreaker {
 public:
  CircuitBreaker(std::string domain, const CircuitBreakerOptions& options,
                 const Observability& obs);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// OK when an attempt may proceed (closed, or half-open probe);
  /// otherwise the fast-fail status (IsBreakerOpen) without touching the
  /// domain.
  Status Allow();

  void RecordSuccess();
  void RecordFailure();

  /// True iff `status` is a breaker fast-fail. Fast-fails carry
  /// kResourceExhausted (nominally retryable) — retry ladders must check
  /// this predicate and stop instead of spinning on an open breaker.
  static bool IsBreakerOpen(const Status& status);

  BreakerState state() const;
  const std::string& domain() const { return domain_; }
  uint64_t fast_fails() const;
  uint64_t times_opened() const;

 private:
  void TransitionLocked(BreakerState to);
  double NowSeconds() const;

  const std::string domain_;
  const CircuitBreakerOptions options_;
  Observability obs_;

  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double opened_at_seconds_ = 0.0;
  uint64_t fast_fails_ = 0;
  uint64_t times_opened_ = 0;

  std::chrono::steady_clock::time_point epoch_;

  Counter* m_fast_fail_ = nullptr;
  Counter* m_opened_ = nullptr;
};

// --- poison-query quarantine ------------------------------------------------

/// One quarantine record: everything needed to replay the failure offline.
struct PoisonEntry {
  std::string query;       ///< submitted SQL
  int64_t session_id = 0;  ///< session of the last failing submission
  int failures = 0;        ///< whole-statement failures across submissions
  int attempts = 0;        ///< execution attempts including retries
  std::string last_status;
  GrantSnapshot last_grant;
  uint64_t seed = 0;       ///< caller-provided replay seed (0 = none)
  bool quarantined = false;
  uint64_t rejected = 0;   ///< fast-rejects since quarantine

  /// One-line JSON object (stable key order).
  std::string ToJson() const;
};

/// Threshold-triggered quarantine log keyed by statement text.
/// Thread-safe.
class PoisonLog {
 public:
  /// Statements that fail `quarantine_failures` times (terminal failures,
  /// after the per-query retry ladder) are quarantined. <= 0 disables
  /// recording and quarantining entirely.
  explicit PoisonLog(int quarantine_failures = 3,
                     const Observability& obs = Observability());

  PoisonLog(const PoisonLog&) = delete;
  PoisonLog& operator=(const PoisonLog&) = delete;

  bool enabled() const { return quarantine_failures_ > 0; }
  int quarantine_failures() const { return quarantine_failures_; }

  /// Records one terminal failure of `sql`. Returns true when this failure
  /// crossed the threshold and quarantined the statement.
  bool RecordFailure(const std::string& sql, int64_t session_id,
                     const GrantSnapshot& grant, const Status& status,
                     int attempts, uint64_t seed = 0);

  bool IsQuarantined(const std::string& sql) const;

  /// OK when `sql` may be admitted; otherwise the distinct quarantine
  /// reject status (IsPoisonReject), with the fast-reject counted on the
  /// entry. Callers must not run (or even plan) the statement on a reject.
  Status RejectIfQuarantined(const std::string& sql);

  /// True iff `status` is a quarantine fast-reject.
  static bool IsPoisonReject(const Status& status);

  std::vector<PoisonEntry> entries() const;
  size_t size() const;
  size_t quarantined_count() const;
  /// All entries, one JSON object per line (a JSONL log).
  std::string DumpJsonLines() const;

 private:
  const int quarantine_failures_;
  Observability obs_;

  mutable std::mutex mutex_;
  std::vector<PoisonEntry> entries_;  // few entries expected: linear scan

  Counter* m_quarantined_ = nullptr;
  Counter* m_rejected_ = nullptr;
};

}  // namespace xprs

#endif  // XPRS_SERVE_OVERLOAD_H_
