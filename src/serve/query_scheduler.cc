#include "serve/query_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "resilience/retry.h"
#include "util/str.h"

namespace xprs {

namespace {

constexpr const char* kAdmissionRejectPrefix = "admission queue full";

int64_t SteadyNs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

// --- ServeTicket -----------------------------------------------------------

StatusOr<SqlResult> ServeTicket::Wait() const {
  if (state_ == nullptr)
    return Status::FailedPrecondition("wait on an empty ticket");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return *state_->result;
}

bool ServeTicket::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

int64_t ServeTicket::query_id() const {
  return state_ != nullptr ? state_->id : -1;
}

// --- QueryScheduler --------------------------------------------------------

QueryScheduler::QueryScheduler(const ServeOptions& options)
    : options_(options),
      io_budget_(options.io_rate_budget > 0
                     ? options.io_rate_budget
                     : options.machine.nominal_bandwidth()),
      overload_(options.overload, options.obs),
      paused_(options.start_paused) {
  ResolveMetrics();
  int workers = std::max(1, options_.max_concurrent);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

QueryScheduler::~QueryScheduler() { Shutdown(); }

void QueryScheduler::ResolveMetrics() {
  MetricsRegistry* m = options_.obs.metrics;
  if (m == nullptr) return;
  m_submitted_ = m->counter("serve.submitted");
  m_admitted_ = m->counter("serve.admitted");
  m_rejected_queue_full_ = m->counter("serve.rejected.queue_full");
  m_rejected_deadline_ = m->counter("serve.rejected.deadline");
  m_dispatched_ = m->counter("serve.dispatched");
  m_completed_ = m->counter("serve.completed");
  m_failed_ = m->counter("serve.failed");
  m_degraded_ = m->counter("serve.degraded");
  m_cancelled_ = m->counter("serve.cancelled");
  m_rejected_shed_ = m->counter("serve.rejected.shed");
  m_preempted_ = m->counter("serve.preempted");
  g_queued_ = m->gauge("serve.queued");
  g_running_ = m->gauge("serve.running");
  g_peak_running_ = m->gauge("serve.peak_running");
  h_queue_wait_ = m->histogram("serve.queue_wait_seconds");
  h_run_seconds_ = m->histogram("serve.run_seconds");
}

void QueryScheduler::PublishGaugesLocked() {
  if (g_queued_ != nullptr)
    g_queued_->Set(static_cast<double>(queue_.size()));
  if (g_running_ != nullptr)
    g_running_->Set(static_cast<double>(running_.size()));
  if (g_peak_running_ != nullptr)
    g_peak_running_->Set(static_cast<double>(peak_running_));
}

bool QueryScheduler::IsAdmissionReject(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().rfind(kAdmissionRejectPrefix, 0) == 0;
}

StatusOr<ServeTicket> QueryScheduler::Submit(ServeRequest request) {
  if (!request.job)
    return Status::InvalidArgument("serve request carries no job");
  if (request.weight <= 0) request.weight = 1.0;
  // Direct submissions (no serving engine in front) still get a lifecycle
  // when tracing is on, so every query in a trace has its span tree.
  if (request.lifecycle == nullptr && options_.obs.tracing()) {
    request.lifecycle = std::make_shared<QueryLifecycle>(
        options_.obs, request.label, request.session_id);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (m_submitted_ != nullptr) m_submitted_->Increment();
  if (shutdown_) {
    Status status = Status::FailedPrecondition("query scheduler is shut down");
    if (request.lifecycle != nullptr) request.lifecycle->OnRejected(status);
    return status;
  }
  if (request.cancel != nullptr) {
    Status token = request.cancel->Check();
    if (!token.ok()) {
      if (m_rejected_deadline_ != nullptr &&
          token.code() == StatusCode::kDeadlineExceeded)
        m_rejected_deadline_->Increment();
      if (request.lifecycle != nullptr) request.lifecycle->OnRejected(token);
      return token;
    }
  }
  // Overload shedding rejects low-priority work before it ever queues;
  // the controller also shrinks the effective queue while shedding so a
  // deep backlog drains instead of growing. A queue already at capacity
  // reports the queue-full status (the more actionable signal for the
  // client) even when the controller is simultaneously shedding.
  overload_.Evaluate(SignalsLocked());
  const size_t queue_cap = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(options_.max_queue_depth) *
                             overload_.queue_scale()));
  if (queue_.size() >= options_.max_queue_depth) {
    if (m_rejected_queue_full_ != nullptr) m_rejected_queue_full_->Increment();
    EmitResilienceEvent(options_.obs, "serve.reject_queue_full", -1.0,
                        request.session_id);
    Status status = Status::ResourceExhausted(
        StrFormat("%s: %d queries waiting (capacity %d)",
                  kAdmissionRejectPrefix, static_cast<int>(queue_.size()),
                  static_cast<int>(options_.max_queue_depth)));
    if (request.lifecycle != nullptr) request.lifecycle->OnRejected(status);
    return status;
  }
  Status shed = overload_.AdmissionCheck(request.priority);
  if (shed.ok() && queue_.size() >= queue_cap) {
    // The overload-scaled cap (never the configured one) rejects as a
    // shed: the queue has room in steady state but the controller is
    // draining backlog.
    shed = Status::ResourceExhausted(StrFormat(
        "%s: queue scaled to %d while shedding", OverloadController::kShedPrefix,
        static_cast<int>(queue_cap)));
    overload_.CountShed();
  }
  if (!shed.ok()) {
    if (m_rejected_shed_ != nullptr) m_rejected_shed_->Increment();
    EmitResilienceEvent(options_.obs, "serve.reject_shed", -1.0,
                        request.session_id);
    if (request.lifecycle != nullptr) request.lifecycle->OnRejected(shed);
    return shed;
  }

  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->request = std::move(request);
  entry->state = std::make_shared<ServeTicket::State>();
  entry->state->id = entry->id;
  entry->enqueued = std::chrono::steady_clock::now();
  if (entry->request.lifecycle != nullptr) {
    entry->request.lifecycle->OnQueryId(entry->id);
    entry->request.lifecycle->OnEnqueued();
  }
  ServeTicket ticket(entry->state);
  queue_.push_back(std::move(entry));
  if (m_admitted_ != nullptr) m_admitted_->Increment();
  PublishGaugesLocked();
  lock.unlock();
  dispatch_cv_.notify_one();
  return ticket;
}

void QueryScheduler::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

Status QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    return shutdown_ ||
           (queue_.empty() && handoff_.empty() && running_.empty() &&
            n_executing_ == 0 && n_completing_ == 0);
  });
  if (shutdown_) return Status::FailedPrecondition("scheduler shut down");
  return Status::OK();
}

void QueryScheduler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!shutdown_) {
      shutdown_ = true;
      paused_ = false;
      while (!queue_.empty()) {
        std::unique_ptr<Entry> entry = std::move(queue_.front());
        queue_.pop_front();
        CompleteLocked(std::move(entry),
                       Status::Cancelled("query scheduler shutdown"), lock);
      }
      PublishGaugesLocked();
    }
  }
  dispatch_cv_.notify_all();
  work_cv_.notify_all();
  idle_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

size_t QueryScheduler::NumQueued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

size_t QueryScheduler::NumRunning() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_.size();
}

int QueryScheduler::peak_running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_running_;
}

std::vector<int64_t> QueryScheduler::dispatch_order() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dispatch_order_;
}

uint64_t QueryScheduler::preemptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return preemptions_;
}

OverloadSignals QueryScheduler::SignalsLocked() const {
  OverloadSignals signals;
  if (options_.max_queue_depth > 0)
    signals.queue_frac = static_cast<double>(queue_.size()) /
                         static_cast<double>(options_.max_queue_depth);
  if (options_.memory_pages_budget > 0)
    signals.mem_frac = mem_in_use_ / options_.memory_pages_budget;
  return signals;
}

// --- completion ------------------------------------------------------------

void QueryScheduler::CompleteLocked(std::unique_ptr<Entry> entry,
                                    StatusOr<SqlResult> result,
                                    std::unique_lock<std::mutex>& lock) {
  if (result.ok()) {
    if (m_completed_ != nullptr) m_completed_->Increment();
  } else {
    StatusCode code = result.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      if (m_cancelled_ != nullptr) m_cancelled_->Increment();
    } else if (m_failed_ != nullptr) {
      m_failed_->Increment();
    }
  }
  // Feed the health state machine. Cancellations are the user's doing and
  // say nothing about machine health; deadline misses under load do, and
  // count as failures. Breaker fast-fails count too: an open breaker is
  // driven by its own probes (not by admission decisions), so a query the
  // breaker refused is real evidence the domain is still sick — without
  // it the controller goes blind exactly when the breaker is doing its
  // job. Admission sheds never reach here, so shedding cannot feed
  // itself.
  if (!shutdown_) {
    StatusCode code = result.ok() ? StatusCode::kOk : result.status().code();
    if (code != StatusCode::kCancelled) {
      const double total_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        entry->enqueued)
              .count();
      overload_.RecordOutcome(!result.ok(), total_seconds);
      overload_.Evaluate(SignalsLocked());
    }
  }
  PublishGaugesLocked();

  std::shared_ptr<ServeTicket::State> state = std::move(entry->state);
  std::function<void(const Status&)> on_complete =
      std::move(entry->request.on_complete);
  std::shared_ptr<QueryLifecycle> lifecycle =
      std::move(entry->request.lifecycle);
  Status status = result.ok() ? Status::OK() : result.status();
  entry.reset();

  // Fire the callback, then resolve the ticket, with the scheduler
  // unlocked so waiters and callbacks never observe the mutex held. The
  // callback runs first so that once Wait() returns, every completion
  // side effect (session accounting included) has already happened.
  ++n_completing_;
  lock.unlock();
  // Close the span tree before waiters are released: a thread returning
  // from Wait() can immediately inspect the trace / slow-query log.
  if (lifecycle != nullptr) lifecycle->OnResolved(status);
  if (on_complete) on_complete(status);
  {
    std::lock_guard<std::mutex> ticket_lock(state->mutex);
    state->result = std::move(result);
    state->done = true;
  }
  state->cv.notify_all();
  lock.lock();
  --n_completing_;
  idle_cv_.notify_all();
}

void QueryScheduler::SweepExpiredLocked(std::unique_lock<std::mutex>& lock) {
  bool removed = true;
  while (removed && !shutdown_) {
    removed = false;
    for (size_t i = 0; i < queue_.size(); ++i) {
      CancellationToken* token = queue_[i]->request.cancel;
      if (token == nullptr) continue;
      Status status = token->Check();
      if (status.ok()) continue;
      std::unique_ptr<Entry> entry = std::move(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<long>(i));
      if (status.code() == StatusCode::kDeadlineExceeded &&
          m_rejected_deadline_ != nullptr)
        m_rejected_deadline_->Increment();
      EmitResilienceEvent(options_.obs, "serve.expired_in_queue", -1.0,
                          entry->id);
      // The job never ran: no operator was opened for this query.
      CompleteLocked(std::move(entry), status, lock);
      removed = true;
      break;  // CompleteLocked dropped the lock; indices may have shifted.
    }
  }
}

// --- grant computation -----------------------------------------------------

int QueryScheduler::GrantParallelismLocked(const TaskProfile& cand) const {
  const MachineConfig& machine = options_.machine;
  double free_cpus =
      std::max(1.0, static_cast<double>(machine.num_cpus) - cpus_in_use_);

  double x;
  if (running_.empty()) {
    // Alone on the machine: the §2.2 intra-operation limit applies.
    x = MaxParallelism(cand, machine);
  } else {
    // Aggregate the running queries into one pseudo-task and solve the
    // §2.3 balance point between it and the candidate.
    TaskProfile agg;
    agg.name = "running-aggregate";
    for (const auto& [id, info] : running_) {
      agg.seq_time += info.estimate.seq_time;
      agg.total_ios += info.estimate.total_ios;
      if (info.estimate.pattern == IoPattern::kRandom)
        agg.pattern = IoPattern::kRandom;
    }
    agg.seq_time = std::max(agg.seq_time, 1e-9);
    BalancePoint bp = SolveBalance(cand, agg, machine);
    if (bp.valid) {
      x = bp.xi;
    } else if (IsIoBound(cand, machine)) {
      x = MaxParallelism(cand, machine);
    } else {
      x = free_cpus;
    }
  }
  x = std::min(x, free_cpus);
  return std::max(1, static_cast<int>(std::lround(std::floor(x + 0.5))));
}

double QueryScheduler::GrantedIoRate(const TaskProfile& cand,
                                     int parallelism) const {
  double demanded = cand.io_rate() * parallelism;
  double ceiling = options_.machine.single_stream_bandwidth(
      cand.pattern, static_cast<double>(parallelism));
  return std::min(demanded, ceiling);
}

int QueryScheduler::PickNextLocked(ExecGrant* grant) {
  const auto now = std::chrono::steady_clock::now();

  // Candidate order: strict priority, then weighted fair share (least
  // served session first), then FIFO by id.
  std::vector<size_t> order(queue_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Entry& ea = *queue_[a];
    const Entry& eb = *queue_[b];
    if (ea.request.priority != eb.request.priority)
      return ea.request.priority > eb.request.priority;
    double wa = served_work_.count(ea.request.session_id)
                    ? served_work_.at(ea.request.session_id)
                    : 0.0;
    double wb = served_work_.count(eb.request.session_id)
                    ? served_work_.at(eb.request.session_id)
                    : 0.0;
    if (wa != wb) return wa < wb;
    return ea.id < eb.id;
  });

  // The overload controller shrinks the effective budgets while unhealthy.
  const double mem_budget =
      options_.memory_pages_budget * overload_.mem_scale();
  const double io_budget = io_budget_ * overload_.io_scale();

  for (size_t idx : order) {
    Entry& entry = *queue_[idx];
    const TaskProfile& est = entry.request.estimate;
    bool degrade = false;

    // Memory admission against the global page budget.
    if (mem_budget > 0 && est.memory_pages > 0) {
      double remaining = mem_budget - mem_in_use_;
      if (est.memory_pages > remaining) {
        if (est.memory_pages > mem_budget) {
          // Never fits even on an idle system: degrade immediately.
          degrade = true;
        } else if (!entry.mem_blocked) {
          entry.mem_blocked = true;
          entry.mem_blocked_since = now;
          continue;  // wait a beat for pages to free up
        } else if (std::chrono::duration<double>(now -
                                                 entry.mem_blocked_since)
                       .count() >= options_.degrade_wait_seconds) {
          // The wait expired. Emergency reclaim first: a strictly
          // higher-priority waiter may evict the lowest-priority running
          // query instead of degrading itself to the spill path.
          if (TryPreemptLocked(entry)) {
            entry.mem_blocked_since = now;  // wait for the unwind
            continue;
          }
          degrade = true;
        } else {
          continue;
        }
      } else {
        entry.mem_blocked = false;
      }
    }

    // Disk admission: an io-bound query joining a saturated array would
    // only add seek interference — hold it until bandwidth frees up.
    if (!degrade && !running_.empty() && io_in_use_ >= io_budget &&
        IsIoBound(est, options_.machine)) {
      continue;
    }

    *grant = ExecGrant();
    grant->cancel = entry.request.cancel;
    if (degrade) {
      grant->parallelism = 1;
      grant->degrade_to_spill = true;
      grant->memory_pages = 0.0;
    } else {
      grant->parallelism = GrantParallelismLocked(est);
      grant->memory_pages = est.memory_pages;
    }
    return static_cast<int>(idx);
  }
  return -1;
}

bool QueryScheduler::TryPreemptLocked(const Entry& cand) {
  if (!options_.enable_preemption) return false;
  // One reclaim in flight at a time: wait for the victim to unwind and
  // release its pages before deciding whether another eviction is needed.
  for (const auto& [id, info] : running_)
    if (info.preempted) return false;

  // Victim: the lowest-priority running query holding pages, strictly
  // below the candidate's priority, cancellable, and not already evicted
  // past its preemption allowance.
  int64_t victim_id = -1;
  const RunningInfo* victim = nullptr;
  for (const auto& [id, info] : running_) {
    if (info.cancel == nullptr || info.memory_pages <= 0) continue;
    if (info.priority >= cand.request.priority) continue;
    if (info.preempt_count >= options_.max_preemptions) continue;
    if (victim == nullptr || info.priority < victim->priority) {
      victim_id = id;
      victim = &info;
    }
  }
  if (victim == nullptr) return false;

  const double mem_budget =
      options_.memory_pages_budget * overload_.mem_scale();
  double remaining = mem_budget - mem_in_use_;
  // Only evict when the reclaim actually lets the candidate fit.
  if (cand.request.estimate.memory_pages > remaining + victim->memory_pages)
    return false;

  if (!running_[victim_id].cancel->Preempt(
          StrFormat("preempted for memory reclaim (query %lld)",
                    static_cast<long long>(cand.id))))
    return false;  // already terminal: the worker will reap it shortly
  running_[victim_id].preempted = true;
  ++preemptions_;
  if (m_preempted_ != nullptr) m_preempted_->Increment();
  EmitResilienceEvent(
      options_.obs, "serve.preempt", -1.0, victim_id,
      {{"victim", victim_id},
       {"for", cand.id},
       {"victim_pages", running_[victim_id].memory_pages}});
  return true;
}

// --- dispatcher / workers --------------------------------------------------

void QueryScheduler::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_) return;
    SweepExpiredLocked(lock);
    if (shutdown_) return;

    bool dispatched = false;
    // While degraded/shedding the controller shrinks the effective
    // concurrency so the machine drains instead of thrashing.
    const int effective_concurrent = std::max(
        1, static_cast<int>(std::lround(options_.max_concurrent *
                                        overload_.cpu_scale())));
    while (!paused_ && !queue_.empty() &&
           running_.size() + handoff_.size() <
               static_cast<size_t>(effective_concurrent)) {
      ExecGrant grant;
      int idx = PickNextLocked(&grant);
      if (idx < 0) break;

      std::unique_ptr<Entry> entry = std::move(queue_[static_cast<size_t>(idx)]);
      queue_.erase(queue_.begin() + idx);
      const TaskProfile& est = entry->request.estimate;

      RunningInfo info;
      info.estimate = est;
      info.parallelism = grant.parallelism;
      info.memory_pages = grant.memory_pages;
      info.io_rate = GrantedIoRate(est, grant.parallelism);
      info.cancel = entry->request.cancel;
      info.priority = entry->request.priority;
      info.preempt_count = entry->preemptions;
      cpus_in_use_ += grant.parallelism;
      mem_in_use_ += info.memory_pages;
      io_in_use_ += info.io_rate;
      running_[entry->id] = info;

      grant.query_id = entry->id;
      grant.io_rate = info.io_rate;
      grant.queue_wait_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        entry->enqueued)
              .count();
      grant.lifecycle = entry->request.lifecycle.get();

      served_work_[entry->request.session_id] +=
          est.seq_time / entry->request.weight;
      dispatch_order_.push_back(entry->id);
      if (m_dispatched_ != nullptr) m_dispatched_->Increment();
      if (grant.degrade_to_spill) {
        if (m_degraded_ != nullptr) m_degraded_->Increment();
        EmitResilienceEvent(options_.obs, "serve.degrade_spill", -1.0,
                            entry->id);
      }
      if (h_queue_wait_ != nullptr)
        h_queue_wait_->Observe(grant.queue_wait_seconds);
      if (entry->request.lifecycle != nullptr) {
        GrantSnapshot snapshot;
        snapshot.parallelism = grant.parallelism;
        snapshot.memory_pages = grant.memory_pages;
        snapshot.io_rate = info.io_rate;
        snapshot.degraded = grant.degrade_to_spill;
        entry->request.lifecycle->OnGrant(snapshot);
      }
      handoff_.emplace_back(std::move(entry), grant);
      PublishGaugesLocked();
      work_cv_.notify_one();
      dispatched = true;
    }
    if (dispatched) continue;

    // Nothing to do right now: sleep until the earliest queued deadline or
    // memory-degrade timer, or until a submit/completion wakes us.
    int64_t wake_ns = -1;
    for (const std::unique_ptr<Entry>& e : queue_) {
      if (e->request.cancel != nullptr) {
        int64_t dn = e->request.cancel->deadline_ns();
        if (dn >= 0 && (wake_ns < 0 || dn < wake_ns)) wake_ns = dn;
      }
      if (e->mem_blocked) {
        int64_t dn = SteadyNs(e->mem_blocked_since) +
                     static_cast<int64_t>(options_.degrade_wait_seconds * 1e9);
        if (wake_ns < 0 || dn < wake_ns) wake_ns = dn;
      }
    }
    if (wake_ns >= 0) {
      int64_t delta = std::max<int64_t>(wake_ns - CancellationToken::NowNs(),
                                        1000000);  // >= 1 ms
      dispatch_cv_.wait_for(lock, std::chrono::nanoseconds(delta));
    } else {
      dispatch_cv_.wait(lock);
    }
  }
}

void QueryScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !handoff_.empty(); });
    if (handoff_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::unique_ptr<Entry> entry = std::move(handoff_.front().first);
    ExecGrant grant = handoff_.front().second;
    handoff_.pop_front();
    ++n_executing_;
    peak_running_ = std::max(peak_running_, n_executing_);
    PublishGaugesLocked();

    lock.unlock();
    if (entry->request.lifecycle != nullptr)
      entry->request.lifecycle->OnExecStart();
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<SqlResult> result = entry->request.job(grant);
    const double run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (entry->request.lifecycle != nullptr)
      entry->request.lifecycle->OnExecEnd();
    lock.lock();

    --n_executing_;
    bool was_preempted = false;
    auto it = running_.find(entry->id);
    if (it != running_.end()) {
      cpus_in_use_ -= it->second.parallelism;
      mem_in_use_ -= it->second.memory_pages;
      io_in_use_ -= it->second.io_rate;
      was_preempted = it->second.preempted;
      running_.erase(it);
    }
    if (h_run_seconds_ != nullptr) h_run_seconds_->Observe(run_seconds);

    // A query evicted for memory reclaim unwound with Cancelled; if no
    // real cancellation raced in, re-arm its token and put it back in the
    // queue instead of failing it. A preempted query that managed to
    // finish anyway just completes.
    const bool requeue =
        was_preempted && !shutdown_ && !result.ok() &&
        result.status().code() == StatusCode::kCancelled &&
        entry->request.cancel != nullptr &&
        entry->request.cancel->ResetPreempted();
    if (requeue) {
      ++entry->preemptions;
      entry->mem_blocked = false;
      if (entry->request.lifecycle != nullptr)
        entry->request.lifecycle->OnPreempted();
      EmitResilienceEvent(options_.obs, "serve.requeued", -1.0, entry->id,
                          {{"preemptions", entry->preemptions}});
      queue_.push_back(std::move(entry));
      PublishGaugesLocked();
    } else {
      CompleteLocked(std::move(entry), std::move(result), lock);
    }
    dispatch_cv_.notify_all();
  }
}

}  // namespace xprs
