// ServingEngine: a thread-safe, multi-session front door over SqlEngine.
//
// Where SqlEngine executes one statement for one caller, the serving
// engine runs a workload: clients open sessions, submit SQL concurrently,
// and every statement flows through the QueryScheduler's admission control
// before it touches an operator. The engine owns the shared machinery one
// server process would own once — the buffer pool (with a soft pin limit
// so concurrent queries backpressure instead of deadlocking on frames),
// the spill disk for degraded queries, and the scheduler's worker pool —
// and hands each admitted query an ExecContext assembled from its grant:
// serial execution at parallelism 1, the parallel master at higher
// degrees, spilling operators when the scheduler degraded the query to
// fit the memory budget.
//
// Sessions are cheap handles: they carry fair-share weight and priority,
// track their in-flight queries, and can cancel them in one call. Each
// submitted statement gets its own CancellationToken (deadline optional);
// the token is owned by the returned SubmittedQuery and kept alive by the
// job closure, so dropping the handle early never leaves the executor
// with a dangling token.

#ifndef XPRS_SERVE_SERVING_ENGINE_H_
#define XPRS_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "resilience/retry.h"
#include "serve/overload.h"
#include "serve/query_scheduler.h"
#include "sql/engine.h"
#include "storage/buffer_pool.h"

namespace xprs {

class ServingEngine;

/// Per-statement options.
struct QueryOptions {
  /// Deadline in milliseconds from submission; 0 = none. Applies while
  /// queued too: a deadline that fires before admission rejects the query
  /// without running it.
  int64_t deadline_ms = 0;
  /// Allow the scheduler to run the statement through the parallel master
  /// when it grants parallelism > 1.
  bool allow_parallel = true;
  TreeShape shape = TreeShape::kBushy;
  /// Caller-provided replay seed recorded on poison-log entries when the
  /// statement ends up quarantined (0 = none). Workload drivers pass their
  /// generator seed so a poisoned query is reproducible offline.
  uint64_t replay_seed = 0;
  /// Optional completion hook, fired exactly once on a scheduler thread
  /// when the query resolves (any outcome), strictly before ticket
  /// waiters are released. Must not call back into the serving engine.
  /// The open-loop bench uses this to timestamp completions without a
  /// waiter thread per query.
  std::function<void(const Status&)> on_complete;
};

/// Handle on one submitted statement. The token may be used to cancel the
/// query from another thread; the ticket resolves when it completes.
struct SubmittedQuery {
  ServeTicket ticket;
  std::shared_ptr<CancellationToken> cancel;
};

/// One client session. Obtained from ServingEngine::OpenSession; safe to
/// use from multiple threads.
class ServingSession : public std::enable_shared_from_this<ServingSession> {
 public:
  /// Enqueues `sql` for scheduling; returns immediately. Parse and bind
  /// errors, queue-full rejections and pre-expired deadlines surface
  /// synchronously; everything later resolves through the ticket.
  StatusOr<SubmittedQuery> Submit(const std::string& sql,
                                  const QueryOptions& options = QueryOptions());

  /// Submit + Wait.
  StatusOr<SqlResult> Execute(const std::string& sql,
                              const QueryOptions& options = QueryOptions());

  /// Cancels every in-flight query of this session.
  void CancelAll();

  int64_t id() const { return id_; }
  /// Queries submitted but not yet resolved.
  int64_t num_outstanding() const {
    return submitted_.load() - completed_.load();
  }

 private:
  friend class ServingEngine;

  ServingSession(ServingEngine* engine, int64_t id, int priority,
                 double weight, std::string label)
      : engine_(engine),
        id_(id),
        priority_(priority),
        weight_(weight),
        label_(std::move(label)) {}

  void TrackToken(const std::shared_ptr<CancellationToken>& token);

  ServingEngine* const engine_;
  const int64_t id_;
  const int priority_;
  const double weight_;
  const std::string label_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};

  std::mutex tokens_mutex_;
  std::vector<std::weak_ptr<CancellationToken>> tokens_;
};

struct SessionOptions {
  int priority = 0;
  double weight = 1.0;
  std::string label;
};

class ServingEngine {
 public:
  struct Options {
    ServeOptions serve;
    /// Shared buffer pool size; 0 = execute without a pool.
    size_t buffer_pool_frames = 0;
    /// Soft pin limit on the pool (0 = unlimited): queries past it see
    /// retryable ResourceExhausted and back off via fetch_retry.
    size_t soft_pin_frames = 0;
    /// Backoff for buffer-pool backpressure retries.
    RetryPolicy fetch_retry;
    /// In-memory tuple bound for degraded (spilling) queries.
    size_t degrade_spill_tuples = 64;
    /// Template for parallel-master runs; ctx / max_slots / obs are
    /// overridden per grant.
    MasterOptions master;
    /// Slow-query threshold (submit to resolve, seconds). When > 0 every
    /// statement runs with a profile attached and queries over the
    /// threshold land in slow_query_log() with their grant, phase
    /// breakdown and slowest operators. 0 disables the log (and the
    /// profiling overhead).
    double slow_query_seconds = 0.0;
    /// How many operators a slow-query entry names.
    size_t slow_query_top_k = 3;
    /// Whole-statement retry ladder above the per-fragment one: transient
    /// (IoError / ResourceExhausted) failures of the entire query re-run
    /// it on the worker with exponential backoff + jitter before the
    /// failure surfaces or poisons the statement.
    RetryPolicy query_retry;
    /// Seed mixed with the query id for the retry jitter, so backoffs are
    /// decorrelated across queries yet reproducible per run.
    uint64_t retry_jitter_seed = 0x9E3779B97F4A7C15ULL;
    /// Terminal whole-statement failures (across submissions) after which
    /// a statement is quarantined and re-submissions fast-reject without
    /// planning or execution. <= 0 disables the poison log.
    int poison_failures = 3;
    /// Per-fault-domain circuit breakers (storage reads, spill io).
    CircuitBreakerOptions breaker;
  };

  ServingEngine(Catalog* catalog, const MachineConfig& machine,
                const CostModel* model, Options options);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  std::shared_ptr<ServingSession> OpenSession(
      const SessionOptions& options = SessionOptions());

  /// Cancels the session's in-flight queries and forgets it.
  void CloseSession(const std::shared_ptr<ServingSession>& session);

  size_t num_open_sessions() const;

  /// Blocks until every submitted query resolved (see QueryScheduler).
  Status Drain() { return scheduler_.Drain(); }
  void Resume() { scheduler_.Resume(); }

  QueryScheduler& scheduler() { return scheduler_; }
  BufferPool* pool() { return pool_.get(); }
  SqlEngine& sql_engine() { return engine_; }
  /// Entries recorded for queries over Options::slow_query_seconds.
  SlowQueryLog& slow_query_log() { return slow_log_; }
  /// Quarantine records for statements that kept failing (see overload.h).
  PoisonLog& poison_log() { return poison_log_; }
  /// Fault-domain breakers. Tests and the soak harness read their state.
  CircuitBreaker& read_breaker() { return read_breaker_; }
  CircuitBreaker& spill_breaker() { return spill_breaker_; }
  /// The scheduler's health state machine.
  OverloadController& overload() { return scheduler_.overload(); }
  /// Temp array backing degraded (spilling) queries; the soak harness arms
  /// fault injectors on it to exercise the spill-io breaker domain.
  DiskArray* spill_array() { return &spill_array_; }

 private:
  friend class ServingSession;

  StatusOr<SubmittedQuery> SubmitQuery(ServingSession* session,
                                       const std::string& sql,
                                       const QueryOptions& options);

  const Options options_;
  SqlEngine engine_;
  /// Temp files for degraded (spilling) queries.
  DiskArray spill_array_;
  std::unique_ptr<BufferPool> pool_;
  SlowQueryLog slow_log_;
  PoisonLog poison_log_;
  CircuitBreaker read_breaker_;
  CircuitBreaker spill_breaker_;

  mutable std::mutex sessions_mutex_;
  int64_t next_session_id_ = 1;
  std::map<int64_t, std::shared_ptr<ServingSession>> sessions_;

  /// Declared last: destroyed first, so scheduler shutdown (which waits
  /// for running jobs) happens while the engine/pool are still alive.
  QueryScheduler scheduler_;
};

}  // namespace xprs

#endif  // XPRS_SERVE_SERVING_ENGINE_H_
