#include "serve/lifecycle.h"

#include <algorithm>
#include <utility>

#include "util/str.h"

namespace xprs {

// --- SlowQueryEntry --------------------------------------------------------

std::string SlowQueryEntry::ToJson() const {
  std::string out = StrFormat(
      "{\"query_id\":%lld,\"session_id\":%lld,\"query\":\"%s\","
      "\"status\":\"%s\",\"total_seconds\":%.9g,"
      "\"admission_seconds\":%.9g,\"queue_wait_seconds\":%.9g,"
      "\"exec_seconds\":%.9g,\"drain_seconds\":%.9g,"
      "\"grant\":{\"parallelism\":%d,\"memory_pages\":%.9g,"
      "\"io_rate\":%.9g,\"degraded\":%s},\"top_operators\":[",
      static_cast<long long>(query_id), static_cast<long long>(session_id),
      JsonEscape(query).c_str(), JsonEscape(status).c_str(), total_seconds,
      admission_seconds, queue_wait_seconds, exec_seconds, drain_seconds,
      grant.parallelism, grant.memory_pages, grant.io_rate,
      grant.degraded ? "true" : "false");
  bool first = true;
  for (const SlowQueryOperator& op : top_operators) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("{\"label\":\"%s\",\"seconds\":%.9g,\"tuples_out\":%llu}",
                     JsonEscape(op.label).c_str(), op.seconds,
                     static_cast<unsigned long long>(op.tuples_out));
  }
  out += "]}";
  return out;
}

// --- SlowQueryLog ----------------------------------------------------------

SlowQueryLog::SlowQueryLog(double threshold_seconds, size_t top_k)
    : threshold_seconds_(threshold_seconds), top_k_(top_k) {}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(entry));
}

std::vector<SlowQueryEntry> SlowQueryLog::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string SlowQueryLog::DumpJsonLines() const {
  std::vector<SlowQueryEntry> snapshot = entries();
  std::string out;
  for (const SlowQueryEntry& entry : snapshot) {
    out += entry.ToJson();
    out += "\n";
  }
  return out;
}

// --- QueryLifecycle --------------------------------------------------------

QueryLifecycle::QueryLifecycle(const Observability& obs, std::string label,
                               int64_t session_id, SlowQueryLog* slow_log)
    : obs_(obs),
      label_(std::move(label)),
      session_id_(session_id),
      slow_log_(slow_log),
      start_seconds_(SpanNowSeconds()),
      root_(obs.trace, "query", "serve", 0),
      admission_(obs.trace, "admission", "serve", 0, root_.id()) {
  if (obs_.metrics != nullptr)
    h_total_ = obs_.metrics->histogram("serve.total_seconds");
  root_.AddArg("query", label_);
  root_.AddArg("session", static_cast<int64_t>(session_id_));
}

QueryLifecycle::~QueryLifecycle() {
  // A lifecycle dropped without a terminal transition (e.g. the submitter
  // bailed before handing it to the scheduler) still closes its spans via
  // the Span destructors; mark it so traces show the abandonment.
  if (!finished_) root_.AddArg("abandoned", true);
}

void QueryLifecycle::OnQueryId(int64_t query_id) {
  query_id_ = query_id;
  root_.set_track(query_id);
  root_.AddArg("query_id", static_cast<int64_t>(query_id));
  admission_.set_track(query_id);
}

void QueryLifecycle::OnEnqueued() {
  enqueued_seconds_ = SpanNowSeconds();
  admission_.EndAt(enqueued_seconds_);
  queue_wait_ = Span(obs_.trace, "queue_wait", "serve", query_id_, root_.id());
  queue_wait_.set_start(enqueued_seconds_);
}

void QueryLifecycle::OnGrant(const GrantSnapshot& grant) {
  grant_ = grant;
  granted_ = true;
  if (!obs_.tracing()) return;
  TraceEvent event;
  event.name = "grant";
  event.category = "serve";
  event.phase = 'i';
  event.timestamp = SpanNowSeconds();
  event.track = query_id_;
  event.args.emplace_back("parallelism", grant.parallelism);
  event.args.emplace_back("memory_pages", grant.memory_pages);
  event.args.emplace_back("io_rate", grant.io_rate);
  event.args.emplace_back("degraded", grant.degraded);
  if (queue_wait_.id() != 0)
    event.args.emplace_back("parent", static_cast<int64_t>(queue_wait_.id()));
  obs_.Emit(std::move(event));
}

void QueryLifecycle::OnExecStart() {
  exec_start_seconds_ = SpanNowSeconds();
  queue_wait_.EndAt(exec_start_seconds_);
  execute_ = Span(obs_.trace, "execute", "serve", query_id_, root_.id());
  execute_.set_start(exec_start_seconds_);
  if (granted_) {
    execute_.AddArg("parallelism", grant_.parallelism);
    if (grant_.degraded) execute_.AddArg("degraded", true);
  }
  executed_ = true;
}

void QueryLifecycle::AttachProfile(
    std::shared_ptr<const QueryProfile> profile) {
  profile_ = std::move(profile);
}

void QueryLifecycle::OnExecEnd() {
  exec_end_seconds_ = SpanNowSeconds();
  execute_.EndAt(exec_end_seconds_);
  drain_ = Span(obs_.trace, "drain", "serve", query_id_, root_.id());
  drain_.set_start(exec_end_seconds_);
}

void QueryLifecycle::OnPreempted() {
  const double now = SpanNowSeconds();
  drain_.AddArg("preempted", true);
  drain_.EndAt(now);
  queue_wait_ = Span(obs_.trace, "queue_wait", "serve", query_id_, root_.id());
  queue_wait_.set_start(now);
  // The re-run drives OnExecStart again; until then the query is queued,
  // so a sweep (shutdown, deadline) closes queue_wait as never-ran.
  executed_ = false;
}

void QueryLifecycle::OnResolved(const Status& status) {
  Finish(status, /*rejected=*/false);
}

void QueryLifecycle::OnRejected(const Status& status) {
  Finish(status, /*rejected=*/true);
}

void QueryLifecycle::Finish(const Status& status, bool rejected) {
  if (finished_) return;
  finished_ = true;
  const double end = SpanNowSeconds();
  const double total = end > start_seconds_ ? end - start_seconds_ : 0.0;

  if (rejected) {
    admission_.AddArg("rejected", true);
    admission_.EndAt(end);
  } else if (!executed_) {
    // Swept from the queue (deadline / cancellation / shutdown) without
    // ever opening an operator.
    queue_wait_.AddArg("never_ran", true);
    queue_wait_.EndAt(end);
    // A query rejected inside Submit after enqueueing never got this far;
    // an un-enqueued admission span is still open on odd paths.
    admission_.EndAt(end);
  } else {
    drain_.EndAt(end);
  }
  root_.AddArg("status", status.ok() ? "ok" : status.ToString());
  root_.EndAt(end);

  if (h_total_ != nullptr) h_total_->Observe(total);

  if (slow_log_ == nullptr || !slow_log_->enabled() ||
      total < slow_log_->threshold_seconds())
    return;

  SlowQueryEntry entry;
  entry.query_id = query_id_;
  entry.session_id = session_id_;
  entry.query = label_;
  entry.status = status.ok() ? "ok" : status.ToString();
  entry.total_seconds = total;
  entry.admission_seconds =
      (enqueued_seconds_ > 0 ? enqueued_seconds_ : end) - start_seconds_;
  if (executed_) {
    entry.queue_wait_seconds = exec_start_seconds_ - enqueued_seconds_;
    entry.exec_seconds = exec_end_seconds_ > 0
                             ? exec_end_seconds_ - exec_start_seconds_
                             : end - exec_start_seconds_;
    entry.drain_seconds =
        exec_end_seconds_ > 0 ? end - exec_end_seconds_ : 0.0;
  } else if (enqueued_seconds_ > 0) {
    entry.queue_wait_seconds = end - enqueued_seconds_;
  }
  entry.grant = grant_;

  if (profile_ != nullptr) {
    std::vector<const OperatorStats*> ops;
    ops.reserve(profile_->operators().size());
    for (const std::unique_ptr<OperatorStats>& op : profile_->operators())
      ops.push_back(op.get());
    std::stable_sort(ops.begin(), ops.end(),
                     [](const OperatorStats* a, const OperatorStats* b) {
                       return a->inclusive_seconds() > b->inclusive_seconds();
                     });
    const size_t k = std::min(slow_log_->top_k(), ops.size());
    for (size_t i = 0; i < k; ++i) {
      SlowQueryOperator op;
      op.label = ops[i]->label;
      op.seconds = ops[i]->inclusive_seconds();
      op.tuples_out = ops[i]->tuples_out.load(std::memory_order_relaxed);
      entry.top_operators.push_back(std::move(op));
    }
  }
  slow_log_->Record(std::move(entry));
}

}  // namespace xprs
