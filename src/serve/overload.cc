#include "serve/overload.h"

#include <algorithm>
#include <utility>

#include "resilience/retry.h"
#include "util/str.h"

namespace xprs {

namespace {

constexpr const char* kBreakerPrefix = "circuit open";
constexpr const char* kPoisonPrefix = "poison quarantine";

}  // namespace

// --- OverloadController -----------------------------------------------------

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "unknown";
}

OverloadController::OverloadController(const OverloadOptions& options,
                                       const Observability& obs)
    : options_(options), obs_(obs), epoch_(std::chrono::steady_clock::now()) {
  if (obs_.metrics != nullptr) {
    g_state_ = obs_.metrics->gauge("overload.state");
    m_transitions_ = obs_.metrics->counter("overload.transitions");
    m_shed_ = obs_.metrics->counter("overload.shed");
    g_state_->Set(0.0);
  }
}

double OverloadController::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void OverloadController::SetMemoryProbe(std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  memory_probe_ = std::move(probe);
}

void OverloadController::RecordOutcome(bool failure, double latency_seconds) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  outcomes_.push_back(failure);
  if (failure) ++window_failures_;
  latencies_.push_back(latency_seconds);
  while (outcomes_.size() > options_.window) {
    if (outcomes_.front()) --window_failures_;
    outcomes_.pop_front();
  }
  while (latencies_.size() > options_.window) latencies_.pop_front();
}

HealthState OverloadController::TargetLocked(const OverloadSignals& signals,
                                             std::string* reason) const {
  double mem_frac = signals.mem_frac;
  if (memory_probe_) mem_frac = std::max(mem_frac, memory_probe_());

  double fault_rate = -1.0;
  if (outcomes_.size() >= options_.min_samples)
    fault_rate = static_cast<double>(window_failures_) /
                 static_cast<double>(outcomes_.size());

  double p95 = -1.0;
  const bool latency_armed =
      options_.degraded_p95_seconds > 0.0 || options_.shedding_p95_seconds > 0.0;
  if (latency_armed && latencies_.size() >= options_.min_samples) {
    std::vector<double> sorted(latencies_.begin(), latencies_.end());
    std::sort(sorted.begin(), sorted.end());
    p95 = sorted[std::min(sorted.size() - 1,
                          static_cast<size_t>(sorted.size() * 0.95))];
  }

  auto over = [&](double value, double threshold) {
    return threshold > 0.0 && value >= 0.0 && value >= threshold;
  };

  if (over(fault_rate, options_.shedding_fault_rate)) {
    *reason = StrFormat("fault_rate %.2f >= %.2f", fault_rate,
                        options_.shedding_fault_rate);
    return HealthState::kShedding;
  }
  if (over(signals.queue_frac, options_.shedding_queue_frac)) {
    *reason = StrFormat("queue %.2f >= %.2f", signals.queue_frac,
                        options_.shedding_queue_frac);
    return HealthState::kShedding;
  }
  if (over(mem_frac, options_.shedding_mem_frac)) {
    *reason = StrFormat("mem %.2f >= %.2f", mem_frac,
                        options_.shedding_mem_frac);
    return HealthState::kShedding;
  }
  if (over(p95, options_.shedding_p95_seconds)) {
    *reason = StrFormat("p95 %.3fs >= %.3fs", p95,
                        options_.shedding_p95_seconds);
    return HealthState::kShedding;
  }

  if (over(fault_rate, options_.degraded_fault_rate)) {
    *reason = StrFormat("fault_rate %.2f >= %.2f", fault_rate,
                        options_.degraded_fault_rate);
    return HealthState::kDegraded;
  }
  if (over(signals.queue_frac, options_.degraded_queue_frac)) {
    *reason = StrFormat("queue %.2f >= %.2f", signals.queue_frac,
                        options_.degraded_queue_frac);
    return HealthState::kDegraded;
  }
  if (over(mem_frac, options_.degraded_mem_frac)) {
    *reason = StrFormat("mem %.2f >= %.2f", mem_frac,
                        options_.degraded_mem_frac);
    return HealthState::kDegraded;
  }
  if (over(p95, options_.degraded_p95_seconds)) {
    *reason = StrFormat("p95 %.3fs >= %.3fs", p95,
                        options_.degraded_p95_seconds);
    return HealthState::kDegraded;
  }
  *reason = "signals clear";
  return HealthState::kHealthy;
}

void OverloadController::TransitionLocked(HealthState to,
                                          const std::string& reason) {
  HealthState from = state();
  if (from == to) return;
  OverloadTransition tr;
  tr.t_seconds = NowSeconds();
  tr.from = from;
  tr.to = to;
  tr.reason = reason;
  transitions_.push_back(tr);
  reached_[static_cast<int>(to)] = true;
  last_transition_seconds_ = tr.t_seconds;
  clean_evals_ = 0;
  state_.store(static_cast<int>(to), std::memory_order_release);
  if (g_state_ != nullptr) g_state_->Set(static_cast<double>(to));
  if (m_transitions_ != nullptr) m_transitions_->Increment();
  EmitResilienceEvent(obs_, StrFormat("overload.%s", HealthStateName(to)),
                      -1.0, 0,
                      {{"from", std::string(HealthStateName(from))},
                       {"to", std::string(HealthStateName(to))},
                       {"reason", reason}});
}

void OverloadController::Evaluate(const OverloadSignals& signals) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string reason;
  HealthState target = TargetLocked(signals, &reason);
  HealthState current = state();

  if (target > current) {
    // Escalation is immediate: the system is on fire, dwell times do not
    // apply.
    TransitionLocked(target, reason);
    return;
  }
  if (current == HealthState::kHealthy) return;

  // Monotone recovery: step down one level at a time, only after the
  // signals stayed below the *current* state's entry bar for
  // recovery_clean_evals consecutive evaluations and the state held for
  // min_dwell_seconds.
  if (target < current) {
    ++clean_evals_;
    const double held = NowSeconds() - last_transition_seconds_;
    if (clean_evals_ >= options_.recovery_clean_evals &&
        held >= options_.min_dwell_seconds) {
      HealthState next = current == HealthState::kShedding
                             ? HealthState::kDegraded
                             : HealthState::kHealthy;
      TransitionLocked(next, StrFormat("recovered after %d clean evals (%s)",
                                       clean_evals_, reason.c_str()));
    }
  } else {
    clean_evals_ = 0;
  }
}

Status OverloadController::AdmissionCheck(int priority) {
  if (!options_.enabled) return Status::OK();
  HealthState current = state();
  if (current == HealthState::kHealthy) return Status::OK();
  int floor = current == HealthState::kShedding
                  ? options_.shed_priority_floor
                  : options_.degraded_priority_floor;
  if (priority >= floor) return Status::OK();
  sheds_.fetch_add(1, std::memory_order_relaxed);
  if (m_shed_ != nullptr) m_shed_->Increment();
  return Status::ResourceExhausted(
      StrFormat("%s: state=%s, priority %d below admission floor %d",
                kShedPrefix, HealthStateName(current), priority, floor));
}

const char* OverloadController::kShedPrefix = "admission shed (overload)";

bool OverloadController::IsOverloadShed(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().rfind(kShedPrefix, 0) == 0;
}

void OverloadController::CountShed() {
  sheds_.fetch_add(1, std::memory_order_relaxed);
  if (m_shed_ != nullptr) m_shed_->Increment();
}

double OverloadController::cpu_scale() const {
  switch (state()) {
    case HealthState::kDegraded:
      return options_.cpu_scale_degraded;
    case HealthState::kShedding:
      return options_.cpu_scale_shedding;
    default:
      return 1.0;
  }
}

double OverloadController::mem_scale() const {
  switch (state()) {
    case HealthState::kDegraded:
      return options_.mem_scale_degraded;
    case HealthState::kShedding:
      return options_.mem_scale_shedding;
    default:
      return 1.0;
  }
}

double OverloadController::io_scale() const {
  switch (state()) {
    case HealthState::kDegraded:
      return options_.io_scale_degraded;
    case HealthState::kShedding:
      return options_.io_scale_shedding;
    default:
      return 1.0;
  }
}

double OverloadController::queue_scale() const {
  return state() == HealthState::kShedding ? options_.queue_scale_shedding
                                           : 1.0;
}

std::vector<OverloadTransition> OverloadController::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

bool OverloadController::reached(HealthState state) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reached_[static_cast<int>(state)];
}

// --- CircuitBreaker ---------------------------------------------------------

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string domain,
                               const CircuitBreakerOptions& options,
                               const Observability& obs)
    : domain_(std::move(domain)),
      options_(options),
      obs_(obs),
      epoch_(std::chrono::steady_clock::now()) {
  if (obs_.metrics != nullptr) {
    m_fast_fail_ = obs_.metrics->counter(
        StrFormat("overload.breaker.%s.fast_fail", domain_.c_str()));
    m_opened_ = obs_.metrics->counter(
        StrFormat("overload.breaker.%s.opened", domain_.c_str()));
  }
}

double CircuitBreaker::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void CircuitBreaker::TransitionLocked(BreakerState to) {
  if (state_ == to) return;
  BreakerState from = state_;
  state_ = to;
  if (to == BreakerState::kOpen) {
    opened_at_seconds_ = NowSeconds();
    ++times_opened_;
    if (m_opened_ != nullptr) m_opened_->Increment();
  }
  if (to != BreakerState::kHalfOpen) half_open_successes_ = 0;
  EmitResilienceEvent(obs_,
                      StrFormat("overload.breaker.%s", domain_.c_str()), -1.0,
                      0,
                      {{"from", std::string(BreakerStateName(from))},
                       {"to", std::string(BreakerStateName(to))}});
}

Status CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kOpen) {
    if (NowSeconds() - opened_at_seconds_ >= options_.open_seconds) {
      TransitionLocked(BreakerState::kHalfOpen);
    } else {
      ++fast_fails_;
      if (m_fast_fail_ != nullptr) m_fast_fail_->Increment();
      return Status::ResourceExhausted(StrFormat(
          "%s: %s breaker tripped after %d consecutive failures",
          kBreakerPrefix, domain_.c_str(), options_.failure_threshold));
    }
  }
  return Status::OK();
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    if (++half_open_successes_ >= options_.half_open_successes)
      TransitionLocked(BreakerState::kClosed);
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the domain is still sick. Back to a full cooldown.
    TransitionLocked(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    TransitionLocked(BreakerState::kOpen);
  }
}

bool CircuitBreaker::IsBreakerOpen(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().rfind(kBreakerPrefix, 0) == 0;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t CircuitBreaker::fast_fails() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fast_fails_;
}

uint64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return times_opened_;
}

// --- PoisonLog --------------------------------------------------------------

std::string PoisonEntry::ToJson() const {
  return StrFormat(
      "{\"query\":\"%s\",\"session_id\":%lld,\"failures\":%d,"
      "\"attempts\":%d,\"last_status\":\"%s\",\"grant\":{"
      "\"parallelism\":%d,\"memory_pages\":%.9g,\"io_rate\":%.9g,"
      "\"degraded\":%s},\"seed\":%llu,\"quarantined\":%s,\"rejected\":%llu}",
      JsonEscape(query).c_str(), static_cast<long long>(session_id), failures,
      attempts, JsonEscape(last_status).c_str(), last_grant.parallelism,
      last_grant.memory_pages, last_grant.io_rate,
      last_grant.degraded ? "true" : "false",
      static_cast<unsigned long long>(seed), quarantined ? "true" : "false",
      static_cast<unsigned long long>(rejected));
}

PoisonLog::PoisonLog(int quarantine_failures, const Observability& obs)
    : quarantine_failures_(quarantine_failures), obs_(obs) {
  if (obs_.metrics != nullptr) {
    m_quarantined_ = obs_.metrics->counter("overload.poison.quarantined");
    m_rejected_ = obs_.metrics->counter("overload.poison.rejected");
  }
}

bool PoisonLog::RecordFailure(const std::string& sql, int64_t session_id,
                              const GrantSnapshot& grant, const Status& status,
                              int attempts, uint64_t seed) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  PoisonEntry* entry = nullptr;
  for (PoisonEntry& e : entries_)
    if (e.query == sql) {
      entry = &e;
      break;
    }
  if (entry == nullptr) {
    entries_.emplace_back();
    entry = &entries_.back();
    entry->query = sql;
  }
  entry->session_id = session_id;
  ++entry->failures;
  entry->attempts += attempts;
  entry->last_status = status.ToString();
  entry->last_grant = grant;
  if (seed != 0) entry->seed = seed;
  if (!entry->quarantined && entry->failures >= quarantine_failures_) {
    entry->quarantined = true;
    if (m_quarantined_ != nullptr) m_quarantined_->Increment();
    EmitResilienceEvent(obs_, "overload.poison_quarantine", -1.0, session_id,
                        {{"query", sql},
                         {"failures", static_cast<int64_t>(entry->failures)}});
    return true;
  }
  return false;
}

bool PoisonLog::IsQuarantined(const std::string& sql) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const PoisonEntry& e : entries_)
    if (e.quarantined && e.query == sql) return true;
  return false;
}

Status PoisonLog::RejectIfQuarantined(const std::string& sql) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  for (PoisonEntry& e : entries_) {
    if (!e.quarantined || e.query != sql) continue;
    ++e.rejected;
    if (m_rejected_ != nullptr) m_rejected_->Increment();
    return Status::FailedPrecondition(
        StrFormat("%s: statement failed %d times and is quarantined "
                  "(last: %s)",
                  kPoisonPrefix, e.failures, e.last_status.c_str()));
  }
  return Status::OK();
}

bool PoisonLog::IsPoisonReject(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind(kPoisonPrefix, 0) == 0;
}

std::vector<PoisonEntry> PoisonLog::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

size_t PoisonLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t PoisonLog::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const PoisonEntry& e : entries_)
    if (e.quarantined) ++n;
  return n;
}

std::string PoisonLog::DumpJsonLines() const {
  std::vector<PoisonEntry> snapshot = entries();
  std::string out;
  for (const PoisonEntry& entry : snapshot) {
    out += entry.ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace xprs
