#include "serve/serving_engine.h"

#include <algorithm>
#include <utility>

namespace xprs {

// --- ServingSession --------------------------------------------------------

StatusOr<SubmittedQuery> ServingSession::Submit(const std::string& sql,
                                                const QueryOptions& options) {
  return engine_->SubmitQuery(this, sql, options);
}

StatusOr<SqlResult> ServingSession::Execute(const std::string& sql,
                                            const QueryOptions& options) {
  XPRS_ASSIGN_OR_RETURN(SubmittedQuery submitted, Submit(sql, options));
  return submitted.ticket.Wait();
}

void ServingSession::CancelAll() {
  std::vector<std::shared_ptr<CancellationToken>> live;
  {
    std::lock_guard<std::mutex> lock(tokens_mutex_);
    for (const std::weak_ptr<CancellationToken>& weak : tokens_)
      if (std::shared_ptr<CancellationToken> token = weak.lock())
        live.push_back(std::move(token));
    tokens_.clear();
  }
  for (const std::shared_ptr<CancellationToken>& token : live)
    token->Cancel("session cancelled");
}

void ServingSession::TrackToken(
    const std::shared_ptr<CancellationToken>& token) {
  std::lock_guard<std::mutex> lock(tokens_mutex_);
  // Prune resolved queries' tokens so the list tracks in-flight work only.
  tokens_.erase(std::remove_if(tokens_.begin(), tokens_.end(),
                               [](const std::weak_ptr<CancellationToken>& w) {
                                 return w.expired();
                               }),
                tokens_.end());
  tokens_.push_back(token);
}

// --- ServingEngine ---------------------------------------------------------

ServingEngine::ServingEngine(Catalog* catalog, const MachineConfig& machine,
                             const CostModel* model, Options options)
    : options_(std::move(options)),
      engine_(catalog, machine, model),
      spill_array_(machine.num_disks, DiskMode::kInstant),
      slow_log_(options_.slow_query_seconds, options_.slow_query_top_k),
      poison_log_(options_.poison_failures, options_.serve.obs),
      read_breaker_("storage_read", options_.breaker, options_.serve.obs),
      spill_breaker_("spill_io", options_.breaker, options_.serve.obs),
      scheduler_(options_.serve) {
  if (options_.buffer_pool_frames > 0) {
    pool_ = std::make_unique<BufferPool>(catalog->disk_array(),
                                         options_.buffer_pool_frames);
    if (options_.soft_pin_frames > 0)
      pool_->SetSoftPinLimit(options_.soft_pin_frames);
    // Buffer-pool pressure feeds the overload controller next to the
    // scheduler's own page accounting.
    scheduler_.overload().SetMemoryProbe([pool = pool_.get()] {
      const size_t frames = pool->num_frames();
      return frames > 0 ? static_cast<double>(pool->PinnedFrames()) /
                              static_cast<double>(frames)
                        : 0.0;
    });
  }
}

ServingEngine::~ServingEngine() {
  // Scheduler shutdown (member destruction) rejects queued queries and
  // waits for running ones; cancel in-flight work first so it is prompt.
  std::vector<std::shared_ptr<ServingSession>> open;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [id, session] : sessions_) open.push_back(session);
    sessions_.clear();
  }
  for (const std::shared_ptr<ServingSession>& session : open)
    session->CancelAll();
}

std::shared_ptr<ServingSession> ServingEngine::OpenSession(
    const SessionOptions& options) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  int64_t id = next_session_id_++;
  double weight = options.weight > 0 ? options.weight : 1.0;
  std::shared_ptr<ServingSession> session(new ServingSession(
      this, id, options.priority, weight, options.label));
  sessions_[id] = session;
  return session;
}

void ServingEngine::CloseSession(
    const std::shared_ptr<ServingSession>& session) {
  if (session == nullptr) return;
  session->CancelAll();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_.erase(session->id());
}

size_t ServingEngine::num_open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

StatusOr<SubmittedQuery> ServingEngine::SubmitQuery(
    ServingSession* session, const std::string& sql,
    const QueryOptions& options) {
  // The lifecycle starts before parse/bind so its admission span covers
  // every cycle spent on the query before the scheduler accepts it.
  std::shared_ptr<QueryLifecycle> lifecycle;
  if (options_.serve.obs.tracing() || slow_log_.enabled()) {
    lifecycle = std::make_shared<QueryLifecycle>(
        options_.serve.obs, sql, session->id(),
        slow_log_.enabled() ? &slow_log_ : nullptr);
  }

  // Quarantined statements fast-reject before the planner even sees them:
  // "never re-admitted" means no parse, no estimate, no queue slot.
  Status poison = poison_log_.RejectIfQuarantined(sql);
  if (!poison.ok()) {
    if (lifecycle != nullptr) lifecycle->OnRejected(poison);
    return poison;
  }

  // Parse, bind and cost synchronously so malformed SQL fails here, not on
  // a worker thread; the estimate drives admission.
  StatusOr<TaskProfile> estimate_or =
      engine_.EstimateProfile(sql, options.shape);
  if (!estimate_or.ok()) {
    if (lifecycle != nullptr) lifecycle->OnRejected(estimate_or.status());
    return estimate_or.status();
  }
  TaskProfile estimate = std::move(*estimate_or);
  estimate.query_id = session->id();
  if (!session->label_.empty()) estimate.name = session->label_;

  auto token = std::make_shared<CancellationToken>();
  if (options.deadline_ms > 0) token->SetDeadlineAfterMs(options.deadline_ms);
  session->TrackToken(token);

  ServeRequest request;
  request.estimate = estimate;
  request.session_id = session->id();
  request.weight = session->weight_;
  request.priority = session->priority_;
  request.cancel = token.get();
  request.label = sql.substr(0, 48);
  request.lifecycle = lifecycle;

  session->submitted_.fetch_add(1, std::memory_order_relaxed);
  // The callback holds a strong reference: the caller may drop (or close)
  // the session the moment its ticket resolves, which happens *before*
  // on_complete fires on the scheduler thread.
  std::shared_ptr<ServingSession> keep = session->shared_from_this();
  std::function<void(const Status&)> user_hook = options.on_complete;
  request.on_complete = [keep, user_hook](const Status& status) {
    keep->completed_.fetch_add(1, std::memory_order_relaxed);
    if (user_hook) user_hook(status);
  };

  // The closure owns the token (keeps it alive past a dropped handle) and
  // shapes execution around the scheduler's grant. With the slow-query
  // log armed, every statement runs through EXPLAIN ANALYZE so an entry
  // can name the operators the time went to.
  const bool allow_parallel = options.allow_parallel;
  const TreeShape shape = options.shape;
  const bool profiled = slow_log_.enabled();
  const uint64_t replay_seed = options.replay_seed;
  const int64_t session_id = session->id();
  request.job = [this, sql, token, shape, allow_parallel, lifecycle, profiled,
                 replay_seed,
                 session_id](const ExecGrant& grant) -> StatusOr<SqlResult> {
    auto run_once = [&]() -> StatusOr<SqlResult> {
      ExecContext ctx;
      ctx.cancel = grant.cancel;
      ctx.obs = options_.serve.obs;
      if (pool_ != nullptr) {
        ctx.pool = pool_.get();
        ctx.fetch_retry = &options_.fetch_retry;
      }
      if (grant.degrade_to_spill) {
        ctx.spill.temp_array = &spill_array_;
        ctx.spill.memory_tuples = options_.degrade_spill_tuples;
        return profiled ? engine_.ExplainAnalyze(sql, ctx, shape)
                        : engine_.Execute(sql, ctx, shape);
      }
      if (grant.parallelism > 1 && allow_parallel) {
        MasterOptions master = options_.master;
        master.ctx = ctx;
        master.max_slots = grant.parallelism;
        master.obs = options_.serve.obs;
        return profiled ? engine_.ExplainAnalyzeParallel(sql, master, shape)
                        : engine_.ExecuteParallel(sql, master, shape);
      }
      return profiled ? engine_.ExplainAnalyze(sql, ctx, shape)
                      : engine_.Execute(sql, ctx, shape);
    };

    // Whole-statement retry ladder above the per-fragment one. The breaker
    // for the query's fault domain is consulted before every attempt: an
    // open breaker fast-fails the statement instead of hammering the disk,
    // and that fast-fail is never retried or poisoned.
    CircuitBreaker& breaker =
        grant.degrade_to_spill ? spill_breaker_ : read_breaker_;
    Rng jitter(options_.retry_jitter_seed ^
               static_cast<uint64_t>(grant.query_id));
    StatusOr<SqlResult> result = Status::Internal("query never ran");
    int attempts = 0;
    for (int attempt = 1;; ++attempt) {
      Status gate = breaker.Allow();
      if (!gate.ok()) {
        result = gate;
        break;
      }
      ++attempts;
      result = run_once();
      if (result.ok()) {
        breaker.RecordSuccess();
        break;
      }
      const Status& st = result.status();
      if (st.code() == StatusCode::kIoError) breaker.RecordFailure();
      if (!IsRetryableStatus(st) ||
          attempt >= options_.query_retry.max_attempts ||
          (token != nullptr && token->cancelled()))
        break;
      EmitResilienceEvent(options_.serve.obs, "serve.query_retry", -1.0,
                          grant.query_id,
                          {{"attempt", attempt}, {"status", st.ToString()}});
      Status slept = BackoffSleepMs(
          JitteredBackoffMs(options_.query_retry, attempt, &jitter),
          token.get());
      if (!slept.ok()) {
        result = slept;
        break;
      }
    }

    if (!result.ok()) {
      // Terminal failure: record toward quarantine unless the failure was
      // the user's (cancel/deadline) or shed work (open breaker) — those
      // say nothing about the statement itself.
      const Status& st = result.status();
      if (st.code() != StatusCode::kCancelled &&
          st.code() != StatusCode::kDeadlineExceeded &&
          !CircuitBreaker::IsBreakerOpen(st)) {
        GrantSnapshot snap;
        snap.parallelism = grant.parallelism;
        snap.memory_pages = grant.memory_pages;
        snap.io_rate = grant.io_rate;
        snap.degraded = grant.degrade_to_spill;
        poison_log_.RecordFailure(sql, session_id, snap, st, attempts,
                                  replay_seed);
      }
    }
    if (lifecycle != nullptr && result.ok() && result->profile != nullptr)
      lifecycle->AttachProfile(result->profile);
    return result;
  };

  StatusOr<ServeTicket> ticket = scheduler_.Submit(std::move(request));
  if (!ticket.ok()) {
    // Synchronous reject: the on_complete callback will never fire.
    session->completed_.fetch_add(1, std::memory_order_relaxed);
    return ticket.status();
  }
  SubmittedQuery submitted;
  submitted.ticket = *ticket;
  submitted.cancel = std::move(token);
  return submitted;
}

}  // namespace xprs
