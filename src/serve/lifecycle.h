// QueryLifecycle: end-to-end span tree + slow-query log for one served
// query.
//
// Every query the serving layer touches gets a root span covering its
// whole submit-to-resolve wall time and a chain of child phases that
// partition it:
//
//   admission    synchronous work before the scheduler accepts the query
//                (parse, bind, cost, estimate) — ends when it is enqueued
//   queue_wait   enqueue to dispatcher pickup; the scheduler's grant is
//                recorded inside it as an instant event carrying the
//                decision (parallelism, memory pages, io rate, degraded)
//   execute      the job running on a worker thread
//   drain        execution end to ticket resolution (completion callback,
//                result publication)
//
// Adjacent phases share one boundary timestamp (Span::EndAt), so the
// children tile the root with no uncovered gap — a trace consumer can
// attribute every microsecond of a query's latency to exactly one phase.
// Queries that never execute (swept deadlines, shutdown, synchronous
// rejects) close early with a `never_ran` / `rejected` argument instead of
// fabricating empty execute/drain phases.
//
// Transitions are driven by the scheduler in submission/dispatch order and
// are properly sequenced by its mutex handoffs (submitter -> dispatcher ->
// worker -> completer); the lifecycle itself therefore needs no lock. The
// SlowQueryLog is the exception — workers append concurrently — and takes
// its own mutex per append.

#ifndef XPRS_SERVE_LIFECYCLE_H_
#define XPRS_SERVE_LIFECYCLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/profile.h"
#include "obs/obs.h"
#include "util/status.h"

namespace xprs {

/// What the scheduler decided for a query, as recorded in its trace and
/// slow-query entry.
struct GrantSnapshot {
  int parallelism = 1;
  double memory_pages = 0.0;
  double io_rate = 0.0;
  bool degraded = false;
};

/// One operator line of a slow-query entry (top-k by inclusive time).
struct SlowQueryOperator {
  std::string label;
  double seconds = 0.0;
  uint64_t tuples_out = 0;
};

/// One structured slow-query record: where the time went (phase
/// breakdown), what the scheduler granted, and which operators dominated.
struct SlowQueryEntry {
  int64_t query_id = -1;
  int64_t session_id = 0;
  std::string query;  ///< submitted SQL (or scheduler label)
  std::string status = "ok";
  double total_seconds = 0.0;
  double admission_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  double exec_seconds = 0.0;
  double drain_seconds = 0.0;
  GrantSnapshot grant;
  /// Top-k operators by inclusive wall time; empty when the query ran
  /// without a profile attached.
  std::vector<SlowQueryOperator> top_operators;

  /// One-line JSON object (stable key order).
  std::string ToJson() const;
};

/// Threshold-triggered sink for SlowQueryEntry records. Thread-safe.
class SlowQueryLog {
 public:
  /// Queries slower than `threshold_seconds` (submit to resolve) are
  /// recorded with their top_k slowest operators. threshold <= 0 disables
  /// recording entirely.
  explicit SlowQueryLog(double threshold_seconds = 0.0, size_t top_k = 3);

  bool enabled() const { return threshold_seconds_ > 0.0; }
  double threshold_seconds() const { return threshold_seconds_; }
  size_t top_k() const { return top_k_; }

  void Record(SlowQueryEntry entry);

  std::vector<SlowQueryEntry> entries() const;
  size_t size() const;
  /// All entries, one JSON object per line (a JSONL log).
  std::string DumpJsonLines() const;

 private:
  double threshold_seconds_;
  size_t top_k_;
  mutable std::mutex mutex_;
  std::vector<SlowQueryEntry> entries_;
};

/// The per-query lifecycle tracker. Created by the submitter (the serving
/// engine, or the scheduler itself for direct submissions) and advanced by
/// the scheduler through the transitions below, strictly in order:
///
///   ctor -> OnQueryId -> OnEnqueued -> OnGrant -> OnExecStart
///        -> [AttachProfile] -> OnExecEnd -> OnResolved
///
/// with two early exits: OnRejected (synchronous submit failure) and
/// OnResolved without OnExecStart (swept from the queue).
class QueryLifecycle {
 public:
  /// Starts the root and admission spans now. `label` is the query text
  /// (it ends up in span args and slow-log entries). `slow_log` may be
  /// null; when set and enabled, OnResolved appends an entry for queries
  /// over its threshold.
  QueryLifecycle(const Observability& obs, std::string label,
                 int64_t session_id, SlowQueryLog* slow_log = nullptr);

  QueryLifecycle(const QueryLifecycle&) = delete;
  QueryLifecycle& operator=(const QueryLifecycle&) = delete;
  ~QueryLifecycle();

  /// Scheduler-assigned id; re-targets the spans' track so a viewer groups
  /// the query's phases on one row.
  void OnQueryId(int64_t query_id);
  /// Admission ends, queue wait begins (shared boundary).
  void OnEnqueued();
  /// The dispatcher's decision, recorded as an instant event inside the
  /// queue-wait span.
  void OnGrant(const GrantSnapshot& grant);
  /// Queue wait ends, execution begins (shared boundary).
  void OnExecStart();
  /// The profiled run's stats, for the slow log's top-k operators. Called
  /// by the job between OnExecStart and OnExecEnd.
  void AttachProfile(std::shared_ptr<const QueryProfile> profile);
  /// Execution ends, drain begins (shared boundary).
  void OnExecEnd();
  /// The scheduler evicted the query for memory reclaim and requeued it:
  /// closes the just-opened drain span with a `preempted` argument and
  /// reopens a queue-wait phase. OnGrant/OnExecStart then fire again for
  /// the re-run, so the children still tile the root.
  void OnPreempted();
  /// Terminal: closes whatever phase is open plus the root, observes
  /// serve.total_seconds, and appends a slow-log entry when warranted.
  void OnResolved(const Status& status);
  /// Terminal: the submit failed synchronously (queue full, expired
  /// token); closes admission + root with a `rejected` argument.
  void OnRejected(const Status& status);

  int64_t query_id() const { return query_id_; }
  const GrantSnapshot& grant() const { return grant_; }

 private:
  void Finish(const Status& status, bool rejected);

  Observability obs_;
  const std::string label_;
  const int64_t session_id_;
  SlowQueryLog* const slow_log_;
  Histogram* h_total_ = nullptr;

  int64_t query_id_ = -1;
  GrantSnapshot grant_;
  bool granted_ = false;
  bool executed_ = false;
  bool finished_ = false;
  double start_seconds_ = 0.0;
  double enqueued_seconds_ = 0.0;
  double exec_start_seconds_ = 0.0;
  double exec_end_seconds_ = 0.0;
  std::shared_ptr<const QueryProfile> profile_;

  Span root_;
  Span admission_;
  Span queue_wait_;
  Span execute_;
  Span drain_;
};

}  // namespace xprs

#endif  // XPRS_SERVE_LIFECYCLE_H_
