// QueryScheduler: admission control and dispatch for N concurrent queries.
//
// The paper's two-phase architecture plans one query at a time; this layer
// extends the §2.3 balance machinery from one query to a workload. Queries
// arrive with an admission-time TaskProfile (estimated sequential time,
// total i/o, pattern, working memory) and wait in a priority + weighted
// fair-share queue. A dispatcher thread admits them against three global
// budgets:
//
//   processors   sum of granted parallelism degrees <= N. The grant for a
//                candidate comes from SolveBalance between the candidate
//                and the aggregate of what is already running — the same
//                io/cpu balance point the intra-query scheduler uses,
//                applied across queries.
//   disk i/o     sum of granted io rates (C_i * x_i, capped at the task's
//                single-stream ceiling) <= the array's nominal bandwidth.
//                An io-bound candidate is held back while the disks are
//                saturated rather than admitted to thrash them.
//   memory       sum of working-set pages <= the configured budget. A
//                query that does not fit waits briefly, then is degraded:
//                admitted serial with spill-to-disk operators so its
//                footprint collapses to the spill bound instead of the
//                full hash/sort working set.
//
// Load shedding is explicit: a full queue rejects new work synchronously
// with a distinct ResourceExhausted status (IsAdmissionReject) and a
// serve.rejected.queue_full counter, and a deadline that expires while the
// query is still queued completes it with DeadlineExceeded without ever
// opening an operator. Every transition is published through obs:
// queue-wait and run-time histograms, admitted/rejected/degraded counters,
// queued/running gauges.
//
// Locking: one scheduler mutex guards the queue, the handoff and the
// resource accounting; each ticket has its own mutex + condvar. The
// scheduler mutex is never held while a ticket mutex is taken with user
// code on the stack, and jobs run with no scheduler lock held.

#ifndef XPRS_SERVE_QUERY_SCHEDULER_H_
#define XPRS_SERVE_QUERY_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "resilience/cancellation.h"
#include "serve/lifecycle.h"
#include "serve/overload.h"
#include "sched/balance.h"
#include "sched/machine.h"
#include "sched/task.h"
#include "sql/engine.h"
#include "util/status.h"

namespace xprs {

/// What the scheduler granted an admitted query. The job callback shapes
/// its execution around this: parallelism 1 runs the serial executor,
/// > 1 the parallel master with that many slots; degrade_to_spill asks for
/// memory-bounded spilling operators.
struct ExecGrant {
  int parallelism = 1;
  double memory_pages = 0.0;
  bool degrade_to_spill = false;
  /// The query's cancellation token (also reachable by the submitter);
  /// jobs must thread it into their ExecContext.
  CancellationToken* cancel = nullptr;
  /// Scheduler-assigned query id (matches the ticket's).
  int64_t query_id = -1;
  /// Granted aggregate io rate (io/s) charged against the disk budget.
  double io_rate = 0.0;
  /// How long the query waited between enqueue and dispatch.
  double queue_wait_seconds = 0.0;
  /// The query's lifecycle tracker (null when tracing and the slow-query
  /// log are both off). Jobs may AttachProfile through it; the scheduler
  /// keeps it alive until the query resolves.
  QueryLifecycle* lifecycle = nullptr;
};

/// The work an admitted query runs on a scheduler worker thread.
using ServeJob = std::function<StatusOr<SqlResult>(const ExecGrant&)>;

/// One query submitted for scheduling.
struct ServeRequest {
  ServeJob job;
  /// Admission-time resource estimate (SqlEngine::EstimateProfile).
  TaskProfile estimate;
  /// Session the query belongs to; fair-share is balanced across sessions.
  int64_t session_id = 0;
  /// Fair-share weight: a session with weight 2 receives twice the served
  /// work of a weight-1 session under contention. Must be > 0.
  double weight = 1.0;
  /// Strict priority: higher runs first regardless of fair shares.
  int priority = 0;
  /// Cancellation / deadline token. Nullable. Must outlive the query
  /// (keep it alive until the ticket resolves).
  CancellationToken* cancel = nullptr;
  std::string label;
  /// Fired exactly once when the query completes (any outcome, including
  /// queue rejection at dispatch time — not the synchronous Submit
  /// reject). Runs on a scheduler thread, strictly before ticket waiters
  /// are released, so completion side effects are visible once Wait()
  /// returns; must not call back into the scheduler.
  std::function<void(const Status&)> on_complete;
  /// Lifecycle tracker covering work done before submission (the serving
  /// engine starts it before parse/bind so admission time is attributed).
  /// When absent and tracing is on, the scheduler creates one at Submit.
  /// The scheduler drives every later transition and resolves it exactly
  /// once.
  std::shared_ptr<QueryLifecycle> lifecycle;
};

/// Handle on a submitted query. Cheap to copy; all copies share the result
/// slot. Wait() blocks until the query resolves and may be called from any
/// thread, repeatedly.
class ServeTicket {
 public:
  ServeTicket() = default;

  /// Blocks until the query completes, then returns its result (statuses
  /// propagate: Cancelled, DeadlineExceeded, execution errors).
  StatusOr<SqlResult> Wait() const;

  bool done() const;

  /// Scheduler-assigned query id (dense, in submission order).
  int64_t query_id() const;

  bool valid() const { return state_ != nullptr; }

 private:
  friend class QueryScheduler;

  struct State {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    bool done = false;
    std::optional<StatusOr<SqlResult>> result;
    int64_t id = -1;
  };

  explicit ServeTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

struct ServeOptions {
  MachineConfig machine;
  /// Worker threads, i.e. queries that may execute simultaneously.
  int max_concurrent = 2;
  /// Queue capacity; a Submit beyond it is rejected synchronously.
  size_t max_queue_depth = 64;
  /// Global working-memory budget in 8 KB pages. 0 = unlimited.
  double memory_pages_budget = 0.0;
  /// Aggregate io-rate budget in io/s. 0 = the machine's nominal
  /// bandwidth.
  double io_rate_budget = 0.0;
  /// How long a memory-blocked query waits for pages to free up before
  /// it is degraded to the serial spill path.
  double degrade_wait_seconds = 0.05;
  /// Start with dispatch paused; queries queue until Resume(). Tests use
  /// this to fill the queue deterministically.
  bool start_paused = false;
  /// Overload-control knobs (see serve/overload.h). While the controller
  /// is degraded/shedding the effective cpu/io/memory/queue budgets shrink
  /// by its scale factors and low-priority submissions are shed.
  OverloadOptions overload;
  /// Emergency memory reclaim: when a strictly higher-priority query has
  /// waited past degrade_wait_seconds for pages, preempt (cancel + requeue)
  /// the lowest-priority running query instead of degrading the waiter.
  bool enable_preemption = true;
  /// Times one query may be preempted before it stops being a victim.
  int max_preemptions = 1;
  Observability obs;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(const ServeOptions& options);
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Enqueues a query. Fails synchronously with the admission-reject
  /// status when the queue is full, with the token's status when it is
  /// already cancelled/expired, and with FailedPrecondition after
  /// Shutdown. On success the ticket resolves when the query completes.
  StatusOr<ServeTicket> Submit(ServeRequest request);

  /// Releases a paused scheduler (ServeOptions::start_paused).
  void Resume();

  /// Blocks until every submitted query has resolved.
  Status Drain();

  /// Rejects all queued queries with Cancelled, waits for running ones,
  /// joins the threads. Idempotent; the destructor calls it.
  void Shutdown();

  /// True iff `status` is the scheduler's queue-full admission reject (as
  /// opposed to ResourceExhausted from the storage layer).
  static bool IsAdmissionReject(const Status& status);

  // --- introspection -----------------------------------------------------
  size_t NumQueued() const;
  size_t NumRunning() const;
  /// High-water mark of simultaneously running queries.
  int peak_running() const;
  /// Query ids in the order the dispatcher started them.
  std::vector<int64_t> dispatch_order() const;
  /// The health state machine driving admission under overload.
  OverloadController& overload() { return overload_; }
  const OverloadController& overload() const { return overload_; }
  /// Queries preempted (cancelled + requeued) for memory reclaim so far.
  uint64_t preemptions() const;

 private:
  struct Entry {
    int64_t id = -1;
    ServeRequest request;
    std::shared_ptr<ServeTicket::State> state;
    std::chrono::steady_clock::time_point enqueued;
    /// Set while the entry is parked waiting for memory.
    bool mem_blocked = false;
    std::chrono::steady_clock::time_point mem_blocked_since;
    /// Times this query has been preempted and requeued.
    int preemptions = 0;
  };

  struct RunningInfo {
    TaskProfile estimate;
    int parallelism = 1;
    double memory_pages = 0.0;
    double io_rate = 0.0;
    /// For victim selection during emergency memory reclaim.
    CancellationToken* cancel = nullptr;
    int priority = 0;
    int preempt_count = 0;
    /// Set once this query has been asked to unwind for reclaim.
    bool preempted = false;
  };

  void DispatcherLoop();
  void WorkerLoop();

  // All Locked() helpers require mutex_ held.
  void CompleteLocked(std::unique_ptr<Entry> entry, StatusOr<SqlResult> result,
                      std::unique_lock<std::mutex>& lock);
  /// Sweeps queued entries whose deadline or token already fired;
  /// completes them without running the job.
  void SweepExpiredLocked(std::unique_lock<std::mutex>& lock);
  /// Picks the next admissible entry and computes its grant. Returns the
  /// queue index or -1; fills *grant.
  int PickNextLocked(ExecGrant* grant);
  /// Emergency memory reclaim: asks the lowest-priority running query
  /// (strictly below `cand`'s priority) to unwind so `cand` can fit.
  /// Returns true when a victim was preempted.
  bool TryPreemptLocked(const Entry& cand);
  /// Instantaneous pressure signals for the overload controller.
  OverloadSignals SignalsLocked() const;
  /// Parallelism for `cand` against the currently running aggregate via
  /// the §2.3 balance point.
  int GrantParallelismLocked(const TaskProfile& cand) const;
  double GrantedIoRate(const TaskProfile& cand, int parallelism) const;

  void ResolveMetrics();
  void PublishGaugesLocked();

  const ServeOptions options_;
  const double io_budget_;
  OverloadController overload_;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_cv_;  // dispatcher wakeups
  std::condition_variable work_cv_;      // worker wakeups (handoff)
  std::condition_variable idle_cv_;      // Drain waiters

  bool paused_ = false;
  bool shutdown_ = false;
  int64_t next_id_ = 1;

  std::deque<std::unique_ptr<Entry>> queue_;
  // Dispatcher -> worker handoff: admitted entries with their grants.
  std::deque<std::pair<std::unique_ptr<Entry>, ExecGrant>> handoff_;
  std::map<int64_t, RunningInfo> running_;

  // Resource accounting for admitted queries.
  double cpus_in_use_ = 0.0;
  double mem_in_use_ = 0.0;
  double io_in_use_ = 0.0;

  // Weighted fair queueing: served sequential-time per session, scaled by
  // 1/weight.
  std::map<int64_t, double> served_work_;

  /// Queries whose job is executing on a worker right now (<= running_
  /// size; an admitted entry sits in handoff_ until a worker picks it up).
  int n_executing_ = 0;
  /// Completions mid-flight: CompleteLocked drops the mutex to resolve the
  /// ticket and fire on_complete, and Drain must not report idle until
  /// those callbacks have finished.
  int n_completing_ = 0;
  int peak_running_ = 0;
  uint64_t preemptions_ = 0;
  std::vector<int64_t> dispatch_order_;

  // Metrics (resolved once; null when no registry attached).
  Counter* m_submitted_ = nullptr;
  Counter* m_admitted_ = nullptr;
  Counter* m_rejected_queue_full_ = nullptr;
  Counter* m_rejected_deadline_ = nullptr;
  Counter* m_dispatched_ = nullptr;
  Counter* m_completed_ = nullptr;
  Counter* m_failed_ = nullptr;
  Counter* m_degraded_ = nullptr;
  Counter* m_cancelled_ = nullptr;
  Counter* m_rejected_shed_ = nullptr;
  Counter* m_preempted_ = nullptr;
  Gauge* g_queued_ = nullptr;
  Gauge* g_running_ = nullptr;
  Gauge* g_peak_running_ = nullptr;
  Histogram* h_queue_wait_ = nullptr;
  Histogram* h_run_seconds_ = nullptr;

  std::thread dispatcher_;
  std::vector<std::thread> workers_;
};

}  // namespace xprs

#endif  // XPRS_SERVE_QUERY_SCHEDULER_H_
