// Physical §3 workload construction: relations r(a int4, b text) whose
// tuple width controls the i/o rate of a sequential scan, including the
// calibration relations r_min (b = NULL, most CPU-bound, ~5 io/s) and
// r_max (one 8 KB tuple per page, most IO-bound, ~70 io/s) — plus a scan
// meter that measures a task's (T, D, C) the way the paper did.
//
// Timing model of a *sequential* (single-process) scan:
//   per page:  raw disk service + kPageCpuOverhead + tuples * kTupleCpu
// with raw service from the disk array's accounting (sequential 1/97 s,
// random 1/35 s). The two §3 calibration points pin the constants:
//   r_max:  1/97 + overhead + 1 * tuple_cpu   = 1/70   (70 io/s)
//   r_min:  1/97 + overhead + 400 * tuple_cpu = 1/5    (5 io/s)

#ifndef XPRS_WORKLOAD_RELATIONS_H_
#define XPRS_WORKLOAD_RELATIONS_H_

#include <string>

#include "exec/plan.h"
#include "sched/task.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace xprs {

/// Per-page CPU overhead of a scan (seconds); see header comment.
inline constexpr double kPageCpuOverhead = 0.0138138 - 1.0 / 97.0;
/// Per-tuple qualification cost (seconds).
inline constexpr double kTupleCpu = 0.00046548;

/// Builds a relation named `name` with `num_tuples` tuples of the paper
/// schema; keys drawn uniformly from [0, key_range); the text column is
/// `text_width` bytes. Builds the unclustered index on a and computes
/// stats. A `null_key_fraction` > 0 makes that fraction of keys NULL
/// (exercising the NULL paths of joins, aggregates and the index builder);
/// the default draws no extra random numbers, so existing seeds reproduce
/// bit-identical relations.
StatusOr<Table*> BuildRelation(Catalog* catalog, const std::string& name,
                               uint64_t num_tuples, int text_width,
                               int32_t key_range, Rng* rng,
                               double null_key_fraction = 0.0);

/// r_min: b NULL everywhere -> hundreds of tuples per page (§3).
StatusOr<Table*> BuildRMin(Catalog* catalog, uint64_t num_tuples, Rng* rng);

/// r_max: text sized so exactly one tuple fits a page (§3).
StatusOr<Table*> BuildRMax(Catalog* catalog, uint64_t num_tuples, Rng* rng);

/// Text width whose sequential scan runs at approximately `io_rate` io/s
/// under the timing model (clamped to the feasible [5, 70] band).
int TextWidthForIoRate(double io_rate);

/// Outcome of metering one task.
struct MeasuredProfile {
  double seq_time = 0.0;  ///< modeled single-process elapsed (T)
  double ios = 0.0;       ///< page reads issued (D)
  uint64_t tuples = 0;    ///< tuples processed
  double io_rate() const { return seq_time > 0 ? ios / seq_time : 0.0; }
};

/// Executes a full sequential scan of `table` and reports its measured
/// profile. The disk array must be in kInstant mode (stats are read from
/// its accounting); its stats are reset as a side effect.
StatusOr<MeasuredProfile> MeasureSeqScan(Table* table);

/// Same for an unclustered index scan over `range`.
StatusOr<MeasuredProfile> MeasureIndexScan(Table* table, KeyRange range);

/// Converts a measured profile into a scheduler TaskProfile.
TaskProfile ToTaskProfile(const MeasuredProfile& m, TaskId id,
                          const std::string& name, IoPattern pattern);

}  // namespace xprs

#endif  // XPRS_WORKLOAD_RELATIONS_H_
