#include "workload/tasks.h"

#include <cmath>

#include "util/check.h"
#include "util/str.h"

namespace xprs {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kAllIoBound:
      return "All IO";
    case WorkloadKind::kAllCpuBound:
      return "All CPU";
    case WorkloadKind::kExtremeMix:
      return "Extreme";
    case WorkloadKind::kRandomMix:
      return "Random";
  }
  return "?";
}

namespace {

TaskProfile MakeTask(TaskId id, double rate, double seq_time,
                     IoPattern pattern) {
  TaskProfile t;
  t.id = id;
  t.name = StrFormat("t%lld(%.0fio/s,%s)", static_cast<long long>(id), rate,
                     pattern == IoPattern::kSequential ? "seq" : "rand");
  t.seq_time = seq_time;
  t.total_ios = rate * seq_time;
  t.pattern = pattern;
  t.query_id = id;
  return t;
}

}  // namespace

std::vector<TaskProfile> MakeWorkload(WorkloadKind kind,
                                      const WorkloadOptions& options,
                                      Rng* rng, TaskId id_base) {
  XPRS_CHECK(rng != nullptr);
  XPRS_CHECK_GT(options.num_tasks, 0);
  XPRS_CHECK_GT(options.min_seq_time, 0.0);
  XPRS_CHECK_LE(options.min_seq_time, options.max_seq_time);

  std::vector<TaskProfile> tasks;
  tasks.reserve(options.num_tasks);
  for (int i = 0; i < options.num_tasks; ++i) {
    double rate = 0.0;
    bool io_bound = false;
    switch (kind) {
      case WorkloadKind::kAllIoBound:
        rate = rng->NextDouble(options.io_lo, options.io_hi);
        io_bound = true;
        break;
      case WorkloadKind::kAllCpuBound:
        rate = rng->NextDouble(options.cpu_lo, options.cpu_hi);
        break;
      case WorkloadKind::kExtremeMix:
        // Alternate so the split is exactly half/half.
        if (i % 2 == 0) {
          rate = rng->NextDouble(options.xio_lo, options.xio_hi);
          io_bound = true;
        } else {
          rate = rng->NextDouble(options.xcpu_lo, options.xcpu_hi);
        }
        break;
      case WorkloadKind::kRandomMix:
        rate = rng->NextDouble(options.cpu_lo, options.xio_hi);
        io_bound = rate > options.cpu_hi;
        break;
    }
    double seq_time =
        rng->NextDouble() * (options.max_seq_time - options.min_seq_time) +
        options.min_seq_time;
    IoPattern pattern = IoPattern::kSequential;
    if (io_bound && rng->NextBool(options.index_scan_fraction))
      pattern = IoPattern::kRandom;
    tasks.push_back(MakeTask(id_base + i, rate, seq_time, pattern));
  }
  return tasks;
}

std::vector<TaskProfile> MakeArrivalSequence(WorkloadKind kind,
                                             const WorkloadOptions& options,
                                             double mean_interarrival,
                                             Rng* rng, TaskId id_base) {
  XPRS_CHECK_GT(mean_interarrival, 0.0);
  std::vector<TaskProfile> tasks =
      MakeWorkload(kind, options, rng, id_base);
  double t = 0.0;
  for (auto& task : tasks) {
    task.arrival_time = t;
    // Exponential inter-arrival gaps.
    double u = rng->NextDouble();
    t += -std::log(1.0 - u) * mean_interarrival;
  }
  return tasks;
}

}  // namespace xprs
