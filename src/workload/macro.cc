#include "workload/macro.h"

#include <algorithm>
#include <cmath>

#include "util/str.h"

namespace xprs {

namespace {

struct TableSpec {
  const char* name;
  uint64_t base_rows;
  /// Text payload width in bytes; different widths give the tables
  /// different tuples-per-page and therefore different scan io rates.
  int text_width;
};

// TPC-H-ish cardinality ratios at scale 1 (shrunk 1000x so the default
// bench run stays in the seconds range on one core).
constexpr TableSpec kTables[] = {
    {"lineitem", 6000, 48},
    {"orders", 1500, 32},
    {"part", 200, 64},
    {"customer", 150, 96},
};

int32_t DrawKey(MacroDistribution distribution, int32_t key_range, Rng* rng) {
  switch (distribution) {
    case MacroDistribution::kSkewed: {
      // Power-law: P(key < k) = (k / range)^(1/3); ~50% of the mass lands
      // on the lowest 12% of the domain, giving joins on low keys real
      // build-side skew.
      double u = rng->NextDouble();
      double k = static_cast<double>(key_range) * u * u * u;
      return std::min<int32_t>(key_range - 1, static_cast<int32_t>(k));
    }
    case MacroDistribution::kUniform:
    case MacroDistribution::kNullHeavy:
    default:
      return static_cast<int32_t>(rng->NextUint64(
          static_cast<uint64_t>(key_range)));
  }
}

Status BuildTable(Catalog* catalog, const TableSpec& spec,
                  const MacroWorkloadOptions& options, Rng* rng) {
  XPRS_ASSIGN_OR_RETURN(
      Table * table, catalog->CreateTable(spec.name, Schema::PaperSchema()));
  const uint64_t rows = MacroTableRows(spec.name, options.scale);
  for (uint64_t i = 0; i < rows; ++i) {
    Value key(DrawKey(options.distribution, options.key_range, rng));
    if (options.distribution == MacroDistribution::kNullHeavy &&
        rng->NextBool(0.25))
      key = Value(std::monostate{});
    // Distinct-ish payloads (not one repeated byte) so correctness
    // checksums actually depend on the row contents.
    std::string text =
        StrFormat("%s-%06llu", spec.name,
                  static_cast<unsigned long long>(i % 9973));
    if (static_cast<int>(text.size()) < spec.text_width)
      text.resize(static_cast<size_t>(spec.text_width), 'x');
    XPRS_RETURN_IF_ERROR(
        table->file().Append(Tuple({std::move(key), Value(std::move(text))})));
  }
  XPRS_RETURN_IF_ERROR(table->file().Flush());
  XPRS_RETURN_IF_ERROR(table->BuildIndex(0));
  XPRS_RETURN_IF_ERROR(table->ComputeStats());
  return Status::OK();
}

}  // namespace

const char* MacroDistributionName(MacroDistribution d) {
  switch (d) {
    case MacroDistribution::kUniform:
      return "uniform";
    case MacroDistribution::kSkewed:
      return "skewed";
    case MacroDistribution::kNullHeavy:
      return "null-heavy";
  }
  return "uniform";
}

StatusOr<MacroDistribution> ParseMacroDistribution(const std::string& name) {
  if (name == "uniform") return MacroDistribution::kUniform;
  if (name == "skewed") return MacroDistribution::kSkewed;
  if (name == "null-heavy" || name == "null_heavy")
    return MacroDistribution::kNullHeavy;
  return Status::InvalidArgument(
      StrFormat("unknown distribution '%s' (uniform | skewed | null-heavy)",
                name.c_str()));
}

uint64_t MacroTableRows(const std::string& name, double scale) {
  for (const TableSpec& spec : kTables) {
    if (name == spec.name) {
      double rows = static_cast<double>(spec.base_rows) * std::max(scale, 0.0);
      return std::max<uint64_t>(1, static_cast<uint64_t>(rows));
    }
  }
  return 0;
}

Status BuildMacroTables(Catalog* catalog,
                        const MacroWorkloadOptions& options) {
  if (catalog == nullptr)
    return Status::InvalidArgument("macro workload needs a catalog");
  if (options.key_range < 1)
    return Status::InvalidArgument("key_range must be >= 1");
  Rng rng(options.seed);
  for (const TableSpec& spec : kTables) {
    // Independent stream per table: a scale change in one table does not
    // reshuffle the others.
    Rng table_rng = rng.Fork();
    XPRS_RETURN_IF_ERROR(BuildTable(catalog, spec, options, &table_rng));
  }
  return Status::OK();
}

const std::vector<MacroQuery>& MacroQueryMix() {
  // Constants assume key_range = 100. Names nod to the TPC-H queries the
  // shapes are borrowed from; the dialect (selection / equi-join /
  // aggregate / single GROUP BY) is the limit of the SQL front end.
  static const std::vector<MacroQuery> mix = {
      // --- scan-heavy: full scans, wide ranges, joins, group-bys ---
      {"q1_lineitem_sum", "SELECT sum(a) FROM lineitem WHERE a BETWEEN 0 AND 90",
       false},
      {"q13_orders_by_key", "SELECT count(a) FROM orders GROUP BY a",
       false},
      {"q3_orders_customer",
       "SELECT o.a, c.b FROM orders o, customer c "
       "WHERE o.a = c.a AND c.a < 40",
       false},
      {"q6_lineitem_count", "SELECT count(a) FROM lineitem WHERE a >= 10",
       false},
      {"q14_lineitem_part",
       "SELECT sum(l.a) FROM lineitem l, part p WHERE l.a = p.a AND p.a < 50",
       false},
      // --- index-friendly: narrow ranges / point lookups ---
      {"q6s_lineitem_band",
       "SELECT * FROM lineitem WHERE a BETWEEN 10 AND 14", true},
      {"q_customer_point", "SELECT * FROM customer WHERE a = 7", true},
      {"q_orders_band_min",
       "SELECT min(a) FROM orders WHERE a BETWEEN 3 AND 9", true},
      {"q_part_band", "SELECT b FROM part WHERE a BETWEEN 60 AND 64", true},
  };
  return mix;
}

StatusOr<std::vector<MacroQuery>> MacroMix(const std::string& mix) {
  const std::vector<MacroQuery>& all = MacroQueryMix();
  if (mix == "all") return all;
  if (mix != "scan_heavy" && mix != "index_friendly")
    return Status::InvalidArgument(StrFormat(
        "unknown mix '%s' (scan_heavy | index_friendly | all)", mix.c_str()));
  std::vector<MacroQuery> out;
  for (const MacroQuery& q : all)
    if (q.index_friendly == (mix == "index_friendly")) out.push_back(q);
  return out;
}

}  // namespace xprs
