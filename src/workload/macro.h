// TPC-H-flavored macro workload over the paper schema: four relations at
// TPC-H-ish cardinality ratios (lineitem : orders : part : customer =
// 40 : 10 : 1.3 : 1) with a scale-factor knob, key-distribution variants
// (uniform, skewed, NULL-heavy), and a fixed query mix split into a
// scan-heavy half (full scans, aggregates, joins) and an index-friendly
// half (narrow ranges an unclustered index scan can serve).
//
// Everything is deterministic for a given (scale, distribution, seed), so
// bench_macro's correctness checksums are stable across machines and the
// committed perf baselines compare like against like.

#ifndef XPRS_WORKLOAD_MACRO_H_
#define XPRS_WORKLOAD_MACRO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "util/rng.h"
#include "util/status.h"

namespace xprs {

/// Key distribution of the generated relations.
enum class MacroDistribution {
  kUniform,    ///< keys uniform over [0, key_range)
  kSkewed,     ///< power-law: mass concentrated on low keys (join skew)
  kNullHeavy,  ///< uniform with 25% NULL keys (NULL join/agg paths)
};

const char* MacroDistributionName(MacroDistribution d);
/// Parses "uniform" / "skewed" / "null-heavy".
StatusOr<MacroDistribution> ParseMacroDistribution(const std::string& name);

struct MacroWorkloadOptions {
  /// Scale factor: row counts are base cardinality x scale (min 1 row).
  double scale = 1.0;
  MacroDistribution distribution = MacroDistribution::kUniform;
  /// Key domain [0, key_range); the query mix's constants assume 100.
  int32_t key_range = 100;
  uint64_t seed = 0x3A5C0DE;
};

/// Row count of one macro table at `scale` (name must be one of lineitem,
/// orders, part, customer).
uint64_t MacroTableRows(const std::string& name, double scale);

/// Creates and loads lineitem / orders / part / customer into `catalog`
/// (unclustered index on key + stats, like every workload relation).
Status BuildMacroTables(Catalog* catalog, const MacroWorkloadOptions& options);

/// One query of the mix.
struct MacroQuery {
  std::string name;
  std::string sql;
  /// True when the predicate is selective enough for an index scan; the
  /// scan-heavy mix is the complement.
  bool index_friendly = false;
};

/// The full ordered mix (scan-heavy queries first).
const std::vector<MacroQuery>& MacroQueryMix();

/// "scan_heavy", "index_friendly" or "all".
StatusOr<std::vector<MacroQuery>> MacroMix(const std::string& mix);

}  // namespace xprs

#endif  // XPRS_WORKLOAD_MACRO_H_
