#include "workload/relations.h"

#include <algorithm>
#include <cmath>

#include "exec/executor.h"
#include "util/check.h"
#include "util/str.h"

namespace xprs {

namespace {

// Serialized size of a paper-schema tuple with a text payload of `width`
// bytes: null byte + 4 (int4) + null byte + 4 (length) + width.
constexpr int kTupleMetaBytes = 10;
// Slot array entry per tuple.
constexpr int kSlotBytes = 4;

}  // namespace

StatusOr<Table*> BuildRelation(Catalog* catalog, const std::string& name,
                               uint64_t num_tuples, int text_width,
                               int32_t key_range, Rng* rng,
                               double null_key_fraction) {
  XPRS_CHECK(catalog != nullptr);
  XPRS_CHECK(rng != nullptr);
  XPRS_CHECK_GE(text_width, -1);  // -1 = NULL text
  XPRS_CHECK_GE(key_range, 1);
  XPRS_ASSIGN_OR_RETURN(Table * table,
                        catalog->CreateTable(name, Schema::PaperSchema()));
  for (uint64_t i = 0; i < num_tuples; ++i) {
    Value key(static_cast<int32_t>(rng->NextUint64(key_range)));
    // Guarded so the fraction-0 default consumes no randomness and keeps
    // historical relations bit-identical.
    if (null_key_fraction > 0.0 && rng->NextBool(null_key_fraction))
      key = Value(std::monostate{});
    Value text = text_width < 0
                     ? Value(std::monostate{})
                     : Value(std::string(static_cast<size_t>(text_width), 'b'));
    XPRS_RETURN_IF_ERROR(
        table->file().Append(Tuple({std::move(key), std::move(text)})));
  }
  XPRS_RETURN_IF_ERROR(table->file().Flush());
  XPRS_RETURN_IF_ERROR(table->BuildIndex(0));
  XPRS_RETURN_IF_ERROR(table->ComputeStats());
  return table;
}

StatusOr<Table*> BuildRMin(Catalog* catalog, uint64_t num_tuples, Rng* rng) {
  return BuildRelation(catalog, "r_min", num_tuples, /*text_width=*/-1,
                       /*key_range=*/10000, rng);
}

StatusOr<Table*> BuildRMax(Catalog* catalog, uint64_t num_tuples, Rng* rng) {
  // One tuple per 8 KB page: fill past half the payload so a second tuple
  // can never fit.
  int width = static_cast<int>(MaxTuplePayload()) - kTupleMetaBytes;
  return BuildRelation(catalog, "r_max", num_tuples, width,
                       /*key_range=*/10000, rng);
}

int TextWidthForIoRate(double io_rate) {
  io_rate = std::clamp(io_rate, 5.0, 70.0);
  // 1/C = 1/97 + overhead + tpp * tuple_cpu  ->  tuples per page
  double tpp = (1.0 / io_rate - 1.0 / 97.0 - kPageCpuOverhead) / kTupleCpu;
  tpp = std::max(tpp, 1.0);
  // tpp tuples of (width + meta + slot) bytes fill one page.
  double per_tuple = static_cast<double>(MaxTuplePayload()) / tpp;
  int width = static_cast<int>(per_tuple) - kTupleMetaBytes - kSlotBytes;
  return std::clamp(width, 0,
                    static_cast<int>(MaxTuplePayload()) - kTupleMetaBytes);
}

StatusOr<MeasuredProfile> MeasureSeqScan(Table* table) {
  XPRS_CHECK(table != nullptr);
  // Execute a real pass over the data, then apply the single-process
  // timing model: a striped sequential scan is all-sequential service.
  ExecContext ctx;
  SeqScanOp scan(table, Predicate(), ctx);
  auto rows = Drain(&scan);
  if (!rows.ok()) return rows.status();

  MeasuredProfile m;
  m.ios = static_cast<double>(scan.pages_read());
  m.tuples = rows->size();
  m.seq_time = m.ios * (1.0 / 97.0 + kPageCpuOverhead) +
               static_cast<double>(m.tuples) * kTupleCpu;
  return m;
}

StatusOr<MeasuredProfile> MeasureIndexScan(Table* table, KeyRange range) {
  XPRS_CHECK(table != nullptr);
  if (table->index() == nullptr)
    return Status::FailedPrecondition("no index on " + table->name());
  ExecContext ctx;
  IndexScanOp scan(table, Predicate(), range, ctx);
  auto rows = Drain(&scan);
  if (!rows.ok()) return rows.status();
  MeasuredProfile m;
  m.tuples = rows->size();
  // One random page fetch per entry.
  m.ios = static_cast<double>(scan.tuples_fetched());
  m.seq_time = m.ios * (1.0 / 35.0) + m.tuples * kTupleCpu;
  return m;
}

TaskProfile ToTaskProfile(const MeasuredProfile& m, TaskId id,
                          const std::string& name, IoPattern pattern) {
  TaskProfile t;
  t.id = id;
  t.name = name;
  t.seq_time = std::max(m.seq_time, 1e-9);
  t.total_ios = m.ios;
  t.pattern = pattern;
  t.query_id = id;
  return t;
}

}  // namespace xprs
