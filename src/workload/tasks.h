// Task-level workload generator reproducing the §3 experiment setup.
//
// The paper's workloads are sets of ten one-variable selection tasks
// (sequential or unclustered-index scans on r1(a int4, b text)) whose i/o
// rates are controlled by tuple size and drawn from these bands:
//
//     CPU-bound            [5, 30)  io/s
//     IO-bound             (30, 60] io/s
//     extremely CPU-bound  [5, 15]  io/s
//     extremely IO-bound   [60, 70] io/s
//
// with the most CPU-bound relation r_min measuring 5 io/s and the most
// IO-bound r_max (one 8 KB tuple per page) measuring 70 io/s.
//
// Task *lengths* in the paper are 100..10,000 tuples; because per-tuple CPU
// work dominates CPU-bound scans and page reads dominate IO-bound scans,
// sequential task times are comparable across classes. The generator
// therefore samples the sequential time T uniformly from a configurable
// range and derives D = C * T (see EXPERIMENTS.md).

#ifndef XPRS_WORKLOAD_TASKS_H_
#define XPRS_WORKLOAD_TASKS_H_

#include <string>
#include <vector>

#include "sched/task.h"
#include "util/rng.h"

namespace xprs {

/// The four §3 workload mixes.
enum class WorkloadKind {
  kAllIoBound,       ///< all tasks IO-bound
  kAllCpuBound,      ///< all tasks CPU-bound
  kExtremeMix,       ///< half extremely IO-bound, half extremely CPU-bound
  kRandomMix,        ///< rates drawn uniformly across the whole range
};

const char* WorkloadKindName(WorkloadKind kind);

/// Generator knobs.
struct WorkloadOptions {
  /// Number of tasks per workload (ten in the paper).
  int num_tasks = 10;
  /// Sequential-time range the task length is drawn from, seconds.
  double min_seq_time = 4.0;
  double max_seq_time = 30.0;
  /// Fraction of IO-bound tasks realized as unclustered index scans
  /// (random i/o); the rest are large-tuple sequential scans like the
  /// paper's r_max calibration task. CPU-bound tasks are always sequential
  /// scans (small tuples). The paper's measured workloads are dominated by
  /// sequential scans, so the default is 0; the ablation bench sweeps it.
  double index_scan_fraction = 0.0;
  /// Rate bands (io/s), matching the paper's table.
  double cpu_lo = 5.0, cpu_hi = 30.0;
  double io_lo = 30.0, io_hi = 60.0;
  double xcpu_lo = 5.0, xcpu_hi = 15.0;
  double xio_lo = 60.0, xio_hi = 70.0;
};

/// Generates one workload of `kind`. Task ids are 0..n-1 (offset by
/// `id_base`), arrival times 0, query ids equal to task ids (each §3 task
/// is its own selection query).
std::vector<TaskProfile> MakeWorkload(WorkloadKind kind,
                                      const WorkloadOptions& options,
                                      Rng* rng, TaskId id_base = 0);

/// Generates a continuous arrival sequence: `num_tasks` tasks of `kind`
/// arriving by a Poisson process with the given mean inter-arrival gap.
std::vector<TaskProfile> MakeArrivalSequence(WorkloadKind kind,
                                             const WorkloadOptions& options,
                                             double mean_interarrival,
                                             Rng* rng, TaskId id_base = 0);

}  // namespace xprs

#endif  // XPRS_WORKLOAD_TASKS_H_
