#include "obs/metrics.h"

#include <algorithm>

#include "util/str.h"

namespace xprs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t b = 0;
  while (b < bounds_.size() && x > bounds_[b]) ++b;
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.bounds = bounds_;
  snap.buckets = buckets_;
  return snap;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Find the bucket holding the q-th sample, then interpolate linearly
  // between its bounds by the rank's position within the bucket.
  const double rank = q * static_cast<double>(count);
  // q * count can land a hair above an exact integer cumulative count
  // (e.g. 0.07 * 100 = 7.000000000000001); without a tolerance the
  // comparison below skips the bucket whose last sample *is* the rank.
  const double rank_eps = 1e-9 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[b];
    if (rank - static_cast<double>(seen) > rank_eps) continue;
    // Bucket b spans (lo, hi]: lo = bounds[b-1] (min for the first),
    // hi = bounds[b] (max for the overflow bucket).
    double lo = b == 0 ? min : bounds[b - 1];
    double hi = b < bounds.size() ? bounds[b] : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi <= lo) return hi;
    const double frac =
        std::min(1.0, (rank - before) / static_cast<double>(buckets[b]));
    return lo + frac * (hi - lo);
  }
  return max;
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  return {0.001, 0.01, 0.1, 1.0, 10.0, 100.0};
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%llu", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%.9g", name.c_str(), g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    // One snapshot per histogram: count, buckets and percentiles in the
    // dump describe the same instant even while workers are mid-flight.
    const HistogramSnapshot snap = h->Snapshot();
    out += StrFormat("\"%s\":{\"count\":%llu,\"sum\":%.9g,\"min\":%.9g,"
                     "\"max\":%.9g,\"buckets\":[",
                     name.c_str(),
                     static_cast<unsigned long long>(snap.count), snap.sum,
                     snap.min, snap.max);
    bool first_b = true;
    for (uint64_t b : snap.buckets) {
      if (!first_b) out += ",";
      first_b = false;
      out += StrFormat("%llu", static_cast<unsigned long long>(b));
    }
    out += StrFormat("],\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g}",
                     snap.Percentile(0.50), snap.Percentile(0.95),
                     snap.Percentile(0.99));
  }
  out += "}}";
  return out;
}

}  // namespace xprs
