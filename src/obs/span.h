// Span/ScopedSpan: wall-clock duration tracing over a TraceSink.
//
// A Span measures one phase of work between its construction and End() and
// emits a single Chrome 'X' complete event carrying the span's id and (when
// nested) its parent's id, so consumers can rebuild the tree — the serving
// layer uses this to give every query a root span whose children
// (admission, queue wait, execution, drain) account for the whole
// submit-to-resolve wall time. Spans are inert when the sink is null: no id
// is allocated, nothing is recorded, and the hot path pays one pointer
// test, matching the rest of the obs layer.
//
// Timestamps come from the process steady clock (the same clock the
// resilience events use), so serve spans and resilience instants line up on
// one timeline in a trace viewer. Golden tests may substitute a scripted
// clock via SetSpanClockForTest and reset the id allocator with
// ResetSpanIdsForTest to get byte-stable exports.

#ifndef XPRS_OBS_SPAN_H_
#define XPRS_OBS_SPAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace xprs {

/// Seconds on the process steady clock (or the test clock when installed).
double SpanNowSeconds();

/// Installs a scripted clock for golden tests; nullptr restores the steady
/// clock. Not thread-safe — call from single-threaded test setup only.
void SetSpanClockForTest(double (*clock)());

/// Allocates the next process-unique span id (never 0).
uint64_t NextSpanId();

/// Resets the span id allocator so goldens see dense ids. Test-only.
void ResetSpanIdsForTest(uint64_t next = 1);

/// One timed phase. Move-only; the destructor ends the span if End() was
/// not called explicitly, so early returns still close the phase.
class Span {
 public:
  /// Inert span: records nothing, id() == 0.
  Span() = default;

  /// Starts a span now. With a null sink the span is inert.
  Span(TraceSink* sink, std::string name, std::string category, int64_t track,
       uint64_t parent_id = 0);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  /// Attaches an argument to the event End() will emit. No-op after End().
  void AddArg(std::string key, TraceValue value);

  /// Re-targets the track (tid) — the serving layer learns the query id
  /// after the root span already started.
  void set_track(int64_t track) { track_ = track; }

  /// Re-bases the start so this span abuts the previous phase exactly at
  /// the boundary timestamp the predecessor ended with.
  void set_start(double start_seconds) {
    if (active()) start_ = start_seconds;
  }

  /// Ends the span now. Idempotent; emits exactly one 'X' event.
  void End() { EndAt(active() ? SpanNowSeconds() : 0.0); }

  /// Ends the span at an explicit timestamp, so adjacent phases can share
  /// one boundary reading and leave no uncovered gap between them.
  void EndAt(double end_seconds);

  /// 0 for inert spans, process-unique otherwise.
  uint64_t id() const { return id_; }
  bool active() const { return sink_ != nullptr && !ended_; }
  double start_seconds() const { return start_; }

 private:
  TraceSink* sink_ = nullptr;
  std::string name_;
  std::string category_;
  int64_t track_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  double start_ = 0.0;
  bool ended_ = false;
  std::vector<std::pair<std::string, TraceValue>> args_;
};

/// RAII block scoping for a Span: ends when the scope does.
class ScopedSpan {
 public:
  ScopedSpan(TraceSink* sink, std::string name, std::string category,
             int64_t track, uint64_t parent_id = 0)
      : span_(sink, std::move(name), std::move(category), track, parent_id) {}

  Span& span() { return span_; }
  uint64_t id() const { return span_.id(); }

 private:
  Span span_;
};

}  // namespace xprs

#endif  // XPRS_OBS_SPAN_H_
