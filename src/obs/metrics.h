// MetricsRegistry: named counters, gauges and histograms shared by all
// subsystems, with a JSON snapshot for bench output and diagnostics.
//
// Registered instruments live for the lifetime of the registry and their
// pointers are stable, so producers resolve a metric once (at attach time)
// and update it lock-free afterwards. Counters are monotonic atomics;
// gauges and histograms take a short mutex — they sit on cold paths
// (per scheduling event, per simulator interval), not per tuple.

#ifndef XPRS_OBS_METRICS_H_
#define XPRS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xprs {

/// Monotonically increasing counter. Lock-free.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge with an accumulate helper (utilization integrals).
/// Lock-free: the profiler hits gauges per fragment event, concurrently
/// with the scheduler's own publishing.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // atomic<double> has no fetch_add pre-C++20; CAS loop instead.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A consistent point-in-time copy of one histogram: count, sum, extremes
/// and buckets all observed under a single lock acquisition, so
/// `count == sum(buckets)` holds even while writers are mid-flight.
/// Percentiles computed from a snapshot agree with its buckets.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;
  /// bounds.size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> buckets;

  /// Estimated value at quantile `q` in [0, 1], linearly interpolated
  /// within the containing bucket and clamped to the observed [min, max].
  /// Returns 0 when empty.
  double Percentile(double q) const;
};

/// Fixed-boundary histogram: counts per bucket plus sum/min/max.
/// A sample x lands in the first bucket with x <= bound; samples above the
/// last bound land in the implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x);

  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

  /// All fields copied under one lock — the only way to read a histogram
  /// whose parts are mutually consistent while writers are concurrent.
  HistogramSnapshot Snapshot() const;

  /// Percentile of a fresh Snapshot(). Callers needing several quantiles
  /// of the same state should take one Snapshot and query it.
  double Percentile(double q) const { return Snapshot().Percentile(q); }

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Owns named instruments. Thread-safe; returned pointers stay valid for
/// the registry's lifetime. Re-requesting a name returns the same
/// instrument (histogram bounds are fixed by the first request).
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = DefaultBounds());

  /// Seconds-scale buckets suitable for interval / latency observations.
  static std::vector<double> DefaultBounds();

  /// One-line-per-metric JSON snapshot, keys sorted by name:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string DumpJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace xprs

#endif  // XPRS_OBS_METRICS_H_
