// Observability: the nullable trace/metrics bundle components accept.
//
// Producers hold one of these by value; both pointers may be null (the
// default), in which case publishing is a no-op. The bundle is deliberately
// non-owning — bench harnesses and tests own the recorder/registry and hand
// the same bundle to every component of a run so one trace file and one
// metrics snapshot cover the scheduler, the simulator and the storage
// layer together.

#ifndef XPRS_OBS_OBS_H_
#define XPRS_OBS_OBS_H_

#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace xprs {

struct Observability {
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool tracing() const { return trace != nullptr; }

  /// Records an event if a sink is attached.
  void Emit(TraceEvent event) const {
    if (trace != nullptr) trace->Record(std::move(event));
  }
};

}  // namespace xprs

#endif  // XPRS_OBS_OBS_H_
