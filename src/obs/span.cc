#include "obs/span.h"

#include <atomic>
#include <chrono>

namespace xprs {

namespace {

double (*g_test_clock)() = nullptr;

std::atomic<uint64_t> g_next_span_id{1};

}  // namespace

double SpanNowSeconds() {
  if (g_test_clock != nullptr) return g_test_clock();
  return 1e-9 * static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

void SetSpanClockForTest(double (*clock)()) { g_test_clock = clock; }

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void ResetSpanIdsForTest(uint64_t next) {
  g_next_span_id.store(next == 0 ? 1 : next, std::memory_order_relaxed);
}

Span::Span(TraceSink* sink, std::string name, std::string category,
           int64_t track, uint64_t parent_id)
    : sink_(sink),
      name_(std::move(name)),
      category_(std::move(category)),
      track_(track),
      parent_(parent_id) {
  if (sink_ == nullptr) return;
  id_ = NextSpanId();
  start_ = SpanNowSeconds();
}

Span::Span(Span&& other) noexcept { *this = std::move(other); }

Span& Span::operator=(Span&& other) noexcept {
  if (this == &other) return *this;
  End();  // close whatever this span was timing before adopting the other
  sink_ = other.sink_;
  name_ = std::move(other.name_);
  category_ = std::move(other.category_);
  track_ = other.track_;
  id_ = other.id_;
  parent_ = other.parent_;
  start_ = other.start_;
  ended_ = other.ended_;
  args_ = std::move(other.args_);
  other.sink_ = nullptr;
  other.ended_ = true;
  return *this;
}

void Span::AddArg(std::string key, TraceValue value) {
  if (!active()) return;
  args_.emplace_back(std::move(key), std::move(value));
}

void Span::EndAt(double end_seconds) {
  if (!active()) return;
  ended_ = true;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.phase = 'X';
  event.timestamp = start_;
  event.duration = end_seconds > start_ ? end_seconds - start_ : 0.0;
  event.track = track_;
  event.args = std::move(args_);
  event.args.emplace_back("span_id", static_cast<int64_t>(id_));
  if (parent_ != 0)
    event.args.emplace_back("parent", static_cast<int64_t>(parent_));
  sink_->Record(std::move(event));
}

}  // namespace xprs
