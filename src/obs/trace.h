// Structured event tracing shared by the scheduler, the fluid simulator,
// the parallel master and the storage layer.
//
// Components publish TraceEvents through a TraceSink; the stock sink is a
// lock-protected in-memory recorder whose snapshot can be exported as a
// Chrome trace_event JSON file and opened in chrome://tracing or Perfetto.
// Events use the Chrome phase vocabulary: 'B'/'E' span begin/end, 'X'
// complete span, 'i' instant, 'C' counter. Tracks ("tid" in the export)
// identify the entity an event belongs to — task id for scheduler/simulator
// spans, disk index for storage counters.
//
// Tracing is strictly opt-in: every producer takes a nullable TraceSink*
// and emits nothing when it is null, so the hot paths pay one pointer test
// when tracing is off.

#ifndef XPRS_OBS_TRACE_H_
#define XPRS_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace xprs {

/// A JSON-representable argument value attached to a TraceEvent.
struct TraceValue {
  enum class Kind { kString, kNumber, kBool };
  Kind kind = Kind::kString;
  std::string str;
  double num = 0.0;
  bool boolean = false;

  TraceValue() = default;
  TraceValue(const char* s) : kind(Kind::kString), str(s) {}  // NOLINT
  TraceValue(std::string s) : kind(Kind::kString), str(std::move(s)) {}  // NOLINT
  TraceValue(double v) : kind(Kind::kNumber), num(v) {}       // NOLINT
  TraceValue(int v) : kind(Kind::kNumber), num(v) {}          // NOLINT
  TraceValue(int64_t v)                                       // NOLINT
      : kind(Kind::kNumber), num(static_cast<double>(v)) {}
  TraceValue(bool v) : kind(Kind::kBool), boolean(v) {}       // NOLINT

  /// Renders the value as a JSON literal (quoted and escaped for strings).
  std::string ToJson() const;
};

/// One trace event, in the Chrome trace_event vocabulary.
struct TraceEvent {
  std::string name;
  std::string category;    ///< "sched", "sim", "parallel", "storage", ...
  char phase = 'i';        ///< 'B', 'E', 'X', 'i', 'C'
  double timestamp = 0.0;  ///< seconds (exported as microseconds)
  double duration = 0.0;   ///< seconds; only meaningful for phase 'X'
  int64_t track = 0;       ///< exported as tid (task id, disk index, ...)
  std::vector<std::pair<std::string, TraceValue>> args;
};

/// Destination for trace events. Implementations must be thread-safe: the
/// parallel master and the buffer pool publish from concurrent threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Record(TraceEvent event) = 0;
};

/// Lock-protected in-memory recorder. Keeps insertion order (which makes
/// exported traces deterministic for deterministic producers) and drops —
/// counting the drops — once `capacity` events are held, so a runaway
/// producer cannot exhaust memory.
class MemoryTraceRecorder : public TraceSink {
 public:
  explicit MemoryTraceRecorder(size_t capacity = 1u << 20);

  void Record(TraceEvent event) override;

  /// Copy of all recorded events, in insertion order.
  std::vector<TraceEvent> snapshot() const;
  size_t size() const;
  size_t dropped() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Renders events as a Chrome trace_event JSON document (one event per
/// line). Events are stably sorted by timestamp, so ties keep insertion
/// order and the output is byte-stable for a given event sequence.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes ChromeTraceJson(events) to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events);

/// Escapes a string for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

}  // namespace xprs

#endif  // XPRS_OBS_TRACE_H_
