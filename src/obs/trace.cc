#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/str.h"

namespace xprs {

namespace {

// Formats a double as a JSON number. %.9g round-trips every value the
// producers emit (timestamps in microseconds, io rates, parallelism) while
// printing integers without a trailing ".0", which keeps golden files tidy.
std::string JsonNumber(double v) { return StrFormat("%.9g", v); }

}  // namespace

std::string TraceValue::ToJson() const {
  switch (kind) {
    case Kind::kString:
      return "\"" + JsonEscape(str) + "\"";
    case Kind::kNumber:
      return JsonNumber(num);
    case Kind::kBool:
      return boolean ? "true" : "false";
  }
  return "null";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

MemoryTraceRecorder::MemoryTraceRecorder(size_t capacity)
    : capacity_(capacity) {}

void MemoryTraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> MemoryTraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t MemoryTraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t MemoryTraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void MemoryTraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->timestamp < b->timestamp;
                   });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent* e : ordered) {
    if (!first) out += ",\n";
    first = false;
    out += StrFormat("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\"",
                     JsonEscape(e->name).c_str(),
                     JsonEscape(e->category).c_str(), e->phase);
    // Chrome traces use microsecond timestamps.
    out += ",\"ts\":" + JsonNumber(e->timestamp * 1e6);
    if (e->phase == 'X') out += ",\"dur\":" + JsonNumber(e->duration * 1e6);
    out += StrFormat(",\"pid\":1,\"tid\":%lld",
                     static_cast<long long>(e->track));
    if (e->phase == 'i') out += ",\"s\":\"t\"";
    if (!e->args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e->args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + JsonEscape(key) + "\":" + value.ToJson();
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::IoError("cannot open trace file " + path);
  std::string json = ChromeTraceJson(events);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0)
    return Status::IoError("short write to trace file " + path);
  return Status::OK();
}

}  // namespace xprs
