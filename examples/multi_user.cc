// Multi-user scenario (§2.5 / §4): several users submit selection queries
// with very different io profiles at once; the master backend schedules
// their fragments with IO/CPU pairing and dynamic adjustment, on real
// slave-backend threads over the simulated striped disk array.
//
//   ./build/examples/multi_user

#include <cstdio>

#include "exec/executor.h"
#include "parallel/master.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/relations.h"

using namespace xprs;

int main() {
  MachineConfig machine = MachineConfig::PaperConfig();
  std::printf("Multi-user demo on %s\n\n", machine.ToString().c_str());

  DiskArray array(machine.num_disks, DiskMode::kInstant);
  Catalog catalog(&array);
  Rng rng(11);

  // Two io-heavy relations (wide tuples) and two cpu-heavy ones.
  Table* fat1 = BuildRelation(&catalog, "fat1", 700,
                              TextWidthForIoRate(65), 500, &rng)
                    .value();
  Table* fat2 = BuildRelation(&catalog, "fat2", 500,
                              TextWidthForIoRate(55), 500, &rng)
                    .value();
  Table* thin1 = BuildRelation(&catalog, "thin1", 5000,
                               TextWidthForIoRate(7), 500, &rng)
                     .value();
  Table* thin2 = BuildRelation(&catalog, "thin2", 3500,
                               TextWidthForIoRate(12), 500, &rng)
                     .value();

  // Four user queries: two IO-bound scans, two CPU-bound scans.
  auto q1 = MakeSeqScan(fat1, Predicate::Between(0, 0, 400));
  auto q2 = MakeIndexScan(fat2, Predicate(), KeyRange{0, 250});
  auto q3 = MakeSeqScan(thin1, Predicate::Between(0, 100, 450));
  auto q4 = MakeSeqScan(thin2, Predicate());

  CostModel model;
  std::printf("submitted queries (fragment profiles as the scheduler sees "
              "them):\n");
  for (const auto& [name, plan] :
       std::vector<std::pair<const char*, const PlanNode*>>{
           {"q1 seq-scan fat1", q1.get()},
           {"q2 index-scan fat2", q2.get()},
           {"q3 seq-scan thin1", q3.get()},
           {"q4 seq-scan thin2", q4.get()}}) {
    FragmentGraph g = FragmentGraph::Decompose(*plan);
    for (const TaskProfile& p : model.FragmentProfiles(g)) {
      std::printf("  %-20s C=%5.1f io/s  T=%5.2fs  %s -> %s\n", name,
                  p.io_rate(), p.seq_time, IoPatternName(p.pattern),
                  IsIoBound(p, machine) ? "IO-bound" : "CPU-bound");
    }
  }

  TextTable table({"policy", "wall elapsed (s)", "adjustments"});
  for (SchedPolicy policy :
       {SchedPolicy::kIntraOnly, SchedPolicy::kInterWithoutAdj,
        SchedPolicy::kInterWithAdj}) {
    MasterOptions options;
    options.sched.policy = policy;
    ParallelMaster master(machine, &model, options);
    auto result = master.Run(
        {{q1.get(), 1}, {q2.get(), 2}, {q3.get(), 3}, {q4.get(), 4}});
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({SchedPolicyName(policy),
                  StrFormat("%.3f", result->elapsed_seconds),
                  StrFormat("%zu", result->num_adjustments)});
    std::printf("\n%s: %zu result rows per query:", SchedPolicyName(policy),
                result->query_results.size());
    for (const auto& [qid, rows] : result->query_results)
      std::printf(" q%lld=%zu", static_cast<long long>(qid), rows.size());
    std::printf("\n");
  }

  std::printf("\n%s\n", table.ToString().c_str());
  std::printf(
      "(wall-clock numbers on this 1-core container show scheduling\n"
      "overheads only; run bench_fig7 for the performance comparison on\n"
      "the simulated 8-cpu/4-disk machine.)\n");
  return 0;
}
