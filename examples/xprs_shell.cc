// Interactive shell: create relations, inspect the catalog, and run SQL
// against the full optimizer + executor stack.
//
//   ./build/examples/xprs_shell            # interactive
//   echo "..." | ./build/examples/xprs_shell   # scripted
//
// Commands:
//   .create <name> <tuples> <io_rate> [key_range]   build a relation whose
//                                       sequential scan runs at io_rate io/s
//   .tables                             list relations with stats
//   .explain <sql>                      optimize only, print plan + costs
//   .profile <sql>                      EXPLAIN ANALYZE through the parallel
//                                       master: actual rows/pages/time per
//                                       operator + adjustment timeline
//   .help                               this text
//   .quit
//   anything else is executed as SQL (EXPLAIN [ANALYZE] prefixes work too).

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "sql/engine.h"
#include "workload/relations.h"

using namespace xprs;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  .create <name> <tuples> <io_rate> [key_range]\n"
      "  .tables | .explain <sql> | .parallel <sql> | .profile <sql>\n"
      "  .help | .quit\n"
      "  otherwise: SQL, e.g. SELECT count(a) FROM r WHERE a < 10\n");
}

void PrintResult(const SqlResult& result) {
  std::printf("%s\n", result.schema.ToString().c_str());
  size_t shown = 0;
  for (const auto& row : result.rows) {
    if (shown++ >= 20) {
      std::printf("... (%zu more rows)\n", result.rows.size() - 20);
      break;
    }
    std::printf("%s\n", row.ToString().c_str());
  }
  std::printf("(%zu rows; seqcost %.2fs, parcost %.2fs)\n",
              result.rows.size(), result.seqcost, result.parcost);
}

}  // namespace

int main() {
  MachineConfig machine = MachineConfig::PaperConfig();
  DiskArray array(machine.num_disks, DiskMode::kInstant);
  Catalog catalog(&array);
  CostModel model;
  SqlEngine engine(&catalog, machine, &model);
  ExecContext ctx;
  Rng rng(123);

  std::printf("xprs shell — %s\n", machine.ToString().c_str());
  PrintHelp();

  std::string line;
  std::vector<std::string> table_names;
  while (true) {
    std::printf("xprs> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line[0] == '.') {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        PrintHelp();
        continue;
      }
      if (cmd == ".tables") {
        for (const std::string& name : table_names) {
          Table* t = catalog.GetTable(name).value();
          std::printf("  %-12s %8llu tuples %6u pages  keys [%d, %d]\n",
                      name.c_str(),
                      static_cast<unsigned long long>(t->stats().num_tuples),
                      t->stats().num_pages, t->stats().min_key,
                      t->stats().max_key);
        }
        continue;
      }
      if (cmd == ".create") {
        std::string name;
        uint64_t tuples = 0;
        double rate = 30.0;
        int32_t key_range = 1000;
        in >> name >> tuples >> rate;
        if (!(in >> key_range)) key_range = 1000;
        if (name.empty() || tuples == 0) {
          std::printf("usage: .create <name> <tuples> <io_rate> [key_range]\n");
          continue;
        }
        auto table = BuildRelation(&catalog, name, tuples,
                                   TextWidthForIoRate(rate), key_range, &rng);
        if (!table.ok()) {
          std::printf("error: %s\n", table.status().ToString().c_str());
          continue;
        }
        table_names.push_back(name);
        auto measured = MeasureSeqScan(table.value());
        std::printf("created %s: %llu tuples, %u pages, seq scan %.1f io/s "
                    "(%s)\n",
                    name.c_str(), static_cast<unsigned long long>(tuples),
                    (*table)->stats().num_pages, measured->io_rate(),
                    measured->io_rate() > machine.io_cpu_threshold()
                        ? "IO-bound"
                        : "CPU-bound");
        continue;
      }
      if (cmd == ".parallel") {
        std::string sql = line.substr(line.find(".parallel") + 9);
        MasterOptions options;  // INTER-WITH-ADJ on real slave threads
        auto result = engine.ExecuteParallel(sql, options);
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
          continue;
        }
        PrintResult(*result);
        continue;
      }
      if (cmd == ".profile") {
        std::string sql = line.substr(line.find(".profile") + 8);
        MasterOptions options;
        auto result = engine.ExplainAnalyzeParallel(sql, options);
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
          continue;
        }
        std::printf("%s", result->analyze_text.c_str());
        std::printf("(%zu rows; seqcost %.2fs, parcost %.2fs)\n",
                    result->rows.size(), result->seqcost, result->parcost);
        continue;
      }
      if (cmd == ".explain") {
        std::string sql = line.substr(line.find(".explain") + 8);
        auto result = engine.Explain(sql);
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
          continue;
        }
        std::printf("seqcost %.2fs, parcost(n=%d) %.2fs\n%s",
                    result->seqcost, machine.num_cpus, result->parcost,
                    result->plan_text.c_str());
        continue;
      }
      std::printf("unknown command %s (.help for help)\n", cmd.c_str());
      continue;
    }

    auto result = engine.Execute(line, ctx);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->analyze_text.empty())
      std::printf("%s", result->analyze_text.c_str());
    PrintResult(*result);
  }
  std::printf("\nbye\n");
  return 0;
}
