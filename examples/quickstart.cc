// Quickstart: schedule a small mixed batch of tasks with the adaptive
// IO/CPU-pairing scheduler and print what it decided.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "sched/scheduler.h"
#include "sim/fluid_sim.h"
#include "util/logging.h"

using namespace xprs;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // The machine of the paper's experiments: 8 processors in use, 4 disks,
  // aggregate bandwidth 240 io/s -> IO/CPU threshold 30 io/s.
  MachineConfig machine = MachineConfig::PaperConfig();
  std::printf("%s\n\n", machine.ToString().c_str());

  // Three tasks: an unclustered index scan (random io, strongly IO-bound),
  // a small-tuple sequential scan (CPU-bound) and a moderate scan.
  auto make = [](TaskId id, const char* name, double rate, double seq_time,
                 IoPattern pattern) {
    TaskProfile t;
    t.id = id;
    t.name = name;
    t.seq_time = seq_time;
    t.total_ios = rate * seq_time;
    t.pattern = pattern;
    t.query_id = id;
    return t;
  };
  std::vector<TaskProfile> tasks = {
      make(1, "index-scan r_max", 65.0, 18.0, IoPattern::kRandom),
      make(2, "seq-scan r_min", 6.0, 25.0, IoPattern::kSequential),
      make(3, "seq-scan r_mid", 40.0, 12.0, IoPattern::kSequential),
  };

  for (const auto& t : tasks) {
    std::printf("submitting %-20s C=%4.0f io/s -> %s\n", t.name.c_str(),
                t.io_rate(), IsIoBound(t, machine) ? "IO-bound" : "CPU-bound");
  }

  SchedulerOptions options;
  options.policy = SchedPolicy::kInterWithAdj;
  AdaptiveScheduler scheduler(machine, options);
  FluidSimulator sim(machine, SimOptions());
  SimResult result = sim.Run(&scheduler, tasks);

  std::printf("\nschedule decisions:\n");
  for (const auto& d : scheduler.decisions())
    std::printf("  %s\n", d.ToString().c_str());

  std::printf("\n%s\n", result.ToString().c_str());
  for (const auto& [id, tr] : result.tasks)
    std::printf("  task %lld: start %.2fs finish %.2fs\n",
                static_cast<long long>(id), tr.start_time, tr.finish_time);
  return 0;
}
