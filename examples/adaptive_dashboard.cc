// Adaptive scheduling dashboard: replays one Extreme-mix workload under
// INTER-WITH-ADJ on the fluid simulator and renders the machine's state
// over time — which tasks run at what parallelism, processor and disk
// utilization per interval, and every pairing / adjustment decision.
//
//   ./build/examples/adaptive_dashboard

#include <cstdio>
#include <string>

#include "sched/scheduler.h"
#include "sim/fluid_sim.h"
#include "util/str.h"
#include "workload/tasks.h"

using namespace xprs;

namespace {

std::string Bar(double fraction, int width) {
  int filled = static_cast<int>(fraction * width + 0.5);
  if (filled > width) filled = width;
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

}  // namespace

int main() {
  MachineConfig machine = MachineConfig::PaperConfig();
  std::printf("Adaptive scheduling dashboard — %s\n\n",
              machine.ToString().c_str());

  Rng rng(2718);
  WorkloadOptions wo;
  auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, wo, &rng);
  std::printf("workload (Extreme mix, 10 tasks):\n");
  for (const auto& t : tasks) {
    std::printf("  %-22s T=%5.1fs C=%4.0f io/s -> %s\n", t.name.c_str(),
                t.seq_time, t.io_rate(),
                IsIoBound(t, machine) ? "IO-bound" : "CPU-bound");
  }

  SchedulerOptions so;
  so.policy = SchedPolicy::kInterWithAdj;
  AdaptiveScheduler scheduler(machine, so);
  FluidSimulator sim(machine, SimOptions());
  SimResult result = sim.Run(&scheduler, tasks);

  std::printf("\nschedule decisions:\n");
  for (const auto& d : scheduler.decisions())
    std::printf("  %s\n", d.ToString().c_str());

  std::printf("\nutilization timeline (per simulator interval):\n");
  std::printf("%8s %8s  %-22s %-22s %s\n", "t (s)", "dt (s)",
              "cpus busy", "io rate / B", "tasks");
  for (const auto& s : sim.trace()) {
    if (s.duration < 0.05) continue;  // skip micro-intervals for readability
    double cpu_frac = s.cpus_busy / machine.num_cpus;
    double io_frac = s.io_rate / machine.nominal_bandwidth();
    std::printf("%8.2f %8.2f  [%s] %4.1f [%s] %3.0f%%  %d running\n", s.time,
                s.duration, Bar(cpu_frac, 12).c_str(), s.cpus_busy,
                Bar(io_frac, 12).c_str(), io_frac * 100.0, s.tasks_running);
  }

  std::printf("\nper-task Gantt (digit = processors assigned):\n%s",
              RenderGantt(sim.trace(), result).c_str());

  std::printf("\n%s\n", result.ToString().c_str());
  std::printf(
      "reading: the scheduler holds both bars near full while IO-bound and\n"
      "CPU-bound tasks coexist, adjusting survivors on every completion\n"
      "(the 'adjust' lines above) to stay at the IO-CPU balance point.\n");
  return 0;
}
