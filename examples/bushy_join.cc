// Bushy-tree optimization demo (§4): a 4-way join is optimized three ways
// — best left-deep by seqcost, best bushy by seqcost, and best-by-parcost
// — then each plan's fragment schedule is shown and the winner is executed.
//
//   ./build/examples/bushy_join

#include <cstdio>

#include "exec/executor.h"
#include "opt/two_phase.h"
#include "util/str.h"
#include "workload/relations.h"

using namespace xprs;

int main() {
  MachineConfig machine = MachineConfig::PaperConfig();
  DiskArray array(machine.num_disks, DiskMode::kInstant);
  Catalog catalog(&array);
  Rng rng(5);

  Table* orders = BuildRelation(&catalog, "orders", 900,
                                TextWidthForIoRate(60), 300, &rng)
                      .value();
  Table* items = BuildRelation(&catalog, "items", 4000,
                               TextWidthForIoRate(8), 300, &rng)
                     .value();
  Table* custs = BuildRelation(&catalog, "custs", 600,
                               TextWidthForIoRate(40), 300, &rng)
                     .value();
  Table* tiny = BuildRelation(&catalog, "tiny", 250,
                              TextWidthForIoRate(15), 300, &rng)
                    .value();

  QuerySpec query;
  query.relations = {{orders, Predicate::Between(0, 0, 200)},
                     {items, Predicate()},
                     {custs, Predicate()},
                     {tiny, Predicate()}};
  query.joins = {{0, 0, 1, 0}, {1, 0, 2, 0}, {2, 0, 3, 0}};

  CostModel model;
  TwoPhaseOptimizer optimizer(machine, &model);

  auto show = [&](const char* title, const OptimizedQuery& q) {
    std::printf("=== %s ===\n", title);
    std::printf("seqcost %.2fs, parcost(n=%d) %.2fs, %s\n", q.seqcost,
                machine.num_cpus, q.parcost,
                IsLeftDeep(*q.plan) ? "left-deep" : "bushy");
    std::printf("%s", q.plan->ToString().c_str());
    std::printf("fragments (tasks handed to the parallelizer):\n");
    for (const TaskProfile& p : q.profiles) {
      std::printf("  f%lld: T=%5.2fs C=%5.1f io/s %-10s deps=[%s]\n",
                  static_cast<long long>(p.id), p.seq_time, p.io_rate(),
                  IoPatternName(p.pattern), StrJoin(p.deps, ",").c_str());
    }
    std::printf("\n");
  };

  auto left_deep = optimizer.Optimize(query, TreeShape::kLeftDeep);
  auto bushy = optimizer.Optimize(query, TreeShape::kBushy);
  auto by_parcost = optimizer.OptimizeParCost(query, /*per_subset=*/3);
  if (!left_deep.ok() || !bushy.ok() || !by_parcost.ok()) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }
  show("best left-deep (seqcost)", *left_deep);
  show("best bushy (seqcost)", *bushy);
  show("best by parcost — the §4 choice", *by_parcost);

  ExecContext ctx;
  auto rows = ExecutePlanSequential(*by_parcost->plan, ctx);
  if (!rows.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("executed the parcost winner: %zu result rows; first three:\n",
              rows->size());
  for (size_t i = 0; i < rows->size() && i < 3; ++i)
    std::printf("  %s\n", (*rows)[i].ToString().c_str());
  return 0;
}
