// SQL front-door demo: load a small database, then run selections, joins
// and aggregates through the SqlEngine (parser -> binder -> two-phase
// optimizer -> executor), printing EXPLAIN output along the way.
//
//   ./build/examples/sql_quickstart ["SELECT ..."]
//
// With an argument, runs just that statement against the demo database.

#include <cstdio>

#include "sql/engine.h"
#include "workload/relations.h"

using namespace xprs;

int main(int argc, char** argv) {
  MachineConfig machine = MachineConfig::PaperConfig();
  DiskArray array(machine.num_disks, DiskMode::kInstant);
  Catalog catalog(&array);
  Rng rng(7);

  // A small order/customer/item database with mixed tuple widths (so the
  // optimizer sees both IO-bound and CPU-bound scans).
  (void)BuildRelation(&catalog, "orders", 900, TextWidthForIoRate(55), 200,
                      &rng);
  (void)BuildRelation(&catalog, "custs", 200, TextWidthForIoRate(20), 200,
                      &rng);
  (void)BuildRelation(&catalog, "items", 2500, TextWidthForIoRate(8), 200,
                      &rng);

  CostModel model;
  SqlEngine engine(&catalog, machine, &model);
  ExecContext ctx;

  auto run = [&](const std::string& sql) {
    std::printf("xprs> %s\n", sql.c_str());
    auto explain = engine.Explain(sql);
    if (explain.ok()) {
      std::printf("-- seqcost %.2fs, parcost(n=%d) %.2fs\n%s",
                  explain->seqcost, machine.num_cpus, explain->parcost,
                  explain->plan_text.c_str());
    }
    auto result = engine.Execute(sql, ctx);
    if (!result.ok()) {
      std::printf("error: %s\n\n", result.status().ToString().c_str());
      return;
    }
    std::printf("-- %zu rows %s\n", result->rows.size(),
                result->schema.ToString().c_str());
    size_t shown = 0;
    for (const auto& row : result->rows) {
      if (shown++ >= 5) {
        std::printf("   ... (%zu more)\n", result->rows.size() - 5);
        break;
      }
      std::printf("   %s\n", row.ToString().c_str());
    }
    std::printf("\n");
  };

  if (argc > 1) {
    run(argv[1]);
    return 0;
  }

  run("SELECT count(a) FROM orders");
  run("SELECT * FROM custs WHERE a BETWEEN 5 AND 8");
  run("SELECT o.b FROM orders o, custs c WHERE o.a = c.a AND c.a < 3");
  run("SELECT max(o.a) FROM orders o, items i WHERE o.a = i.a");
  run("SELECT count(i.a) FROM items i, orders o, custs c "
      "WHERE i.a = o.a AND o.a = c.a GROUP BY c.a");
  return 0;
}
