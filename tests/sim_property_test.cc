// Parameterized property sweeps over the scheduler + fluid simulator:
// physical lower bounds, conservation laws, utilization bounds, arrival
// ordering, and policy invariants hold for every (policy, workload, seed)
// combination.

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/cost.h"
#include "sim/fluid_sim.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

using Combo = std::tuple<SchedPolicy, WorkloadKind, uint64_t>;

class SchedulePropertyTest : public ::testing::TestWithParam<Combo> {
 protected:
  static std::vector<TaskProfile> MakeTasks(WorkloadKind kind,
                                            uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions wo;
    wo.index_scan_fraction = 0.3;
    return MakeWorkload(kind, wo, &rng);
  }
};

TEST_P(SchedulePropertyTest, PhysicalLowerBoundsHold) {
  auto [policy, kind, seed] = GetParam();
  MachineConfig m = MachineConfig::PaperConfig();
  auto tasks = MakeTasks(kind, seed);

  SchedulerOptions so;
  so.policy = policy;
  AdaptiveScheduler sched(m, so);
  SimOptions sim_opts;
  sim_opts.adjust_latency = 0.0;
  sim_opts.excess_penalty = 0.0;
  FluidSimulator sim(m, sim_opts);
  SimResult r = sim.Run(&sched, tasks);

  // Bound 1: total cpu work / N processors.
  double total_work = 0.0;
  for (const auto& t : tasks) total_work += t.seq_time;
  EXPECT_GE(r.elapsed + 1e-6, total_work / m.num_cpus);

  // Bound 2: total io / the best-case bandwidth.
  double total_ios = 0.0;
  for (const auto& t : tasks) total_ios += t.total_ios;
  EXPECT_GE(r.elapsed + 1e-6, total_ios / m.seq_bandwidth());

  // Bound 3: no task can beat its own intra-op optimum.
  for (const auto& t : tasks) {
    EXPECT_GE(r.elapsed + 1e-6, TIntra(t, m)) << t.ToString();
  }
}

TEST_P(SchedulePropertyTest, ConservationAndCompletion) {
  auto [policy, kind, seed] = GetParam();
  MachineConfig m = MachineConfig::PaperConfig();
  auto tasks = MakeTasks(kind, seed);

  SchedulerOptions so;
  so.policy = policy;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, tasks);

  ASSERT_EQ(r.tasks.size(), tasks.size());
  for (const auto& t : tasks) {
    const SimTaskResult& tr = r.tasks.at(t.id);
    EXPECT_NEAR(tr.ios_done, t.total_ios, 1e-6) << t.ToString();
    EXPECT_GE(tr.start_time, tr.arrival_time - 1e-9);
    EXPECT_GT(tr.finish_time, tr.start_time);
    EXPECT_LE(tr.finish_time, r.elapsed + 1e-9);
  }
  EXPECT_TRUE(sched.Idle());
}

TEST_P(SchedulePropertyTest, ResourceEnvelopeRespected) {
  auto [policy, kind, seed] = GetParam();
  MachineConfig m = MachineConfig::PaperConfig();
  auto tasks = MakeTasks(kind, seed);

  SchedulerOptions so;
  so.policy = policy;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, tasks);

  EXPECT_LE(r.cpu_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.cpu_utilization, 0.0);
  for (const auto& s : sim.trace()) {
    EXPECT_LE(s.cpus_busy, m.num_cpus + 1e-9);
    EXPECT_LE(s.io_rate, m.seq_bandwidth() + 1e-6);
    EXPECT_LE(s.tasks_running, 2) << "more than a pair running";
  }
}

TEST_P(SchedulePropertyTest, NonAdjustingPoliciesNeverAdjust) {
  auto [policy, kind, seed] = GetParam();
  if (policy == SchedPolicy::kInterWithAdj) GTEST_SKIP();
  MachineConfig m = MachineConfig::PaperConfig();
  auto tasks = MakeTasks(kind, seed);
  SchedulerOptions so;
  so.policy = policy;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, tasks);
  EXPECT_EQ(r.num_adjustments, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadSeeds, SchedulePropertyTest,
    ::testing::Combine(::testing::Values(SchedPolicy::kIntraOnly,
                                         SchedPolicy::kInterWithoutAdj,
                                         SchedPolicy::kInterWithAdj),
                       ::testing::Values(WorkloadKind::kAllIoBound,
                                         WorkloadKind::kAllCpuBound,
                                         WorkloadKind::kExtremeMix,
                                         WorkloadKind::kRandomMix),
                       ::testing::Values(11u, 22u, 33u)));

// ------------------------------ continuous arrival sequences (§2.5 queues)

class ArrivalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArrivalPropertyTest, QueueModeRespectsArrivals) {
  MachineConfig m = MachineConfig::PaperConfig();
  Rng rng(GetParam());
  WorkloadOptions wo;
  wo.num_tasks = 20;
  auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, wo, 3.0, &rng);

  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, tasks);

  for (const auto& t : tasks) {
    EXPECT_GE(r.tasks.at(t.id).start_time, t.arrival_time - 1e-9)
        << "task started before it arrived";
  }
  EXPECT_GE(r.elapsed, tasks.back().arrival_time);
}

TEST_P(ArrivalPropertyTest, SjfNeverIncreasesMeanResponseMuch) {
  MachineConfig m = MachineConfig::PaperConfig();
  Rng rng(GetParam() + 100);
  WorkloadOptions wo;
  wo.num_tasks = 30;
  auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, wo, 2.0, &rng);

  SchedulerOptions plain;
  AdaptiveScheduler s1(m, plain);
  FluidSimulator sim1(m, SimOptions());
  double resp_plain = sim1.Run(&s1, tasks).mean_response_time;

  SchedulerOptions sjf;
  sjf.shortest_job_first = true;
  AdaptiveScheduler s2(m, sjf);
  FluidSimulator sim2(m, SimOptions());
  double resp_sjf = sim2.Run(&s2, tasks).mean_response_time;

  // SJF is a heuristic; allow slack but catch gross regressions.
  EXPECT_LE(resp_sjf, resp_plain * 1.25 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrivalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------- edge cases of the simulator

TEST(SimEdgeTest, EmptyWorkload) {
  MachineConfig m = MachineConfig::PaperConfig();
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, {});
  EXPECT_DOUBLE_EQ(r.elapsed, 0.0);
  EXPECT_TRUE(r.tasks.empty());
}

TEST(SimEdgeTest, ZeroIoTaskIsPureCpu) {
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile t;
  t.id = 1;
  t.seq_time = 8.0;
  t.total_ios = 0.0;
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  SimOptions ideal;
  ideal.excess_penalty = 0.0;
  FluidSimulator sim(m, ideal);
  SimResult r = sim.Run(&sched, {t});
  EXPECT_NEAR(r.elapsed, 1.0, 1e-9);  // 8s / 8 cpus
}

TEST(SimEdgeTest, TinyTaskFinishesInstantly) {
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile t;
  t.id = 1;
  t.seq_time = 1e-6;
  t.total_ios = 1e-5;
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, {t});
  EXPECT_LT(r.elapsed, 1e-3);
}

TEST(SimEdgeTest, ManyTasksCompleteDeterministically) {
  MachineConfig m = MachineConfig::PaperConfig();
  Rng rng(77);
  WorkloadOptions wo;
  wo.num_tasks = 200;
  auto tasks = MakeWorkload(WorkloadKind::kRandomMix, wo, &rng);
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, tasks);
  EXPECT_EQ(r.tasks.size(), 200u);
}

TEST(SimEdgeTest, LateArrivalAfterIdlePeriod) {
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile a;
  a.id = 1;
  a.seq_time = 4.0;
  a.total_ios = 40.0;
  TaskProfile b = a;
  b.id = 2;
  b.arrival_time = 1000.0;
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, SimOptions());
  SimResult r = sim.Run(&sched, {a, b});
  EXPECT_NEAR(r.tasks.at(2).start_time, 1000.0, 1e-9);
}

}  // namespace
}  // namespace xprs
