// Tests of the per-query profiler: golden EXPLAIN ANALYZE output on a
// fixed catalog, invisibility of the instrumentation (same rows with
// profiling on and off), reconciliation of the profile's totals with the
// table stats and the MetricsRegistry publication, the parallel-run
// fragment/timeline sections, and JSON/trace emission.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "sql/engine.h"
#include "testing/json_checker.h"

namespace xprs {
namespace {

// Same fixed catalog as sql_test: orders(300 rows, a = i % 100) and
// custs(100 rows, a = i), both with an index on column a and fresh stats.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    engine_ = std::make_unique<SqlEngine>(
        catalog_.get(), MachineConfig::PaperConfig(), &model_);

    Table* orders =
        catalog_->CreateTable("orders", Schema::PaperSchema()).value();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(orders->file()
                      .Append(Tuple({Value(int32_t{i % 100}),
                                     Value(std::string("o") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(orders->file().Flush().ok());
    ASSERT_TRUE(orders->BuildIndex(0).ok());
    ASSERT_TRUE(orders->ComputeStats().ok());

    Table* custs =
        catalog_->CreateTable("custs", Schema::PaperSchema()).value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(custs->file()
                      .Append(Tuple({Value(int32_t{i}),
                                     Value(std::string("c") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(custs->file().Flush().ok());
    ASSERT_TRUE(custs->BuildIndex(0).ok());
    ASSERT_TRUE(custs->ComputeStats().ok());
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  CostModel model_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(ProfileTest, GoldenExplainAnalyzeText) {
  auto r = engine_->ExplainAnalyze(
      "SELECT count(o.a) FROM orders o, custs c "
      "WHERE o.a = c.a AND c.a < 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->profile, nullptr);

  // Wall-clock fields off: the report is byte-stable across runs.
  ProfileRenderOptions options;
  options.include_times = false;
  options.include_parallel = false;
  const std::string expected =
      "Aggregate(count(col2))"
      "  (est rows=1 ios=2 seq=0.282s)"
      "  (actual rows=1 pages=0)\n"
      "  HashJoin(l.col0 = r.col0)"
      "  (est rows=10 ios=2 seq=0.280s)"
      "  (actual rows=30 pages=0 build=300)\n"
      "    SeqScan(custs, col0 < 10)"
      "  (est rows=10 ios=1 seq=0.060s)"
      "  (actual rows=10 pages=1 evals=100)\n"
      "    SeqScan(orders, TRUE)"
      "  (est rows=300 ios=1 seq=0.153s)"
      "  (actual rows=300 pages=1 evals=300)\n";
  EXPECT_EQ(r->profile->ToText(options), expected);
}

TEST_F(ProfileTest, ProfilingDoesNotChangeResults) {
  const char* queries[] = {
      "SELECT * FROM custs WHERE a BETWEEN 10 AND 40",
      "SELECT o.b, c.b FROM orders o, custs c WHERE o.a = c.a AND c.a < 20",
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a",
  };
  for (const char* sql : queries) {
    auto plain = engine_->Execute(sql);
    auto profiled = engine_->ExplainAnalyze(sql);
    ASSERT_TRUE(plain.ok()) << sql;
    ASSERT_TRUE(profiled.ok()) << sql << ": "
                               << profiled.status().ToString();
    std::multiset<std::string> a, b;
    for (const auto& t : plain->rows) a.insert(t.ToString());
    for (const auto& t : profiled->rows) b.insert(t.ToString());
    EXPECT_EQ(a, b) << sql;
    EXPECT_FALSE(profiled->analyze_text.empty()) << sql;
    EXPECT_TRUE(plain->analyze_text.empty()) << sql;
  }
}

TEST_F(ProfileTest, InlineExplainAnalyzePrefixProfiles) {
  auto r = engine_->Execute("EXPLAIN ANALYZE SELECT count(a) FROM custs");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->analyze_text.empty());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(std::get<int32_t>(r->rows[0].value(0)), 100);

  // Bare EXPLAIN still only plans.
  auto e = engine_->Execute("EXPLAIN SELECT count(a) FROM custs");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->rows.empty());
  EXPECT_TRUE(e->analyze_text.empty());
  EXPECT_FALSE(e->plan_text.empty());
}

TEST_F(ProfileTest, ScanCountersReconcileWithTableStats) {
  auto r = engine_->ExplainAnalyze("SELECT * FROM orders");
  ASSERT_TRUE(r.ok());
  const QueryProfile& profile = *r->profile;
  Table* orders = catalog_->GetTable("orders").value();
  // A full sequential scan reads exactly the table's pages and emits
  // exactly its tuples.
  EXPECT_EQ(profile.TotalPagesRead(), orders->stats().num_pages);
  const OperatorStats& root = *profile.operators().front();
  EXPECT_EQ(root.tuples_out.load(), orders->stats().num_tuples);
  EXPECT_EQ(profile.TotalSpillBytes(), 0u);
}

TEST_F(ProfileTest, EstimatesAnnotatedOnEveryOperator) {
  auto r = engine_->ExplainAnalyze(
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a");
  ASSERT_TRUE(r.ok());
  for (const auto& op : r->profile->operators()) {
    EXPECT_TRUE(op->has_estimate) << op->label;
    EXPECT_GT(op->est_rows, 0.0) << op->label;
  }
}

TEST_F(ProfileTest, PublishMetricsReconcilesWithTotals) {
  auto r = engine_->ExplainAnalyze(
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a");
  ASSERT_TRUE(r.ok());
  const QueryProfile& profile = *r->profile;
  MetricsRegistry reg;
  profile.PublishMetrics(&reg);
  EXPECT_EQ(reg.counter("profile.queries")->value(), 1u);
  EXPECT_EQ(reg.counter("profile.tuples_out")->value(),
            profile.TotalTuplesOut());
  EXPECT_EQ(reg.counter("profile.pages_read")->value(),
            profile.TotalPagesRead());
  EXPECT_EQ(reg.counter("profile.pages_written")->value(),
            profile.TotalPagesWritten());
  EXPECT_EQ(reg.counter("profile.spill_bytes")->value(),
            profile.TotalSpillBytes());
  EXPECT_EQ(reg.counter("profile.evals")->value(), profile.TotalEvals());
  EXPECT_EQ(reg.histogram("profile.operator_seconds")->count(),
            profile.operators().size());
}

TEST_F(ProfileTest, ParallelProfileRecordsFragmentsAndTimeline) {
  const char* sql =
      "SELECT count(o1.a) FROM orders o1, custs c, orders o2 "
      "WHERE o1.a = c.a AND c.a = o2.a AND c.a < 3";
  MasterOptions options;
  MetricsRegistry reg;
  options.obs.metrics = &reg;
  auto par = engine_->ExplainAnalyzeParallel(sql, options);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ASSERT_EQ(par->rows.size(), 1u);
  EXPECT_EQ(std::get<int32_t>(par->rows[0].value(0)), 27);

  const QueryProfile& profile = *par->profile;
  const auto frags = profile.fragments();
  ASSERT_FALSE(frags.empty());
  for (const FragmentStats& f : frags) {
    EXPECT_GT(f.granules, 0u) << f.root_label;
    EXPECT_GT(f.initial_parallelism, 0) << f.root_label;
    EXPECT_GT(f.slaves_spawned, 0) << f.root_label;
    EXPECT_GE(f.wall_seconds, 0.0) << f.root_label;
  }
  // Every fragment starts and finishes exactly once on the timeline.
  int starts = 0, finishes = 0;
  for (const AdjustmentEvent& e : profile.timeline()) {
    starts += e.kind == AdjustmentEvent::Kind::kStart;
    finishes += e.kind == AdjustmentEvent::Kind::kFinish;
  }
  EXPECT_EQ(starts, static_cast<int>(frags.size()));
  EXPECT_EQ(finishes, static_cast<int>(frags.size()));
  // The estimated utilization timeline is present for parallel runs.
  EXPECT_FALSE(profile.utilization().empty());
  // The master's registry got the profile.* publication.
  EXPECT_EQ(reg.counter("profile.queries")->value(), 1u);
  EXPECT_EQ(reg.counter("profile.tuples_out")->value(),
            profile.TotalTuplesOut());
  // The report renders all three parallel sections.
  EXPECT_NE(par->analyze_text.find("fragments:"), std::string::npos);
  EXPECT_NE(par->analyze_text.find("timeline:"), std::string::npos);
  EXPECT_NE(par->analyze_text.find("utilization"), std::string::npos);
}

TEST_F(ProfileTest, JsonReportIsValidAndComplete) {
  auto r = engine_->ExplainAnalyze(
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a");
  ASSERT_TRUE(r.ok());
  const std::string& json = r->analyze_json;
  EXPECT_TRUE(JsonChecker(json).Valid());
  for (const char* key : {"\"operators\":", "\"fragments\":",
                          "\"timeline\":", "\"utilization\":",
                          "\"totals\":", "\"est\":", "\"actual\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json, r->profile->ToJson());
}

TEST_F(ProfileTest, EmitTraceProducesCounterEvents) {
  MasterOptions options;
  MemoryTraceRecorder recorder;
  options.obs.trace = &recorder;
  auto r = engine_->ExplainAnalyzeParallel(
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int counter_events = 0, frag_spans = 0;
  for (const TraceEvent& e : recorder.snapshot()) {
    if (e.phase == 'C' && (e.name == "profile cpus busy" ||
                           e.name == "profile io rate"))
      ++counter_events;
    if (e.phase == 'X' && e.name.rfind("profile frag", 0) == 0) ++frag_spans;
  }
  EXPECT_GT(counter_events, 0);
  EXPECT_EQ(frag_spans, static_cast<int>(r->profile->fragments().size()));
  // The trace export with the profiler's events is still valid JSON.
  EXPECT_TRUE(JsonChecker(ChromeTraceJson(recorder.snapshot())).Valid());
}

TEST_F(ProfileTest, SpillCountersSurfaceInProfile) {
  // Constrain memory so the hash join goes through the grace path.
  ExecContext ctx;
  DiskArray temp(4, DiskMode::kInstant);
  ctx.spill.temp_array = &temp;
  ctx.spill.memory_tuples = 16;
  auto r = engine_->ExplainAnalyze(
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a", ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(std::get<int32_t>(r->rows[0].value(0)), 300);
  const QueryProfile& profile = *r->profile;
  EXPECT_GT(profile.TotalPagesWritten(), 0u);
  EXPECT_GT(profile.TotalSpillBytes(), 0u);
  EXPECT_NE(r->analyze_text.find("spill="), std::string::npos);
}

}  // namespace
}  // namespace xprs
