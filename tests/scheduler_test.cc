// Tests for the adaptive scheduler's decision logic (§2.5), driven through
// a mock ExecutionEnv so every policy branch can be exercised directly.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sched/scheduler.h"

namespace xprs {
namespace {

// Records the scheduler's commands; the test advances time and reports
// completions manually.
class MockEnv : public ExecutionEnv {
 public:
  double Now() const override { return now; }
  void StartTask(TaskId id, double parallelism) override {
    running[id] = parallelism;
    starts.push_back({id, parallelism});
  }
  void AdjustParallelism(TaskId id, double parallelism) override {
    ASSERT_TRUE(running.count(id));
    running[id] = parallelism;
    adjusts.push_back({id, parallelism});
  }
  double RemainingSeqTime(TaskId id) const override {
    auto it = remaining.find(id);
    return it == remaining.end() ? 0.0 : it->second;
  }

  void Finish(AdaptiveScheduler* sched, TaskId id) {
    running.erase(id);
    remaining.erase(id);
    sched->OnTaskFinished(id);
  }

  double now = 0.0;
  std::map<TaskId, double> running;    // id -> parallelism
  std::map<TaskId, double> remaining;  // id -> remaining seq time
  std::vector<std::pair<TaskId, double>> starts;
  std::vector<std::pair<TaskId, double>> adjusts;
};

TaskProfile Task(TaskId id, double rate, double seq_time,
                 IoPattern pattern = IoPattern::kSequential) {
  TaskProfile t;
  t.id = id;
  t.name = "t" + std::to_string(id);
  t.seq_time = seq_time;
  t.total_ios = rate * seq_time;
  t.pattern = pattern;
  t.query_id = id;
  return t;
}

SchedulerOptions Opts(SchedPolicy policy) {
  SchedulerOptions o;
  o.policy = policy;
  return o;
}

TEST(IntraOnlyTest, RunsOneTaskAtATimeAtMaxParallelism) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  sched.Bind(&env);

  sched.Submit(Task(1, 60.0, 20.0));  // io-bound, maxp = 240/60 = 4
  sched.Submit(Task(2, 10.0, 20.0));  // cpu-bound, maxp = 8
  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;

  ASSERT_EQ(env.starts.size(), 1u);
  EXPECT_EQ(env.starts[0].first, 1);
  EXPECT_DOUBLE_EQ(env.starts[0].second, 4.0);
  EXPECT_EQ(sched.running().size(), 1u);

  env.Finish(&sched, 1);
  ASSERT_EQ(env.starts.size(), 2u);
  EXPECT_EQ(env.starts[1].first, 2);
  EXPECT_DOUBLE_EQ(env.starts[1].second, 8.0);
  EXPECT_TRUE(env.adjusts.empty());

  env.Finish(&sched, 2);
  EXPECT_TRUE(sched.Idle());
}

TEST(InterWithAdjTest, PairsMostIoBoundWithMostCpuBound) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithAdj);
  o.model_seek_interference = false;  // use the clean closed form
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  sched.Submit(Task(1, 40.0, 20.0));
  sched.Submit(Task(2, 60.0, 20.0));  // most io-bound
  sched.Submit(Task(3, 20.0, 20.0));
  sched.Submit(Task(4, 10.0, 20.0));  // most cpu-bound
  for (TaskId id : {1, 2, 3, 4}) env.remaining[id] = 20.0;

  // The first submit starts task 1 alone (only one task known). The later
  // submits must end with tasks 2 and 4 running together — re-pairing is
  // allowed to adjust.
  ASSERT_EQ(env.running.size(), 2u);
  EXPECT_TRUE(env.running.count(2) || env.running.count(1));
  EXPECT_TRUE(env.running.count(4) || env.running.count(3));
}

TEST(InterWithAdjTest, FreshPairStartsAtBalancePoint) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithAdj);
  o.model_seek_interference = false;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  // Submit the CPU-bound task first so no lone start happens for the
  // io-bound one; rates 60/10 -> balance (3.2, 4.8) -> rounded (3, 5).
  TaskProfile io = Task(1, 60.0, 20.0, IoPattern::kRandom);
  TaskProfile cpu = Task(2, 10.0, 20.0);
  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;
  sched.Submit(cpu);  // starts alone at maxp=8
  sched.Submit(io);   // must trigger pairing with adjustment

  ASSERT_EQ(env.running.size(), 2u);
  double xi = env.running[1], xj = env.running[2];
  EXPECT_DOUBLE_EQ(xi + xj, 8.0);
  EXPECT_GE(xi, 1.0);
  EXPECT_GE(xj, 1.0);
  EXPECT_GE(sched.num_adjustments(), 1u);  // cpu task was pulled back
}

TEST(InterWithAdjTest, SurvivorAdjustedToMaxPWhenQueueEmpties) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithAdj);
  o.model_seek_interference = false;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;
  sched.Submit(Task(1, 60.0, 20.0, IoPattern::kRandom));
  sched.Submit(Task(2, 10.0, 20.0));
  ASSERT_EQ(env.running.size(), 2u);

  // The io task finishes; no other io task exists, so the cpu task must be
  // adjusted up to its full parallelism (8).
  env.remaining[2] = 10.0;
  env.Finish(&sched, 1);
  ASSERT_TRUE(env.running.count(2));
  EXPECT_DOUBLE_EQ(env.running[2], 8.0);
  EXPECT_FALSE(env.adjusts.empty());
}

TEST(InterWithAdjTest, RepairsWithNextPartnerOnFinish) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithAdj);
  o.model_seek_interference = false;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;
  env.remaining[3] = 20.0;
  sched.Submit(Task(1, 60.0, 20.0, IoPattern::kRandom));
  sched.Submit(Task(2, 10.0, 20.0));
  sched.Submit(Task(3, 55.0, 20.0, IoPattern::kRandom));  // queued io task
  ASSERT_EQ(env.running.size(), 2u);

  env.remaining[2] = 12.0;
  env.Finish(&sched, 1);
  // Task 3 must have been started, paired with the still-running task 2.
  ASSERT_TRUE(env.running.count(3));
  ASSERT_TRUE(env.running.count(2));
  EXPECT_DOUBLE_EQ(env.running[2] + env.running[3], 8.0);
}

TEST(InterWithoutAdjTest, NeverAdjusts) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithoutAdj);
  o.model_seek_interference = false;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;
  env.remaining[3] = 20.0;
  sched.SubmitBatch({Task(1, 10.0, 20.0),
                     Task(2, 60.0, 20.0, IoPattern::kRandom),
                     Task(3, 50.0, 20.0, IoPattern::kRandom)});

  while (!env.running.empty())
    env.Finish(&sched, env.running.begin()->first);

  EXPECT_EQ(sched.num_adjustments(), 0u);
  EXPECT_TRUE(env.adjusts.empty());
  EXPECT_TRUE(sched.Idle());
}

TEST(InterWithoutAdjTest, FillsLeftoverProcessorsOnly) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithoutAdj);
  o.model_seek_interference = false;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;
  env.remaining[3] = 20.0;
  sched.SubmitBatch({Task(1, 60.0, 20.0, IoPattern::kRandom),
                     Task(2, 10.0, 20.0), Task(3, 12.0, 20.0)});
  ASSERT_EQ(env.running.size(), 2u);
  ASSERT_TRUE(env.running.count(1));
  ASSERT_TRUE(env.running.count(2));
  double x1 = env.running[1];

  // Task 2 finishes; task 1 keeps x1 and task 3 gets exactly the leftover.
  env.Finish(&sched, 2);
  ASSERT_TRUE(env.running.count(1));
  ASSERT_TRUE(env.running.count(3));
  EXPECT_DOUBLE_EQ(env.running[1], x1);
  EXPECT_DOUBLE_EQ(env.running[3], 8.0 - x1);
}

TEST(InterWithoutAdjTest, UnpairedLoneTaskIsNotBackfilled) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithoutAdj);
  o.model_seek_interference = false;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  // Only io-bound tasks: the intra-only fallback runs them strictly one at
  // a time even though processors are free (paper §3: INTER-WITHOUT-ADJ
  // degenerates to INTRA-ONLY on homogeneous workloads).
  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;
  sched.SubmitBatch({Task(1, 60.0, 20.0), Task(2, 50.0, 20.0)});
  EXPECT_EQ(env.running.size(), 1u);
  env.Finish(&sched, env.running.begin()->first);
  EXPECT_EQ(env.running.size(), 1u);
  env.Finish(&sched, env.running.begin()->first);
  EXPECT_TRUE(sched.Idle());
}

TEST(DependencyTest, TaskWaitsForAllDeps) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  sched.Bind(&env);

  TaskProfile child = Task(3, 10.0, 10.0);
  child.deps = {1, 2};
  env.remaining[1] = 10.0;
  env.remaining[2] = 10.0;
  env.remaining[3] = 10.0;
  sched.Submit(Task(1, 10.0, 10.0));
  sched.Submit(Task(2, 12.0, 10.0));
  sched.Submit(child);

  EXPECT_EQ(sched.NumPending(), 2u);  // task 2 queued, task 3 blocked
  env.Finish(&sched, 1);              // starts task 2; 3 still blocked
  EXPECT_FALSE(env.running.count(3));
  env.Finish(&sched, 2);
  EXPECT_TRUE(env.running.count(3));
  env.Finish(&sched, 3);
  EXPECT_TRUE(sched.Idle());
}

TEST(DependencyTest, DepAlreadyFinishedAtSubmit) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  sched.Bind(&env);

  env.remaining[1] = 10.0;
  sched.Submit(Task(1, 10.0, 10.0));
  env.Finish(&sched, 1);

  TaskProfile child = Task(2, 10.0, 10.0);
  child.deps = {1};
  env.remaining[2] = 10.0;
  sched.Submit(child);
  EXPECT_TRUE(env.running.count(2));
}

TEST(SjfTest, ShortestQueryChosenFirst) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kIntraOnly);
  o.shortest_job_first = true;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  TaskProfile long_task = Task(1, 10.0, 50.0);
  long_task.query_id = 100;
  TaskProfile short_task = Task(2, 10.0, 5.0);
  short_task.query_id = 200;
  env.remaining[1] = 50.0;
  env.remaining[2] = 5.0;
  sched.Submit(long_task);  // starts immediately (nothing else known)
  sched.Submit(short_task);

  env.Finish(&sched, 1);
  // With more queued tasks SJF would reorder; here just confirm it ran.
  EXPECT_TRUE(env.running.count(2));
  env.Finish(&sched, 2);

  // Now a clean comparison: two queued while one runs.
  TaskProfile a = Task(10, 10.0, 50.0);
  a.query_id = 300;
  TaskProfile b = Task(11, 10.0, 5.0);
  b.query_id = 400;
  TaskProfile blocker = Task(12, 10.0, 10.0);
  blocker.query_id = 500;
  env.remaining[10] = 50.0;
  env.remaining[11] = 5.0;
  env.remaining[12] = 10.0;
  sched.Submit(blocker);
  sched.Submit(a);
  sched.Submit(b);
  env.Finish(&sched, 12);
  EXPECT_TRUE(env.running.count(11)) << "SJF must pick the 5s query";
}

TEST(DecisionLogTest, RecordsStartsAndAdjusts) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  SchedulerOptions o = Opts(SchedPolicy::kInterWithAdj);
  o.model_seek_interference = false;
  AdaptiveScheduler sched(m, o);
  sched.Bind(&env);

  env.remaining[1] = 20.0;
  env.remaining[2] = 20.0;
  sched.Submit(Task(1, 60.0, 20.0, IoPattern::kRandom));
  sched.Submit(Task(2, 10.0, 20.0));
  env.Finish(&sched, 1);
  env.Finish(&sched, 2);

  size_t starts = 0, adjusts = 0;
  for (const auto& d : sched.decisions()) {
    if (d.kind == SchedDecision::Kind::kStart) ++starts;
    if (d.kind == SchedDecision::Kind::kAdjust) ++adjusts;
    EXPECT_FALSE(d.ToString().empty());
  }
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(adjusts, sched.num_adjustments());
}

TEST(ParallelismOfTest, ReflectsAssignments) {
  MachineConfig m = MachineConfig::PaperConfig();
  MockEnv env;
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  sched.Bind(&env);
  env.remaining[1] = 10.0;
  sched.Submit(Task(1, 60.0, 10.0));
  EXPECT_DOUBLE_EQ(sched.ParallelismOf(1), 4.0);
}

}  // namespace
}  // namespace xprs
