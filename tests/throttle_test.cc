// Calibration of the real-time (kThrottled) disk array: under genuine
// multi-threaded load the array must deliver approximately the §3
// bandwidths — sequential 97 io/s/disk, random 35 io/s/disk — scaled by
// DiskTimings::time_scale. This validates the substrate substitution
// argument of DESIGN.md §1 on the real-thread side.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "storage/disk_array.h"
#include "util/rng.h"

namespace xprs {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wall-clock measurements on a loaded 1-core container jitter badly; the
// *upper* bounds are the physical claim (throttling can never be beaten),
// while the lower bounds are loose sanity floors. Retries absorb load
// spikes.
bool RetryRate(const std::function<double()>& measure, double lo, double hi,
               int attempts = 3) {
  double last = 0.0;
  for (int i = 0; i < attempts; ++i) {
    last = measure();
    if (last > lo && last < hi) return true;
  }
  ADD_FAILURE() << "rate " << last << " outside (" << lo << ", " << hi
                << ") after " << attempts << " attempts";
  return false;
}

// time_scale 0.02: a "97 io/s" disk serves ~4850 io/s, keeping tests fast
// while preserving every ratio.
constexpr double kScale = 0.02;

TEST(ThrottleTest, SequentialScanApproachesSequentialBandwidth) {
  DiskTimings timings;
  // Coarser scale here: per-io sleep must dwarf the OS sleep granularity
  // (~0.1 ms) for the single-stream rate to be meaningful.
  timings.time_scale = 0.1;
  DiskArray array(4, DiskMode::kThrottled, timings);
  constexpr int kBlocks = 300;
  for (int i = 0; i < kBlocks; ++i) array.AllocateBlock();

  // One sequential stream touches the four disks round-robin but issues
  // one io at a time: the rate is one *disk's* sequential service rate.
  // Sleep overhead can only *lower* the measured rate, so the physically
  // meaningful bound is the upper one (must not beat the modeled 97 io/s).
  RetryRate(
      [&] {
        array.ResetStats();
        Page page;
        double t0 = NowSeconds();
        for (BlockId b = 0; b < kBlocks; ++b) {
          EXPECT_TRUE(array.ReadBlock(b, &page).ok());
        }
        return kBlocks / (NowSeconds() - t0) * 0.1;
      },
      10.0, 130.0);
}

TEST(ThrottleTest, ParallelSequentialScanApproachesAggregate) {
  DiskTimings timings;
  timings.time_scale = kScale;
  DiskArray array(4, DiskMode::kThrottled, timings);
  constexpr int kBlocks = 1200;
  for (int i = 0; i < kBlocks; ++i) array.AllocateBlock();

  // Eight threads page-partition the scan (p mod 8 == i), which is what
  // parallel slave backends do; per-disk request streams become "almost
  // sequential".
  // Aggregate must exceed a single stream (<= ~97) by a clear margin and
  // stay at or below the 4-disk sequential aggregate; the bounds are loose
  // because this container has one hardware core and coarse sleeps.
  RetryRate(
      [&] {
        array.ResetStats();
        double t0 = NowSeconds();
        std::vector<std::thread> threads;
        for (int w = 0; w < 8; ++w) {
          threads.emplace_back([&, w] {
            Page page;
            for (BlockId b = static_cast<BlockId>(w); b < kBlocks; b += 8) {
              EXPECT_TRUE(array.ReadBlock(b, &page).ok());
            }
          });
        }
        for (auto& t : threads) t.join();
        return kBlocks / (NowSeconds() - t0) * kScale;
      },
      40.0, 430.0);
}

TEST(ThrottleTest, RandomReadsHitRandomBandwidth) {
  DiskTimings timings;
  timings.time_scale = kScale;
  DiskArray array(4, DiskMode::kThrottled, timings);
  constexpr int kBlocks = 2000;
  for (int i = 0; i < kBlocks; ++i) array.AllocateBlock();

  constexpr int kReads = 600;
  // 4 disks x 35 io/s = 140 aggregate; allow generous slack (some reads
  // land "almost sequential" by chance; thread jitter).
  RetryRate(
      [&] {
        array.ResetStats();
        double t0 = NowSeconds();
        std::vector<std::thread> threads;
        for (int w = 0; w < 4; ++w) {
          threads.emplace_back([&, w] {
            Rng rng(100 + w);
            Page page;
            for (int i = 0; i < kReads / 4; ++i) {
              BlockId b = static_cast<BlockId>(rng.NextUint64(kBlocks));
              EXPECT_TRUE(array.ReadBlock(b, &page).ok());
            }
          });
        }
        for (auto& t : threads) t.join();
        return kReads / (NowSeconds() - t0) * kScale;
      },
      20.0, 280.0);
}

TEST(ThrottleTest, BusyAccountingMatchesWallClock) {
  DiskTimings timings;
  // Coarse scale so per-sleep OS overhead (~0.3 ms) stays small next to
  // the modeled ~2 ms service times.
  timings.time_scale = 0.2;
  DiskArray array(1, DiskMode::kThrottled, timings);
  for (int i = 0; i < 100; ++i) array.AllocateBlock();

  Page page;
  double t0 = NowSeconds();
  for (BlockId b = 0; b < 100; ++b)
    ASSERT_TRUE(array.ReadBlock(b, &page).ok());
  double elapsed = NowSeconds() - t0;

  // Modeled busy time should be close to (and not exceed by much) the
  // actual wall time spent sleeping.
  double busy = array.total_stats().busy_seconds;
  EXPECT_LE(busy, elapsed * 1.1);
  EXPECT_GT(busy, elapsed * 0.2);
}

}  // namespace
}  // namespace xprs
