// Tests for the Aggregate operator and its integration with plans,
// fragments (blocking boundary) and the cost model.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/fragment.h"
#include "opt/cost_model.h"
#include "storage/catalog.h"

namespace xprs {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(2, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    t_ = catalog_->CreateTable("t", Schema::PaperSchema()).value();
    // Keys 0,1,2 cycling over 90 rows; values = row index.
    for (int i = 0; i < 90; ++i) {
      ASSERT_TRUE(t_->file()
                      .Append(Tuple({Value(int32_t{i % 3}),
                                     Value(std::string("x"))}))
                      .ok());
    }
    // A NULL key row (skipped by group-by) and a NULL never happens for
    // int col 0 here; instead test NULL agg input via a second table.
    ASSERT_TRUE(t_->file().Flush().ok());
    ASSERT_TRUE(t_->ComputeStats().ok());
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* t_ = nullptr;
  ExecContext ctx_;
};

TEST_F(AggregateTest, GlobalCount) {
  auto plan = MakeAggregate(MakeSeqScan(t_, Predicate()), AggFunc::kCount, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<int32_t>((*rows)[0].value(0)), 90);
}

TEST_F(AggregateTest, GlobalSumMinMax) {
  for (auto [func, expected] :
       std::vector<std::pair<AggFunc, int32_t>>{{AggFunc::kSum, 90},
                                                {AggFunc::kMin, 0},
                                                {AggFunc::kMax, 2}}) {
    auto plan = MakeAggregate(MakeSeqScan(t_, Predicate()), func, 0);
    auto rows = ExecutePlanSequential(*plan, ctx_);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u);
    EXPECT_EQ(std::get<int32_t>((*rows)[0].value(0)), expected)
        << AggFuncName(func);
  }
}

TEST_F(AggregateTest, GroupByCountsPerGroup) {
  auto plan = MakeAggregate(MakeSeqScan(t_, Predicate()), AggFunc::kCount, 0,
                            /*group_col=*/0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // groups 0,1,2 in key order
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(std::get<int32_t>((*rows)[g].value(0)), g);
    EXPECT_EQ(std::get<int32_t>((*rows)[g].value(1)), 30);
  }
}

TEST_F(AggregateTest, PredicateBeforeAggregate) {
  auto plan = MakeAggregate(MakeSeqScan(t_, Predicate::Between(0, 1, 2)),
                            AggFunc::kCount, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int32_t>((*rows)[0].value(0)), 60);
}

TEST_F(AggregateTest, EmptyInputCountIsZero) {
  auto plan = MakeAggregate(MakeSeqScan(t_, Predicate::Between(0, 99, 99)),
                            AggFunc::kCount, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<int32_t>((*rows)[0].value(0)), 0);
}

TEST_F(AggregateTest, EmptyInputMinHasNoRow) {
  auto plan = MakeAggregate(MakeSeqScan(t_, Predicate::Between(0, 99, 99)),
                            AggFunc::kMin, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(AggregateTest, NullInputsSkipped) {
  Table* n = catalog_->CreateTable("nulls", Schema::PaperSchema()).value();
  ASSERT_TRUE(
      n->file().Append(Tuple({Value(int32_t{5}), Value(std::string())})).ok());
  ASSERT_TRUE(n->file()
                  .Append(Tuple({Value(std::monostate{}),
                                 Value(std::string())}))
                  .ok());
  ASSERT_TRUE(n->file().Flush().ok());
  ASSERT_TRUE(n->ComputeStats().ok());
  auto plan = MakeAggregate(MakeSeqScan(n, Predicate()), AggFunc::kCount, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int32_t>((*rows)[0].value(0)), 1);  // NULL skipped
}

TEST_F(AggregateTest, AggregateOverJoin) {
  // count rows of t join t on key: 90 rows x 30 matches each = 2700.
  auto plan = MakeAggregate(
      MakeHashJoin(MakeSeqScan(t_, Predicate()), MakeSeqScan(t_, Predicate()),
                   0, 0),
      AggFunc::kCount, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int32_t>((*rows)[0].value(0)), 2700);
}

TEST_F(AggregateTest, AggregateIsFragmentBoundaryMidPlan) {
  // Aggregate feeding a hash-join probe: the aggregate subtree must form
  // its own fragment (blocking producer), like Sort.
  auto agg = MakeAggregate(MakeSeqScan(t_, Predicate()), AggFunc::kCount, 0,
                           /*group_col=*/0);
  auto plan = MakeHashJoin(std::move(agg), MakeSeqScan(t_, Predicate()), 0, 0);
  FragmentGraph g = FragmentGraph::Decompose(*plan);
  // probe fragment + aggregate fragment + build fragment.
  EXPECT_EQ(g.fragments().size(), 3u);

  auto seq = ExecutePlanSequential(*plan, ctx_);
  auto frag = ExecutePlanFragmented(*plan, ctx_);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(frag.ok()) << frag.status().ToString();
  EXPECT_EQ(seq->size(), frag->size());
  EXPECT_EQ(seq->size(), 90u);  // 3 groups x 30 matching rows each
}

TEST_F(AggregateTest, RootAggregateIsSingleFragment) {
  auto plan = MakeAggregate(MakeSeqScan(t_, Predicate()), AggFunc::kSum, 0);
  FragmentGraph g = FragmentGraph::Decompose(*plan);
  EXPECT_EQ(g.fragments().size(), 1u);
}

TEST_F(AggregateTest, CostModelEstimatesAggregate) {
  CostModel model;
  auto scan = MakeSeqScan(t_, Predicate());
  double scan_cost = model.SeqCost(*scan);
  auto plan = MakeAggregate(std::move(scan), AggFunc::kCount, 0, 0);
  PlanEstimate est = model.Estimate(*plan);
  EXPECT_GT(est.seq_time, scan_cost);  // aggregation adds cpu
  EXPECT_LT(est.rows, 91.0);           // grouping reduces cardinality
  EXPECT_GE(est.rows, 1.0);
}

TEST_F(AggregateTest, OutputSchemaShape) {
  auto global = MakeAggregate(MakeSeqScan(t_, Predicate()), AggFunc::kMax, 0);
  EXPECT_EQ(global->output_schema.num_columns(), 1u);
  auto grouped = MakeAggregate(MakeSeqScan(t_, Predicate()), AggFunc::kMax, 0,
                               /*group_col=*/0);
  EXPECT_EQ(grouped->output_schema.num_columns(), 2u);
  EXPECT_EQ(grouped->output_schema.column(1).name, "max");
}

}  // namespace
}  // namespace xprs
