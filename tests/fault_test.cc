// Failure-injection tests: i/o errors must propagate as Status through
// every layer — operators, buffer pool, parallel fragment runs (without
// deadlocking a pending adjustment rendezvous), and the master backend.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/fragment.h"
#include "opt/cost_model.h"
#include "parallel/fragment_run.h"
#include "parallel/master.h"
#include "storage/buffer_pool.h"
#include "util/rng.h"

namespace xprs {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    t_ = catalog_->CreateTable("t", Schema::PaperSchema()).value();
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(t_->file()
                      .Append(Tuple({Value(int32_t{i % 50}),
                                     Value(std::string(40, 'q'))}))
                      .ok());
    }
    ASSERT_TRUE(t_->file().Flush().ok());
    ASSERT_TRUE(t_->BuildIndex(0).ok());
    ASSERT_TRUE(t_->ComputeStats().ok());
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* t_ = nullptr;
  ExecContext ctx_;
};

TEST_F(FaultTest, SeqScanPropagatesIoError) {
  array_->FailNextReads(1);
  SeqScanOp scan(t_, Predicate(), ctx_);
  auto rows = Drain(&scan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
  array_->FailNextReads(0);
}

TEST_F(FaultTest, IndexScanPropagatesIoError) {
  array_->FailNextReads(1);
  IndexScanOp scan(t_, Predicate(), KeyRange{0, 49}, ctx_);
  auto rows = Drain(&scan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
  array_->FailNextReads(0);
}

TEST_F(FaultTest, JoinPropagatesBuildSideError) {
  array_->FailNextReads(1);
  auto plan = MakeHashJoin(MakeSeqScan(t_, Predicate()),
                           MakeSeqScan(t_, Predicate()), 0, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
  array_->FailNextReads(0);
}

TEST_F(FaultTest, BufferPoolErrorRollsBackAndRecovers) {
  BufferPool pool(array_.get(), 8);
  BlockId block = t_->file().BlockOf(0).value();

  array_->FailNextReads(1);
  auto bad = pool.Fetch(block);
  EXPECT_FALSE(bad.ok());
  array_->FailNextReads(0);

  // The failed frame must have been rolled back: the same fetch now works.
  auto good = pool.Fetch(block);
  ASSERT_TRUE(good.ok());
  const uint8_t* data;
  uint16_t size;
  EXPECT_TRUE(good->page().GetTuple(0, &data, &size).ok());
}

TEST_F(FaultTest, FragmentedExecutionPropagates) {
  array_->FailNextReads(1);
  auto plan = MakeHashJoin(MakeSeqScan(t_, Predicate()),
                           MakeSeqScan(t_, Predicate()), 0, 0);
  auto rows = ExecutePlanFragmented(*plan, ctx_);
  EXPECT_FALSE(rows.ok());
  array_->FailNextReads(0);
}

TEST_F(FaultTest, ParallelFragmentRunSurfacesError) {
  auto plan = MakeSeqScan(t_, Predicate());
  FragmentGraph graph = FragmentGraph::Decompose(*plan);

  array_->FailNextReads(3);
  ParallelFragmentRun::Options opts;
  opts.initial_parallelism = 3;
  opts.ctx = ctx_;
  ParallelFragmentRun run(&graph, graph.root_fragment(), {}, opts);
  ASSERT_TRUE(run.Start().ok());
  auto result = run.Wait();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  array_->FailNextReads(0);
}

TEST_F(FaultTest, AdjustDuringFailureDoesNotDeadlock) {
  // A slave hits an injected fault and retires; a concurrent adjustment
  // rendezvous must still complete (the Retire path).
  auto plan = MakeSeqScan(t_, Predicate());
  FragmentGraph graph = FragmentGraph::Decompose(*plan);

  for (int trial = 0; trial < 5; ++trial) {
    array_->FailNextReads(2);
    ParallelFragmentRun::Options opts;
    opts.initial_parallelism = 4;
    opts.ctx = ctx_;
    ParallelFragmentRun run(&graph, graph.root_fragment(), {}, opts);
    ASSERT_TRUE(run.Start().ok());
    run.Adjust(6);
    run.Adjust(2);
    auto result = run.Wait();  // must terminate either way
    // With only 2 injected faults some trials may finish all pages first;
    // the invariant is termination, not failure.
    (void)result;
    array_->FailNextReads(0);
  }
  SUCCEED();
}

TEST_F(FaultTest, MasterRunReturnsError) {
  auto plan = MakeSeqScan(t_, Predicate::Between(0, 0, 25));
  CostModel model;
  MasterOptions options;
  options.ctx = ctx_;

  // A transient fault is absorbed by the fragment retry ladder: the run
  // succeeds and reports the recovery.
  {
    ParallelMaster master(MachineConfig::PaperConfig(), &model, options);
    array_->FailNextReads(1);
    auto result = master.Run({{plan.get(), 1}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(result->fragment_retries, 1u);
    array_->FailNextReads(0);
  }

  // A persistent fault exhausts the ladder (retries disabled down to one
  // attempt per rung, no serial fallback) and surfaces as a Status.
  {
    MasterOptions strict = options;
    strict.retry.max_attempts = 1;
    strict.retry.initial_backoff_ms = 0;
    strict.serial_fallback = false;
    ParallelMaster master(MachineConfig::PaperConfig(), &model, strict);
    array_->FailNextReads(1000000);
    auto result = master.Run({{plan.get(), 1}});
    EXPECT_FALSE(result.ok());
    array_->FailNextReads(0);
  }

  // And a clean re-run on the same tables succeeds.
  ParallelMaster master2(MachineConfig::PaperConfig(), &model, options);
  auto retry = master2.Run({{plan.get(), 1}});
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FaultTest, FaultCounterDecrements) {
  array_->FailNextReads(2);
  Page page;
  EXPECT_FALSE(array_->ReadBlock(0, &page).ok());
  EXPECT_EQ(array_->pending_faults(), 1);
  EXPECT_FALSE(array_->ReadBlock(0, &page).ok());
  EXPECT_EQ(array_->pending_faults(), 0);
  EXPECT_TRUE(array_->ReadBlock(0, &page).ok());
}

}  // namespace
}  // namespace xprs
