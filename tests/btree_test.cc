// Tests for the B+tree index, including parameterized property sweeps over
// structural invariants and the balanced range partitions of §2.4.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "storage/btree.h"
#include "util/rng.h"

namespace xprs {
namespace {

TupleId Tid(uint32_t page, uint16_t slot = 0) { return TupleId{page, slot}; }

TEST(BTreeTest, EmptyTree) {
  BTreeIndex tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Lookup(5).empty());
  EXPECT_FALSE(tree.MinKey().ok());
  EXPECT_TRUE(tree.BalancedRanges(4).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, InsertAndLookup) {
  BTreeIndex tree;
  tree.Insert(10, Tid(1));
  tree.Insert(20, Tid(2));
  tree.Insert(10, Tid(3));
  EXPECT_EQ(tree.size(), 3u);
  auto hits = tree.Lookup(10);
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(tree.Lookup(20).size(), 1u);
  EXPECT_TRUE(tree.Lookup(15).empty());
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTreeIndex tree(/*fanout=*/4);
  for (int i = 0; i < 100; ++i) tree.Insert(i, Tid(i));
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < 100; ++i) {
    auto hits = tree.Lookup(i);
    ASSERT_EQ(hits.size(), 1u) << "key " << i;
    EXPECT_EQ(hits[0].page, static_cast<uint32_t>(i));
  }
}

TEST(BTreeTest, ScanRangeInclusive) {
  BTreeIndex tree(/*fanout=*/4);
  for (int i = 0; i < 50; ++i) tree.Insert(i * 2, Tid(i));
  std::vector<int32_t> keys;
  for (auto it = tree.Scan(10, 20); it.Valid(); it.Next())
    keys.push_back(it.key());
  EXPECT_EQ(keys, (std::vector<int32_t>{10, 12, 14, 16, 18, 20}));
}

TEST(BTreeTest, ScanBeyondMaxIsEmpty) {
  BTreeIndex tree;
  tree.Insert(1, Tid(1));
  EXPECT_FALSE(tree.Scan(100, 200).Valid());
}

TEST(BTreeTest, ScanAllReturnsSortedKeys) {
  BTreeIndex tree(/*fanout=*/8);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i)
    tree.Insert(static_cast<int32_t>(rng.NextInt(-5000, 5000)), Tid(i));
  int32_t prev = INT32_MIN;
  size_t count = 0;
  for (auto it = tree.Scan(INT32_MIN, INT32_MAX); it.Valid(); it.Next()) {
    EXPECT_GE(it.key(), prev);
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, 1000u);
}

TEST(BTreeTest, MinMaxKeys) {
  BTreeIndex tree(/*fanout=*/4);
  for (int i = 0; i < 64; ++i) tree.Insert(i * 7 - 100, Tid(i));
  EXPECT_EQ(tree.MinKey().value(), -100);
  EXPECT_EQ(tree.MaxKey().value(), 63 * 7 - 100);
}

TEST(BTreeTest, HeavyDuplicatesStillFound) {
  BTreeIndex tree(/*fanout=*/4);
  for (int i = 0; i < 200; ++i) tree.Insert(42, Tid(i));
  for (int i = 0; i < 50; ++i) {
    tree.Insert(10, Tid(1000 + i));
    tree.Insert(90, Tid(2000 + i));
  }
  EXPECT_EQ(tree.Lookup(42).size(), 200u);
  EXPECT_EQ(tree.Lookup(10).size(), 50u);
  EXPECT_EQ(tree.Lookup(90).size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, BalancedRangesCoverAllEntries) {
  BTreeIndex tree(/*fanout=*/8);
  for (int i = 0; i < 1000; ++i) tree.Insert(i, Tid(i));
  auto ranges = tree.BalancedRanges(4);
  ASSERT_EQ(ranges.size(), 4u);
  // Disjoint, ordered, covering [0, 999].
  EXPECT_EQ(ranges.front().lo, 0);
  EXPECT_EQ(ranges.back().hi, 999);
  size_t total = 0;
  for (size_t r = 0; r < ranges.size(); ++r) {
    if (r > 0) {
      EXPECT_GT(ranges[r].lo, ranges[r - 1].hi);
    }
    size_t in_range = 0;
    for (auto it = tree.Scan(ranges[r].lo, ranges[r].hi); it.Valid();
         it.Next())
      ++in_range;
    // Roughly balanced: each range within 2x of the ideal quarter.
    EXPECT_GT(in_range, 100u);
    EXPECT_LT(in_range, 500u);
    total += in_range;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(BTreeTest, BalancedRangesWithSkew) {
  BTreeIndex tree(/*fanout=*/8);
  // 90% of entries share one key: ranges must not split the duplicates.
  for (int i = 0; i < 900; ++i) tree.Insert(50, Tid(i));
  for (int i = 0; i < 100; ++i) tree.Insert(i, Tid(1000 + i));
  auto ranges = tree.BalancedRanges(4);
  ASSERT_FALSE(ranges.empty());
  size_t total = 0;
  for (const auto& r : ranges) {
    for (auto it = tree.Scan(r.lo, r.hi); it.Valid(); it.Next()) ++total;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(BTreeTest, FewDistinctKeysYieldFewerRanges) {
  BTreeIndex tree;
  tree.Insert(1, Tid(1));
  tree.Insert(2, Tid(2));
  auto ranges = tree.BalancedRanges(8);
  EXPECT_LE(ranges.size(), 2u);
}

// Property sweep: random inserts at several fanouts and sizes keep every
// structural invariant and stay consistent with a reference multimap.
class BTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(BTreePropertyTest, MatchesReferenceMultimap) {
  auto [fanout, n, seed] = GetParam();
  BTreeIndex tree(fanout);
  std::multimap<int32_t, TupleId> reference;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    int32_t key = static_cast<int32_t>(rng.NextInt(-200, 200));  // duplicates
    TupleId tid = Tid(static_cast<uint32_t>(i));
    tree.Insert(key, tid);
    reference.emplace(key, tid);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), reference.size());

  // Every key's postings match (as sets).
  for (int32_t key = -200; key <= 200; ++key) {
    auto hits = tree.Lookup(key);
    auto [lo, hi] = reference.equal_range(key);
    std::vector<TupleId> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(hits.begin(), hits.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected) << "key " << key;
  }

  // Random range scans match the reference.
  for (int trial = 0; trial < 20; ++trial) {
    int32_t a = static_cast<int32_t>(rng.NextInt(-250, 250));
    int32_t b = static_cast<int32_t>(rng.NextInt(-250, 250));
    if (a > b) std::swap(a, b);
    size_t got = 0;
    for (auto it = tree.Scan(a, b); it.Valid(); it.Next()) ++got;
    size_t expected = std::distance(reference.lower_bound(a),
                                    reference.upper_bound(b));
    EXPECT_EQ(got, expected) << "range [" << a << "," << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndSizes, BTreePropertyTest,
    ::testing::Combine(::testing::Values(4, 8, 64),
                       ::testing::Values(50, 500, 3000),
                       ::testing::Values(1u, 2u)));

// Balanced ranges partition the entry set for arbitrary data.
class BTreeRangeParamTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeRangeParamTest, RangesPartitionEntries) {
  int n_ranges = GetParam();
  BTreeIndex tree(/*fanout=*/16);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i)
    tree.Insert(static_cast<int32_t>(rng.NextInt(0, 300)), Tid(i));
  auto ranges = tree.BalancedRanges(n_ranges);
  ASSERT_FALSE(ranges.empty());
  EXPECT_LE(ranges.size(), static_cast<size_t>(n_ranges));
  size_t total = 0;
  int32_t prev_hi = INT32_MIN;
  for (const auto& r : ranges) {
    EXPECT_LE(r.lo, r.hi);
    if (prev_hi != INT32_MIN) {
      EXPECT_GT(r.lo, prev_hi);
    }
    prev_hi = r.hi;
    for (auto it = tree.Scan(r.lo, r.hi); it.Valid(); it.Next()) ++total;
  }
  EXPECT_EQ(total, 2000u);
}

INSTANTIATE_TEST_SUITE_P(RangeCounts, BTreeRangeParamTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace xprs
