// Tests for the §5 future-work extension: joint (batch) optimization of
// multiple queries against the combined schedule makespan.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "opt/two_phase.h"
#include "util/str.h"
#include "workload/relations.h"

namespace xprs {
namespace {

class BatchOptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    Rng rng(21);
    fat_ = BuildRelation(catalog_.get(), "fat", 800,
                         TextWidthForIoRate(62), 300, &rng)
               .value();
    thin_ = BuildRelation(catalog_.get(), "thin", 3000,
                          TextWidthForIoRate(8), 300, &rng)
                .value();
    mid_ = BuildRelation(catalog_.get(), "mid", 600,
                         TextWidthForIoRate(35), 300, &rng)
               .value();
  }

  QuerySpec Join(Table* a, Table* b) {
    QuerySpec q;
    q.relations = {{a, Predicate()}, {b, Predicate()}};
    q.joins = {{0, 0, 1, 0}};
    return q;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* fat_ = nullptr;
  Table* thin_ = nullptr;
  Table* mid_ = nullptr;
  CostModel model_;
};

TEST_F(BatchOptTest, BatchCostMatchesSingleQueryParCost) {
  MachineConfig m = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(m, &model_);
  auto q = opt.Optimize(Join(fat_, thin_), TreeShape::kBushy);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(opt.BatchCost({q->plan.get()}), q->parcost, 1e-9);
}

TEST_F(BatchOptTest, BatchOfTwoAtLeastAsLongAsEither) {
  MachineConfig m = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(m, &model_);
  auto q1 = opt.Optimize(Join(fat_, thin_), TreeShape::kBushy);
  auto q2 = opt.Optimize(Join(mid_, thin_), TreeShape::kBushy);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  double combined = opt.BatchCost({q1->plan.get(), q2->plan.get()});
  EXPECT_GE(combined + 1e-9, q1->parcost);
  EXPECT_GE(combined + 1e-9, q2->parcost);
  // And at most the serial sum (the schedule overlaps work).
  EXPECT_LE(combined, q1->parcost + q2->parcost + 1e-9);
}

TEST_F(BatchOptTest, JointChoiceNeverWorseThanIndependentSeqcostChoice) {
  MachineConfig m = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(m, &model_);
  std::vector<QuerySpec> batch = {Join(fat_, thin_), Join(mid_, thin_),
                                  Join(fat_, mid_)};

  double joint_makespan = 0.0;
  auto joint = opt.OptimizeBatch(batch, &joint_makespan);
  ASSERT_TRUE(joint.ok());
  ASSERT_EQ(joint->size(), 3u);

  // Independent baseline: best-seqcost plan per query.
  JoinEnumerator enumerator(&model_);
  std::vector<std::unique_ptr<PlanNode>> indep;
  for (const auto& q : batch) {
    auto best = enumerator.BestPlan(q, TreeShape::kBushy);
    ASSERT_TRUE(best.ok());
    indep.push_back(std::move(best->plan));
  }
  std::vector<const PlanNode*> indep_ptrs;
  for (const auto& p : indep) indep_ptrs.push_back(p.get());
  double indep_makespan = opt.BatchCost(indep_ptrs);

  // Coordinate descent starts from exactly that baseline, so it can only
  // improve or match.
  EXPECT_LE(joint_makespan, indep_makespan + 1e-9);
  EXPECT_GT(joint_makespan, 0.0);
}

TEST_F(BatchOptTest, BatchPlansExecuteCorrectly) {
  MachineConfig m = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(m, &model_);
  std::vector<QuerySpec> batch = {Join(fat_, thin_), Join(mid_, thin_)};
  double makespan = 0.0;
  auto joint = opt.OptimizeBatch(batch, &makespan);
  ASSERT_TRUE(joint.ok());

  ExecContext ctx;
  for (size_t i = 0; i < joint->size(); ++i) {
    auto rows = ExecutePlanSequential(*(*joint)[i].plan, ctx);
    ASSERT_TRUE(rows.ok());
    // Reference: nestloop on the same relations.
    auto ref_plan = MakeNestLoopJoin(
        MakeSeqScan(batch[i].relations[0].table, Predicate()),
        MakeSeqScan(batch[i].relations[1].table, Predicate()), 0, 0);
    auto ref = ExecutePlanSequential(*ref_plan, ctx);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(rows->size(), ref->size()) << "query " << i;
  }
}

TEST_F(BatchOptTest, SingleQueryBatchMatchesStandalone) {
  MachineConfig m = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(m, &model_);
  double makespan = 0.0;
  auto joint = opt.OptimizeBatch({Join(fat_, thin_)}, &makespan);
  ASSERT_TRUE(joint.ok());
  ASSERT_EQ(joint->size(), 1u);
  EXPECT_NEAR(makespan, opt.BatchCost({(*joint)[0].plan.get()}), 1e-9);
}

}  // namespace
}  // namespace xprs
