// Death tests for the CHECK macros and CHECK-guarded API misuse: invariant
// violations must abort loudly rather than corrupt state.

#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/fluid_sim.h"
#include "storage/page.h"
#include "util/check.h"
#include "util/rng.h"

namespace xprs {
namespace {

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ XPRS_CHECK(1 == 2); }, "CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, CheckMsgIncludesMessage) {
  EXPECT_DEATH({ XPRS_CHECK_MSG(false, "the reason"); }, "the reason");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH({ XPRS_CHECK_OK(Status::IoError("disk 2 on fire")); },
               "disk 2 on fire");
}

TEST(CheckDeathTest, ComparisonsPass) {
  XPRS_CHECK_GE(2, 2);
  XPRS_CHECK_GT(3, 2);
  XPRS_CHECK_LE(2, 2);
  XPRS_CHECK_LT(2, 3);
  XPRS_CHECK_EQ(5, 5);
  XPRS_CHECK_NE(5, 6);
  SUCCEED();
}

TEST(CheckDeathTest, RngRejectsZeroBound) {
  Rng rng(1);
  EXPECT_DEATH({ rng.NextUint64(0); }, "CHECK failed");
}

TEST(CheckDeathTest, SchedulerRejectsDuplicateTaskIds) {
  MachineConfig m = MachineConfig::PaperConfig();
  SchedulerOptions so;
  EXPECT_DEATH(
      {
        AdaptiveScheduler sched(m, so);
        FluidSimulator sim(m, SimOptions());
        TaskProfile t;
        t.id = 1;
        t.seq_time = 1.0;
        t.total_ios = 1.0;
        sim.Run(&sched, {t, t});  // same id twice
      },
      "CHECK failed");
}

TEST(CheckDeathTest, SchedulerRejectsNonPositiveSeqTime) {
  MachineConfig m = MachineConfig::PaperConfig();
  SchedulerOptions so;
  EXPECT_DEATH(
      {
        AdaptiveScheduler sched(m, so);
        FluidSimulator sim(m, SimOptions());
        TaskProfile t;
        t.id = 1;
        t.seq_time = 0.0;
        sim.Run(&sched, {t});
      },
      "CHECK failed");
}

TEST(CheckDeathTest, SimulatorDetectsDependencyDeadlock) {
  MachineConfig m = MachineConfig::PaperConfig();
  SchedulerOptions so;
  EXPECT_DEATH(
      {
        AdaptiveScheduler sched(m, so);
        FluidSimulator sim(m, SimOptions());
        TaskProfile t;
        t.id = 1;
        t.seq_time = 1.0;
        t.total_ios = 10.0;
        t.deps = {99};  // never submitted
        sim.Run(&sched, {t});
      },
      "deadlock");
}

}  // namespace
}  // namespace xprs
