// Tests for the §3 workload generator.

#include <gtest/gtest.h>

#include "sched/machine.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

TEST(WorkloadTest, AllIoBoundRatesInBand) {
  Rng rng(1);
  WorkloadOptions o;
  auto tasks = MakeWorkload(WorkloadKind::kAllIoBound, o, &rng);
  ASSERT_EQ(tasks.size(), 10u);
  for (const auto& t : tasks) {
    EXPECT_GE(t.io_rate(), 30.0);
    EXPECT_LE(t.io_rate(), 60.0);
    EXPECT_TRUE(IsIoBound(t, MachineConfig::PaperConfig()));
  }
}

TEST(WorkloadTest, AllCpuBoundRatesInBand) {
  Rng rng(2);
  WorkloadOptions o;
  auto tasks = MakeWorkload(WorkloadKind::kAllCpuBound, o, &rng);
  for (const auto& t : tasks) {
    EXPECT_GE(t.io_rate(), 5.0);
    EXPECT_LT(t.io_rate(), 30.0);
    EXPECT_FALSE(IsIoBound(t, MachineConfig::PaperConfig()));
    EXPECT_EQ(t.pattern, IoPattern::kSequential);
  }
}

TEST(WorkloadTest, ExtremeMixIsHalfAndHalf) {
  Rng rng(3);
  WorkloadOptions o;
  auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, o, &rng);
  int io = 0, cpu = 0;
  for (const auto& t : tasks) {
    double c = t.io_rate();
    if (c >= 60.0 && c <= 70.0)
      ++io;
    else if (c >= 5.0 && c <= 15.0)
      ++cpu;
    else
      FAIL() << "rate " << c << " outside both extreme bands";
  }
  EXPECT_EQ(io, 5);
  EXPECT_EQ(cpu, 5);
}

TEST(WorkloadTest, RandomMixSpansWholeRange) {
  Rng rng(4);
  WorkloadOptions o;
  o.num_tasks = 200;
  auto tasks = MakeWorkload(WorkloadKind::kRandomMix, o, &rng);
  bool saw_io = false, saw_cpu = false;
  for (const auto& t : tasks) {
    EXPECT_GE(t.io_rate(), 5.0);
    EXPECT_LE(t.io_rate(), 70.0);
    saw_io |= t.io_rate() > 30.0;
    saw_cpu |= t.io_rate() <= 30.0;
  }
  EXPECT_TRUE(saw_io);
  EXPECT_TRUE(saw_cpu);
}

TEST(WorkloadTest, SeqTimesWithinConfiguredRange) {
  Rng rng(5);
  WorkloadOptions o;
  o.min_seq_time = 2.0;
  o.max_seq_time = 9.0;
  o.num_tasks = 100;
  for (const auto& t : MakeWorkload(WorkloadKind::kRandomMix, o, &rng)) {
    EXPECT_GE(t.seq_time, 2.0);
    EXPECT_LE(t.seq_time, 9.0);
  }
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  WorkloadOptions o;
  Rng a(77), b(77);
  auto ta = MakeWorkload(WorkloadKind::kExtremeMix, o, &a);
  auto tb = MakeWorkload(WorkloadKind::kExtremeMix, o, &b);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].seq_time, tb[i].seq_time);
    EXPECT_DOUBLE_EQ(ta[i].total_ios, tb[i].total_ios);
    EXPECT_EQ(ta[i].pattern, tb[i].pattern);
  }
}

TEST(WorkloadTest, IdBaseOffsetsIds) {
  Rng rng(6);
  WorkloadOptions o;
  auto tasks = MakeWorkload(WorkloadKind::kAllIoBound, o, &rng, 100);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(tasks[i].id, 100 + i);
}

TEST(WorkloadTest, CpuBoundTasksAreAlwaysSequential) {
  Rng rng(8);
  WorkloadOptions o;
  o.num_tasks = 100;
  o.index_scan_fraction = 1.0;  // io-bound tasks all random
  for (const auto& t : MakeWorkload(WorkloadKind::kRandomMix, o, &rng)) {
    if (t.io_rate() <= 30.0) {
      EXPECT_EQ(t.pattern, IoPattern::kSequential);
    }
    if (t.io_rate() > 30.0) {
      EXPECT_EQ(t.pattern, IoPattern::kRandom);
    }
  }
}

TEST(ArrivalSequenceTest, ArrivalsAreMonotonic) {
  Rng rng(9);
  WorkloadOptions o;
  o.num_tasks = 50;
  auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, o, 2.0, &rng);
  double prev = -1.0;
  for (const auto& t : tasks) {
    EXPECT_GE(t.arrival_time, prev);
    prev = t.arrival_time;
  }
  EXPECT_DOUBLE_EQ(tasks.front().arrival_time, 0.0);
}

TEST(ArrivalSequenceTest, MeanGapRoughlyAsRequested) {
  Rng rng(10);
  WorkloadOptions o;
  o.num_tasks = 2000;
  auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, o, 3.0, &rng);
  double last = tasks.back().arrival_time;
  EXPECT_NEAR(last / (o.num_tasks - 1), 3.0, 0.5);
}

TEST(WorkloadTest, NamesMentionRateAndPattern) {
  Rng rng(11);
  WorkloadOptions o;
  auto tasks = MakeWorkload(WorkloadKind::kAllCpuBound, o, &rng);
  for (const auto& t : tasks) {
    EXPECT_NE(t.name.find("io/s"), std::string::npos);
    EXPECT_NE(t.name.find("seq"), std::string::npos);
  }
}

}  // namespace
}  // namespace xprs
