// Additional scheduler option coverage: fractional parallelism, FIFO
// pairing, max_concurrent bounds, and balance-point envelope properties.

#include <gtest/gtest.h>

#include <cmath>

#include "sched/balance.h"
#include "sim/fluid_sim.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

TaskProfile Task(TaskId id, double rate, double seq_time,
                 IoPattern pattern = IoPattern::kSequential) {
  TaskProfile t;
  t.id = id;
  t.seq_time = seq_time;
  t.total_ios = rate * seq_time;
  t.pattern = pattern;
  t.query_id = id;
  return t;
}

SimOptions Ideal() {
  SimOptions o;
  o.adjust_latency = 0.0;
  o.excess_penalty = 0.0;
  return o;
}

TEST(FractionalParallelismTest, PairSumsExactlyToN) {
  MachineConfig m = MachineConfig::PaperConfig();
  SchedulerOptions so;
  so.integer_parallelism = false;
  so.model_seek_interference = false;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, Ideal());
  // Rates 60/10 -> continuous balance point (3.2, 4.8).
  sim.Run(&sched, {Task(1, 60.0, 20.0, IoPattern::kRandom),
                   Task(2, 10.0, 24.0)});
  bool saw_fractional = false;
  for (const auto& d : sched.decisions()) {
    if (d.kind == SchedDecision::Kind::kStart &&
        std::abs(d.parallelism - std::llround(d.parallelism)) > 1e-6)
      saw_fractional = true;
  }
  EXPECT_TRUE(saw_fractional) << "continuous mode must emit fractional x";
}

TEST(FractionalParallelismTest, NeverSlowerThanIntegerOnAverage) {
  MachineConfig m = MachineConfig::PaperConfig();
  double frac_total = 0.0, int_total = 0.0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    WorkloadOptions wo;
    auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, wo, &rng);

    SchedulerOptions fractional;
    fractional.integer_parallelism = false;
    AdaptiveScheduler s1(m, fractional);
    FluidSimulator sim1(m, Ideal());
    frac_total += sim1.Run(&s1, tasks).elapsed;

    SchedulerOptions integer;
    AdaptiveScheduler s2(m, integer);
    FluidSimulator sim2(m, Ideal());
    int_total += sim2.Run(&s2, tasks).elapsed;
  }
  EXPECT_LE(frac_total, int_total * 1.02);
}

TEST(FifoPairingTest, PicksFirstArrivalsNotExtremes) {
  MachineConfig m = MachineConfig::PaperConfig();
  SchedulerOptions so;
  so.pairing_rule = PairingRule::kFifo;
  so.model_seek_interference = false;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, Ideal());
  // Two io-bound (35 first, 65 second) and two cpu-bound (25 first, 5
  // second): FIFO must pair 1 with 3, not the extremes 2 with 4.
  SimResult r = sim.Run(&sched, {Task(1, 35.0, 10.0, IoPattern::kRandom),
                                 Task(2, 65.0, 10.0, IoPattern::kRandom),
                                 Task(3, 25.0, 10.0),
                                 Task(4, 5.0, 10.0)});
  ASSERT_GE(sched.decisions().size(), 2u);
  EXPECT_EQ(sched.decisions()[0].task, 1);
  EXPECT_EQ(sched.decisions()[1].task, 3);
  EXPECT_EQ(r.tasks.size(), 4u);
}

TEST(MaxConcurrentTest, OneMeansSerialExecution) {
  MachineConfig m = MachineConfig::PaperConfig();
  SchedulerOptions so;
  so.max_concurrent = 1;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, Ideal());
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, IoPattern::kRandom),
                                 Task(2, 8.0, 10.0)});
  for (const auto& s : sim.trace()) EXPECT_LE(s.tasks_running, 1);
  EXPECT_EQ(r.tasks.size(), 2u);
}

TEST(BalanceEnvelopeTest, EffectiveBandwidthWithinPhysicalRange) {
  MachineConfig m = MachineConfig::PaperConfig();
  for (double ci : {32.0, 40.0, 55.0, 70.0}) {
    for (double cj : {5.0, 15.0, 28.0}) {
      for (IoPattern pi : {IoPattern::kSequential, IoPattern::kRandom}) {
        BalancePoint bp = SolveBalance(Task(1, ci, 10.0, pi),
                                       Task(2, cj, 10.0), m, true);
        if (!bp.valid) continue;
        EXPECT_GE(bp.effective_bandwidth, m.rand_bandwidth() - 1e-6);
        EXPECT_LE(bp.effective_bandwidth, m.seq_bandwidth() + 1e-6);
        EXPECT_NEAR(bp.xi + bp.xj, m.num_cpus, 1e-6);
      }
    }
  }
}

TEST(BalanceEnvelopeTest, ThresholdTaskNeverPairs) {
  // A task exactly at B/N is CPU-bound by definition; paired with another
  // CPU-bound task there is no balance point.
  BalancePoint bp = SolveBalanceConstantB(30.0, 10.0, 8, 240.0);
  // 30*8 = 240 exactly: xj = (CiN - B)/(Ci - Cj) = 0 -> invalid.
  EXPECT_FALSE(bp.valid);
}

TEST(MachineConfigTest, AlternateGeometriesClassifyConsistently) {
  MachineConfig wide;
  wide.num_cpus = 16;
  wide.num_disks = 8;
  // B = 8*60 = 480, threshold = 30 again.
  EXPECT_DOUBLE_EQ(wide.io_cpu_threshold(), 30.0);

  MachineConfig skinny;
  skinny.num_cpus = 2;
  skinny.num_disks = 8;
  // threshold = 480/2 = 240: nearly everything is CPU-bound.
  TaskProfile t = Task(1, 70.0, 10.0);
  EXPECT_FALSE(IsIoBound(t, skinny));
  EXPECT_DOUBLE_EQ(MaxParallelism(t, skinny), 2.0);
}

TEST(MachineConfigTest, SchedulerWorksOnAlternateGeometry) {
  MachineConfig m;
  m.num_cpus = 4;
  m.num_disks = 2;  // B = 120, threshold = 30
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, Ideal());
  SimResult r = sim.Run(&sched, {Task(1, 50.0, 8.0, IoPattern::kRandom),
                                 Task(2, 6.0, 8.0),
                                 Task(3, 40.0, 8.0)});
  EXPECT_EQ(r.tasks.size(), 3u);
  for (const auto& s : sim.trace()) EXPECT_LE(s.cpus_busy, 4.0 + 1e-9);
}

// Regression: on a one-processor machine the integer balance-point split
// used to clamp into an empty range (lo > hi is UB) and could hand a
// running task parallelism n - xi = 0, which the simulator rejects with a
// CHECK. Every issued decision must keep parallelism >= 1.
TEST(IntegerRoundingRegressionTest, SingleCpuMachineNeverIssuesZero) {
  MachineConfig m;
  m.num_cpus = 1;
  m.num_disks = 2;  // threshold = 120: both tasks CPU-bound? no — mix them
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, Ideal());
  SimResult r = sim.Run(&sched, {Task(1, 115.0, 6.0), Task(2, 4.0, 6.0),
                                 Task(3, 100.0, 4.0), Task(4, 2.0, 4.0)});
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.tasks.size(), 4u);
  for (const SchedDecision& d : sched.decisions())
    EXPECT_GE(d.parallelism, 1.0) << d.ToString();
}

// Regression: integer pairing on wider machines must also never drive a
// started task to zero, whatever extreme rate ratios the solver sees.
TEST(IntegerRoundingRegressionTest, ExtremeRatiosKeepParallelismPositive) {
  MachineConfig m = MachineConfig::PaperConfig();
  for (double io_rate : {31.0, 69.9, 239.0}) {
    for (double cpu_rate : {0.0, 0.1, 29.9}) {
      SchedulerOptions so;
      AdaptiveScheduler sched(m, so);
      FluidSimulator sim(m, Ideal());
      SimResult r = sim.Run(&sched, {Task(1, io_rate, 9.0),
                                     Task(2, cpu_rate, 9.0),
                                     Task(3, io_rate, 5.0),
                                     Task(4, cpu_rate, 5.0)});
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      for (const SchedDecision& d : sched.decisions())
        EXPECT_GE(d.parallelism, 1.0)
            << "io=" << io_rate << " cpu=" << cpu_rate << " " << d.ToString();
    }
  }
}

// The two-processor edge: the integer split xi + xj = 2 must give each
// paired task exactly one processor, never 2 + 0.
TEST(IntegerRoundingRegressionTest, TwoCpuPairSplitsOneAndOne) {
  MachineConfig m;
  m.num_cpus = 2;
  m.num_disks = 4;  // threshold = 120
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  FluidSimulator sim(m, Ideal());
  SimResult r = sim.Run(&sched, {Task(1, 130.0, 8.0), Task(2, 5.0, 8.0)});
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  for (const SchedDecision& d : sched.decisions()) {
    EXPECT_GE(d.parallelism, 1.0) << d.ToString();
    EXPECT_LE(d.parallelism, 2.0) << d.ToString();
  }
}

TEST(ObservabilityWiringTest, SchedulerPublishesCountersAndSpans) {
  MachineConfig m = MachineConfig::PaperConfig();
  MemoryTraceRecorder recorder;
  MetricsRegistry metrics;
  SchedulerOptions so;
  AdaptiveScheduler sched(m, so);
  sched.SetObservability({&recorder, &metrics});
  FluidSimulator sim(m, Ideal());
  sim.SetObservability({&recorder, &metrics});
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 8.0), Task(2, 8.0, 8.0),
                                 Task(3, 55.0, 6.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(metrics.counter("sched.starts")->value(), 3u);
  EXPECT_EQ(metrics.counter("sched.adjustments")->value(),
            r.num_adjustments);
  // Every task got a 'B' and an 'E' span in the sim category.
  size_t begins = 0, ends = 0;
  for (const TraceEvent& e : recorder.snapshot()) {
    if (e.category != "sim") continue;
    if (e.phase == 'B') ++begins;
    if (e.phase == 'E') ++ends;
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, 3u);
}

}  // namespace
}  // namespace xprs
