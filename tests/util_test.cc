// Unit tests for the util module: Status, Rng, stats, strings, SpinLock.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/spinlock.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/str.h"

namespace xprs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation r1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "relation r1");
  EXPECT_EQ(s.ToString(), "NotFound: relation r1");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIoError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

Status FailingHelper() { return Status::IoError("disk 3"); }

Status PropagatingHelper() {
  XPRS_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = PropagatingHelper();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

StatusOr<int> GiveSeven() { return 7; }

Status UseAssignOrReturn(int* out) {
  XPRS_ASSIGN_OR_RETURN(int v, GiveSeven());
  *out = v;
  return Status::OK();
}

TEST(StatusTest, AssignOrReturnAssigns) {
  int out = 0;
  ASSERT_TRUE(UseAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(13), 13u);
}

TEST(RngTest, NextIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(5.0, 30.0);
    EXPECT_GE(d, 5.0);
    EXPECT_LT(d, 30.0);
  }
}

TEST(RngTest, MeanIsCentered) {
  Rng rng(17);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.Add(rng.NextDouble());
  EXPECT_NEAR(st.mean(), 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(23);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.1380899, 1e-6);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
}

TEST(PercentilesTest, ExactQuartiles) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) p.Add(i);
  EXPECT_DOUBLE_EQ(p.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Get(50), 51.0);
  EXPECT_DOUBLE_EQ(p.Get(100), 101.0);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "x"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // All four lines (header, rule, two rows).
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(StrTest, FormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrTest, CatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "b"), "a1b");
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(StrJoin(v, ", "), "1, 2, 3");
}

TEST(StrTest, SplitKeepsEmptyFields) {
  auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace xprs
