// Tests for the spilling operators (external merge sort, grace hash join)
// and their integration with the plan builders via ExecContext::spill.

#include <gtest/gtest.h>

#include <set>

#include "exec/executor.h"
#include "exec/fragment.h"
#include "exec/spill_ops.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace xprs {
namespace {

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    t_ = catalog_->CreateTable("t", Schema::PaperSchema()).value();
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          t_->file()
              .Append(Tuple({Value(static_cast<int32_t>(rng.NextInt(0, 399))),
                             Value(std::string(30, 's'))}))
              .ok());
    }
    ASSERT_TRUE(t_->file().Flush().ok());
    ASSERT_TRUE(t_->ComputeStats().ok());

    s_ = catalog_->CreateTable("s", Schema::PaperSchema()).value();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(s_->file()
                      .Append(Tuple({Value(int32_t{i % 400}),
                                     Value(std::string(10, 'u'))}))
                      .ok());
    }
    ASSERT_TRUE(s_->file().Flush().ok());
    ASSERT_TRUE(s_->ComputeStats().ok());
  }

  SpillConfig Spilling(size_t memory_tuples) {
    SpillConfig c;
    c.temp_array = array_.get();
    c.memory_tuples = memory_tuples;
    return c;
  }

  static std::multiset<std::string> Normalize(const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const auto& t : rows) out.insert(t.ToString());
    return out;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* t_ = nullptr;
  Table* s_ = nullptr;
  ExecContext plain_;
};

TEST_F(SpillTest, ExternalSortMatchesInMemorySort) {
  auto in_mem = [&] {
    auto scan = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
    SortOp sort(std::move(scan), 0);
    return Drain(&sort).value();
  }();

  auto scan = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
  ExternalSortOp sort(std::move(scan), 0, Spilling(128));
  auto spilled = Drain(&sort);
  ASSERT_TRUE(spilled.ok());
  ASSERT_GT(sort.runs_spilled(), 4u);  // 2000 tuples / 128 per run

  ASSERT_EQ(spilled->size(), in_mem.size());
  for (size_t i = 0; i < in_mem.size(); ++i) {
    EXPECT_EQ(std::get<int32_t>((*spilled)[i].value(0)),
              std::get<int32_t>(in_mem[i].value(0)))
        << "position " << i;
  }
}

TEST_F(SpillTest, ExternalSortStaysInMemoryWhenInputFits) {
  auto scan = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
  ExternalSortOp sort(std::move(scan), 0, Spilling(100000));
  auto rows = Drain(&sort);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(sort.runs_spilled(), 0u);
  EXPECT_EQ(rows->size(), 2000u);
}

TEST_F(SpillTest, ExternalSortNoTempArrayNeverSpills) {
  SpillConfig c;
  c.memory_tuples = 8;
  auto scan = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
  ExternalSortOp sort(std::move(scan), 0, c);
  auto rows = Drain(&sort);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(sort.runs_spilled(), 0u);
}

TEST_F(SpillTest, ExternalSortPaysTempIo) {
  array_->ResetStats();
  auto scan = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
  ExternalSortOp sort(std::move(scan), 0, Spilling(128));
  ASSERT_TRUE(Drain(&sort).ok());
  // Merge re-reads every spilled run page over and above the base scan.
  EXPECT_GT(array_->total_stats().reads, t_->file().num_pages());
}

TEST_F(SpillTest, GraceHashJoinMatchesInMemoryJoin) {
  auto reference = [&] {
    auto plan = MakeHashJoin(MakeSeqScan(t_, Predicate()),
                             MakeSeqScan(s_, Predicate()), 0, 0);
    return ExecutePlanSequential(*plan, plain_).value();
  }();

  auto outer = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
  auto inner = std::make_unique<SeqScanOp>(s_, Predicate(), plain_);
  GraceHashJoinOp join(std::move(outer), std::move(inner), 0, 0,
                       Spilling(64), /*num_partitions=*/4);
  auto rows = Drain(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(join.spilled());
  EXPECT_EQ(Normalize(*rows), Normalize(reference));
}

TEST_F(SpillTest, GraceHashJoinStaysInMemoryWhenBuildFits) {
  auto outer = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
  auto inner = std::make_unique<SeqScanOp>(s_, Predicate(), plain_);
  GraceHashJoinOp join(std::move(outer), std::move(inner), 0, 0,
                       Spilling(100000));
  auto rows = Drain(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(join.spilled());
  EXPECT_FALSE(rows->empty());
}

TEST_F(SpillTest, BuilderUsesSpillingOpsWhenConfigured) {
  ExecContext spilling;
  spilling.spill = Spilling(64);

  auto plan = MakeHashJoin(
      MakeSort(MakeSeqScan(t_, Predicate::Between(0, 0, 200)), 0),
      MakeSeqScan(s_, Predicate()), 0, 0);

  auto expected = ExecutePlanSequential(*plan, plain_);
  auto spilled = ExecutePlanSequential(*plan, spilling);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(Normalize(*expected), Normalize(*spilled));
}

TEST_F(SpillTest, FragmentedExecutionWithSpill) {
  ExecContext spilling;
  spilling.spill = Spilling(64);

  auto plan = MakeMergeJoin(MakeSort(MakeSeqScan(t_, Predicate()), 0),
                            MakeSort(MakeSeqScan(s_, Predicate()), 0), 0, 0);
  auto expected = ExecutePlanSequential(*plan, plain_);
  auto spilled = ExecutePlanFragmented(*plan, spilling);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(Normalize(*expected), Normalize(*spilled));
}

TEST_F(SpillTest, SpilledSortPropagatesIoError) {
  auto scan = std::make_unique<SeqScanOp>(t_, Predicate(), plain_);
  ExternalSortOp sort(std::move(scan), 0, Spilling(128));
  array_->FailNextReads(1);
  auto rows = Drain(&sort);
  EXPECT_FALSE(rows.ok());
  array_->FailNextReads(0);
}

TEST_F(SpillTest, GraceJoinWithDuplicatesAndNulls) {
  Table* nulls = catalog_->CreateTable("nulls", Schema::PaperSchema()).value();
  for (int i = 0; i < 300; ++i) {
    Value key = (i % 10 == 0) ? Value(std::monostate{})
                              : Value(int32_t{i % 5});
    ASSERT_TRUE(
        nulls->file().Append(Tuple({key, Value(std::string("n"))})).ok());
  }
  ASSERT_TRUE(nulls->file().Flush().ok());

  auto reference = [&] {
    auto plan = MakeHashJoin(MakeSeqScan(nulls, Predicate()),
                             MakeSeqScan(nulls, Predicate()), 0, 0);
    return ExecutePlanSequential(*plan, plain_).value();
  }();

  auto outer = std::make_unique<SeqScanOp>(nulls, Predicate(), plain_);
  auto inner = std::make_unique<SeqScanOp>(nulls, Predicate(), plain_);
  GraceHashJoinOp join(std::move(outer), std::move(inner), 0, 0,
                       Spilling(32), 4);
  auto rows = Drain(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(join.spilled());
  EXPECT_EQ(rows->size(), reference.size());  // NULL keys join nothing
}

// Forwards its child and cancels the token after `after` tuples, so a
// blocking consumer (sort / hash-join drain) observes the cancellation
// mid-spill, from inside its own Open.
class CancelAfterOp : public Operator {
 public:
  CancelAfterOp(std::unique_ptr<Operator> child, CancellationToken* token,
                uint64_t after)
      : child_(std::move(child)), token_(token), after_(after) {}

  Status Open() override { return child_->Open(); }
  Status Next(Tuple* out, bool* eof) override {
    if (++seen_ > after_) token_->Cancel("test: cancel mid-spill");
    XPRS_RETURN_IF_ERROR(token_->Check());
    return child_->Next(out, eof);
  }
  Status Close() override { return child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<Operator> child_;
  CancellationToken* const token_;
  const uint64_t after_;
  uint64_t seen_ = 0;
};

// A sort cancelled after several runs have already spilled must surface
// Cancelled from Open, drop every temp run, and leave zero pinned frames.
TEST_F(SpillTest, ExternalSortCancelledMidSpillReleasesRuns) {
  BufferPool pool(array_.get(), 8);
  CancellationToken token;
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.cancel = &token;

  auto scan = std::make_unique<SeqScanOp>(t_, Predicate(), ctx);
  auto fuse =
      std::make_unique<CancelAfterOp>(std::move(scan), &token, /*after=*/500);
  ExternalSortOp sort(std::move(fuse), 0, Spilling(64));
  Status st = sort.Open();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_GE(sort.runs_spilled(), 5u);  // 500+ tuples / 64 per run
  EXPECT_EQ(sort.open_runs(), 0u);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

// Same for a grace hash join cancelled while partitioning: every build and
// probe partition file is dropped, pins balance.
TEST_F(SpillTest, GraceHashJoinCancelledMidSpillReleasesPartitions) {
  BufferPool pool(array_.get(), 8);
  CancellationToken token;
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.cancel = &token;

  auto outer = std::make_unique<SeqScanOp>(t_, Predicate(), ctx);
  auto inner = std::make_unique<SeqScanOp>(s_, Predicate(), ctx);
  // The build side (500 tuples) exceeds the budget, so partitioning
  // starts; the fuse on the probe side then cancels mid-partition.
  auto fuse =
      std::make_unique<CancelAfterOp>(std::move(outer), &token, /*after=*/300);
  GraceHashJoinOp join(std::move(fuse), std::move(inner), 0, 0, Spilling(64),
                       4);
  Status st = join.Open();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(join.open_partitions(), 0u);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

}  // namespace
}  // namespace xprs
