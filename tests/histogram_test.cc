// Tests for the equi-depth key histogram (§2.4 "data distribution
// information in the system catalog") and its use in selectivity
// estimation, especially on skewed data where the uniform assumption is
// badly wrong.

#include <gtest/gtest.h>

#include "opt/cost_model.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace xprs {
namespace {

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(2, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
  }

  Table* LoadKeys(const std::string& name, const std::vector<int32_t>& keys,
                  int histogram_buckets = 32) {
    Table* t = catalog_->CreateTable(name, Schema::PaperSchema()).value();
    for (int32_t k : keys) {
      EXPECT_TRUE(
          t->file().Append(Tuple({Value(k), Value(std::string("h"))})).ok());
    }
    EXPECT_TRUE(t->file().Flush().ok());
    EXPECT_TRUE(t->ComputeStats(0, histogram_buckets).ok());
    return t;
  }

  // Exact fraction of keys in [lo, hi].
  static double TrueFraction(const std::vector<int32_t>& keys, int32_t lo,
                             int32_t hi) {
    size_t in = 0;
    for (int32_t k : keys) in += (k >= lo && k <= hi);
    return static_cast<double>(in) / keys.size();
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(HistogramTest, BoundsAreSortedAndCoverMax) {
  std::vector<int32_t> keys;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(0, 999)));
  Table* t = LoadKeys("u", keys);
  const TableStats& s = t->stats();
  ASSERT_FALSE(s.histogram_bounds.empty());
  for (size_t i = 1; i < s.histogram_bounds.size(); ++i)
    EXPECT_LT(s.histogram_bounds[i - 1], s.histogram_bounds[i]);
  EXPECT_EQ(s.histogram_bounds.back(), s.max_key);
  ASSERT_EQ(s.histogram_counts.size(), s.histogram_bounds.size());
  uint64_t total = 0;
  for (uint64_t c : s.histogram_counts) total += c;
  EXPECT_EQ(total, 5000u);  // every key accounted for
}

TEST_F(HistogramTest, WholeDomainFractionIsOne) {
  std::vector<int32_t> keys;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(-50, 50)));
  Table* t = LoadKeys("w", keys);
  EXPECT_NEAR(t->stats().KeyRangeFraction(-50, 50), 1.0, 1e-9);
  EXPECT_NEAR(t->stats().KeyRangeFraction(INT32_MIN, INT32_MAX), 1.0, 1e-9);
}

TEST_F(HistogramTest, EmptyRangeIsZero) {
  Table* t = LoadKeys("e", {1, 2, 3});
  EXPECT_DOUBLE_EQ(t->stats().KeyRangeFraction(10, 20), 0.0);
  EXPECT_DOUBLE_EQ(t->stats().KeyRangeFraction(5, 4), 0.0);
}

TEST_F(HistogramTest, SkewedDataEstimatedAccurately) {
  // 90% of keys in [0, 9], 10% spread over [10, 9999]: the uniform
  // assumption wildly underestimates the hot range.
  std::vector<int32_t> keys;
  Rng rng(3);
  for (int i = 0; i < 9000; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(0, 9)));
  for (int i = 0; i < 1000; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(10, 9999)));
  Table* t = LoadKeys("skew", keys);

  double truth = TrueFraction(keys, 0, 9);  // ~0.9
  double est = t->stats().KeyRangeFraction(0, 9);
  EXPECT_NEAR(est, truth, 0.05);

  // The uniform assumption would have said (9-0+1)/10000 = 0.001.
  double uniform = 10.0 / 10000.0;
  EXPECT_GT(est, uniform * 100);
}

TEST_F(HistogramTest, ColdTailEstimatedAccurately) {
  std::vector<int32_t> keys;
  Rng rng(4);
  for (int i = 0; i < 9000; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(0, 9)));
  for (int i = 0; i < 1000; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(10, 9999)));
  Table* t = LoadKeys("tail", keys);

  double truth = TrueFraction(keys, 5000, 9999);  // ~0.05
  double est = t->stats().KeyRangeFraction(5000, 9999);
  EXPECT_NEAR(est, truth, 0.04);
}

TEST_F(HistogramTest, UniformFallbackWithoutHistogram) {
  std::vector<int32_t> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(i);
  Table* t = LoadKeys("nohist", keys, /*histogram_buckets=*/0);
  EXPECT_TRUE(t->stats().histogram_bounds.empty());
  EXPECT_NEAR(t->stats().KeyRangeFraction(0, 49), 0.5, 1e-9);
}

TEST_F(HistogramTest, SingleValueDomain) {
  std::vector<int32_t> keys(500, 42);
  Table* t = LoadKeys("const", keys);
  EXPECT_NEAR(t->stats().KeyRangeFraction(42, 42), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t->stats().KeyRangeFraction(43, 100), 0.0);
}

TEST_F(HistogramTest, CostModelUsesHistogramForCardinality) {
  std::vector<int32_t> keys;
  Rng rng(5);
  for (int i = 0; i < 4500; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(0, 9)));
  for (int i = 0; i < 500; ++i)
    keys.push_back(static_cast<int32_t>(rng.NextInt(10, 999)));
  Table* t = LoadKeys("cm", keys);

  CostModel model;
  auto plan = MakeSeqScan(t, Predicate::Between(0, 0, 9));
  PlanEstimate est = model.Estimate(*plan);
  double truth = TrueFraction(keys, 0, 9) * keys.size();
  EXPECT_NEAR(est.rows, truth, truth * 0.1);
}

TEST_F(HistogramTest, EstimationErrorBoundedAcrossRandomRanges) {
  std::vector<int32_t> keys;
  Rng rng(6);
  for (int i = 0; i < 8000; ++i) {
    // Mixture: two hot clusters plus a uniform tail.
    double u = rng.NextDouble();
    if (u < 0.4)
      keys.push_back(static_cast<int32_t>(rng.NextInt(100, 120)));
    else if (u < 0.8)
      keys.push_back(static_cast<int32_t>(rng.NextInt(5000, 5100)));
    else
      keys.push_back(static_cast<int32_t>(rng.NextInt(0, 9999)));
  }
  Table* t = LoadKeys("mix", keys, /*histogram_buckets=*/64);

  for (int trial = 0; trial < 50; ++trial) {
    int32_t a = static_cast<int32_t>(rng.NextInt(0, 9999));
    int32_t b = static_cast<int32_t>(rng.NextInt(0, 9999));
    if (a > b) std::swap(a, b);
    double truth = TrueFraction(keys, a, b);
    double est = t->stats().KeyRangeFraction(a, b);
    EXPECT_NEAR(est, truth, 0.06) << "range [" << a << "," << b << "]";
  }
}

}  // namespace
}  // namespace xprs
