// Differential correctness harness (fast tier): fixed-seed random queries
// run through the serial reference, the fragmented executor, parallel
// fragment runs at several degrees, the full master control loop, the
// spill path and the buffer pool — all result sets must agree — plus the
// storage fault-injection cases and the §2.2 io conservation checks.
//
// A failure prints the offending seed; replay any run with
// XPRS_SEED=<seed> (TestSeed mixes it into every site).

#include <gtest/gtest.h>

#include <iostream>
#include <memory>
#include <vector>

#include "util/check.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/disk_array.h"
#include "testing/differential.h"
#include "testing/query_gen.h"
#include "util/rng.h"
#include "workload/relations.h"

namespace xprs {
namespace {

struct Fixture {
  DiskArray array{4, DiskMode::kInstant};
  Catalog catalog{&array};
  std::vector<Table*> tables;

  explicit Fixture(uint64_t seed,
                   GeneratedWorkloadOptions workload = {}) {
    Rng rng(seed);
    auto built = BuildGeneratedWorkload(&catalog, workload, &rng);
    XPRS_CHECK_OK(built.status());
    tables = built.value();
  }
};

// The acceptance bar: 200+ generated queries, three parallel degrees, the
// master, the spill path and the pool, zero mismatches.
TEST(DifferentialTest, TwoHundredGeneratedQueries) {
  const uint64_t seed = TestSeed(0xD1FF0001);
  Fixture fx(seed);
  DifferentialOptions options;  // degrees {2, 3, 5}
  DifferentialOracle oracle(&fx.array, options, seed ^ 1);
  QueryGenerator gen(fx.tables, QueryGenerator::Options(), seed ^ 2);
  for (int i = 0; i < 200; ++i) {
    std::unique_ptr<PlanNode> plan = gen.NextPlan();
    Status status = oracle.CheckPlan(*plan);
    ASSERT_TRUE(status.ok()) << "query " << i << " (seed " << seed
                             << "): " << status.ToString();
  }
  const DifferentialReport& report = oracle.report();
  EXPECT_EQ(report.plans_checked, 200u);
  // reference + fragmented + 3 degrees + master + spill + pooled = 8.
  EXPECT_GE(report.executions_compared, 200u * 8);
  std::cout << "differential report: " << report.ToString() << "\n";
}

// Chaos acceptance bar: 200 fixed-seed queries re-run through every mode
// with a 2% random read-fault injector armed the whole time. Every run
// must match the serial reference or fail with a retryable status, and
// the resilience ladder's recoveries must be visible downstream as
// resilience.retry.* / resilience.degrade.* metrics and trace events.
TEST(DifferentialTest, TwoHundredChaosQueries) {
  const uint64_t seed = TestSeed(0xD1FF0008);
  Fixture fx(seed);
  MetricsRegistry metrics;
  MemoryTraceRecorder trace;
  DifferentialOptions options;
  options.chaos_read_fault_rate = 0.02;
  options.chaos_obs.metrics = &metrics;
  options.chaos_obs.trace = &trace;
  DifferentialOracle oracle(&fx.array, options, seed ^ 1);
  QueryGenerator gen(fx.tables, QueryGenerator::Options(), seed ^ 2);
  for (int i = 0; i < 200; ++i) {
    std::unique_ptr<PlanNode> plan = gen.NextPlan();
    Status status = oracle.CheckPlanChaos(*plan);
    ASSERT_TRUE(status.ok()) << "query " << i << " (seed " << seed
                             << "): " << status.ToString();
  }
  const DifferentialReport& report = oracle.report();
  EXPECT_EQ(report.plans_checked, 200u);
  EXPECT_GT(report.faults_injected, 0u);
  // The ladder modes must actually have absorbed faults and still matched
  // the reference — not merely failed retryably every time.
  EXPECT_GT(report.chaos_recovered, 0u);

  const uint64_t retries = metrics.counter("resilience.retry.query")->value() +
                           metrics.counter("resilience.retry.fragment")->value();
  const uint64_t degrades =
      metrics.counter("resilience.degrade.parallelism")->value() +
      metrics.counter("resilience.degrade.serial")->value() +
      metrics.counter("resilience.degrade.spill")->value();
  EXPECT_GT(retries, 0u);
  size_t resilience_events = 0;
  for (const TraceEvent& event : trace.snapshot()) {
    if (event.category == "resilience") ++resilience_events;
  }
  EXPECT_GE(resilience_events, retries + degrades);
  std::cout << "chaos report: " << report.ToString() << " retries=" << retries
            << " degrades=" << degrades << "\n";
}

// NULL join keys and NULL aggregate inputs must behave identically in
// every mode (serial skips them; partitioned runs must too).
TEST(DifferentialTest, NullHeavyRelations) {
  const uint64_t seed = TestSeed(0xD1FF0002);
  GeneratedWorkloadOptions workload;
  workload.max_null_key_fraction = 0.6;
  Fixture fx(seed, workload);
  DifferentialOracle oracle(&fx.array, DifferentialOptions(), seed ^ 1);
  QueryGenerator::Options gen_options;
  gen_options.max_joins = 2;
  gen_options.aggregate_prob = 0.6;
  QueryGenerator gen(fx.tables, gen_options, seed ^ 2);
  for (int i = 0; i < 40; ++i) {
    std::unique_ptr<PlanNode> plan = gen.NextPlan();
    Status status = oracle.CheckPlan(*plan);
    ASSERT_TRUE(status.ok()) << "query " << i << " (seed " << seed
                             << "): " << status.ToString();
  }
}

// §2.2: page partitioning at any degree reads exactly the serial scan's
// pages — io demand is a property of the task, not of its parallelism.
TEST(DifferentialTest, ScanIoConservation) {
  const uint64_t seed = TestSeed(0xD1FF0003);
  Fixture fx(seed);
  DifferentialOptions options;
  options.degrees = {2, 3, 4, 7};
  DifferentialOracle oracle(&fx.array, options, seed ^ 1);
  for (Table* table : fx.tables) {
    Status status = oracle.CheckScanIoConservation(table);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

// Read and fetch hooks: the armed fault must surface as Status, leave the
// pool with zero pins, and the transient retry must match the reference.
TEST(DifferentialTest, ReadAndFetchFaultsSurfaceAsStatus) {
  const uint64_t seed = TestSeed(0xD1FF0004);
  Fixture fx(seed);
  DifferentialOracle oracle(&fx.array, DifferentialOptions(), seed ^ 1);
  QueryGenerator gen(fx.tables, QueryGenerator::Options(), seed ^ 2);
  for (int i = 0; i < 10; ++i) {
    std::unique_ptr<PlanNode> plan = gen.NextPlan();
    Status status = oracle.CheckFaultSurfacing(*plan);
    ASSERT_TRUE(status.ok()) << "query " << i << " (seed " << seed
                             << "): " << status.ToString();
  }
  // The first read and the first pool fetch fire deterministically on
  // every non-empty plan; 10 plans guarantee both hooks really injected.
  EXPECT_GE(oracle.report().fault_cases, 30u);
  EXPECT_GE(oracle.report().faults_injected, 2u);
}

// Write hook, via a plan that is guaranteed to spill: a Sort whose input
// exceeds the in-memory budget writes runs to the temp array, and the
// first of those writes is torn short.
TEST(DifferentialTest, ShortWriteDuringSpillSurfacesAsStatus) {
  const uint64_t seed = TestSeed(0xD1FF0005);
  Fixture fx(seed);
  DifferentialOptions options;
  options.spill_memory_tuples = 16;  // every table here exceeds this
  DifferentialOracle oracle(&fx.array, options, seed ^ 1);
  std::unique_ptr<PlanNode> plan =
      MakeSort(MakeSeqScan(fx.tables[0], Predicate()), 0);
  const uint64_t before = oracle.report().faults_injected;
  ASSERT_TRUE(oracle.CheckFaultSurfacing(*plan).ok());
  EXPECT_GE(oracle.report().faults_injected, before + 3);  // all three hooks
}

// Write hook at the storage layer proper: a torn write during bulk load
// must fail the loader with a Status, not corrupt silently.
TEST(DifferentialTest, ShortWriteDuringBulkLoadSurfacesAsStatus) {
  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  Status status =
      CheckShortWriteSurfacing(&catalog, "torn", TestSeed(0xD1FF0006));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Same seed, same tables, same options => identical plan sequence; the
// printed-seed replay contract rests on this.
TEST(DifferentialTest, GeneratorIsDeterministic) {
  const uint64_t seed = TestSeed(0xD1FF0007);
  Fixture fx(seed);
  QueryGenerator a(fx.tables, QueryGenerator::Options(), 99);
  QueryGenerator b(fx.tables, QueryGenerator::Options(), 99);
  for (int i = 0; i < 25; ++i)
    EXPECT_EQ(a.NextPlan()->ToString(), b.NextPlan()->ToString());
}

}  // namespace
}  // namespace xprs
