// Tests for expressions, plans, operators, and fragment decomposition.
// Join operators are cross-checked against each other and fragmented
// execution against the sequential reference executor.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/executor.h"
#include "exec/fragment.h"
#include "exec/plan.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace xprs {
namespace {

// Fixture: a small database with two relations.
//   r(a, b): a = 0..199 (each value once), b short text
//   s(a, b): a = 0..99 duplicated twice, b short text
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());

    r_ = catalog_->CreateTable("r", Schema::PaperSchema()).value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(r_->file()
                      .Append(Tuple({Value(int32_t{i}),
                                     Value(std::string("r") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(r_->file().Flush().ok());
    ASSERT_TRUE(r_->BuildIndex(0).ok());
    ASSERT_TRUE(r_->ComputeStats().ok());

    s_ = catalog_->CreateTable("s", Schema::PaperSchema()).value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(s_->file()
                      .Append(Tuple({Value(int32_t{i % 100}),
                                     Value(std::string("s") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(s_->file().Flush().ok());
    ASSERT_TRUE(s_->BuildIndex(0).ok());
    ASSERT_TRUE(s_->ComputeStats().ok());
  }

  // Normalizes results for order-insensitive comparison.
  static std::multiset<std::string> Normalize(const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const auto& t : rows) out.insert(t.ToString());
    return out;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* r_ = nullptr;
  Table* s_ = nullptr;
  ExecContext ctx_;
};

TEST(PredicateTest, TrueAcceptsEverything) {
  Predicate p;
  EXPECT_TRUE(p.IsTrue());
  EXPECT_TRUE(p.Eval(Tuple({Value(int32_t{1})})));
}

TEST(PredicateTest, CompareEvaluates) {
  Tuple t({Value(int32_t{10}), Value(std::string("x"))});
  EXPECT_TRUE(Predicate::Compare(0, CmpOp::kEq, Value(int32_t{10})).Eval(t));
  EXPECT_FALSE(Predicate::Compare(0, CmpOp::kLt, Value(int32_t{10})).Eval(t));
  EXPECT_TRUE(Predicate::Compare(0, CmpOp::kLe, Value(int32_t{10})).Eval(t));
  EXPECT_TRUE(
      Predicate::Compare(1, CmpOp::kEq, Value(std::string("x"))).Eval(t));
}

TEST(PredicateTest, NullComparesFalse) {
  Tuple t({Value(std::monostate{})});
  EXPECT_FALSE(Predicate::Compare(0, CmpOp::kEq, Value(int32_t{0})).Eval(t));
  EXPECT_FALSE(Predicate::Compare(0, CmpOp::kNe, Value(int32_t{0})).Eval(t));
}

TEST(PredicateTest, BetweenAndLogic) {
  Predicate p = Predicate::Between(0, 5, 10);
  EXPECT_TRUE(p.Eval(Tuple({Value(int32_t{5})})));
  EXPECT_TRUE(p.Eval(Tuple({Value(int32_t{10})})));
  EXPECT_FALSE(p.Eval(Tuple({Value(int32_t{11})})));
  Predicate q = Predicate::Or(Predicate::Compare(0, CmpOp::kEq, Value(int32_t{1})),
                              Predicate::Compare(0, CmpOp::kEq, Value(int32_t{2})));
  EXPECT_TRUE(q.Eval(Tuple({Value(int32_t{2})})));
  EXPECT_FALSE(q.Eval(Tuple({Value(int32_t{3})})));
}

TEST(PredicateTest, ExtractKeyRangeNarrows) {
  KeyRange range{INT32_MIN, INT32_MAX};
  Predicate p = Predicate::Between(0, 5, 10);
  EXPECT_TRUE(p.ExtractKeyRange(0, &range));
  EXPECT_EQ(range.lo, 5);
  EXPECT_EQ(range.hi, 10);

  KeyRange range2{INT32_MIN, INT32_MAX};
  Predicate lt = Predicate::Compare(0, CmpOp::kLt, Value(int32_t{7}));
  EXPECT_TRUE(lt.ExtractKeyRange(0, &range2));
  EXPECT_EQ(range2.hi, 6);

  KeyRange range3{INT32_MIN, INT32_MAX};
  EXPECT_FALSE(lt.ExtractKeyRange(1, &range3));  // other column
  Predicate orp = Predicate::Or(lt, lt);
  EXPECT_FALSE(orp.ExtractKeyRange(0, &range3));  // OR is not a range
}

TEST(PredicateTest, ShiftColumns) {
  Predicate p = Predicate::Compare(1, CmpOp::kEq, Value(int32_t{5}));
  Predicate shifted = p.ShiftColumns(2);
  Tuple t({Value(int32_t{0}), Value(int32_t{0}), Value(int32_t{0}),
           Value(int32_t{5})});
  EXPECT_TRUE(shifted.Eval(t));
}

TEST_F(ExecTest, SeqScanReadsEverything) {
  SeqScanOp scan(r_, Predicate(), ctx_);
  auto rows = Drain(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 200u);
  EXPECT_EQ(scan.pages_read(), r_->file().num_pages());
}

TEST_F(ExecTest, SeqScanAppliesPredicate) {
  SeqScanOp scan(r_, Predicate::Between(0, 50, 59), ctx_);
  auto rows = Drain(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(ExecTest, PartitionedScansUnionToFullScan) {
  for (int n : {2, 3, 4, 7}) {
    std::multiset<std::string> combined;
    for (int i = 0; i < n; ++i) {
      SeqScanOp scan(r_, Predicate(), ctx_, n, i);
      auto rows = Drain(&scan);
      ASSERT_TRUE(rows.ok());
      for (const auto& t : *rows) combined.insert(t.ToString());
    }
    EXPECT_EQ(combined.size(), 200u) << "n=" << n;
  }
}

TEST_F(ExecTest, IndexScanMatchesSeqScanFilter) {
  KeyRange range{20, 40};
  IndexScanOp iscan(r_, Predicate(), range, ctx_);
  auto via_index = Drain(&iscan);
  ASSERT_TRUE(via_index.ok());

  SeqScanOp sscan(r_, Predicate::Between(0, 20, 40), ctx_);
  auto via_seq = Drain(&sscan);
  ASSERT_TRUE(via_seq.ok());

  EXPECT_EQ(Normalize(*via_index), Normalize(*via_seq));
  EXPECT_EQ(iscan.tuples_fetched(), 21u);
}

TEST_F(ExecTest, IndexScanPaysRandomIo) {
  array_->ResetStats();
  KeyRange range{0, 199};
  IndexScanOp scan(r_, Predicate(), range, ctx_);
  ASSERT_TRUE(Drain(&scan).ok());
  DiskStats stats = array_->total_stats();
  // One page read per tuple, overwhelmingly random/short-seek.
  EXPECT_EQ(stats.reads, 200u);
  EXPECT_GT(stats.rand_reads + stats.almost_seq_reads, 150u);
}

TEST_F(ExecTest, FilterOp) {
  auto scan = std::make_unique<SeqScanOp>(r_, Predicate(), ctx_);
  FilterOp filter(std::move(scan),
                  Predicate::Compare(0, CmpOp::kLt, Value(int32_t{5})));
  auto rows = Drain(&filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
}

TEST_F(ExecTest, SortOrdersRows) {
  auto scan = std::make_unique<SeqScanOp>(s_, Predicate(), ctx_);
  SortOp sort(std::move(scan), 0);
  auto rows = Drain(&sort);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 200u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE(std::get<int32_t>((*rows)[i - 1].value(0)),
              std::get<int32_t>((*rows)[i].value(0)));
  }
}

// All three join algorithms must agree with each other.
TEST_F(ExecTest, JoinAlgorithmsAgree) {
  auto run = [&](PlanKind kind) {
    std::unique_ptr<PlanNode> plan;
    auto r_scan = MakeSeqScan(r_, Predicate::Between(0, 0, 80));
    auto s_scan = MakeSeqScan(s_, Predicate());
    switch (kind) {
      case PlanKind::kNestLoopJoin:
        plan = MakeNestLoopJoin(std::move(r_scan), std::move(s_scan), 0, 0);
        break;
      case PlanKind::kHashJoin:
        plan = MakeHashJoin(std::move(r_scan), std::move(s_scan), 0, 0);
        break;
      case PlanKind::kMergeJoin:
        plan = MakeMergeJoin(MakeSort(std::move(r_scan), 0),
                             MakeSort(std::move(s_scan), 0), 0, 0);
        break;
      default:
        ADD_FAILURE();
    }
    auto rows = ExecutePlanSequential(*plan, ctx_);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return Normalize(*rows);
  };

  auto nl = run(PlanKind::kNestLoopJoin);
  auto hj = run(PlanKind::kHashJoin);
  auto mj = run(PlanKind::kMergeJoin);
  // r.a in [0,80] joins s.a in {0..99} x2 -> 81 keys x 2 = 162 rows.
  EXPECT_EQ(nl.size(), 162u);
  EXPECT_EQ(nl, hj);
  EXPECT_EQ(nl, mj);
}

TEST_F(ExecTest, JoinOutputSchemaIsConcatenation) {
  auto plan = MakeHashJoin(MakeSeqScan(r_, Predicate()),
                           MakeSeqScan(s_, Predicate()), 0, 0);
  EXPECT_EQ(plan->output_schema.num_columns(), 4u);
}

TEST_F(ExecTest, IsLeftDeepClassification) {
  auto left_deep = MakeHashJoin(
      MakeHashJoin(MakeSeqScan(r_, Predicate()), MakeSeqScan(s_, Predicate()),
                   0, 0),
      MakeSeqScan(s_, Predicate()), 0, 0);
  EXPECT_TRUE(IsLeftDeep(*left_deep));

  auto bushy = MakeHashJoin(
      MakeHashJoin(MakeSeqScan(r_, Predicate()), MakeSeqScan(s_, Predicate()),
                   0, 0),
      MakeHashJoin(MakeSeqScan(r_, Predicate()), MakeSeqScan(s_, Predicate()),
                   0, 0),
      0, 0);
  EXPECT_FALSE(IsLeftDeep(*bushy));
  EXPECT_EQ(PlanSize(*bushy), 7u);
}

TEST_F(ExecTest, CloneIsDeepAndEquivalent) {
  auto plan = MakeMergeJoin(MakeSort(MakeSeqScan(r_, Predicate()), 0),
                            MakeSort(MakeSeqScan(s_, Predicate()), 0), 0, 0);
  auto copy = plan->Clone();
  auto a = ExecutePlanSequential(*plan, ctx_);
  auto b = ExecutePlanSequential(*copy, ctx_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Normalize(*a), Normalize(*b));
}

TEST_F(ExecTest, FragmentDecompositionCounts) {
  // Single scan: one fragment.
  auto scan_plan = MakeSeqScan(r_, Predicate());
  EXPECT_EQ(FragmentGraph::Decompose(*scan_plan).fragments().size(), 1u);

  // Hash join: probe fragment + build fragment.
  auto hj = MakeHashJoin(MakeSeqScan(r_, Predicate()),
                         MakeSeqScan(s_, Predicate()), 0, 0);
  EXPECT_EQ(FragmentGraph::Decompose(*hj).fragments().size(), 2u);

  // Merge join of two sorts: top fragment + two sort fragments.
  auto mj = MakeMergeJoin(MakeSort(MakeSeqScan(r_, Predicate()), 0),
                          MakeSort(MakeSeqScan(s_, Predicate()), 0), 0, 0);
  FragmentGraph g = FragmentGraph::Decompose(*mj);
  EXPECT_EQ(g.fragments().size(), 3u);
  EXPECT_EQ(g.fragment(g.root_fragment()).deps.size(), 2u);

  // Nest loop: everything pipelines -> one fragment.
  auto nl = MakeNestLoopJoin(MakeSeqScan(r_, Predicate()),
                             MakeSeqScan(s_, Predicate()), 0, 0);
  EXPECT_EQ(FragmentGraph::Decompose(*nl).fragments().size(), 1u);
}

TEST_F(ExecTest, TopologicalOrderRespectsDeps) {
  auto plan = MakeHashJoin(
      MakeHashJoin(MakeSeqScan(r_, Predicate()), MakeSeqScan(s_, Predicate()),
                   0, 0),
      MakeSort(MakeSeqScan(s_, Predicate()), 0), 0, 0);
  FragmentGraph g = FragmentGraph::Decompose(*plan);
  auto order = g.TopologicalOrder();
  std::map<int, size_t> pos;
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& f : g.fragments())
    for (int dep : f.deps) EXPECT_LT(pos[dep], pos[f.id]);
}

TEST_F(ExecTest, FragmentedExecutionMatchesSequential) {
  // A bushy plan exercising every boundary kind.
  auto bushy = MakeHashJoin(
      MakeMergeJoin(MakeSort(MakeSeqScan(r_, Predicate::Between(0, 0, 120)), 0),
                    MakeSort(MakeSeqScan(s_, Predicate()), 0), 0, 0),
      MakeHashJoin(MakeSeqScan(r_, Predicate()),
                   MakeSeqScan(s_, Predicate::Between(0, 10, 60)), 0, 0),
      0, 0);

  auto seq = ExecutePlanSequential(*bushy, ctx_);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  auto frag = ExecutePlanFragmented(*bushy, ctx_);
  ASSERT_TRUE(frag.ok()) << frag.status().ToString();
  EXPECT_EQ(Normalize(*seq), Normalize(*frag));
  EXPECT_FALSE(seq->empty());
}

TEST_F(ExecTest, FragmentPartitionedExecutionUnions) {
  // Run the probe fragment of a hash join in 3 partitions; the union must
  // equal the unpartitioned result.
  auto plan = MakeHashJoin(MakeSeqScan(r_, Predicate()),
                           MakeSeqScan(s_, Predicate()), 0, 0);
  FragmentGraph g = FragmentGraph::Decompose(*plan);
  int build_id = g.fragment(g.root_fragment()).deps[0];

  auto build = ExecuteFragment(g, build_id, {}, ctx_);
  ASSERT_TRUE(build.ok());
  std::map<int, const TempResult*> inputs{{build_id, &build.value()}};

  std::multiset<std::string> combined;
  for (int i = 0; i < 3; ++i) {
    auto part = ExecuteFragment(g, g.root_fragment(), inputs, ctx_, 3, i);
    ASSERT_TRUE(part.ok());
    for (const auto& t : part->tuples) combined.insert(t.ToString());
  }

  auto whole = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(combined, Normalize(*whole));
}

TEST_F(ExecTest, BufferPoolPathAgreesWithDirectPath) {
  BufferPool pool(array_.get(), 64);
  ExecContext pooled;
  pooled.pool = &pool;

  auto plan = MakeHashJoin(MakeSeqScan(r_, Predicate::Between(0, 0, 99)),
                           MakeSeqScan(s_, Predicate()), 0, 0);
  auto direct = ExecutePlanSequential(*plan, ctx_);
  auto buffered = ExecutePlanSequential(*plan, pooled);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(buffered.ok());
  EXPECT_EQ(Normalize(*direct), Normalize(*buffered));
  EXPECT_GT(pool.stats().misses, 0u);
}

TEST_F(ExecTest, NestLoopInnerRescanPaysIo) {
  array_->ResetStats();
  auto plan = MakeNestLoopJoin(MakeSeqScan(r_, Predicate::Between(0, 0, 9)),
                               MakeSeqScan(s_, Predicate()), 0, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);  // 10 keys x 2 dup in s
  // Inner rescans: io grows with outer cardinality.
  EXPECT_GT(array_->total_stats().reads,
            static_cast<uint64_t>(r_->file().num_pages() +
                                  s_->file().num_pages()));
}

}  // namespace
}  // namespace xprs
