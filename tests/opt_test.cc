// Tests for the cost model, join enumeration, and two-phase / parcost
// optimization. Every optimized plan is also executed and cross-checked
// against a fixed reference plan for result correctness.

#include <gtest/gtest.h>

#include <set>

#include "exec/executor.h"
#include "opt/two_phase.h"
#include "util/rng.h"
#include "util/str.h"

namespace xprs {
namespace {

// Fixture: four relations of varying size / tuple width over a 4-disk
// array. Key columns are correlated so multi-way joins have results.
class OptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());

    a_ = Load("a", 600, 24, /*key_mod=*/200);
    b_ = Load("b", 300, 400, /*key_mod=*/200);
    c_ = Load("c", 150, 40, /*key_mod=*/200);
    d_ = Load("d", 60, 2000, /*key_mod=*/200);
  }

  Table* Load(const std::string& name, int tuples, int width, int key_mod) {
    Table* t = catalog_->CreateTable(name, Schema::PaperSchema()).value();
    Rng rng(name[0]);
    for (int i = 0; i < tuples; ++i) {
      int32_t key = static_cast<int32_t>(rng.NextInt(0, key_mod - 1));
      EXPECT_TRUE(
          t->file()
              .Append(Tuple({Value(key), Value(std::string(width, 'v'))}))
              .ok());
    }
    EXPECT_TRUE(t->file().Flush().ok());
    EXPECT_TRUE(t->BuildIndex(0).ok());
    EXPECT_TRUE(t->ComputeStats().ok());
    return t;
  }

  static std::multiset<std::string> Normalize(const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const auto& t : rows) out.insert(t.ToString());
    return out;
  }

  QuerySpec TwoWay() {
    QuerySpec q;
    q.relations = {{a_, Predicate()}, {b_, Predicate()}};
    q.joins = {{0, 0, 1, 0}};
    return q;
  }

  QuerySpec ThreeWay() {
    QuerySpec q;
    q.relations = {{a_, Predicate::Between(0, 0, 150)},
                   {b_, Predicate()},
                   {c_, Predicate()}};
    q.joins = {{0, 0, 1, 0}, {1, 0, 2, 0}};
    return q;
  }

  QuerySpec FourWay() {
    QuerySpec q;
    q.relations = {{a_, Predicate::Between(0, 0, 100)},
                   {b_, Predicate()},
                   {c_, Predicate()},
                   {d_, Predicate()}};
    q.joins = {{0, 0, 1, 0}, {1, 0, 2, 0}, {2, 0, 3, 0}};
    return q;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* a_ = nullptr;
  Table* b_ = nullptr;
  Table* c_ = nullptr;
  Table* d_ = nullptr;
  CostModel model_;
  ExecContext ctx_;
};

TEST_F(OptTest, CalibrationMatchesPaperIoRates) {
  // r_max: one fat tuple per page -> ~70 io/s; r_min: b tiny -> ~5 io/s.
  Table* rmax = Load("rmax", 50, 7500, 1000);
  Table* rmin = Load("rmin", 3000, 0, 1000);

  auto scan_max = MakeSeqScan(rmax, Predicate());
  PlanEstimate em = model_.Estimate(*scan_max);
  EXPECT_NEAR(em.ios / em.seq_time, 70.0, 2.0);

  auto scan_min = MakeSeqScan(rmin, Predicate());
  PlanEstimate en = model_.Estimate(*scan_min);
  EXPECT_NEAR(en.ios / en.seq_time, 5.0, 1.5);
}

TEST_F(OptTest, SelectivityFromStats) {
  // Keys 0..199 uniform; the equi-depth histogram tracks the empirical
  // draw, so allow sampling noise around the ideal 0.5.
  EXPECT_NEAR(model_.Selectivity(Predicate::Between(0, 0, 99), *a_), 0.5,
              0.05);
  EXPECT_NEAR(model_.Selectivity(Predicate::Between(0, 0, 199), *a_), 1.0,
              0.01);
  EXPECT_NEAR(model_.Selectivity(Predicate::Compare(0, CmpOp::kEq,
                                                    Value(int32_t{5})),
                                 *a_),
              1.0 / 200.0, 0.002);
  EXPECT_DOUBLE_EQ(model_.Selectivity(Predicate(), *a_), 1.0);
  EXPECT_DOUBLE_EQ(
      model_.Selectivity(Predicate::Between(0, 1000, 2000), *a_), 0.0);
}

TEST_F(OptTest, EstimateCardinalityReasonable) {
  auto scan = MakeSeqScan(a_, Predicate::Between(0, 0, 99));
  PlanEstimate est = model_.Estimate(*scan);
  auto rows = ExecutePlanSequential(*scan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_NEAR(est.rows, static_cast<double>(rows->size()),
              0.25 * rows->size() + 10);
}

TEST_F(OptTest, IndexScanCheaperForNarrowPredicate) {
  JoinEnumerator enumerator(&model_);
  QuerySpec narrow;
  narrow.relations = {{b_, Predicate::Between(0, 10, 12)}};
  CandidatePlan p = enumerator.BestAccessPath(narrow, 0);
  EXPECT_EQ(p.plan->kind, PlanKind::kIndexScan);

  QuerySpec wide;
  wide.relations = {{b_, Predicate()}};
  CandidatePlan q = enumerator.BestAccessPath(wide, 0);
  EXPECT_EQ(q.plan->kind, PlanKind::kSeqScan);
}

TEST_F(OptTest, FragmentProfilesWireDependencies) {
  auto plan = MakeHashJoin(MakeSeqScan(a_, Predicate()),
                           MakeSeqScan(b_, Predicate()), 0, 0);
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  auto profiles = model_.FragmentProfiles(graph, /*query_id=*/7,
                                          /*id_base=*/100);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].id, 100);
  EXPECT_EQ(profiles[1].id, 101);
  EXPECT_EQ(profiles[0].deps, (std::vector<TaskId>{101}));
  EXPECT_TRUE(profiles[1].deps.empty());
  for (const auto& p : profiles) {
    EXPECT_GT(p.seq_time, 0.0);
    EXPECT_EQ(p.query_id, 7);
  }
}

TEST_F(OptTest, IndexHeavyFragmentClassifiedRandom) {
  auto plan = MakeIndexScan(b_, Predicate(), KeyRange{0, 50});
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  auto profiles = model_.FragmentProfiles(graph);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].pattern, IoPattern::kRandom);

  auto seq = MakeSeqScan(b_, Predicate());
  FragmentGraph g2 = FragmentGraph::Decompose(*seq);
  EXPECT_EQ(model_.FragmentProfiles(g2)[0].pattern, IoPattern::kSequential);
}

TEST_F(OptTest, BestPlanExecutesCorrectly) {
  JoinEnumerator enumerator(&model_);
  QuerySpec q = ThreeWay();

  auto best = enumerator.BestPlan(q, TreeShape::kBushy);
  ASSERT_TRUE(best.ok()) << best.status().ToString();

  // Reference: fixed hash-join order a-(b-c).
  auto reference = MakeHashJoin(
      MakeSeqScan(a_, Predicate::Between(0, 0, 150)),
      MakeHashJoin(MakeSeqScan(b_, Predicate()), MakeSeqScan(c_, Predicate()),
                   0, 0),
      0, 0);

  auto got = ExecutePlanSequential(*best->plan, ctx_);
  auto want = ExecutePlanSequential(*reference, ctx_);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ASSERT_FALSE(want->empty());

  // Output column order may differ between join orders; compare per-row
  // sorted cell multisets.
  auto canon = [](const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const auto& t : rows) {
      std::multiset<std::string> cells;
      for (size_t i = 0; i < t.size(); ++i)
        cells.insert(ValueToString(t.value(i)));
      out.insert(StrJoin(cells, "|"));
    }
    return out;
  };
  EXPECT_EQ(canon(*got), canon(*want));
}

TEST_F(OptTest, LeftDeepPlansAreLeftDeep) {
  JoinEnumerator enumerator(&model_);
  QuerySpec q = FourWay();
  auto plan = enumerator.BestPlan(q, TreeShape::kLeftDeep);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(IsLeftDeep(*plan->plan));
}

TEST_F(OptTest, BushySearchNeverWorseThanLeftDeep) {
  JoinEnumerator enumerator(&model_);
  for (QuerySpec q : {TwoWay(), ThreeWay(), FourWay()}) {
    auto ld = enumerator.BestPlan(q, TreeShape::kLeftDeep);
    auto bushy = enumerator.BestPlan(q, TreeShape::kBushy);
    ASSERT_TRUE(ld.ok());
    ASSERT_TRUE(bushy.ok());
    EXPECT_LE(bushy->seqcost, ld->seqcost + 1e-9);
  }
}

TEST_F(OptTest, TopPlansOrderedBySeqcost) {
  JoinEnumerator enumerator(&model_);
  auto plans = enumerator.TopPlans(ThreeWay(), 3);
  ASSERT_TRUE(plans.ok());
  EXPECT_GE(plans->size(), 2u);
  for (size_t i = 1; i < plans->size(); ++i)
    EXPECT_LE((*plans)[i - 1].seqcost, (*plans)[i].seqcost);
}

TEST_F(OptTest, DisconnectedJoinGraphRejected) {
  JoinEnumerator enumerator(&model_);
  QuerySpec q;
  q.relations = {{a_, Predicate()}, {b_, Predicate()}};
  // no joins
  auto plan = enumerator.BestPlan(q, TreeShape::kBushy);
  EXPECT_FALSE(plan.ok());
}

TEST_F(OptTest, ParCostBeatsSeqCost) {
  MachineConfig machine = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(machine, &model_);
  auto result = opt.Optimize(ThreeWay(), TreeShape::kBushy);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->parcost, result->seqcost);
  EXPECT_GT(result->parcost, 0.0);
}

TEST_F(OptTest, ParCostOptimizationNeverWorse) {
  MachineConfig machine = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(machine, &model_);

  for (QuerySpec q : {ThreeWay(), FourWay()}) {
    auto two_phase = opt.Optimize(q, TreeShape::kLeftDeep);
    auto parcost_driven = opt.OptimizeParCost(q, /*per_subset=*/3);
    ASSERT_TRUE(two_phase.ok());
    ASSERT_TRUE(parcost_driven.ok());
    // The parcost-driven search evaluates a superset of shapes including
    // the left-deep winner's shape family; it must not be worse by more
    // than the pruning tolerance.
    EXPECT_LE(parcost_driven->parcost, two_phase->parcost * 1.05 + 1e-9);
  }
}

TEST_F(OptTest, OptimizedPlansExecuteIdentically) {
  MachineConfig machine = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(machine, &model_);
  QuerySpec q = ThreeWay();

  auto ld = opt.Optimize(q, TreeShape::kLeftDeep);
  auto bushy = opt.Optimize(q, TreeShape::kBushy);
  auto pc = opt.OptimizeParCost(q);
  ASSERT_TRUE(ld.ok());
  ASSERT_TRUE(bushy.ok());
  ASSERT_TRUE(pc.ok());

  auto canon = [&](const PlanNode& plan) {
    auto rows = ExecutePlanSequential(plan, ctx_);
    EXPECT_TRUE(rows.ok());
    std::multiset<std::string> out;
    for (const auto& t : *rows) {
      std::multiset<std::string> cells;
      for (size_t i = 0; i < t.size(); ++i)
        cells.insert(ValueToString(t.value(i)));
      out.insert(StrJoin(cells, "|"));
    }
    return out;
  };
  auto r1 = canon(*ld->plan);
  EXPECT_EQ(r1, canon(*bushy->plan));
  EXPECT_EQ(r1, canon(*pc->plan));
  EXPECT_FALSE(r1.empty());
}

TEST_F(OptTest, SingleRelationQueryOptimizes) {
  MachineConfig machine = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(machine, &model_);
  QuerySpec q;
  q.relations = {{a_, Predicate::Between(0, 5, 10)}};
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->profiles.size(), 1u);
}

TEST_F(OptTest, ProfilesDriveSchedulerWithDependencies) {
  // End-to-end: optimized bushy plan's fragment profiles run through the
  // fluid simulator under the adaptive scheduler, honoring deps.
  MachineConfig machine = MachineConfig::PaperConfig();
  TwoPhaseOptimizer opt(machine, &model_);
  auto result = opt.Optimize(FourWay(), TreeShape::kBushy);
  ASSERT_TRUE(result.ok());

  SchedulerOptions so;
  AdaptiveScheduler sched(machine, so);
  FluidSimulator sim(machine, SimOptions());
  SimResult r = sim.Run(&sched, result->profiles);
  EXPECT_EQ(r.tasks.size(), result->profiles.size());
  // Dependencies respected: every fragment starts after its deps finish.
  for (const auto& p : result->profiles) {
    for (TaskId dep : p.deps) {
      EXPECT_GE(r.tasks.at(p.id).start_time,
                r.tasks.at(dep).finish_time - 1e-9);
    }
  }
}

}  // namespace
}  // namespace xprs
