// Tests for the §5 future-work extension: memory-constrained scheduling
// ("we cannot run two hashjoins in parallel unless there is enough memory
// for both hash tables") and memory-aware plan costing.

#include <gtest/gtest.h>

#include <algorithm>

#include "opt/two_phase.h"
#include "sim/fluid_sim.h"
#include "util/rng.h"
#include "workload/relations.h"

namespace xprs {
namespace {

TaskProfile Task(TaskId id, double rate, double seq_time, double memory,
                 IoPattern pattern = IoPattern::kSequential) {
  TaskProfile t;
  t.id = id;
  t.name = "t" + std::to_string(id);
  t.seq_time = seq_time;
  t.total_ios = rate * seq_time;
  t.pattern = pattern;
  t.memory_pages = memory;
  t.query_id = id;
  return t;
}

SchedulerOptions WithLimit(double limit) {
  SchedulerOptions o;
  o.memory_pages_limit = limit;
  return o;
}

SimOptions Ideal() {
  SimOptions o;
  o.adjust_latency = 0.0;
  o.excess_penalty = 0.0;
  return o;
}

TEST(MemorySchedulingTest, PairFitsWithinBudget) {
  MachineConfig m = MachineConfig::PaperConfig();
  AdaptiveScheduler sched(m, WithLimit(100.0));
  FluidSimulator sim(m, Ideal());
  // 40 + 50 <= 100: the pair runs together.
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, 40.0),
                                 Task(2, 8.0, 10.0, 50.0)});
  // Paired start: both tasks begin at t=0.
  EXPECT_NEAR(r.tasks.at(1).start_time, 0.0, 1e-9);
  EXPECT_NEAR(r.tasks.at(2).start_time, 0.0, 1e-9);
}

TEST(MemorySchedulingTest, OvercommittingPairIsSerialized) {
  MachineConfig m = MachineConfig::PaperConfig();
  AdaptiveScheduler sched(m, WithLimit(100.0));
  FluidSimulator sim(m, Ideal());
  // 70 + 70 > 100: the tasks must not overlap.
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, 70.0),
                                 Task(2, 8.0, 10.0, 70.0)});
  double end1 = r.tasks.at(1).finish_time;
  double start2 = r.tasks.at(2).start_time;
  double end2 = r.tasks.at(2).finish_time;
  double start1 = r.tasks.at(1).start_time;
  bool disjoint = start2 >= end1 - 1e-9 || start1 >= end2 - 1e-9;
  EXPECT_TRUE(disjoint) << "tasks overlapped despite memory limit";
}

TEST(MemorySchedulingTest, OversizedTaskStillRunsAlone) {
  MachineConfig m = MachineConfig::PaperConfig();
  AdaptiveScheduler sched(m, WithLimit(50.0));
  FluidSimulator sim(m, Ideal());
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, 500.0)});
  EXPECT_EQ(r.tasks.size(), 1u);
  EXPECT_GT(r.tasks.at(1).finish_time, 0.0);
}

TEST(MemorySchedulingTest, SchedulerPrefersFittingPartner) {
  MachineConfig m = MachineConfig::PaperConfig();
  AdaptiveScheduler sched(m, WithLimit(100.0));
  FluidSimulator sim(m, Ideal());
  // The most CPU-bound task (rate 5, memory 90) does not fit beside the
  // io task (memory 40); the scheduler must pair with the next one.
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, 40.0),
                                 Task(2, 5.0, 10.0, 90.0),
                                 Task(3, 10.0, 10.0, 30.0)});
  // Tasks 1 and 3 overlap; task 2 does not overlap task 1.
  EXPECT_NEAR(r.tasks.at(1).start_time, 0.0, 1e-9);
  EXPECT_NEAR(r.tasks.at(3).start_time, 0.0, 1e-9);
  EXPECT_GE(r.tasks.at(2).start_time,
            std::min(r.tasks.at(1).finish_time, r.tasks.at(3).finish_time) -
                1e-9);
}

TEST(MemorySchedulingTest, UnlimitedBudgetIsUnchanged) {
  MachineConfig m = MachineConfig::PaperConfig();
  auto tasks = {Task(1, 60.0, 10.0, 1000.0), Task(2, 8.0, 10.0, 1000.0)};
  AdaptiveScheduler a(m, WithLimit(0.0));
  FluidSimulator sa(m, Ideal());
  double t_unlimited = sa.Run(&a, tasks).elapsed;
  AdaptiveScheduler b(m, SchedulerOptions());
  FluidSimulator sb(m, Ideal());
  EXPECT_DOUBLE_EQ(t_unlimited, sb.Run(&b, tasks).elapsed);
}

TEST(MemorySchedulingTest, TighterBudgetNeverFaster) {
  MachineConfig m = MachineConfig::PaperConfig();
  Rng rng(5);
  std::vector<TaskProfile> tasks;
  for (int i = 0; i < 10; ++i) {
    double rate = rng.NextDouble(5.0, 70.0);
    tasks.push_back(Task(i, rate, rng.NextDouble(5.0, 20.0),
                         rng.NextDouble(10.0, 80.0)));
  }
  double prev = 0.0;
  for (double limit : {0.0, 160.0, 100.0, 60.0}) {  // 0 = unlimited
    AdaptiveScheduler sched(m, WithLimit(limit));
    FluidSimulator sim(m, Ideal());
    double elapsed = sim.Run(&sched, tasks).elapsed;
    if (limit != 0.0) {
      EXPECT_GE(elapsed + 1e-6, prev) << "limit " << limit;
    }
    prev = elapsed;
  }
}

// Regression: an oversized task (memory_pages above the whole budget) that
// arrives into a continuous stream of fitting work used to starve forever.
// SubmitBatch never offered it as a pairing candidate, and re-pairing on
// each completion kept the machine permanently busy, so the "run it alone
// when the machine drains" fallback never fired. The scheduler must now
// pause backfilling, drain, and give the oversized task its solo slot.
TEST(MemorySchedulingTest, OversizedTaskNotStarvedByArrivalStream) {
  MachineConfig m = MachineConfig::PaperConfig();
  AdaptiveScheduler sched(m, WithLimit(100.0));
  FluidSimulator sim(m, Ideal());
  std::vector<TaskProfile> tasks;
  // The oversized task arrives first and can never fit.
  tasks.push_back(Task(99, 40.0, 4.0, 500.0));
  // A stream of fitting io/cpu pairs with staggered arrivals keeps the
  // machine busy via partner backfilling.
  for (TaskId i = 0; i < 8; ++i) {
    TaskProfile t = Task(i, i % 2 == 0 ? 60.0 : 8.0, 6.0, 30.0);
    t.arrival_time = i < 2 ? 0.0 : 2.0 * static_cast<double>(i - 1);
    tasks.push_back(t);
  }
  SimResult r = sim.Run(&sched, tasks);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_EQ(r.tasks.size(), 9u);
  EXPECT_GT(r.tasks.at(99).finish_time, 0.0);
  // The fix drains the machine and runs the oversized task before the tail
  // of the arrival stream; the old scheduler started it dead last.
  double last_fitting_start = 0.0;
  for (TaskId i = 0; i < 8; ++i)
    last_fitting_start =
        std::max(last_fitting_start, r.tasks.at(i).start_time);
  EXPECT_LT(r.tasks.at(99).start_time, last_fitting_start)
      << "oversized task was starved behind the whole arrival stream";
}

// --------------------------------------------------- cost model memory

class MemoryCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    Rng rng(9);
    // Wide tuples: spilling `big` is io-expensive, so a tight budget makes
    // sort-merge the better join.
    big_ = BuildRelation(catalog_.get(), "big", 2000, 600, 400, &rng).value();
    small_ =
        BuildRelation(catalog_.get(), "small", 300, 40, 400, &rng).value();
  }
  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* big_ = nullptr;
  Table* small_ = nullptr;
};

TEST_F(MemoryCostTest, ProbeFragmentChargedForHashTable) {
  auto plan = MakeHashJoin(MakeSeqScan(small_, Predicate()),
                           MakeSeqScan(big_, Predicate()), 0, 0);
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  CostModel model;
  auto profiles = model.FragmentProfiles(graph);
  ASSERT_EQ(profiles.size(), 2u);
  // Fragment 0 (probe) holds the hash table over `big` (~3000 rows of
  // ~115 bytes ≈ 42 pages); the build fragment holds nothing.
  EXPECT_GT(profiles[0].memory_pages, 10.0);
  EXPECT_NEAR(profiles[1].memory_pages, 0.0, 1e-9);
}

TEST_F(MemoryCostTest, SortFragmentChargedForBuffer) {
  auto plan = MakeSort(MakeSeqScan(big_, Predicate()), 0);
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  CostModel model;
  auto profiles = model.FragmentProfiles(graph);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_GT(profiles[0].memory_pages, 10.0);
}

TEST_F(MemoryCostTest, SpillPenaltyRaisesHashJoinCost) {
  auto plan = MakeHashJoin(MakeSeqScan(small_, Predicate()),
                           MakeSeqScan(big_, Predicate()), 0, 0);
  CostModel unlimited;
  CostParams tight_params;
  tight_params.memory_pages_budget = 5.0;  // tiny: the build spills
  CostModel tight(tight_params);
  EXPECT_GT(tight.SeqCost(*plan), unlimited.SeqCost(*plan));
}

TEST_F(MemoryCostTest, TightBudgetFlipsPlanToMergeJoin) {
  QuerySpec q;
  q.relations = {{small_, Predicate()}, {big_, Predicate()}};
  q.joins = {{0, 0, 1, 0}};

  CostModel unlimited;
  JoinEnumerator free_enum(&unlimited);
  auto free_plan = free_enum.BestPlan(q, TreeShape::kBushy);
  ASSERT_TRUE(free_plan.ok());
  EXPECT_EQ(free_plan->plan->kind, PlanKind::kHashJoin);

  // With a budget of 3 pages the enumerator dodges the spill by building
  // on the *small* side instead (also a correct §5-aware choice).
  CostParams medium_params;
  medium_params.memory_pages_budget = 3.0;
  CostModel medium(medium_params);
  JoinEnumerator medium_enum(&medium);
  auto medium_plan = medium_enum.BestPlan(q, TreeShape::kBushy);
  ASSERT_TRUE(medium_plan.ok());
  if (medium_plan->plan->kind == PlanKind::kHashJoin) {
    // The build (right) input must be the small relation.
    const PlanNode* build = medium_plan->plan->right.get();
    EXPECT_EQ(build->table, small_);
  }

  // With a budget no build side fits, sort-merge becomes the cheap join.
  CostParams tight_params;
  tight_params.memory_pages_budget = 0.5;
  CostModel tight(tight_params);
  JoinEnumerator tight_enum(&tight);
  auto tight_plan = tight_enum.BestPlan(q, TreeShape::kBushy);
  ASSERT_TRUE(tight_plan.ok());
  EXPECT_EQ(tight_plan->plan->kind, PlanKind::kMergeJoin);
}

TEST_F(MemoryCostTest, MemoryAwareSchedulerEndToEnd) {
  // Two hash-join queries whose tables do not fit together: the memory-
  // constrained schedule serializes the probe fragments but still
  // completes, and is not faster than the unconstrained one.
  auto q1 = MakeHashJoin(MakeSeqScan(small_, Predicate()),
                         MakeSeqScan(big_, Predicate()), 0, 0);
  auto q2 = MakeHashJoin(MakeSeqScan(small_, Predicate()),
                         MakeSeqScan(big_, Predicate()), 0, 0);
  CostModel model;
  FragmentGraph g1 = FragmentGraph::Decompose(*q1);
  FragmentGraph g2 = FragmentGraph::Decompose(*q2);
  auto p1 = model.FragmentProfiles(g1, 1, 0);
  auto p2 = model.FragmentProfiles(g2, 2, 100);
  std::vector<TaskProfile> all = p1;
  all.insert(all.end(), p2.begin(), p2.end());

  MachineConfig m = MachineConfig::PaperConfig();
  AdaptiveScheduler unconstrained(m, WithLimit(0.0));
  FluidSimulator sa(m, Ideal());
  double t_free = sa.Run(&unconstrained, all).elapsed;

  double one_table = p1[0].memory_pages;
  AdaptiveScheduler constrained(m, WithLimit(one_table * 1.5));
  FluidSimulator sb(m, Ideal());
  double t_tight = sb.Run(&constrained, all).elapsed;

  EXPECT_GE(t_tight + 1e-9, t_free);
}

}  // namespace
}  // namespace xprs
