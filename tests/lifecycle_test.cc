// Query-lifecycle tracing suite: every served query's child spans
// (admission + queue_wait + execute + drain) must account for >= 95% of
// its root span's wall time with correct parent links; the slow-query log
// must name the scheduler's grant and the top-k operators; direct
// scheduler submissions (no serving engine in front) get a lifecycle too;
// rejected and swept queries close their spans instead of leaking them.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/lifecycle.h"
#include "serve/query_scheduler.h"
#include "serve/serving_engine.h"
#include "storage/catalog.h"
#include "util/check.h"

namespace xprs {
namespace {

struct SpanTree {
  TraceEvent root;
  std::map<std::string, TraceEvent> children;  // name -> event
};

const TraceValue* FindArg(const TraceEvent& e, const char* key) {
  for (const auto& [k, v] : e.args)
    if (k == key) return &v;
  return nullptr;
}

// Groups 'X' serve spans into one tree per root ("query") span.
std::vector<SpanTree> CollectTrees(const std::vector<TraceEvent>& events) {
  std::vector<SpanTree> trees;
  std::map<int64_t, size_t> by_root_id;
  for (const TraceEvent& e : events) {
    if (e.category != "serve" || e.phase != 'X' || e.name != "query") continue;
    const TraceValue* id = FindArg(e, "span_id");
    if (id == nullptr) continue;
    by_root_id[static_cast<int64_t>(id->num)] = trees.size();
    trees.push_back(SpanTree{e, {}});
  }
  for (const TraceEvent& e : events) {
    if (e.category != "serve" || e.phase != 'X' || e.name == "query") continue;
    const TraceValue* parent = FindArg(e, "parent");
    if (parent == nullptr) continue;
    auto it = by_root_id.find(static_cast<int64_t>(parent->num));
    if (it != by_root_id.end()) trees[it->second].children[e.name] = e;
  }
  return trees;
}

std::unique_ptr<Catalog> MakeCatalog(DiskArray* array, int rows) {
  auto catalog = std::make_unique<Catalog>(array);
  Table* t = catalog->CreateTable("r1", Schema::PaperSchema()).value();
  for (int i = 0; i < rows; ++i) {
    XPRS_CHECK(t->file()
                   .Append(Tuple({Value(int32_t{i % 50}),
                                  Value("row" + std::to_string(i % 17))}))
                   .ok());
  }
  XPRS_CHECK(t->file().Flush().ok());
  XPRS_CHECK(t->BuildIndex(0).ok());
  XPRS_CHECK(t->ComputeStats().ok());
  return catalog;
}

TEST(LifecycleTest, ChildSpansCoverRootWithin95Percent) {
  DiskArray array(4, DiskMode::kInstant);
  auto catalog = MakeCatalog(&array, 2000);
  CostModel model;
  MemoryTraceRecorder recorder;
  MetricsRegistry metrics;

  ServingEngine::Options options;
  options.serve.machine = MachineConfig::PaperConfig();
  options.serve.max_concurrent = 2;
  options.serve.obs = {&recorder, &metrics};
  {
    ServingEngine engine(catalog.get(), MachineConfig::PaperConfig(), &model,
                         std::move(options));
    auto session = engine.OpenSession();
    for (int i = 0; i < 6; ++i) {
      auto r = session->Execute("SELECT sum(a) FROM r1 WHERE a < 40");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    engine.CloseSession(session);
  }

  std::vector<SpanTree> trees = CollectTrees(recorder.snapshot());
  ASSERT_EQ(trees.size(), 6u);
  for (const SpanTree& tree : trees) {
    ASSERT_GT(tree.root.duration, 0.0);
    // All four phases present, each linked to this root.
    for (const char* phase : {"admission", "queue_wait", "execute", "drain"})
      EXPECT_TRUE(tree.children.count(phase)) << "missing " << phase;
    double covered = 0.0;
    for (const auto& [name, e] : tree.children) covered += e.duration;
    EXPECT_GE(covered, 0.95 * tree.root.duration)
        << "children cover " << covered << "s of a " << tree.root.duration
        << "s root";
    // Phases never extend past the root span.
    EXPECT_LE(covered, tree.root.duration * 1.0001);
    // The root records the query text and resolution.
    const TraceValue* query = FindArg(tree.root, "query");
    ASSERT_NE(query, nullptr);
    EXPECT_EQ(query->str, "SELECT sum(a) FROM r1 WHERE a < 40");
    const TraceValue* status = FindArg(tree.root, "status");
    ASSERT_NE(status, nullptr);
    EXPECT_EQ(status->str, "ok");
  }

  // A grant instant event inside each query's queue_wait span.
  int grants = 0;
  for (const TraceEvent& e : recorder.snapshot())
    if (e.name == "grant" && e.phase == 'i') ++grants;
  EXPECT_EQ(grants, 6);
  // The lifecycle observed serve.total_seconds for every query.
  EXPECT_EQ(metrics.histogram("serve.total_seconds")->count(), 6u);
}

TEST(LifecycleTest, SlowQueryLogNamesGrantAndTopOperators) {
  DiskArray array(4, DiskMode::kInstant);
  auto catalog = MakeCatalog(&array, 2000);
  CostModel model;

  ServingEngine::Options options;
  options.serve.machine = MachineConfig::PaperConfig();
  options.serve.max_concurrent = 2;
  // Threshold 0s+: every query is "slow", so the log fills determinately.
  options.slow_query_seconds = 1e-9;
  options.slow_query_top_k = 2;
  ServingEngine engine(catalog.get(), MachineConfig::PaperConfig(), &model,
                       std::move(options));

  auto session = engine.OpenSession();
  auto r = session->Execute(
      "SELECT count(a) FROM r1 WHERE a BETWEEN 0 AND 30 GROUP BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  engine.CloseSession(session);

  std::vector<SlowQueryEntry> entries = engine.slow_query_log().entries();
  ASSERT_EQ(entries.size(), 1u);
  const SlowQueryEntry& entry = entries[0];
  EXPECT_EQ(entry.query,
            "SELECT count(a) FROM r1 WHERE a BETWEEN 0 AND 30 GROUP BY a");
  EXPECT_EQ(entry.status, "ok");
  EXPECT_GT(entry.total_seconds, 0.0);
  EXPECT_GT(entry.exec_seconds, 0.0);
  // The grant is named.
  EXPECT_GE(entry.grant.parallelism, 1);
  EXPECT_FALSE(entry.grant.degraded);
  // Top-k operators from the attached profile, ordered slowest first.
  ASSERT_FALSE(entry.top_operators.empty());
  ASSERT_LE(entry.top_operators.size(), 2u);
  for (const SlowQueryOperator& op : entry.top_operators)
    EXPECT_FALSE(op.label.empty());
  if (entry.top_operators.size() == 2u) {
    EXPECT_GE(entry.top_operators[0].seconds, entry.top_operators[1].seconds);
  }

  // The JSONL rendering names the grant and the operators too.
  std::string json = entry.ToJson();
  EXPECT_NE(json.find("\"grant\""), std::string::npos);
  EXPECT_NE(json.find("\"parallelism\""), std::string::npos);
  EXPECT_NE(json.find("\"top_operators\""), std::string::npos);
  EXPECT_NE(json.find(entry.top_operators[0].label.substr(0, 8)),
            std::string::npos);
}

TEST(LifecycleTest, DirectSchedulerSubmissionGetsLifecycle) {
  MemoryTraceRecorder recorder;
  MetricsRegistry metrics;
  ServeOptions options;
  options.max_concurrent = 1;
  options.obs = {&recorder, &metrics};
  {
    QueryScheduler scheduler(options);
    ServeRequest request;
    request.estimate.seq_time = 0.01;
    request.estimate.total_ios = 1.0;
    request.label = "synthetic job";
    request.job = [](const ExecGrant& grant) -> StatusOr<SqlResult> {
      // The scheduler hands the lifecycle through the grant.
      EXPECT_NE(grant.lifecycle, nullptr);
      return SqlResult();
    };
    auto ticket = scheduler.Submit(std::move(request));
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE(ticket->Wait().ok());
  }
  std::vector<SpanTree> trees = CollectTrees(recorder.snapshot());
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].children.size(), 4u);
  const TraceValue* query = FindArg(trees[0].root, "query");
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->str, "synthetic job");
}

TEST(LifecycleTest, SweptDeadlineClosesSpansWithNeverRan) {
  MemoryTraceRecorder recorder;
  ServeOptions options;
  options.max_concurrent = 1;
  options.start_paused = true;  // nothing dispatches; the sweep must fire
  options.obs = {&recorder, nullptr};
  {
    QueryScheduler scheduler(options);
    CancellationToken token;
    token.SetDeadlineAfterMs(5);
    ServeRequest request;
    request.estimate.seq_time = 0.01;
    request.cancel = &token;
    request.label = "expired in queue";
    bool ran = false;
    request.job = [&ran](const ExecGrant&) -> StatusOr<SqlResult> {
      ran = true;
      return SqlResult();
    };
    auto ticket = scheduler.Submit(std::move(request));
    ASSERT_TRUE(ticket.ok());
    auto result = ticket->Wait();
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(ran);
  }
  std::vector<SpanTree> trees = CollectTrees(recorder.snapshot());
  ASSERT_EQ(trees.size(), 1u);
  ASSERT_TRUE(trees[0].children.count("queue_wait"));
  const TraceEvent& queue = trees[0].children.at("queue_wait");
  const TraceValue* never_ran = FindArg(queue, "never_ran");
  ASSERT_NE(never_ran, nullptr);
  EXPECT_TRUE(never_ran->boolean);
  EXPECT_FALSE(trees[0].children.count("execute"));
  const TraceValue* status = FindArg(trees[0].root, "status");
  ASSERT_NE(status, nullptr);
  EXPECT_NE(status->str, "ok");
}

TEST(LifecycleTest, QueueFullRejectClosesAdmissionSpan) {
  MemoryTraceRecorder recorder;
  ServeOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 1;
  options.start_paused = true;
  options.obs = {&recorder, nullptr};
  {
    QueryScheduler scheduler(options);
    ServeRequest first;
    first.estimate.seq_time = 0.01;
    first.job = [](const ExecGrant&) -> StatusOr<SqlResult> {
      return SqlResult();
    };
    auto ok_ticket = scheduler.Submit(std::move(first));
    ASSERT_TRUE(ok_ticket.ok());

    ServeRequest second;
    second.estimate.seq_time = 0.01;
    second.label = "rejected query";
    second.job = [](const ExecGrant&) -> StatusOr<SqlResult> {
      return SqlResult();
    };
    auto rejected = scheduler.Submit(std::move(second));
    ASSERT_FALSE(rejected.ok());
    EXPECT_TRUE(QueryScheduler::IsAdmissionReject(rejected.status()));
    scheduler.Resume();
    ASSERT_TRUE(ok_ticket->Wait().ok());
  }
  // Both roots closed; the rejected one's admission span carries the flag.
  std::vector<SpanTree> trees = CollectTrees(recorder.snapshot());
  ASSERT_EQ(trees.size(), 2u);
  bool saw_reject = false;
  for (const SpanTree& tree : trees) {
    const TraceValue* query = FindArg(tree.root, "query");
    if (query == nullptr || query->str != "rejected query") continue;
    saw_reject = true;
    ASSERT_TRUE(tree.children.count("admission"));
    const TraceValue* rejected_arg =
        FindArg(tree.children.at("admission"), "rejected");
    ASSERT_NE(rejected_arg, nullptr);
    EXPECT_TRUE(rejected_arg->boolean);
  }
  EXPECT_TRUE(saw_reject);
}

TEST(LifecycleTest, DegradedGrantIsRecordedInSlowLog) {
  DiskArray array(4, DiskMode::kInstant);
  auto catalog = MakeCatalog(&array, 2000);
  CostModel model;

  ServingEngine::Options options;
  options.serve.machine = MachineConfig::PaperConfig();
  options.serve.max_concurrent = 1;
  // A page budget below any hash join's working set forces the degrade
  // path immediately (never fits even on an idle system).
  options.serve.memory_pages_budget = 1e-3;
  options.serve.degrade_wait_seconds = 0.0;
  options.slow_query_seconds = 1e-9;
  ServingEngine engine(catalog.get(), MachineConfig::PaperConfig(), &model,
                       std::move(options));

  auto session = engine.OpenSession();
  auto r = session->Execute(
      "SELECT l.a FROM r1 l, r1 r WHERE l.a = r.a AND r.a < 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  engine.CloseSession(session);

  std::vector<SlowQueryEntry> entries = engine.slow_query_log().entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].grant.degraded);
  EXPECT_EQ(entries[0].grant.parallelism, 1);
  EXPECT_NE(entries[0].ToJson().find("\"degraded\":true"), std::string::npos);
}

}  // namespace
}  // namespace xprs
