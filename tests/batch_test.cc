// Tests for the vectorized (batch-at-a-time) execution path: ColumnBatch
// and selection-vector edge cases, Predicate::FilterBatch, and the batch
// operators cross-checked against the tuple reference executor — including
// NULL keys, empty inputs, tiny batch sizes, cancellation, pooled pin
// balance, and profiled stats ownership.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/batch.h"
#include "exec/batch_ops.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "exec/profile.h"
#include "resilience/cancellation.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace xprs {
namespace {

std::multiset<std::string> Normalize(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const auto& t : rows) out.insert(t.ToString());
  return out;
}

// ------------------------------------------------------------ ColumnBatch

TEST(ColumnBatchTest, EmptyBatch) {
  Schema schema = Schema::PaperSchema();
  ColumnBatch batch;
  batch.Reset(&schema);
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.ActiveSize(), 0u);
  EXPECT_FALSE(batch.has_selection());
}

TEST(ColumnBatchTest, AddRowStartsAllNull) {
  Schema schema = Schema::PaperSchema();
  ColumnBatch batch;
  batch.Reset(&schema);
  uint32_t r = batch.AddRow();
  EXPECT_EQ(r, 0u);
  EXPECT_TRUE(batch.IsNullAt(0, r));
  EXPECT_TRUE(batch.IsNullAt(1, r));
  batch.SetInt(0, r, 42);
  batch.SetText(1, r, "hi", 2);
  EXPECT_FALSE(batch.IsNullAt(0, r));
  EXPECT_EQ(batch.IntAt(0, r), 42);
  EXPECT_EQ(batch.TextAt(1, r), "hi");
}

TEST(ColumnBatchTest, AppendTupleRoundTripsNulls) {
  Schema schema = Schema::PaperSchema();
  ColumnBatch batch;
  batch.Reset(&schema);
  Tuple with_null({Value(std::monostate{}), Value(std::string("x"))});
  Tuple plain({Value(int32_t{7}), Value(std::string("y"))});
  batch.AppendTuple(with_null);
  batch.AppendTuple(plain);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch.IsNullAt(0, 0));
  EXPECT_EQ(batch.MaterializeRow(0), with_null);
  EXPECT_EQ(batch.MaterializeRow(1), plain);
}

TEST(ColumnBatchTest, SelectionVector) {
  Schema schema = Schema::PaperSchema();
  ColumnBatch batch;
  batch.Reset(&schema);
  for (int i = 0; i < 5; ++i) {
    uint32_t r = batch.AddRow();
    batch.SetInt(0, r, i);
  }
  EXPECT_EQ(batch.ActiveSize(), 5u);
  EXPECT_EQ(batch.ActiveRow(3), 3u);

  batch.SetSelection({1, 4});
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.ActiveSize(), 2u);
  EXPECT_EQ(batch.ActiveRow(0), 1u);
  EXPECT_EQ(batch.ActiveRow(1), 4u);
  EXPECT_EQ(batch.size(), 5u);  // physical rows untouched

  // All-filtered: empty selection is distinct from no selection.
  batch.SetSelection({});
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.ActiveSize(), 0u);

  batch.ClearSelection();
  EXPECT_EQ(batch.ActiveSize(), 5u);
}

TEST(ColumnBatchTest, ResetClearsRowsAndSelection) {
  Schema schema = Schema::PaperSchema();
  ColumnBatch batch;
  batch.Reset(&schema);
  batch.AddRow();
  batch.SetSelection({0});
  batch.Reset(&schema);
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_FALSE(batch.has_selection());
}

TEST(ColumnBatchTest, AppendRowFromAndConcat) {
  Schema schema = Schema::PaperSchema();
  ColumnBatch a, b, out;
  a.Reset(&schema);
  b.Reset(&schema);
  uint32_t ra = a.AddRow();
  a.SetInt(0, ra, 1);
  a.SetText(1, ra, "left", 4);
  uint32_t rb = b.AddRow();
  b.SetInt(0, rb, 2);  // column 1 stays NULL

  ColumnBatch copy;
  copy.Reset(&schema);
  copy.AppendRowFrom(a, ra);
  EXPECT_EQ(copy.MaterializeRow(0), a.MaterializeRow(ra));

  Schema joined = Schema::Concat(schema, schema);
  out.Reset(&joined);
  out.AppendConcatRow(a, ra, b, rb);
  Tuple row = out.MaterializeRow(0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row.value(0), Value(int32_t{1}));
  EXPECT_EQ(row.value(1), Value(std::string("left")));
  EXPECT_EQ(row.value(2), Value(int32_t{2}));
  EXPECT_TRUE(IsNull(row.value(3)));
}

// ------------------------------------------------------------ FilterBatch

class FilterBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::PaperSchema();
    batch_.Reset(&schema_);
    // a = 0..9, b = "t<i>"; row 5 has NULL a.
    for (int i = 0; i < 10; ++i) {
      uint32_t r = batch_.AddRow();
      if (i != 5) batch_.SetInt(0, r, i);
      const std::string text = "t" + std::to_string(i);
      batch_.SetText(1, r, text.data(), text.size());
    }
  }

  std::vector<uint32_t> Active() const {
    std::vector<uint32_t> out;
    for (uint32_t k = 0; k < batch_.ActiveSize(); ++k)
      out.push_back(batch_.ActiveRow(k));
    return out;
  }

  Schema schema_;
  ColumnBatch batch_;
};

TEST_F(FilterBatchTest, TrueIsNoOp) {
  Predicate().FilterBatch(&batch_);
  EXPECT_FALSE(batch_.has_selection());
  EXPECT_EQ(batch_.ActiveSize(), 10u);
}

TEST_F(FilterBatchTest, CompareSelectsMatchingRows) {
  Predicate::Compare(0, CmpOp::kGe, Value(int32_t{7})).FilterBatch(&batch_);
  EXPECT_EQ(Active(), (std::vector<uint32_t>{7, 8, 9}));
}

TEST_F(FilterBatchTest, NullNeverPasses) {
  // Row 5 has a NULL key: neither Eq nor Ne admits it (SQL semantics,
  // same as Predicate::Eval on the tuple path).
  Predicate::Compare(0, CmpOp::kNe, Value(int32_t{-1})).FilterBatch(&batch_);
  EXPECT_EQ(Active(), (std::vector<uint32_t>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}

TEST_F(FilterBatchTest, AllFiltered) {
  Predicate::Compare(0, CmpOp::kGt, Value(int32_t{100})).FilterBatch(&batch_);
  EXPECT_TRUE(batch_.has_selection());
  EXPECT_EQ(batch_.ActiveSize(), 0u);
}

TEST_F(FilterBatchTest, AndRefinesSequentially) {
  Predicate::Between(0, 3, 6).FilterBatch(&batch_);
  EXPECT_EQ(Active(), (std::vector<uint32_t>{3, 4, 6}));  // 5 is NULL
}

TEST_F(FilterBatchTest, OrUnionsSortedWithoutDuplicates) {
  Predicate::Or(Predicate::Compare(0, CmpOp::kLe, Value(int32_t{2})),
                Predicate::Compare(0, CmpOp::kEq, Value(int32_t{1})))
      .FilterBatch(&batch_);
  EXPECT_EQ(Active(), (std::vector<uint32_t>{0, 1, 2}));
}

TEST_F(FilterBatchTest, RefinesExistingSelection) {
  batch_.SetSelection({0, 2, 4, 6, 8});
  Predicate::Compare(0, CmpOp::kGe, Value(int32_t{3})).FilterBatch(&batch_);
  EXPECT_EQ(Active(), (std::vector<uint32_t>{4, 6, 8}));
}

TEST_F(FilterBatchTest, TextCompare) {
  Predicate::Compare(1, CmpOp::kEq, Value(std::string("t3")))
      .FilterBatch(&batch_);
  EXPECT_EQ(Active(), (std::vector<uint32_t>{3}));
}

// --------------------------------------------- batch ops vs tuple engine

// Fixture: r(a, b) with a = 0..199 once each; s(a, b) with a = i % 100
// (each key twice); n(a, b) with every third key NULL.
class BatchExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    r_ = catalog_->CreateTable("r", Schema::PaperSchema()).value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(r_->file()
                      .Append(Tuple({Value(int32_t{i}),
                                     Value("r" + std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(r_->file().Flush().ok());
    ASSERT_TRUE(r_->ComputeStats().ok());
    s_ = catalog_->CreateTable("s", Schema::PaperSchema()).value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(s_->file()
                      .Append(Tuple({Value(int32_t{i % 100}),
                                     Value("s" + std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(s_->file().Flush().ok());
    ASSERT_TRUE(s_->ComputeStats().ok());
    n_ = catalog_->CreateTable("n", Schema::PaperSchema()).value();
    for (int i = 0; i < 90; ++i) {
      Value key = i % 3 == 0 ? Value(std::monostate{}) : Value(int32_t{i % 10});
      ASSERT_TRUE(
          n_->file().Append(Tuple({key, Value("n" + std::to_string(i))})).ok());
    }
    ASSERT_TRUE(n_->file().Flush().ok());
    ASSERT_TRUE(n_->ComputeStats().ok());
  }

  // Both engines must agree on `plan`, at the default and a tiny batch size.
  void ExpectEquivalent(const PlanNode& plan) {
    ExecContext plain;
    auto want = ExecutePlanSequential(plan, plain);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    for (size_t batch_rows : {size_t{1024}, size_t{3}}) {
      ExecContext ctx;
      ctx.batch_rows = batch_rows;
      auto got = ExecutePlanVectorized(plan, ctx);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(Normalize(*got), Normalize(*want))
          << "batch_rows=" << batch_rows << "\n"
          << plan.ToString();
    }
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* r_ = nullptr;
  Table* s_ = nullptr;
  Table* n_ = nullptr;
  ExecContext ctx_;
};

TEST_F(BatchExecTest, BatchSeqScanMatchesTupleScan) {
  BatchSeqScanOp scan(r_, ctx_);
  ASSERT_TRUE(scan.Open().ok());
  ColumnBatch batch;
  std::vector<Tuple> rows;
  bool eof = false;
  while (true) {
    ASSERT_TRUE(scan.NextBatch(&batch, &eof).ok());
    if (eof) break;
    ASSERT_GT(batch.ActiveSize(), 0u);
    for (uint32_t k = 0; k < batch.ActiveSize(); ++k)
      rows.push_back(batch.MaterializeRow(batch.ActiveRow(k)));
  }
  ASSERT_TRUE(scan.Close().ok());
  EXPECT_EQ(scan.pages_read(), r_->file().num_pages());

  SeqScanOp ref(r_, Predicate(), ctx_);
  auto want = Drain(&ref);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(Normalize(rows), Normalize(*want));
}

TEST_F(BatchExecTest, PartitionedBatchScansUnionToFullScan) {
  std::vector<Tuple> merged;
  for (int part = 0; part < 3; ++part) {
    ExecContext ctx;
    ctx.batch_rows = 16;
    BatchSeqScanOp scan(r_, ctx, /*num_partitions=*/3, part);
    ASSERT_TRUE(scan.Open().ok());
    ColumnBatch batch;
    bool eof = false;
    while (true) {
      ASSERT_TRUE(scan.NextBatch(&batch, &eof).ok());
      if (eof) break;
      for (uint32_t k = 0; k < batch.ActiveSize(); ++k)
        merged.push_back(batch.MaterializeRow(batch.ActiveRow(k)));
    }
    ASSERT_TRUE(scan.Close().ok());
  }
  SeqScanOp ref(r_, Predicate(), ctx_);
  auto want = Drain(&ref);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(Normalize(merged), Normalize(*want));
}

TEST_F(BatchExecTest, ScanFilterEquivalent) {
  ExpectEquivalent(*MakeSeqScan(r_, Predicate::Between(0, 50, 59)));
}

TEST_F(BatchExecTest, HashJoinEquivalent) {
  ExpectEquivalent(*MakeHashJoin(MakeSeqScan(r_, Predicate()),
                                 MakeSeqScan(s_, Predicate()), 0, 0));
}

TEST_F(BatchExecTest, HashJoinDropsNullKeys) {
  // NULL keys on either side never match; both engines must agree.
  ExpectEquivalent(*MakeHashJoin(MakeSeqScan(n_, Predicate()),
                                 MakeSeqScan(s_, Predicate()), 0, 0));
  ExpectEquivalent(*MakeHashJoin(MakeSeqScan(s_, Predicate()),
                                 MakeSeqScan(n_, Predicate()), 0, 0));
}

TEST_F(BatchExecTest, AggregateEquivalent) {
  ExpectEquivalent(
      *MakeAggregate(MakeSeqScan(s_, Predicate()), AggFunc::kSum, 0, 0));
  ExpectEquivalent(
      *MakeAggregate(MakeSeqScan(r_, Predicate()), AggFunc::kMax, 0, -1));
  // NULL group keys are dropped, same as the tuple path.
  ExpectEquivalent(
      *MakeAggregate(MakeSeqScan(n_, Predicate()), AggFunc::kCount, 0, 0));
}

TEST_F(BatchExecTest, EmptyInputEquivalent) {
  Predicate none = Predicate::Compare(0, CmpOp::kGt, Value(int32_t{100000}));
  ExpectEquivalent(*MakeSeqScan(r_, none));
  ExpectEquivalent(*MakeHashJoin(MakeSeqScan(r_, none),
                                 MakeSeqScan(s_, Predicate()), 0, 0));
  ExpectEquivalent(*MakeHashJoin(MakeSeqScan(s_, Predicate()),
                                 MakeSeqScan(r_, none), 0, 0));
  // Global aggregate over nothing still emits its one row (count = 0).
  ExpectEquivalent(
      *MakeAggregate(MakeSeqScan(r_, none), AggFunc::kCount, 0, -1));
}

TEST_F(BatchExecTest, JoinUnderAggregateEquivalent) {
  ExpectEquivalent(
      *MakeAggregate(MakeHashJoin(MakeSeqScan(r_, Predicate::Between(0, 0, 99)),
                                  MakeSeqScan(s_, Predicate()), 0, 0),
                     AggFunc::kCount, 0, 0));
}

TEST_F(BatchExecTest, NonVectorizableRootFallsBack) {
  // Sort is not vectorizable: ctx.vectorized must still produce the right
  // answer (tuple crown over a vectorized scan subtree).
  auto plan = MakeSort(MakeSeqScan(s_, Predicate::Between(0, 10, 30)), 0);
  ExecContext plain;
  auto want = ExecutePlanSequential(*plan, plain);
  ASSERT_TRUE(want.ok());
  auto got = ExecutePlanVectorized(*plan, plain);
  ASSERT_TRUE(got.ok());
  // Sort output order is part of the contract here.
  EXPECT_EQ(*got, *want);
}

TEST_F(BatchExecTest, VectorizableSubtreePredicate) {
  ExecContext plain;
  EXPECT_TRUE(VectorizableSubtree(*MakeSeqScan(r_, Predicate()), plain, true,
                                  nullptr));
  EXPECT_TRUE(VectorizableSubtree(
      *MakeHashJoin(MakeSeqScan(r_, Predicate()), MakeSeqScan(s_, Predicate()),
                    0, 0),
      plain, true, nullptr));
  EXPECT_FALSE(VectorizableSubtree(*MakeSort(MakeSeqScan(r_, Predicate()), 0),
                                   plain, true, nullptr));
  // Text join keys fall back to the tuple path (it never type-checks keys
  // it does not extract, and batch columns are int4-keyed).
  EXPECT_FALSE(VectorizableSubtree(
      *MakeHashJoin(MakeSeqScan(r_, Predicate()), MakeSeqScan(s_, Predicate()),
                    1, 1),
      plain, true, nullptr));
  // Spilling joins defer to GraceHashJoinOp.
  ExecContext spilling = plain;
  DiskArray temp(1, DiskMode::kInstant);
  spilling.spill.temp_array = &temp;
  spilling.spill.memory_tuples = 8;
  EXPECT_FALSE(VectorizableSubtree(
      *MakeHashJoin(MakeSeqScan(r_, Predicate()), MakeSeqScan(s_, Predicate()),
                    0, 0),
      spilling, true, nullptr));
}

TEST_F(BatchExecTest, CancellationStopsVectorizedRun) {
  CancellationToken token;
  token.Cancel();
  ExecContext ctx;
  ctx.cancel = &token;
  auto got = ExecutePlanVectorized(*MakeSeqScan(r_, Predicate()), ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
}

TEST_F(BatchExecTest, PooledVectorizedRunLeavesNoPins) {
  BufferPool pool(array_.get(), 8);
  ExecContext ctx;
  ctx.pool = &pool;
  auto plan = MakeHashJoin(MakeSeqScan(r_, Predicate()),
                           MakeSeqScan(s_, Predicate()), 0, 0);
  auto got = ExecutePlanVectorized(*plan, ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

TEST_F(BatchExecTest, ProfiledVectorizedRunCountsRootRows) {
  auto plan = MakeHashJoin(MakeSeqScan(r_, Predicate::Between(0, 0, 49)),
                           MakeSeqScan(s_, Predicate()), 0, 0);
  QueryProfile profile(plan.get());
  ExecContext ctx;
  ctx.profile = &profile;
  ctx.vectorized = true;
  auto got = ExecutePlanSequential(*plan, ctx);
  ASSERT_TRUE(got.ok());
  // One stats owner per node: the join's tuples_out must equal the result
  // cardinality exactly (no adapter double-counting), and the scans must
  // have read pages.
  OperatorStats* root = profile.StatsFor(plan.get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->tuples_out.load(), got->size());
  EXPECT_EQ(root->opens.load(), 1u);
  OperatorStats* scan = profile.StatsFor(plan->left.get());
  ASSERT_NE(scan, nullptr);
  EXPECT_GT(scan->pages_read.load(), 0u);
  // The scan node's tuples_out is the filter's output: rows with a in
  // [0, 49].
  EXPECT_EQ(scan->tuples_out.load(), 50u);
}

TEST_F(BatchExecTest, BatchFromTupleBridgesTupleSources) {
  auto scan = std::make_unique<SeqScanOp>(s_, Predicate::Between(0, 0, 9),
                                          ctx_);
  BatchFromTupleOp bridge(std::move(scan), /*batch_rows=*/7);
  ASSERT_TRUE(bridge.Open().ok());
  ColumnBatch batch;
  size_t rows = 0;
  bool eof = false;
  while (true) {
    ASSERT_TRUE(bridge.NextBatch(&batch, &eof).ok());
    if (eof) break;
    EXPECT_LE(batch.ActiveSize(), 7u);
    rows += batch.ActiveSize();
  }
  ASSERT_TRUE(bridge.Close().ok());
  EXPECT_EQ(rows, 20u);  // keys 0..9, each twice
}

}  // namespace
}  // namespace xprs
