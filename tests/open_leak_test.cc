// Open-failure resource-balance regression tests. Blocking operators
// (hash join, sort, aggregate, merge join — tuple and batch variants)
// drain a child inside Open(); when that drain fails the operator must
// close every child it opened before returning, releasing any pinned
// buffer-pool frames. Drain() was the only caller that papered over the
// old leak by never Closing after a failed Open — these tests pin the
// convention down with a counting wrapper and storage fault injection.

#include <gtest/gtest.h>

#include "exec/batch_ops.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/fault_injector.h"

namespace xprs {
namespace {

// Counting wrapper: tracks Open/Close balance and can fail Open outright
// or fail Next after a set number of successful calls.
class HookOp : public Operator {
 public:
  struct Counters {
    int opens = 0;
    int closes = 0;
  };

  HookOp(std::unique_ptr<Operator> child, Counters* counters,
         int fail_next_after = -1, bool fail_open = false)
      : child_(std::move(child)),
        counters_(counters),
        fail_next_after_(fail_next_after),
        fail_open_(fail_open) {}

  Status Open() override {
    if (fail_open_) return Status::Internal("injected open failure");
    XPRS_RETURN_IF_ERROR(child_->Open());
    ++counters_->opens;
    nexts_ = 0;
    return Status::OK();
  }

  Status Next(Tuple* out, bool* eof) override {
    if (fail_next_after_ >= 0 && nexts_ >= fail_next_after_)
      return Status::Internal("injected next failure");
    ++nexts_;
    return child_->Next(out, eof);
  }

  Status Close() override {
    ++counters_->closes;
    return child_->Close();
  }

  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<Operator> child_;
  Counters* const counters_;
  const int fail_next_after_;
  const bool fail_open_;
  int nexts_ = 0;
};

class OpenLeakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    t_ = catalog_->CreateTable("t", Schema::PaperSchema()).value();
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(t_->file()
                      .Append(Tuple({Value(int32_t{i % 40}),
                                     Value(std::string(30, 'x'))}))
                      .ok());
    }
    ASSERT_TRUE(t_->file().Flush().ok());
    ASSERT_TRUE(t_->ComputeStats().ok());
  }

  std::unique_ptr<Operator> Scan(const ExecContext& ctx) {
    return std::make_unique<SeqScanOp>(t_, Predicate(), ctx);
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* t_ = nullptr;
  ExecContext ctx_;
};

TEST_F(OpenLeakTest, HashJoinOpenFailureClosesInner) {
  // The build-side Next fails mid-drain; the inner child was open and must
  // be closed on the failure exit.
  HookOp::Counters inner;
  HashJoinOp join(Scan(ctx_),
                  std::make_unique<HookOp>(Scan(ctx_), &inner,
                                           /*fail_next_after=*/3),
                  0, 0);
  ASSERT_FALSE(join.Open().ok());
  EXPECT_EQ(inner.opens, 1);
  EXPECT_EQ(inner.closes, 1);
}

TEST_F(OpenLeakTest, HashJoinOpenFailureReleasesPinnedFrames) {
  // A pooled scan holds its current page pinned across Next calls; a
  // build-phase failure must not leak that pin. This is the original bug:
  // HashJoinOp::Open returned without closing the mid-page inner scan.
  BufferPool pool(array_.get(), 8);
  ExecContext pooled;
  pooled.pool = &pool;
  HookOp::Counters inner;
  HashJoinOp join(Scan(pooled),
                  std::make_unique<HookOp>(Scan(pooled), &inner,
                                           /*fail_next_after=*/3),
                  0, 0);
  ASSERT_FALSE(join.Open().ok());
  EXPECT_EQ(inner.closes, 1);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

TEST_F(OpenLeakTest, HashJoinFetchFaultLeavesZeroPins) {
  // End-to-end variant through the executor: a pool-level fetch fault
  // fires mid-build and the whole failed query must leave zero pins.
  BufferPool pool(array_.get(), 8);
  ScriptedFaultInjector injector;
  ScriptedFaultInjector::Script script;
  script.fail_nth_fetch = 3;
  injector.Arm(script);
  pool.SetFaultInjector(&injector);
  ExecContext ctx;
  ctx.pool = &pool;
  auto plan = MakeHashJoin(MakeSeqScan(t_, Predicate()),
                           MakeSeqScan(t_, Predicate()), 0, 0);
  auto rows = ExecutePlanSequential(*plan, ctx);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
  pool.SetFaultInjector(nullptr);
}

TEST_F(OpenLeakTest, VectorizedHashJoinFetchFaultLeavesZeroPins) {
  BufferPool pool(array_.get(), 8);
  ScriptedFaultInjector injector;
  ScriptedFaultInjector::Script script;
  script.fail_nth_fetch = 3;
  injector.Arm(script);
  pool.SetFaultInjector(&injector);
  ExecContext ctx;
  ctx.pool = &pool;
  auto plan = MakeHashJoin(MakeSeqScan(t_, Predicate()),
                           MakeSeqScan(t_, Predicate()), 0, 0);
  auto rows = ExecutePlanVectorized(*plan, ctx);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(pool.PinnedFrames(), 0u);
  pool.SetFaultInjector(nullptr);
}

TEST_F(OpenLeakTest, SortOpenFailureClosesChild) {
  HookOp::Counters child;
  SortOp sort(std::make_unique<HookOp>(Scan(ctx_), &child,
                                       /*fail_next_after=*/5),
              0);
  ASSERT_FALSE(sort.Open().ok());
  EXPECT_EQ(child.opens, 1);
  EXPECT_EQ(child.closes, 1);
}

TEST_F(OpenLeakTest, AggregateOpenFailureClosesChild) {
  HookOp::Counters child;
  AggregateOp agg(std::make_unique<HookOp>(Scan(ctx_), &child,
                                           /*fail_next_after=*/5),
                  Schema({{"key"}, {"agg"}}), AggFunc::kSum, 0, 0);
  ASSERT_FALSE(agg.Open().ok());
  EXPECT_EQ(child.opens, 1);
  EXPECT_EQ(child.closes, 1);
}

TEST_F(OpenLeakTest, MergeJoinOpenFailureClosesOpenedChildren) {
  // The inner child's Open fails after the outer was opened: the outer
  // must be closed on the way out.
  HookOp::Counters outer;
  HookOp::Counters inner;  // never opened; its Close tolerates that
  MergeJoinOp join(std::make_unique<HookOp>(Scan(ctx_), &outer),
                   std::make_unique<HookOp>(Scan(ctx_), &inner,
                                            /*fail_next_after=*/-1,
                                            /*fail_open=*/true),
                   0, 0);
  ASSERT_FALSE(join.Open().ok());
  EXPECT_EQ(outer.opens, 1);
  EXPECT_EQ(outer.closes, 1);
  EXPECT_EQ(inner.opens, 0);
}

TEST_F(OpenLeakTest, BatchHashJoinOpenFailureClosesInner) {
  HookOp::Counters inner;
  auto bridge = std::make_unique<BatchFromTupleOp>(
      std::make_unique<HookOp>(Scan(ctx_), &inner, /*fail_next_after=*/3),
      /*batch_rows=*/16);
  auto outer = std::make_unique<BatchSeqScanOp>(t_, ctx_);
  BatchHashJoinOp join(std::move(outer), std::move(bridge), 0, 0, ctx_);
  ASSERT_FALSE(join.Open().ok());
  EXPECT_EQ(inner.opens, 1);
  EXPECT_EQ(inner.closes, 1);
}

TEST_F(OpenLeakTest, BatchAggregateOpenFailureClosesChild) {
  HookOp::Counters child;
  auto bridge = std::make_unique<BatchFromTupleOp>(
      std::make_unique<HookOp>(Scan(ctx_), &child, /*fail_next_after=*/5),
      /*batch_rows=*/16);
  BatchAggregateOp agg(std::move(bridge), Schema({{"key"}, {"agg"}}),
                       AggFunc::kSum, 0, 0, ctx_);
  ASSERT_FALSE(agg.Open().ok());
  EXPECT_EQ(child.opens, 1);
  EXPECT_EQ(child.closes, 1);
}

TEST_F(OpenLeakTest, DrainClosesOnNextError) {
  // Drain opens successfully, then hits a mid-stream Next error: it must
  // still close the operator (releasing scan pins) before surfacing.
  HookOp::Counters hook;
  HookOp op(Scan(ctx_), &hook, /*fail_next_after=*/2);
  auto rows = Drain(&op);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(hook.opens, 1);
  EXPECT_EQ(hook.closes, 1);
}

TEST_F(OpenLeakTest, FailedOpenLeavesOperatorReopenable) {
  // The self-cleanup path must reset state: after a failed Open the same
  // operator opens and runs clean.
  int calls = 0;
  class FlakyOp : public Operator {
   public:
    FlakyOp(std::unique_ptr<Operator> child, int* calls)
        : child_(std::move(child)), calls_(calls) {}
    Status Open() override { return child_->Open(); }
    Status Next(Tuple* out, bool* eof) override {
      if (++*calls_ == 3) return Status::Internal("transient");
      return child_->Next(out, eof);
    }
    Status Close() override { return child_->Close(); }
    const Schema& schema() const override { return child_->schema(); }

   private:
    std::unique_ptr<Operator> child_;
    int* const calls_;
  };

  HashJoinOp join(Scan(ctx_),
                  std::make_unique<FlakyOp>(Scan(ctx_), &calls), 0, 0);
  ASSERT_FALSE(join.Open().ok());
  ASSERT_TRUE(join.Open().ok());
  auto rows = Drain(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4000u);  // 400 rows, 10 matches per key
}

}  // namespace
}  // namespace xprs
