// Tests for the SQL front door: lexer, parser, binder, and end-to-end
// execution against the optimizer and executor.

#include <gtest/gtest.h>

#include "sql/engine.h"
#include "util/rng.h"

namespace xprs {
namespace {

// ------------------------------------------------------------------ lexer

TEST(LexerTest, BasicTokens) {
  auto toks = Lex("SELECT * FROM r WHERE a >= 10");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 9u);  // incl. kEnd
  EXPECT_TRUE((*toks)[0].Is(TokKind::kIdent, "select"));
  EXPECT_TRUE((*toks)[1].Is(TokKind::kSymbol, "*"));
  EXPECT_TRUE((*toks)[5].Is(TokKind::kIdent, "a"));
  EXPECT_TRUE((*toks)[6].Is(TokKind::kSymbol, ">="));
  EXPECT_TRUE((*toks)[7].Is(TokKind::kInt));
  EXPECT_EQ((*toks)[7].int_value, 10);
}

TEST(LexerTest, StringsAndEscapes) {
  auto toks = Lex("x = 'ab''c'");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[2].Is(TokKind::kString));
  EXPECT_EQ((*toks)[2].text, "ab'c");
}

TEST(LexerTest, NegativeNumbersAndNeSpellings) {
  auto toks = Lex("a <> -5 and b != 3");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[1].Is(TokKind::kSymbol, "<>"));
  EXPECT_EQ((*toks)[2].int_value, -5);
  EXPECT_TRUE((*toks)[5].Is(TokKind::kSymbol, "<>"));  // != normalized
}

TEST(LexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Lex("x = 'oops").ok());
}

TEST(LexerTest, UnexpectedCharacterRejected) {
  EXPECT_FALSE(Lex("a # b").ok());
}

// ----------------------------------------------------------------- parser

TEST(ParserTest, SelectStarSingleTable) {
  auto q = ParseSql("SELECT * FROM r1");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].kind, SqlSelectItem::Kind::kStar);
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].table, "r1");
  EXPECT_EQ(q->from[0].alias, "r1");
  EXPECT_TRUE(q->where.empty());
}

TEST(ParserTest, AliasesJoinsAndConditions) {
  auto q = ParseSql(
      "SELECT x.a, y.b FROM big x, small y "
      "WHERE x.a = y.a AND x.a BETWEEN 5 AND 10 AND y.b = 'txt'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].alias, "x");
  ASSERT_EQ(q->where.size(), 3u);
  EXPECT_EQ(q->where[0].kind, SqlCondition::Kind::kJoin);
  EXPECT_EQ(q->where[1].kind, SqlCondition::Kind::kBetween);
  EXPECT_EQ(q->where[1].lo, 5);
  EXPECT_EQ(q->where[1].hi, 10);
  EXPECT_EQ(q->where[2].kind, SqlCondition::Kind::kCompare);
  EXPECT_EQ(std::get<std::string>(q->where[2].constant), "txt");
}

TEST(ParserTest, AggregatesAndGroupBy) {
  auto q = ParseSql("SELECT count(a) FROM r GROUP BY a");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].kind, SqlSelectItem::Kind::kAggregate);
  EXPECT_EQ(q->select[0].func, AggFunc::kCount);
  ASSERT_TRUE(q->group_by.has_value());
  EXPECT_EQ(q->group_by->column, "a");

  for (auto [sql, func] :
       std::vector<std::pair<const char*, AggFunc>>{
           {"SELECT sum(a) FROM r", AggFunc::kSum},
           {"SELECT min(a) FROM r", AggFunc::kMin},
           {"SELECT max(a) FROM r", AggFunc::kMax}}) {
    auto parsed = ParseSql(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    EXPECT_EQ(parsed->select[0].func, func) << sql;
  }
}

TEST(ParserTest, SyntaxErrorsRejected) {
  EXPECT_FALSE(ParseSql("SELECT FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM r WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM r WHERE a <").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM r trailing nonsense here").ok());
  EXPECT_FALSE(ParseSql("SELECT avg(a) FROM r").ok());  // unknown function
  EXPECT_FALSE(ParseSql("SELECT * FROM r WHERE a < b").ok());  // non-eq join
}

// ----------------------------------------------------------------- engine

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    engine_ = std::make_unique<SqlEngine>(
        catalog_.get(), MachineConfig::PaperConfig(), &model_);

    Table* orders = catalog_->CreateTable("orders", Schema::PaperSchema())
                        .value();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(orders->file()
                      .Append(Tuple({Value(int32_t{i % 100}),
                                     Value(std::string("o") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(orders->file().Flush().ok());
    ASSERT_TRUE(orders->BuildIndex(0).ok());
    ASSERT_TRUE(orders->ComputeStats().ok());

    Table* custs =
        catalog_->CreateTable("custs", Schema::PaperSchema()).value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(custs->file()
                      .Append(Tuple({Value(int32_t{i}),
                                     Value(std::string("c") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(custs->file().Flush().ok());
    ASSERT_TRUE(custs->BuildIndex(0).ok());
    ASSERT_TRUE(custs->ComputeStats().ok());
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  CostModel model_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(SqlEngineTest, SelectStar) {
  auto r = engine_->Execute("SELECT * FROM custs");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 100u);
  EXPECT_EQ(r->schema.num_columns(), 2u);
  EXPECT_EQ(r->schema.column(0).name, "custs.a");
}

TEST_F(SqlEngineTest, SelectionPredicates) {
  auto r = engine_->Execute("SELECT * FROM custs WHERE a BETWEEN 10 AND 19");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 10u);

  auto r2 = engine_->Execute("SELECT * FROM custs WHERE a >= 95");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.size(), 5u);

  auto r3 = engine_->Execute("SELECT * FROM custs WHERE b = 'c7'");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->rows.size(), 1u);
}

TEST_F(SqlEngineTest, TwoWayJoinWithProjection) {
  auto r = engine_->Execute(
      "SELECT o.b, c.b FROM orders o, custs c "
      "WHERE o.a = c.a AND c.a < 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // keys 0..9, each appears 3x in orders x 1 in custs.
  EXPECT_EQ(r->rows.size(), 30u);
  EXPECT_EQ(r->schema.num_columns(), 2u);
  EXPECT_EQ(r->schema.column(0).name, "o.b");
  for (const auto& row : r->rows) {
    EXPECT_EQ(std::get<std::string>(row.value(0))[0], 'o');
    EXPECT_EQ(std::get<std::string>(row.value(1))[0], 'c');
  }
}

TEST_F(SqlEngineTest, CountAndGroupBy) {
  auto r = engine_->Execute("SELECT count(a) FROM orders");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(std::get<int32_t>(r->rows[0].value(0)), 300);

  auto g = engine_->Execute(
      "SELECT count(a) FROM orders WHERE a < 5 GROUP BY a");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->rows.size(), 5u);
  for (const auto& row : g->rows)
    EXPECT_EQ(std::get<int32_t>(row.value(1)), 3);
}

TEST_F(SqlEngineTest, AggregateOverJoin) {
  auto r = engine_->Execute(
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(std::get<int32_t>(r->rows[0].value(0)), 300);
}

TEST_F(SqlEngineTest, ExplainReportsPlanAndCosts) {
  auto r = engine_->Explain(
      "SELECT * FROM orders o, custs c WHERE o.a = c.a");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_GT(r->seqcost, 0.0);
  EXPECT_GT(r->parcost, 0.0);
  EXPECT_LT(r->parcost, r->seqcost);
  EXPECT_NE(r->plan_text.find("Join"), std::string::npos);
}

TEST_F(SqlEngineTest, BindErrors) {
  EXPECT_FALSE(engine_->Execute("SELECT * FROM nope").ok());
  EXPECT_FALSE(engine_->Execute("SELECT zz FROM custs").ok());
  EXPECT_FALSE(
      engine_->Execute("SELECT * FROM orders o, custs o WHERE o.a = 1").ok());
  // Ambiguous unqualified column over two tables sharing the schema.
  EXPECT_FALSE(
      engine_->Execute("SELECT a FROM orders, custs WHERE orders.a = custs.a")
          .ok());
  // Cross product (no join condition) is rejected by the enumerator.
  EXPECT_FALSE(engine_->Execute("SELECT * FROM orders, custs").ok());
  // GROUP BY without aggregate.
  EXPECT_FALSE(engine_->Execute("SELECT a FROM custs GROUP BY a").ok());
}

TEST_F(SqlEngineTest, UnqualifiedColumnsOnSingleTable) {
  auto r = engine_->Execute("SELECT b FROM custs WHERE a = 42");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(r->rows[0].value(0)), "c42");
}

TEST_F(SqlEngineTest, ParallelExecutionMatchesSequential) {
  const char* queries[] = {
      "SELECT * FROM custs WHERE a BETWEEN 10 AND 40",
      "SELECT o.b, c.b FROM orders o, custs c WHERE o.a = c.a AND c.a < 20",
      "SELECT count(o.a) FROM orders o, custs c WHERE o.a = c.a",
  };
  for (const char* sql : queries) {
    auto seq = engine_->Execute(sql);
    MasterOptions options;
    auto par = engine_->ExecuteParallel(sql, options);
    ASSERT_TRUE(seq.ok()) << sql;
    ASSERT_TRUE(par.ok()) << sql << ": " << par.status().ToString();
    std::multiset<std::string> a, b;
    for (const auto& t : seq->rows) a.insert(t.ToString());
    for (const auto& t : par->rows) b.insert(t.ToString());
    EXPECT_EQ(a, b) << sql;
  }
}

TEST_F(SqlEngineTest, ThreeWayJoinExecutes) {
  // orders ⋈ custs ⋈ orders (self-join through custs).
  auto r = engine_->Execute(
      "SELECT count(o1.a) FROM orders o1, custs c, orders o2 "
      "WHERE o1.a = c.a AND c.a = o2.a AND c.a < 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Keys 0..2: 3 o1 x 1 c x 3 o2 per key = 27 rows.
  EXPECT_EQ(std::get<int32_t>(r->rows[0].value(0)), 27);
}

}  // namespace
}  // namespace xprs
