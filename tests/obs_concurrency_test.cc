// Concurrency hammer for the observability layer: MetricsRegistry and
// MemoryTraceRecorder are written from the parallel master's slave
// backends and the storage layer simultaneously, so registration, updates
// and snapshots must all be safe under contention. Run under the sanitizer
// config this doubles as a data-race detector.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xprs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 2000;

TEST(ObsConcurrencyTest, MetricsRegistryUnderContention) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Half the names are shared across threads (same-instrument
        // contention), half are per-thread (registration contention).
        registry.counter("shared.ops")->Increment();
        registry.counter("thread." + std::to_string(t) + ".ops")
            ->Increment();
        registry.gauge("shared.level")->Set(static_cast<double>(i));
        registry.gauge("shared.level")->Add(1.0);
        registry.histogram("shared.latency")
            ->Observe(static_cast<double>(i % 17) * 0.001);
        if (i % 256 == 0) registry.DumpJson();  // snapshot while writing
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("shared.ops")->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("thread." + std::to_string(t) + ".ops")
                  ->value(),
              static_cast<uint64_t>(kOpsPerThread));
  }
  EXPECT_EQ(registry.histogram("shared.latency")->count(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_FALSE(registry.DumpJson().empty());
}

TEST(ObsConcurrencyTest, MemoryTraceRecorderUnderContention) {
  MemoryTraceRecorder recorder(/*capacity=*/kThreads * kOpsPerThread / 2);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        TraceEvent event;
        event.name = "op";
        event.category = "test";
        event.phase = 'i';
        event.timestamp = static_cast<double>(i);
        event.track = t;
        event.args = {{"i", static_cast<int64_t>(i)}};
        recorder.Record(std::move(event));
        if (i % 512 == 0) {
          recorder.snapshot();  // concurrent readers
          recorder.size();
          recorder.dropped();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // The recorder holds exactly its capacity and counted every drop —
  // nothing lost, nothing double-counted.
  EXPECT_EQ(recorder.size() + recorder.dropped(),
            static_cast<size_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(recorder.size(),
            static_cast<size_t>(kThreads) * kOpsPerThread / 2);
  EXPECT_GT(recorder.dropped(), 0u);
}

}  // namespace
}  // namespace xprs
