// Concurrency hammer for the observability layer: MetricsRegistry and
// MemoryTraceRecorder are written from the parallel master's slave
// backends and the storage layer simultaneously, so registration, updates
// and snapshots must all be safe under contention. Run under the sanitizer
// config this doubles as a data-race detector.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace xprs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 2000;

TEST(ObsConcurrencyTest, MetricsRegistryUnderContention) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Half the names are shared across threads (same-instrument
        // contention), half are per-thread (registration contention).
        registry.counter("shared.ops")->Increment();
        registry.counter("thread." + std::to_string(t) + ".ops")
            ->Increment();
        registry.gauge("shared.level")->Set(static_cast<double>(i));
        registry.gauge("shared.level")->Add(1.0);
        registry.histogram("shared.latency")
            ->Observe(static_cast<double>(i % 17) * 0.001);
        if (i % 256 == 0) registry.DumpJson();  // snapshot while writing
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("shared.ops")->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("thread." + std::to_string(t) + ".ops")
                  ->value(),
              static_cast<uint64_t>(kOpsPerThread));
  }
  EXPECT_EQ(registry.histogram("shared.latency")->count(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_FALSE(registry.DumpJson().empty());
}

TEST(ObsConcurrencyTest, MemoryTraceRecorderUnderContention) {
  MemoryTraceRecorder recorder(/*capacity=*/kThreads * kOpsPerThread / 2);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        TraceEvent event;
        event.name = "op";
        event.category = "test";
        event.phase = 'i';
        event.timestamp = static_cast<double>(i);
        event.track = t;
        event.args = {{"i", static_cast<int64_t>(i)}};
        recorder.Record(std::move(event));
        if (i % 512 == 0) {
          recorder.snapshot();  // concurrent readers
          recorder.size();
          recorder.dropped();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // The recorder holds exactly its capacity and counted every drop —
  // nothing lost, nothing double-counted.
  EXPECT_EQ(recorder.size() + recorder.dropped(),
            static_cast<size_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(recorder.size(),
            static_cast<size_t>(kThreads) * kOpsPerThread / 2);
  EXPECT_GT(recorder.dropped(), 0u);
}

TEST(ObsConcurrencyTest, HistogramSnapshotIsInternallyConsistent) {
  // Regression: DumpJson used to read count/sum/buckets/percentiles in
  // separate locked reads, so a snapshot taken mid-flight could report a
  // count that disagreed with its own bucket totals. Snapshot() must copy
  // everything under one lock: count == sum(buckets) in every observation.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("snap.latency", {0.001, 0.01, 0.1});
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([h, &stop] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i)
        h->Observe(static_cast<double>(i % 23) * 0.005);
    });
  }
  std::thread reader([h, &stop, &inconsistent] {
    for (int i = 0; i < 2000; ++i) {
      HistogramSnapshot snap = h->Snapshot();
      uint64_t bucket_total = 0;
      for (uint64_t b : snap.buckets) bucket_total += b;
      if (snap.count != bucket_total) inconsistent.fetch_add(1);
      if (snap.count > 0 && (snap.min > snap.max ||
                             snap.sum < snap.count * snap.min - 1e-9 ||
                             snap.sum > snap.count * snap.max + 1e-9))
        inconsistent.fetch_add(1);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  reader.join();
  for (auto& w : writers) w.join();
  EXPECT_EQ(inconsistent.load(), 0);
}

TEST(ObsConcurrencyTest, ConcurrentSpanEmittersProduceValidTrees) {
  // Spans ended from concurrent threads: every emitted event must carry a
  // unique nonzero span_id, a monotonic extent (dur >= 0, start stamped
  // no later than end), and child events must reference their parent.
  MemoryTraceRecorder recorder;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < 200; ++i) {
        Span root(&recorder, "query", "serve", t);
        Span child(&recorder, "execute", "serve", t, root.id());
        child.End();
        root.EndAt(SpanNowSeconds());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads) * 400);
  std::set<int64_t> ids;
  std::set<int64_t> roots;
  for (const TraceEvent& e : events) {
    ASSERT_EQ(e.phase, 'X');
    EXPECT_GE(e.duration, 0.0);
    EXPECT_GT(e.timestamp, 0.0);
    const TraceValue* id = nullptr;
    for (const auto& [k, v] : e.args)
      if (k == "span_id") id = &v;
    ASSERT_NE(id, nullptr);
    EXPECT_NE(static_cast<int64_t>(id->num), 0);
    EXPECT_TRUE(ids.insert(static_cast<int64_t>(id->num)).second)
        << "duplicate span id " << id->num;
    if (e.name == "query") roots.insert(static_cast<int64_t>(id->num));
  }
  for (const TraceEvent& e : events) {
    if (e.name != "execute") continue;
    const TraceValue* parent = nullptr;
    for (const auto& [k, v] : e.args)
      if (k == "parent") parent = &v;
    ASSERT_NE(parent, nullptr);
    EXPECT_TRUE(roots.count(static_cast<int64_t>(parent->num)))
        << "child references unknown parent " << parent->num;
  }
}

}  // namespace
}  // namespace xprs
