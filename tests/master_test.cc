// Integration tests: the master backend running the full control loop —
// optimizer-estimated profiles, adaptive scheduling, real slave threads,
// dynamic adjustment — against every scheduling policy, with results
// cross-checked against the sequential reference executor.

#include <gtest/gtest.h>

#include <set>

#include "exec/executor.h"
#include "opt/two_phase.h"
#include "parallel/master.h"
#include "util/rng.h"

namespace xprs {
namespace {

class MasterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    big_ = Load("big", 2000, 60, 300);
    wide_ = Load("wide", 200, 3000, 300);
    small_ = Load("small", 300, 10, 300);
  }

  Table* Load(const std::string& name, int tuples, int width, int key_mod) {
    Table* t = catalog_->CreateTable(name, Schema::PaperSchema()).value();
    Rng rng(name.size() * 31 + name[0]);
    for (int i = 0; i < tuples; ++i) {
      int32_t key = static_cast<int32_t>(rng.NextInt(0, key_mod - 1));
      EXPECT_TRUE(
          t->file()
              .Append(Tuple({Value(key), Value(std::string(width, 'w'))}))
              .ok());
    }
    EXPECT_TRUE(t->file().Flush().ok());
    EXPECT_TRUE(t->BuildIndex(0).ok());
    EXPECT_TRUE(t->ComputeStats().ok());
    return t;
  }

  static std::multiset<std::string> Normalize(const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const auto& t : rows) out.insert(t.ToString());
    return out;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* big_ = nullptr;
  Table* wide_ = nullptr;
  Table* small_ = nullptr;
  CostModel model_;
  ExecContext ctx_;
};

class MasterPolicyTest
    : public MasterTest,
      public ::testing::WithParamInterface<SchedPolicy> {};

TEST_P(MasterPolicyTest, MultiQueryBatchProducesCorrectResults) {
  // Three single-fragment selection queries (the §3 task shape) plus one
  // two-fragment hash-join query.
  auto q1 = MakeSeqScan(big_, Predicate::Between(0, 0, 150));
  auto q2 = MakeSeqScan(wide_, Predicate());
  auto q3 = MakeIndexScan(small_, Predicate(), KeyRange{10, 200});
  auto q4 = MakeHashJoin(MakeSeqScan(big_, Predicate::Between(0, 0, 50)),
                         MakeSeqScan(small_, Predicate()), 0, 0);

  MasterOptions options;
  options.sched.policy = GetParam();
  options.ctx = ctx_;
  ParallelMaster master(MachineConfig::PaperConfig(), &model_, options);

  auto result = master.Run({{q1.get(), 1}, {q2.get(), 2}, {q3.get(), 3},
                            {q4.get(), 4}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  for (const auto& [qid, plan] :
       std::vector<std::pair<int64_t, const PlanNode*>>{
           {1, q1.get()}, {2, q2.get()}, {3, q3.get()}, {4, q4.get()}}) {
    auto expected = ExecutePlanSequential(*plan, ctx_);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(Normalize(result->query_results.at(qid)),
              Normalize(*expected))
        << "query " << qid << " under "
        << SchedPolicyName(GetParam());
  }
  EXPECT_GT(result->elapsed_seconds, 0.0);
  if (GetParam() != SchedPolicy::kInterWithAdj) {
    EXPECT_EQ(result->num_adjustments, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MasterPolicyTest,
                         ::testing::Values(SchedPolicy::kIntraOnly,
                                           SchedPolicy::kInterWithoutAdj,
                                           SchedPolicy::kInterWithAdj));

TEST_F(MasterTest, DependenciesRespectedAcrossFragments) {
  // A bushy 3-way plan: its build fragments must complete before probes.
  auto plan = MakeHashJoin(
      MakeHashJoin(MakeSeqScan(big_, Predicate::Between(0, 0, 80)),
                   MakeSeqScan(small_, Predicate()), 0, 0),
      MakeSeqScan(wide_, Predicate::Between(0, 0, 120)), 0, 0);

  MasterOptions options;
  options.sched.policy = SchedPolicy::kInterWithAdj;
  options.ctx = ctx_;
  ParallelMaster master(MachineConfig::PaperConfig(), &model_, options);
  auto result = master.Run({{plan.get(), 42}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto expected = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Normalize(result->query_results.at(42)), Normalize(*expected));
}

TEST_F(MasterTest, OptimizerToMasterEndToEnd) {
  // Full stack: QuerySpec -> two-phase optimizer -> master execution.
  QuerySpec q;
  q.relations = {{big_, Predicate::Between(0, 0, 100)},
                 {small_, Predicate()},
                 {wide_, Predicate()}};
  q.joins = {{0, 0, 1, 0}, {1, 0, 2, 0}};

  TwoPhaseOptimizer optimizer(MachineConfig::PaperConfig(), &model_);
  auto optimized = optimizer.Optimize(q, TreeShape::kBushy);
  ASSERT_TRUE(optimized.ok());

  MasterOptions options;
  options.ctx = ctx_;
  ParallelMaster master(MachineConfig::PaperConfig(), &model_, options);
  auto result = master.Run({{optimized->plan.get(), 7}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto expected = ExecutePlanSequential(*optimized->plan, ctx_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Normalize(result->query_results.at(7)), Normalize(*expected));
  EXPECT_FALSE(expected->empty());
}

TEST_F(MasterTest, ThrottledDisksStillCorrect) {
  // Same pipeline over a throttled (really-sleeping) disk array, scaled
  // down so the test stays fast; exercises io contention for real.
  DiskTimings timings;
  timings.time_scale = 0.02;
  DiskArray slow(4, DiskMode::kThrottled, timings);
  Catalog catalog(&slow);
  Table* t = catalog.CreateTable("t", Schema::PaperSchema()).value();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(t->file()
                    .Append(Tuple({Value(int32_t{i % 50}),
                                   Value(std::string(200, 'z'))}))
                    .ok());
  }
  ASSERT_TRUE(t->file().Flush().ok());
  ASSERT_TRUE(t->BuildIndex(0).ok());
  ASSERT_TRUE(t->ComputeStats().ok());

  auto q1 = MakeSeqScan(t, Predicate::Between(0, 0, 25));
  auto q2 = MakeIndexScan(t, Predicate(), KeyRange{30, 40});

  MasterOptions options;
  options.sched.policy = SchedPolicy::kInterWithAdj;
  ParallelMaster master(MachineConfig::PaperConfig(), &model_, options);
  auto result = master.Run({{q1.get(), 1}, {q2.get(), 2}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExecContext instant_ctx;
  auto e1 = ExecutePlanSequential(*q1, instant_ctx);
  auto e2 = ExecutePlanSequential(*q2, instant_ctx);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(Normalize(result->query_results.at(1)), Normalize(*e1));
  EXPECT_EQ(Normalize(result->query_results.at(2)), Normalize(*e2));
  // The disks really slept.
  EXPECT_GT(slow.total_stats().busy_seconds, 0.0);
}

TEST_F(MasterTest, SharedBufferPoolAcrossBackends) {
  BufferPool pool(array_.get(), 256);
  MasterOptions options;
  options.ctx.pool = &pool;
  ParallelMaster master(MachineConfig::PaperConfig(), &model_, options);

  auto q = MakeHashJoin(MakeSeqScan(big_, Predicate()),
                        MakeSeqScan(small_, Predicate()), 0, 0);
  auto result = master.Run({{q.get(), 1}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExecContext plain;
  auto expected = ExecutePlanSequential(*q, plain);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Normalize(result->query_results.at(1)), Normalize(*expected));
  EXPECT_GT(pool.stats().hits + pool.stats().misses, 0u);
}

}  // namespace
}  // namespace xprs
