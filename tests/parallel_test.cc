// Tests for the dynamic parallelism adjustment protocols (§2.4, Figures
// 5/6) and the parallel fragment executor. The load-bearing property is
// exactly-once delivery: every page / index entry is handed out exactly
// once across any sequence of adjustments, under real concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/fragment.h"
#include "parallel/fragment_run.h"
#include "parallel/page_partition.h"
#include "parallel/range_partition.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace xprs {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Harness: runs slave threads against a page scan, lets the test fire
// adjustments (spawning any newly activated slots), and returns every page
// taken. Asserts nothing itself.
class PageScanHarness {
 public:
  explicit PageScanHarness(AdjustablePageScan* scan) : scan_(scan) {}

  void SpawnInitial() {
    for (int i = 0; i < scan_->parallelism(); ++i) Spawn(i);
  }

  void Adjust(int n) {
    auto r = scan_->Adjust(n);
    for (int slot : r.slots_to_start) Spawn(slot);
  }

  std::vector<uint32_t> Finish() {
    while (!scan_->Done()) SleepMs(1);
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (auto& t : threads_)
      if (t.joinable()) t.join();
    return taken_;
  }

 private:
  void Spawn(int slot) {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads_.emplace_back([this, slot] {
      for (;;) {
        auto p = scan_->NextPage(slot);
        if (!p.has_value()) return;
        {
          std::lock_guard<std::mutex> l2(mu_);
          taken_.push_back(*p);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(150));
      }
    });
  }

  AdjustablePageScan* scan_;
  std::mutex mu_;
  std::vector<uint32_t> taken_;
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

void ExpectExactlyOnce(const std::vector<uint32_t>& taken, uint32_t n) {
  std::set<uint32_t> unique(taken.begin(), taken.end());
  EXPECT_EQ(taken.size(), n) << "pages delivered more or less than once";
  EXPECT_EQ(unique.size(), n);
  if (n > 0) {
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), n - 1);
  }
}

TEST(PagePartitionTest, AllPagesExactlyOnceNoAdjustment) {
  AdjustablePageScan scan(97, 3, 8);
  PageScanHarness h(&scan);
  h.SpawnInitial();
  ExpectExactlyOnce(h.Finish(), 97);
}

TEST(PagePartitionTest, GrowMidScanCoversExactlyOnce) {
  AdjustablePageScan scan(400, 2, 8);
  PageScanHarness h(&scan);
  h.SpawnInitial();
  SleepMs(5);
  h.Adjust(6);
  ExpectExactlyOnce(h.Finish(), 400);
  EXPECT_EQ(scan.num_adjustments(), 1);
}

TEST(PagePartitionTest, ShrinkMidScanCoversExactlyOnce) {
  AdjustablePageScan scan(300, 6, 8);
  PageScanHarness h(&scan);
  h.SpawnInitial();
  SleepMs(3);
  h.Adjust(2);
  ExpectExactlyOnce(h.Finish(), 300);
}

TEST(PagePartitionTest, ManyRandomAdjustments) {
  AdjustablePageScan scan(1000, 4, 8);
  PageScanHarness h(&scan);
  h.SpawnInitial();
  Rng rng(99);
  for (int round = 0; round < 8 && !scan.Done(); ++round) {
    SleepMs(2);
    h.Adjust(static_cast<int>(rng.NextInt(1, 8)));
  }
  ExpectExactlyOnce(h.Finish(), 1000);
}

TEST(PagePartitionTest, SingleSlaveSingularPage) {
  AdjustablePageScan scan(1, 1, 4);
  PageScanHarness h(&scan);
  h.SpawnInitial();
  ExpectExactlyOnce(h.Finish(), 1);
}

class RangePartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      int32_t key = static_cast<int32_t>(rng.NextInt(0, 499));
      index_.Insert(key, TupleId{static_cast<uint32_t>(i), 0});
      ++expected_[key];
    }
  }
  BTreeIndex index_;
  std::map<int32_t, int> expected_;
};

TEST_F(RangePartitionTest, EntriesExactlyOnceWithAdjustments) {
  AdjustableRangeScan scan(&index_, {0, 499}, 3, 8, /*chunk_entries=*/64);
  std::mutex mu;
  std::map<int32_t, int> got;
  std::vector<std::thread> threads;
  std::mutex threads_mu;

  std::function<void(int)> spawn = [&](int slot) {
    std::lock_guard<std::mutex> lock(threads_mu);
    threads.emplace_back([&, slot] {
      for (;;) {
        auto chunk = scan.NextChunk(slot);
        if (!chunk.has_value()) return;
        std::map<int32_t, int> local;
        for (auto it = index_.Scan(chunk->lo, chunk->hi); it.Valid();
             it.Next())
          ++local[it.key()];
        {
          std::lock_guard<std::mutex> l2(mu);
          for (auto& [k, c] : local) got[k] += c;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  };
  for (int i = 0; i < 3; ++i) spawn(i);

  Rng rng(13);
  for (int round = 0; round < 6 && !scan.Done(); ++round) {
    SleepMs(2);
    auto r = scan.Adjust(static_cast<int>(rng.NextInt(1, 8)));
    for (int slot : r.slots_to_start) spawn(slot);
  }
  while (!scan.Done()) SleepMs(1);
  {
    std::lock_guard<std::mutex> lock(threads_mu);
    for (auto& t : threads)
      if (t.joinable()) t.join();
  }

  EXPECT_EQ(got, expected_) << "index entries not delivered exactly once";
}

TEST_F(RangePartitionTest, InitialPartitionIsBalanced) {
  AdjustableRangeScan scan(&index_, {0, 499}, 4, 8, /*chunk_entries=*/32);
  // Drain each slot single-threadedly (no adjustments -> no rendezvous).
  std::vector<size_t> per_slot(4, 0);
  for (int slot = 0; slot < 4; ++slot) {
    for (;;) {
      auto chunk = scan.NextChunk(slot);
      if (!chunk.has_value()) break;
      per_slot[slot] += index_.CountRange(chunk->lo, chunk->hi);
    }
  }
  size_t total = 0;
  for (size_t c : per_slot) {
    EXPECT_GT(c, 250u);  // ideal 500 each; allow slack for duplicates
    EXPECT_LT(c, 900u);
    total += c;
  }
  EXPECT_EQ(total, 2000u);
}

// ------------------------------------------------------ fragment run tests

class FragmentRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    r_ = catalog_->CreateTable("r", Schema::PaperSchema()).value();
    for (int i = 0; i < 3000; ++i) {
      ASSERT_TRUE(r_->file()
                      .Append(Tuple({Value(int32_t{i % 500}),
                                     Value(std::string(20, 'x'))}))
                      .ok());
    }
    ASSERT_TRUE(r_->file().Flush().ok());
    ASSERT_TRUE(r_->BuildIndex(0).ok());
    ASSERT_TRUE(r_->ComputeStats().ok());

    s_ = catalog_->CreateTable("s", Schema::PaperSchema()).value();
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(s_->file()
                      .Append(Tuple({Value(int32_t{i}),
                                     Value(std::string(10, 'y'))}))
                      .ok());
    }
    ASSERT_TRUE(s_->file().Flush().ok());
    ASSERT_TRUE(s_->BuildIndex(0).ok());
  }

  static std::multiset<std::string> Normalize(const std::vector<Tuple>& rows) {
    std::multiset<std::string> out;
    for (const auto& t : rows) out.insert(t.ToString());
    return out;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* r_ = nullptr;
  Table* s_ = nullptr;
  ExecContext ctx_;
};

TEST_F(FragmentRunTest, SeqScanFragmentMatchesSequential) {
  auto plan = MakeSeqScan(r_, Predicate::Between(0, 100, 300));
  FragmentGraph graph = FragmentGraph::Decompose(*plan);

  ParallelFragmentRun::Options opts;
  opts.initial_parallelism = 4;
  opts.ctx = ctx_;
  ParallelFragmentRun run(&graph, graph.root_fragment(), {}, opts);
  ASSERT_TRUE(run.Start().ok());
  auto result = run.Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto expected = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Normalize(result->tuples), Normalize(*expected));
  EXPECT_EQ(result->tuples.size(), 201u * 6);  // 201 keys x 6 dups
}

TEST_F(FragmentRunTest, AdjustmentsDuringRunPreserveResult) {
  auto plan = MakeSeqScan(r_, Predicate());
  FragmentGraph graph = FragmentGraph::Decompose(*plan);

  ParallelFragmentRun::Options opts;
  opts.initial_parallelism = 2;
  opts.max_slots = 8;
  opts.ctx = ctx_;
  ParallelFragmentRun run(&graph, graph.root_fragment(), {}, opts);
  ASSERT_TRUE(run.Start().ok());
  // Fire adjustments while the scan races.
  run.Adjust(6);
  run.Adjust(1);
  run.Adjust(4);
  auto result = run.Wait();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 3000u);
  EXPECT_GE(run.num_adjustments(), 1);
}

TEST_F(FragmentRunTest, IndexScanFragmentMatchesSequential) {
  auto plan = MakeIndexScan(r_, Predicate(), KeyRange{50, 150});
  FragmentGraph graph = FragmentGraph::Decompose(*plan);

  ParallelFragmentRun::Options opts;
  opts.initial_parallelism = 3;
  opts.ctx = ctx_;
  ParallelFragmentRun run(&graph, graph.root_fragment(), {}, opts);
  ASSERT_TRUE(run.Start().ok());
  run.Adjust(5);
  auto result = run.Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto expected = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Normalize(result->tuples), Normalize(*expected));
}

TEST_F(FragmentRunTest, SortRootFragmentProducesSortedOutput) {
  auto plan = MakeSort(MakeSeqScan(r_, Predicate::Between(0, 0, 100)), 0);
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  ASSERT_EQ(graph.fragments().size(), 1u);  // sort at the root: own fragment

  ParallelFragmentRun::Options opts;
  opts.initial_parallelism = 4;
  opts.ctx = ctx_;
  ParallelFragmentRun run(&graph, graph.root_fragment(), {}, opts);
  ASSERT_TRUE(run.Start().ok());
  auto result = run.Wait();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tuples.size(), 101u * 6);
  for (size_t i = 1; i < result->tuples.size(); ++i) {
    EXPECT_LE(std::get<int32_t>(result->tuples[i - 1].value(0)),
              std::get<int32_t>(result->tuples[i].value(0)));
  }
}

TEST_F(FragmentRunTest, HashJoinPlanViaParallelFragments) {
  auto plan = MakeHashJoin(MakeSeqScan(r_, Predicate()),
                           MakeSeqScan(s_, Predicate()), 0, 0);
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  ASSERT_EQ(graph.fragments().size(), 2u);
  int build_id = graph.fragment(graph.root_fragment()).deps[0];

  // Build fragment in parallel.
  ParallelFragmentRun::Options opts;
  opts.initial_parallelism = 3;
  opts.ctx = ctx_;
  ParallelFragmentRun build(&graph, build_id, {}, opts);
  ASSERT_TRUE(build.Start().ok());
  auto build_result = build.Wait();
  ASSERT_TRUE(build_result.ok());

  // Probe fragment in parallel, with an adjustment mid-run.
  std::map<int, const TempResult*> inputs{{build_id, &build_result.value()}};
  ParallelFragmentRun probe(&graph, graph.root_fragment(), inputs, opts);
  ASSERT_TRUE(probe.Start().ok());
  probe.Adjust(6);
  auto probe_result = probe.Wait();
  ASSERT_TRUE(probe_result.ok());

  auto expected = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Normalize(probe_result->tuples), Normalize(*expected));
}

TEST_F(FragmentRunTest, TempDrivenFragmentPartitionsBatches) {
  // Fragment whose driving leaf is a materialized input: build a sort
  // below a hash join probe... simplest: merge join of two sorts, top
  // fragment driven by the left sort's output.
  auto plan = MakeMergeJoin(MakeSort(MakeSeqScan(r_, Predicate()), 0),
                            MakeSort(MakeSeqScan(s_, Predicate()), 0), 0, 0);
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  ASSERT_EQ(graph.fragments().size(), 3u);

  std::map<int, TempResult> results;
  for (int id : graph.TopologicalOrder()) {
    std::map<int, const TempResult*> inputs;
    for (int dep : graph.fragment(id).deps) inputs[dep] = &results.at(dep);
    ParallelFragmentRun::Options opts;
    opts.initial_parallelism = id == graph.root_fragment() ? 1 : 3;
    opts.ctx = ctx_;
    ParallelFragmentRun run(&graph, id, inputs, opts);
    ASSERT_TRUE(run.Start().ok());
    auto r = run.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results[id] = std::move(r).value();
  }

  auto expected = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Normalize(results.at(graph.root_fragment()).tuples),
            Normalize(*expected));
}

TEST_F(FragmentRunTest, ProgressReachesOne) {
  auto plan = MakeSeqScan(r_, Predicate());
  FragmentGraph graph = FragmentGraph::Decompose(*plan);
  ParallelFragmentRun::Options opts;
  opts.initial_parallelism = 2;
  opts.ctx = ctx_;
  ParallelFragmentRun run(&graph, graph.root_fragment(), {}, opts);
  EXPECT_DOUBLE_EQ(run.Progress(), 0.0);
  ASSERT_TRUE(run.Start().ok());
  ASSERT_TRUE(run.Wait().ok());
  EXPECT_DOUBLE_EQ(run.Progress(), 1.0);
  EXPECT_TRUE(run.finished());
}

}  // namespace
}  // namespace xprs
