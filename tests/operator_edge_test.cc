// Edge-case coverage for the Volcano operators: empty inputs, all-null
// keys, single-row inputs, rescans, and operator re-opening.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/operators.h"
#include "storage/catalog.h"

namespace xprs {
namespace {

class OperatorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(2, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    empty_ = Make("empty", {});
    one_ = Make("one", {5});
    nulls_ = catalog_->CreateTable("nulls", Schema::PaperSchema()).value();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(nulls_->file()
                      .Append(Tuple({Value(std::monostate{}),
                                     Value(std::string("n"))}))
                      .ok());
    }
    ASSERT_TRUE(nulls_->file().Flush().ok());
    ASSERT_TRUE(nulls_->ComputeStats().ok());
    filled_ = Make("filled", {1, 2, 2, 3, 3, 3});
  }

  Table* Make(const std::string& name, std::vector<int32_t> keys) {
    Table* t = catalog_->CreateTable(name, Schema::PaperSchema()).value();
    for (int32_t k : keys) {
      EXPECT_TRUE(
          t->file().Append(Tuple({Value(k), Value(std::string("x"))})).ok());
    }
    EXPECT_TRUE(t->file().Flush().ok());
    EXPECT_TRUE(t->ComputeStats().ok());
    return t;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* empty_ = nullptr;
  Table* one_ = nullptr;
  Table* nulls_ = nullptr;
  Table* filled_ = nullptr;
  ExecContext ctx_;
};

TEST_F(OperatorEdgeTest, ScanOfEmptyRelation) {
  SeqScanOp scan(empty_, Predicate(), ctx_);
  auto rows = Drain(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(OperatorEdgeTest, JoinsWithEmptyInputs) {
  for (auto kind :
       {PlanKind::kNestLoopJoin, PlanKind::kHashJoin, PlanKind::kMergeJoin}) {
    auto make = [&](Table* l, Table* r) -> std::unique_ptr<PlanNode> {
      auto ls = MakeSeqScan(l, Predicate());
      auto rs = MakeSeqScan(r, Predicate());
      switch (kind) {
        case PlanKind::kNestLoopJoin:
          return MakeNestLoopJoin(std::move(ls), std::move(rs), 0, 0);
        case PlanKind::kHashJoin:
          return MakeHashJoin(std::move(ls), std::move(rs), 0, 0);
        default:
          return MakeMergeJoin(MakeSort(std::move(ls), 0),
                               MakeSort(std::move(rs), 0), 0, 0);
      }
    };
    for (auto [l, r] : {std::pair{empty_, filled_}, {filled_, empty_},
                        {empty_, empty_}}) {
      auto rows = ExecutePlanSequential(*make(l, r), ctx_);
      ASSERT_TRUE(rows.ok()) << PlanKindName(kind);
      EXPECT_TRUE(rows->empty()) << PlanKindName(kind);
    }
  }
}

TEST_F(OperatorEdgeTest, AllNullKeysJoinNothing) {
  for (auto kind :
       {PlanKind::kNestLoopJoin, PlanKind::kHashJoin, PlanKind::kMergeJoin}) {
    auto ls = MakeSeqScan(nulls_, Predicate());
    auto rs = MakeSeqScan(filled_, Predicate());
    std::unique_ptr<PlanNode> plan;
    switch (kind) {
      case PlanKind::kNestLoopJoin:
        plan = MakeNestLoopJoin(std::move(ls), std::move(rs), 0, 0);
        break;
      case PlanKind::kHashJoin:
        plan = MakeHashJoin(std::move(ls), std::move(rs), 0, 0);
        break;
      default:
        plan = MakeMergeJoin(MakeSort(std::move(ls), 0),
                             MakeSort(std::move(rs), 0), 0, 0);
        break;
    }
    auto rows = ExecutePlanSequential(*plan, ctx_);
    ASSERT_TRUE(rows.ok()) << PlanKindName(kind);
    EXPECT_TRUE(rows->empty()) << PlanKindName(kind);
  }
}

TEST_F(OperatorEdgeTest, SingleRowJoin) {
  auto plan = MakeHashJoin(MakeSeqScan(one_, Predicate()),
                           MakeSeqScan(one_, Predicate()), 0, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(OperatorEdgeTest, MergeJoinDuplicateGroupsCrossProduct) {
  // 2x'2' joins 2x'2' -> 4; 3x'3' joins 3x'3' -> 9; 1x'1' -> 1. Total 14.
  auto plan = MakeMergeJoin(MakeSort(MakeSeqScan(filled_, Predicate()), 0),
                            MakeSort(MakeSeqScan(filled_, Predicate()), 0),
                            0, 0);
  auto rows = ExecutePlanSequential(*plan, ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 14u);
}

TEST_F(OperatorEdgeTest, OperatorReopenProducesSameRows) {
  auto plan = MakeHashJoin(MakeSeqScan(filled_, Predicate()),
                           MakeSeqScan(one_, Predicate()), 0, 0);
  auto op = BuildOperatorTree(*plan, ctx_);
  ASSERT_TRUE(op.ok());
  auto first = Drain(op->get());
  auto second = Drain(op->get());  // Drain re-opens
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->size(), second->size());
}

TEST_F(OperatorEdgeTest, FilterChain) {
  auto scan = std::make_unique<SeqScanOp>(filled_, Predicate(), ctx_);
  auto f1 = std::make_unique<FilterOp>(
      std::move(scan), Predicate::Compare(0, CmpOp::kGe, Value(int32_t{2})));
  FilterOp f2(std::move(f1),
              Predicate::Compare(0, CmpOp::kLe, Value(int32_t{2})));
  auto rows = Drain(&f2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // the two 2s
}

TEST_F(OperatorEdgeTest, TempSourceRoundTrip) {
  TempResult temp;
  temp.schema = filled_->schema();
  SeqScanOp scan(filled_, Predicate(), ctx_);
  temp.tuples = Drain(&scan).value();

  TempSourceOp source(&temp);
  auto rows = Drain(&source);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), temp.tuples.size());
}

TEST_F(OperatorEdgeTest, SortStability) {
  // Equal keys must keep their scan order (stable sort).
  auto scan = std::make_unique<SeqScanOp>(filled_, Predicate(), ctx_);
  SortOp sort(std::move(scan), 0);
  auto rows = Drain(&sort);
  ASSERT_TRUE(rows.ok());
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE(std::get<int32_t>((*rows)[i - 1].value(0)),
              std::get<int32_t>((*rows)[i].value(0)));
  }
}

TEST_F(OperatorEdgeTest, IndexScanEmptyRange) {
  Table* t = Make("idx", {1, 2, 3});
  ASSERT_TRUE(t->BuildIndex(0).ok());
  IndexScanOp scan(t, Predicate(), KeyRange{10, 20}, ctx_);
  auto rows = Drain(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

}  // namespace
}  // namespace xprs
