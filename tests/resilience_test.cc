// Resilience subsystem tests: cancellation tokens and deadlines (checked
// from the serial executor, the parallel master and the SQL front door,
// always with zero pinned frames left behind), the fragment retry /
// degrade ladder, and buffer-pool backpressure with inline retry and the
// degrade-to-spill path.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>

#include "exec/executor.h"
#include "exec/fragment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/cost_model.h"
#include "parallel/master.h"
#include "resilience/cancellation.h"
#include "resilience/retry.h"
#include "sql/engine.h"
#include "storage/buffer_pool.h"
#include "util/rng.h"

namespace xprs {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
    t_ = catalog_->CreateTable("t", Schema::PaperSchema()).value();
    for (int i = 0; i < 800; ++i) {
      ASSERT_TRUE(t_->file()
                      .Append(Tuple({Value(int32_t{i % 60}),
                                     Value(std::string(40, 'r'))}))
                      .ok());
    }
    ASSERT_TRUE(t_->file().Flush().ok());
    ASSERT_TRUE(t_->BuildIndex(0).ok());
    ASSERT_TRUE(t_->ComputeStats().ok());
  }

  std::unique_ptr<PlanNode> JoinPlan() {
    return MakeHashJoin(MakeSeqScan(t_, Predicate()),
                        MakeSeqScan(t_, Predicate()), 0, 0);
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Table* t_ = nullptr;
};

TEST_F(ResilienceTest, TokenLatchesFirstTerminalState) {
  CancellationToken token;
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.cancelled());

  token.Cancel("user abort");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);

  // An expiring deadline cannot override the latched cancellation.
  token.SetDeadlineAfterMs(0);
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);

  CancellationToken deadline;
  deadline.SetDeadlineAfterMs(0);
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
  // ... and the deadline latches too: a later Cancel changes nothing.
  deadline.Cancel("too late");
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
}

// A 0 ms deadline must return DeadlineExceeded from the serial executor —
// not crash, not run to completion — with every pin released.
TEST_F(ResilienceTest, ZeroDeadlineSerialExecutor) {
  BufferPool pool(array_.get(), 8);
  CancellationToken token;
  token.SetDeadlineAfterMs(0);
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.cancel = &token;
  auto rows = ExecutePlanSequential(*JoinPlan(), ctx);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

// Same bar for the parallel master: the control loop is a cancellation
// point even while slaves run, and the cancel event is published.
TEST_F(ResilienceTest, ZeroDeadlineParallelMaster) {
  MetricsRegistry metrics;
  BufferPool pool(array_.get(), 8);
  CancellationToken token;
  token.SetDeadlineAfterMs(0);
  CostModel model;
  MasterOptions options;
  options.ctx.pool = &pool;
  options.ctx.cancel = &token;
  options.obs.metrics = &metrics;
  auto plan = JoinPlan();
  ParallelMaster master(MachineConfig::PaperConfig(), &model, options);
  auto result = master.Run({{plan.get(), 1}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
  EXPECT_GE(metrics.counter("resilience.cancel.deadline")->value(), 1u);
}

// The SQL front door honors the token from planning onwards.
TEST_F(ResilienceTest, SqlEngineHonorsDeadline) {
  CostModel model;
  SqlEngine engine(catalog_.get(), MachineConfig::PaperConfig(), &model);
  CancellationToken token;
  token.SetDeadlineAfterMs(0);
  ExecContext ctx;
  ctx.cancel = &token;
  auto result = engine.Execute("SELECT * FROM t", ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// Cancelling while a scan holds a pooled page: the scan serves out its
// current page, then surfaces Cancelled and drops the pin.
TEST_F(ResilienceTest, CancelMidScanReleasesPinnedPage) {
  BufferPool pool(array_.get(), 8);
  CancellationToken token;
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.cancel = &token;
  SeqScanOp scan(t_, Predicate(), ctx);
  ASSERT_TRUE(scan.Open().ok());
  Tuple tuple;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&tuple, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_GT(pool.PinnedFrames(), 0u);  // the current page is pinned

  token.Cancel("user abort");
  Status status;
  do {
    status = scan.Next(&tuple, &eof);
  } while (status.ok() && !eof);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

// A transient fault is absorbed by the fragment retry rung, and the
// recovery is visible as a metric and a trace event.
TEST_F(ResilienceTest, FragmentRetryRecoversTransientFault) {
  MetricsRegistry metrics;
  MemoryTraceRecorder trace;
  CostModel model;
  MasterOptions options;
  options.retry.initial_backoff_ms = 0;
  options.obs.metrics = &metrics;
  options.obs.trace = &trace;
  auto plan = MakeSeqScan(t_, Predicate());
  ParallelMaster master(MachineConfig::PaperConfig(), &model, options);
  array_->FailNextReads(1);
  auto result = master.Run({{plan.get(), 1}});
  array_->FailNextReads(0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->query_results.at(1).size(), 800u);
  EXPECT_GE(result->fragment_retries, 1u);
  EXPECT_GE(metrics.counter("resilience.retry.fragment")->value(), 1u);
  bool saw_event = false;
  for (const TraceEvent& event : trace.snapshot()) {
    if (event.category == "resilience") saw_event = true;
  }
  EXPECT_TRUE(saw_event);
}

// Fails every read issued off the master thread; the serial fallback
// (which runs on the master thread) is the only rung that can succeed.
class SlaveOnlyFaultInjector : public FaultInjector {
 public:
  explicit SlaveOnlyFaultInjector(std::thread::id master) : master_(master) {}
  Status BeforeRead(BlockId) override {
    if (std::this_thread::get_id() == master_) return Status::OK();
    return Status::IoError("injected slave-side read fault");
  }
  Status BeforeWrite(BlockId, size_t*) override { return Status::OK(); }
  Status BeforeFetch(BlockId) override { return Status::OK(); }

 private:
  const std::thread::id master_;
};

// A fault that persists across every parallel attempt walks the whole
// ladder — retry, halve, halve, ... — and lands on the serial executor.
TEST_F(ResilienceTest, DegradeToSerialFallback) {
  MetricsRegistry metrics;
  SlaveOnlyFaultInjector injector(std::this_thread::get_id());
  array_->SetFaultInjector(&injector);
  CostModel model;
  MasterOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0;
  options.obs.metrics = &metrics;
  auto plan = MakeSeqScan(t_, Predicate());
  ParallelMaster master(MachineConfig::PaperConfig(), &model, options);
  auto result = master.Run({{plan.get(), 1}});
  array_->SetFaultInjector(nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->query_results.at(1).size(), 800u);
  EXPECT_EQ(result->serial_fallbacks, 1u);
  EXPECT_GE(result->fragment_retries, 1u);
  EXPECT_GE(metrics.counter("resilience.degrade.serial")->value(), 1u);

  // With the fallback disabled the same fault surfaces instead.
  MasterOptions strict = options;
  strict.serial_fallback = false;
  array_->SetFaultInjector(&injector);
  ParallelMaster master2(MachineConfig::PaperConfig(), &model, strict);
  auto failed = master2.Run({{plan.get(), 1}});
  array_->SetFaultInjector(nullptr);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
}

// Admission control: once pinned frames reach the soft limit, misses are
// refused with ResourceExhausted while hits on resident pages still serve
// (refusing re-pins would livelock the holder).
TEST_F(ResilienceTest, SoftPinLimitRefusesMissesNotHits) {
  BufferPool pool(array_.get(), 8);
  pool.SetSoftPinLimit(1);
  BlockId b0 = t_->file().BlockOf(0).value();
  BlockId b1 = t_->file().BlockOf(1).value();

  auto held = pool.Fetch(b0);
  ASSERT_TRUE(held.ok());
  auto refused = pool.Fetch(b1);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  auto hit = pool.Fetch(b0);
  EXPECT_TRUE(hit.ok());
}

// FetchWithBackpressure keeps retrying while another query drains its
// pins, then succeeds; the waiting shows up as backpressure.retry events.
TEST_F(ResilienceTest, BackpressureRetryRecoversWhenPinsDrain) {
  MetricsRegistry metrics;
  BufferPool pool(array_.get(), 8);
  pool.SetSoftPinLimit(1);
  BlockId b0 = t_->file().BlockOf(0).value();
  BlockId b1 = t_->file().BlockOf(1).value();

  std::optional<PageHandle> held(pool.Fetch(b0).value());
  RetryPolicy retry;
  retry.max_attempts = 200;
  retry.initial_backoff_ms = 1;
  retry.backoff_multiplier = 1.0;
  retry.max_backoff_ms = 1;
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.fetch_retry = &retry;
  ctx.obs.metrics = &metrics;

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    held.reset();
  });
  auto handle = FetchWithBackpressure(ctx, b1);
  releaser.join();
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_GE(metrics.counter("resilience.backpressure.retry")->value(), 1u);
}

// Persistent pool exhaustion walks ExecutePlanResilient's ladder: retry
// the whole plan, then degrade — bypass the pool and run the §5 spill
// path — instead of failing the query.
TEST_F(ResilienceTest, ResilientExecutorDegradesToSpill) {
  MetricsRegistry metrics;
  BufferPool pool(array_.get(), 8);
  pool.SetSoftPinLimit(1);
  BlockId b0 = t_->file().BlockOf(0).value();
  auto held = pool.Fetch(b0);  // pinned for the whole test
  ASSERT_TRUE(held.ok());

  DiskArray temp(4, DiskMode::kInstant);
  ExecContext ctx;
  ctx.pool = &pool;
  ResilientExecOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0;
  options.degrade_spill_array = &temp;
  options.degrade_spill_tuples = 64;
  options.obs.metrics = &metrics;

  auto plan = MakeSort(MakeSeqScan(t_, Predicate()), 0);
  auto rows = ExecutePlanResilient(*plan, ctx, options);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 800u);
  EXPECT_EQ(metrics.counter("resilience.degrade.spill")->value(), 1u);
  EXPECT_GE(metrics.counter("resilience.retry.query")->value(), 1u);
}

// Cancellation is terminal: the resilient executor must not burn retry
// budget (or sleep) on a query the user already gave up on.
TEST_F(ResilienceTest, CancellationIsNeverRetried) {
  MetricsRegistry metrics;
  CancellationToken token;
  token.Cancel("user abort");
  ExecContext ctx;
  ctx.cancel = &token;
  ResilientExecOptions options;
  options.obs.metrics = &metrics;
  auto rows = ExecutePlanResilient(*JoinPlan(), ctx, options);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(metrics.counter("resilience.retry.query")->value(), 0u);
}

}  // namespace
}  // namespace xprs
