// Concurrency suite for the serving layer: N client threads submitting
// mixed SQL through ServingEngine sessions (results checked against a
// serial oracle), fair-share and priority dispatch ordering, queue-full
// admission rejection with its distinct status, deadline expiry while
// still queued (the job must never run), the memory-budget degrade path,
// and the differential oracle's concurrent replay mode. The whole file
// runs under tsan in CI (scripts/ci.sh stage 5).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_scheduler.h"
#include "serve/serving_engine.h"
#include "testing/differential.h"
#include "testing/query_gen.h"
#include "util/check.h"
#include "util/rng.h"

namespace xprs {
namespace {

// ----------------------------------------------------------- scheduler core

// A synthetic request: no SQL, just a job that records its grant.
ServeRequest SyntheticRequest(double seq_time, double ios,
                              int64_t session_id) {
  ServeRequest request;
  request.estimate.seq_time = seq_time;
  request.estimate.total_ios = ios;
  request.session_id = session_id;
  request.job = [](const ExecGrant&) -> StatusOr<SqlResult> {
    return SqlResult();
  };
  return request;
}

TEST(QuerySchedulerTest, CompletesSubmittedJobs) {
  ServeOptions options;
  options.max_concurrent = 4;
  QueryScheduler scheduler(options);
  std::vector<ServeTicket> tickets;
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ServeRequest request = SyntheticRequest(0.01, 1.0, i % 4);
    request.job = [&ran](const ExecGrant&) -> StatusOr<SqlResult> {
      ran.fetch_add(1);
      return SqlResult();
    };
    auto ticket = scheduler.Submit(std::move(request));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(*ticket);
  }
  for (ServeTicket& t : tickets) EXPECT_TRUE(t.Wait().ok());
  EXPECT_EQ(ran.load(), 32);
  EXPECT_TRUE(scheduler.Drain().ok());
  EXPECT_EQ(scheduler.NumQueued(), 0u);
  EXPECT_EQ(scheduler.NumRunning(), 0u);
}

TEST(QuerySchedulerTest, FairShareAlternatesSessionsAndPriorityWins) {
  ServeOptions options;
  options.max_concurrent = 1;  // serialize dispatch for a deterministic order
  options.start_paused = true;
  QueryScheduler scheduler(options);

  // Four queries each for sessions 1 and 2 (equal weights), then one
  // priority query for session 3, all queued before dispatch starts.
  std::vector<ServeTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = scheduler.Submit(SyntheticRequest(1.0, 10.0, 1));
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  for (int i = 0; i < 4; ++i) {
    auto t = scheduler.Submit(SyntheticRequest(1.0, 10.0, 2));
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  ServeRequest urgent = SyntheticRequest(1.0, 10.0, 3);
  urgent.priority = 5;
  auto urgent_ticket = scheduler.Submit(std::move(urgent));
  ASSERT_TRUE(urgent_ticket.ok());

  scheduler.Resume();
  for (ServeTicket& t : tickets) ASSERT_TRUE(t.Wait().ok());
  ASSERT_TRUE(urgent_ticket->Wait().ok());

  std::vector<int64_t> order = scheduler.dispatch_order();
  ASSERT_EQ(order.size(), 9u);
  // Strict priority first: the session-3 query (submitted last, id 9).
  EXPECT_EQ(order[0], urgent_ticket->query_id());
  // Weighted fair share then alternates the two equal-weight sessions:
  // ids 1..4 are session 1, ids 5..8 session 2 — never two consecutive
  // dispatches from the same session.
  auto session_of = [&](int64_t id) { return id <= 4 ? 1 : 2; };
  for (size_t i = 2; i < order.size(); ++i) {
    EXPECT_NE(session_of(order[i]), session_of(order[i - 1]))
        << "dispatch " << i << " repeated a session under fair share";
  }
}

TEST(QuerySchedulerTest, WeightedSessionGetsLargerShare) {
  ServeOptions options;
  options.max_concurrent = 1;
  options.start_paused = true;
  QueryScheduler scheduler(options);

  // Session 1 weight 2, session 2 weight 1, six queries each.
  std::vector<ServeTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    ServeRequest heavy = SyntheticRequest(1.0, 10.0, 1);
    heavy.weight = 2.0;
    auto t = scheduler.Submit(std::move(heavy));
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
    auto u = scheduler.Submit(SyntheticRequest(1.0, 10.0, 2));
    ASSERT_TRUE(u.ok());
    tickets.push_back(*u);
  }
  scheduler.Resume();
  for (ServeTicket& t : tickets) ASSERT_TRUE(t.Wait().ok());

  // In the first six dispatches the weight-2 session must have received
  // more slots than the weight-1 session.
  std::vector<int64_t> order = scheduler.dispatch_order();
  ASSERT_EQ(order.size(), 12u);
  int heavy_first_six = 0;
  for (size_t i = 0; i < 6; ++i)
    if (order[i] % 2 == 1) ++heavy_first_six;  // odd ids = session 1
  EXPECT_GE(heavy_first_six, 4) << "weight-2 session under-served";
}

TEST(QuerySchedulerTest, QueueFullRejectsWithDistinctStatus) {
  MetricsRegistry metrics;
  ServeOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 2;
  options.start_paused = true;
  options.obs.metrics = &metrics;
  QueryScheduler scheduler(options);

  auto first = scheduler.Submit(SyntheticRequest(1.0, 10.0, 1));
  auto second = scheduler.Submit(SyntheticRequest(1.0, 10.0, 1));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  auto third = scheduler.Submit(SyntheticRequest(1.0, 10.0, 1));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(QueryScheduler::IsAdmissionReject(third.status()))
      << third.status().ToString();
  // Distinct from a storage-layer ResourceExhausted.
  EXPECT_FALSE(QueryScheduler::IsAdmissionReject(
      Status::ResourceExhausted("all frames pinned")));
  EXPECT_EQ(metrics.counter("serve.rejected.queue_full")->value(), 1u);
  EXPECT_EQ(metrics.counter("serve.submitted")->value(), 3u);
  EXPECT_EQ(metrics.counter("serve.admitted")->value(), 2u);

  scheduler.Resume();
  EXPECT_TRUE(first->Wait().ok());
  EXPECT_TRUE(second->Wait().ok());
}

TEST(QuerySchedulerTest, DeadlineInQueueRejectsWithoutRunningJob) {
  MetricsRegistry metrics;
  ServeOptions options;
  options.max_concurrent = 1;
  options.start_paused = true;  // nothing is ever admitted
  options.obs.metrics = &metrics;
  QueryScheduler scheduler(options);

  CancellationToken token;
  token.SetDeadlineAfterMs(5);
  std::atomic<bool> job_ran{false};
  ServeRequest request = SyntheticRequest(1.0, 10.0, 1);
  request.cancel = &token;
  request.job = [&job_ran](const ExecGrant&) -> StatusOr<SqlResult> {
    job_ran.store(true);
    return SqlResult();
  };
  auto ticket = scheduler.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());

  // The dispatcher's deadline sweep must resolve the ticket on its own —
  // the scheduler stays paused, so admission can never be the path out.
  StatusOr<SqlResult> result = ticket->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(job_ran.load()) << "expired query must never start";
  EXPECT_EQ(metrics.counter("serve.rejected.deadline")->value(), 1u);
  EXPECT_EQ(metrics.counter("serve.dispatched")->value(), 0u);
}

TEST(QuerySchedulerTest, AlreadyExpiredTokenRejectsSynchronously) {
  ServeOptions options;
  QueryScheduler scheduler(options);
  CancellationToken token;
  token.SetDeadlineAfterMs(0);  // already expired
  ServeRequest request = SyntheticRequest(1.0, 10.0, 1);
  request.cancel = &token;
  std::atomic<bool> job_ran{false};
  request.job = [&job_ran](const ExecGrant&) -> StatusOr<SqlResult> {
    job_ran.store(true);
    return SqlResult();
  };
  auto ticket = scheduler.Submit(std::move(request));
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(job_ran.load());
}

TEST(QuerySchedulerTest, MemoryBudgetDegradesOversizedQueryToSpill) {
  MetricsRegistry metrics;
  ServeOptions options;
  options.max_concurrent = 2;
  options.memory_pages_budget = 50.0;
  options.obs.metrics = &metrics;
  QueryScheduler scheduler(options);

  ServeRequest request = SyntheticRequest(1.0, 10.0, 1);
  request.estimate.memory_pages = 100.0;  // can never fit
  std::atomic<bool> degraded{false};
  std::atomic<int> granted_parallelism{0};
  request.job = [&](const ExecGrant& grant) -> StatusOr<SqlResult> {
    degraded.store(grant.degrade_to_spill);
    granted_parallelism.store(grant.parallelism);
    return SqlResult();
  };
  auto ticket = scheduler.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(ticket->Wait().ok());
  EXPECT_TRUE(degraded.load()) << "oversized query must run degraded";
  EXPECT_EQ(granted_parallelism.load(), 1);
  EXPECT_EQ(metrics.counter("serve.degraded")->value(), 1u);

  // A query that fits runs undegraded.
  ServeRequest small = SyntheticRequest(1.0, 10.0, 1);
  small.estimate.memory_pages = 10.0;
  std::atomic<bool> small_degraded{true};
  small.job = [&](const ExecGrant& grant) -> StatusOr<SqlResult> {
    small_degraded.store(grant.degrade_to_spill);
    return SqlResult();
  };
  auto small_ticket = scheduler.Submit(std::move(small));
  ASSERT_TRUE(small_ticket.ok());
  ASSERT_TRUE(small_ticket->Wait().ok());
  EXPECT_FALSE(small_degraded.load());
}

TEST(QuerySchedulerTest, ShutdownRejectsQueuedQueries) {
  ServeOptions options;
  options.start_paused = true;
  auto scheduler = std::make_unique<QueryScheduler>(options);
  auto ticket = scheduler->Submit(SyntheticRequest(1.0, 10.0, 1));
  ASSERT_TRUE(ticket.ok());
  scheduler->Shutdown();
  StatusOr<SqlResult> result = ticket->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Post-shutdown submits fail synchronously.
  auto late = scheduler->Submit(SyntheticRequest(1.0, 10.0, 1));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------- serving

class ServingEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());

    Table* orders =
        catalog_->CreateTable("orders", Schema::PaperSchema()).value();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(orders->file()
                      .Append(Tuple({Value(int32_t{i % 100}),
                                     Value(std::string("o") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(orders->file().Flush().ok());
    ASSERT_TRUE(orders->BuildIndex(0).ok());
    ASSERT_TRUE(orders->ComputeStats().ok());

    Table* custs =
        catalog_->CreateTable("custs", Schema::PaperSchema()).value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(custs->file()
                      .Append(Tuple({Value(int32_t{i}),
                                     Value(std::string("c") +
                                           std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(custs->file().Flush().ok());
    ASSERT_TRUE(custs->BuildIndex(0).ok());
    ASSERT_TRUE(custs->ComputeStats().ok());

    oracle_ = std::make_unique<SqlEngine>(
        catalog_.get(), MachineConfig::PaperConfig(), &model_);
  }

  std::unique_ptr<ServingEngine> MakeEngine(
      ServingEngine::Options options = {}) {
    return std::make_unique<ServingEngine>(
        catalog_.get(), MachineConfig::PaperConfig(), &model_,
        std::move(options));
  }

  static std::multiset<std::string> Canon(const std::vector<Tuple>& rows) {
    std::multiset<std::string> canon;
    for (const Tuple& t : rows) canon.insert(t.ToString());
    return canon;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  CostModel model_;
  std::unique_ptr<SqlEngine> oracle_;
};

TEST_F(ServingEngineTest, ConcurrentMixedQueriesMatchSerialOracle) {
  const std::vector<std::string> queries = {
      "SELECT * FROM custs",
      "SELECT * FROM custs WHERE a BETWEEN 10 AND 19",
      "SELECT * FROM orders WHERE a >= 90",
      "SELECT count(a) FROM orders",
      "SELECT o.a, c.b FROM orders o, custs c WHERE o.a = c.a AND c.a < 25",
      "SELECT max(a) FROM custs WHERE a < 50",
  };
  // Serial oracle results first.
  std::vector<std::multiset<std::string>> expected;
  for (const std::string& sql : queries) {
    auto r = oracle_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    expected.push_back(Canon(r->rows));
  }

  ServingEngine::Options options;
  options.serve.max_concurrent = 4;
  options.buffer_pool_frames = 64;
  auto engine = MakeEngine(std::move(options));

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      auto session = engine->OpenSession({/*priority=*/0, /*weight=*/1.0,
                                          "client-" + std::to_string(t)});
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto result = session->Execute(queries[q]);
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (Canon(result->rows) != expected[q]) mismatches.fetch_add(1);
        }
      }
      engine->CloseSession(session);
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(engine->Drain().ok());
  EXPECT_GE(engine->scheduler().peak_running(), 2)
      << "serving never overlapped two queries";
}

TEST_F(ServingEngineTest, ZeroPinnedFramesAndZeroSessionsAfterDrain) {
  ServingEngine::Options options;
  options.serve.max_concurrent = 3;
  options.buffer_pool_frames = 32;
  options.soft_pin_frames = 16;
  auto engine = MakeEngine(std::move(options));

  std::vector<std::shared_ptr<ServingSession>> sessions;
  std::vector<SubmittedQuery> submitted;
  for (int s = 0; s < 3; ++s) {
    auto session = engine->OpenSession();
    for (int i = 0; i < 4; ++i) {
      auto q = session->Submit(
          "SELECT o.a, c.b FROM orders o, custs c WHERE o.a = c.a");
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      submitted.push_back(*q);
    }
    sessions.push_back(std::move(session));
  }
  for (SubmittedQuery& q : submitted)
    EXPECT_TRUE(q.ticket.Wait().ok());
  ASSERT_TRUE(engine->Drain().ok());

  ASSERT_NE(engine->pool(), nullptr);
  EXPECT_EQ(engine->pool()->PinnedFrames(), 0u) << "leaked pins after drain";
  for (auto& session : sessions) {
    EXPECT_EQ(session->num_outstanding(), 0) << "leaked in-flight queries";
    engine->CloseSession(session);
  }
  EXPECT_EQ(engine->num_open_sessions(), 0u) << "leaked sessions";
}

TEST_F(ServingEngineTest, QueuedDeadlineRejectsBeforeExecution) {
  ServingEngine::Options options;
  options.serve.max_concurrent = 1;
  options.serve.start_paused = true;  // queries queue, none admitted
  auto engine = MakeEngine(std::move(options));
  auto session = engine->OpenSession();

  QueryOptions deadline;
  deadline.deadline_ms = 5;
  auto q = session->Submit("SELECT * FROM custs", deadline);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  StatusOr<SqlResult> result = q->ticket.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(session->num_outstanding(), 0);
  engine->Resume();
  engine->CloseSession(session);
}

TEST_F(ServingEngineTest, ParseErrorsSurfaceSynchronously) {
  auto engine = MakeEngine();
  auto session = engine->OpenSession();
  auto q = session->Submit("SELECT FROM WHERE");
  EXPECT_FALSE(q.ok());
  auto missing = session->Submit("SELECT * FROM nosuch");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(session->num_outstanding(), 0);
  engine->CloseSession(session);
}

TEST_F(ServingEngineTest, CancelAllResolvesInFlightQueries) {
  ServingEngine::Options options;
  options.serve.max_concurrent = 1;
  options.serve.start_paused = true;
  auto engine = MakeEngine(std::move(options));
  auto session = engine->OpenSession();
  std::vector<SubmittedQuery> submitted;
  for (int i = 0; i < 3; ++i) {
    auto q = session->Submit("SELECT * FROM custs");
    ASSERT_TRUE(q.ok());
    submitted.push_back(*q);
  }
  session->CancelAll();
  engine->Resume();
  for (SubmittedQuery& q : submitted) {
    StatusOr<SqlResult> result = q.ticket.Wait();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(session->num_outstanding(), 0);
  engine->CloseSession(session);
}

TEST_F(ServingEngineTest, ShutdownUnderLoadWithFaultsLeavesNoResidue) {
  // N client threads hammer Submit while one thread storms CancelAll and
  // another pulls Shutdown, all with storage faults injected. The suite
  // runs under tsan in CI; here the invariants are no deadlock (the test
  // finishes), every submitted query reaching a terminal state, and zero
  // pinned frames afterwards.
  ScriptedFaultInjector injector;
  ScriptedFaultInjector::Script script;
  script.read_fault_rate = 0.05;
  injector.Arm(script, TestSeed(0x5E7E0003));
  array_->SetFaultInjector(&injector);

  ServingEngine::Options options;
  options.serve.max_concurrent = 3;
  options.serve.max_queue_depth = 16;
  options.buffer_pool_frames = 64;
  auto engine = MakeEngine(std::move(options));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::atomic<int> submitted{0};
  std::atomic<int> sync_rejected{0};
  std::atomic<int> terminal{0};
  std::vector<std::shared_ptr<ServingSession>> sessions;
  for (int t = 0; t < kThreads; ++t)
    sessions.push_back(engine->OpenSession(
        {/*priority=*/t % 2, /*weight=*/1.0, "storm-" + std::to_string(t)}));

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        submitted.fetch_add(1);
        auto q = sessions[t]->Submit(
            i % 2 == 0 ? "SELECT * FROM custs"
                       : "SELECT o.a, c.b FROM orders o, custs c "
                         "WHERE o.a = c.a");
        if (!q.ok()) {
          sync_rejected.fetch_add(1);  // queue full / shed / shut down
          terminal.fetch_add(1);
          continue;
        }
        q->ticket.Wait();  // any outcome; it just must resolve
        terminal.fetch_add(1);
      }
    });
  }
  std::thread canceller([&] {
    for (int i = 0; i < 5; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      for (auto& session : sessions) session->CancelAll();
    }
  });
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    engine->scheduler().Shutdown();
  });

  for (std::thread& c : clients) c.join();
  canceller.join();
  killer.join();

  EXPECT_EQ(terminal.load(), submitted.load())
      << "a submission never reached a terminal state";
  ASSERT_NE(engine->pool(), nullptr);
  EXPECT_EQ(engine->pool()->PinnedFrames(), 0u)
      << "leaked pins after shutdown under load";
  for (auto& session : sessions) {
    EXPECT_EQ(session->num_outstanding(), 0);
    engine->CloseSession(session);
  }
  EXPECT_EQ(engine->num_open_sessions(), 0u);
  array_->SetFaultInjector(nullptr);
}

// ------------------------------------------------- differential concurrent

TEST(ServeDifferentialTest, ConcurrentReplayMatchesSerial) {
  const uint64_t seed = TestSeed(0x5E7E0001);
  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  Rng rng(seed);
  auto tables = BuildGeneratedWorkload(&catalog, {}, &rng);
  ASSERT_TRUE(tables.ok());

  DifferentialOptions options;
  options.concurrent_sessions = 4;
  DifferentialOracle oracle(&array, options, seed ^ 1);
  QueryGenerator gen(tables.value(), QueryGenerator::Options(), seed ^ 2);

  std::vector<std::unique_ptr<PlanNode>> owned;
  std::vector<const PlanNode*> plans;
  for (int i = 0; i < 24; ++i) {
    owned.push_back(gen.NextPlan());
    plans.push_back(owned.back().get());
  }
  Status status = oracle.CheckPlansConcurrent(plans);
  ASSERT_TRUE(status.ok()) << "(seed " << seed << "): " << status.ToString();
  EXPECT_EQ(oracle.report().plans_checked, 24u);
}

TEST(ServeDifferentialTest, ConcurrentChaosReplayIsRetryableOrExact) {
  const uint64_t seed = TestSeed(0x5E7E0002);
  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  Rng rng(seed);
  auto tables = BuildGeneratedWorkload(&catalog, {}, &rng);
  ASSERT_TRUE(tables.ok());

  MetricsRegistry metrics;
  DifferentialOptions options;
  options.concurrent_sessions = 4;
  options.chaos_read_fault_rate = 0.01;
  options.chaos_obs.metrics = &metrics;
  DifferentialOracle oracle(&array, options, seed ^ 1);
  QueryGenerator gen(tables.value(), QueryGenerator::Options(), seed ^ 2);

  std::vector<std::unique_ptr<PlanNode>> owned;
  std::vector<const PlanNode*> plans;
  for (int i = 0; i < 16; ++i) {
    owned.push_back(gen.NextPlan());
    plans.push_back(owned.back().get());
  }
  Status status = oracle.CheckPlansConcurrentChaos(plans);
  ASSERT_TRUE(status.ok()) << "(seed " << seed << "): " << status.ToString();
}

}  // namespace
}  // namespace xprs
