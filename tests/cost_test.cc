// Tests for the §2.5 cost formulas T_intra and T_inter.

#include <gtest/gtest.h>

#include "sched/cost.h"

namespace xprs {
namespace {

TaskProfile Task(TaskId id, double rate, double seq_time,
                 IoPattern pattern = IoPattern::kSequential) {
  TaskProfile t;
  t.id = id;
  t.seq_time = seq_time;
  t.total_ios = rate * seq_time;
  t.pattern = pattern;
  return t;
}

TEST(TIntraTest, CpuBoundUsesAllProcessors) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(TIntra(Task(1, 10.0, 16.0), m), 2.0);  // 16 / 8
}

TEST(TIntraTest, IoBoundLimitedByBandwidth) {
  MachineConfig m = MachineConfig::PaperConfig();
  // maxp = 240/60 = 4 -> 20/4 = 5.
  EXPECT_DOUBLE_EQ(TIntra(Task(1, 60.0, 20.0), m), 5.0);
}

TEST(TInterTest, InvalidWhenBothCpuBound) {
  MachineConfig m = MachineConfig::PaperConfig();
  InterCost ic = TInter(Task(1, 10.0, 10.0), Task(2, 20.0, 10.0), m, false);
  EXPECT_FALSE(ic.valid);
}

TEST(TInterTest, HandComputedConstantB) {
  MachineConfig m = MachineConfig::PaperConfig();
  // ci=60 Ti=16, cj=10 Tj=48. Balance: xi=3.2, xj=4.8.
  // fin_i = 16/3.2 = 5, fin_j = 48/4.8 = 10 -> i finishes first at t=5.
  // T_ij = 48 - 16*4.8/3.2 = 48 - 24 = 24; maxp_j = 8 -> +3.
  // T_inter = 5 + 3 = 8.
  InterCost ic = TInter(Task(1, 60.0, 16.0), Task(2, 10.0, 48.0), m, false);
  ASSERT_TRUE(ic.valid);
  EXPECT_EQ(ic.first_finisher, 1);
  EXPECT_NEAR(ic.remaining_seq_time, 24.0, 1e-9);
  EXPECT_NEAR(ic.t_inter, 8.0, 1e-9);
}

TEST(TInterTest, SymmetricWhenArgumentsSwapped) {
  MachineConfig m = MachineConfig::PaperConfig();
  InterCost a = TInter(Task(1, 60.0, 16.0), Task(2, 10.0, 48.0), m, false);
  InterCost b = TInter(Task(2, 10.0, 48.0), Task(1, 60.0, 16.0), m, false);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_NEAR(a.t_inter, b.t_inter, 1e-9);
  EXPECT_EQ(a.first_finisher, b.first_finisher);
}

TEST(TInterTest, SimultaneousFinishHasZeroRemainder) {
  MachineConfig m = MachineConfig::PaperConfig();
  // Choose Tj so both finish together: Ti/xi = Tj/xj with xi=3.2, xj=4.8.
  // Ti=16 -> fin=5 -> Tj = 24.
  InterCost ic = TInter(Task(1, 60.0, 16.0), Task(2, 10.0, 24.0), m, false);
  ASSERT_TRUE(ic.valid);
  EXPECT_NEAR(ic.remaining_seq_time, 0.0, 1e-9);
  EXPECT_NEAR(ic.t_inter, 5.0, 1e-9);
}

TEST(TInterTest, PairedBeatsSerialIntraForIdealMix) {
  MachineConfig m = MachineConfig::PaperConfig();
  // An extremely IO-bound random scan + an extremely CPU-bound seq scan:
  // exactly the case §2.3 says always wins.
  TaskProfile io = Task(1, 65.0, 20.0, IoPattern::kRandom);
  TaskProfile cpu = Task(2, 6.0, 20.0, IoPattern::kSequential);
  InterCost ic = TInter(io, cpu, m, true);
  ASSERT_TRUE(ic.valid);
  double serial = TIntra(io, m) + TIntra(cpu, m);
  EXPECT_LT(ic.t_inter, serial);
}

TEST(TInterTest, SeekInterferenceCanMakePairingLose) {
  MachineConfig m = MachineConfig::PaperConfig();
  // Two sequential scans close to the threshold: the effective-bandwidth
  // drop should make paired execution not (much) better than serial.
  TaskProfile io = Task(1, 40.0, 20.0, IoPattern::kSequential);
  TaskProfile cpu = Task(2, 25.0, 20.0, IoPattern::kSequential);
  InterCost with = TInter(io, cpu, m, true);
  InterCost without = TInter(io, cpu, m, false);
  ASSERT_TRUE(without.valid);
  if (with.valid) {
    EXPECT_GE(with.t_inter, without.t_inter - 1e-9);
  }
}

}  // namespace
}  // namespace xprs
